"""Setuptools shim: `pip install -e . --no-build-isolation` needs the wheel
package, which is unavailable in offline environments; `python setup.py
develop` (or the repro-editable.pth route) works without it."""
from setuptools import setup

setup()
