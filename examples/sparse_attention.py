"""Dynamic sparse attention with PIT (the Longformer/Museformer scenario).

The attention mask — sliding window plus input-dependent global tokens —
is only known at runtime.  This example:

1. builds a Longformer mask and verifies PIT-style gathered attention
   equals the dense masked reference numerically,
2. shows the coverage difference between PIT's micro-tiles (including the
   1x8 transaction-minimum tile) and a 32x32 block-sparse cover,
3. compares the end-to-end model across PyTorch, PyTorch-S, Longformer-S,
   DeepSpeed and PIT on the simulated V100.

Run:  python examples/sparse_attention.py
"""

import numpy as np

from repro.hw import V100
from repro.models import LayerWeights, encoder_layer, longformer_workload
from repro.runtime import format_table, run_lineup
from repro.sparsity import MaskStats, longformer_mask


def correctness_demo():
    print("== masked attention: PIT token order vs dense reference ==")
    rng = np.random.default_rng(0)
    seq, d_model, heads = 128, 32, 4
    mask = longformer_mask(seq, window=16, num_global=4, seed=5)
    x = rng.standard_normal((seq, d_model))
    w = LayerWeights.random(d_model, 64, seed=1)

    reference = encoder_layer(x, w, heads, attn_mask=mask)
    # Permutation invariance at the token level: process rows in shuffled
    # order (SRead), restore positions (SWrite) — the outputs must agree.
    perm = rng.permutation(seq)
    inv = np.argsort(perm)
    # Permuting tokens requires permuting the mask consistently on both
    # axes; attention then computes the same pairs in a different order.
    shuffled = encoder_layer(
        x[perm], w, heads, attn_mask=mask[np.ix_(perm, perm)]
    )[inv]
    err = np.abs(reference - shuffled).max()
    print(f"max |shuffled-restore - reference| = {err:.2e}")
    assert err < 1e-8


def coverage_demo():
    print("\n== mask coverage: micro-tiles vs 32x32 blocks ==")
    seq = 2048
    mask = longformer_mask(seq, window=256, num_global=32, seed=3)
    stats = MaskStats.from_mask(mask)
    total = seq * seq
    print(f"mask density                 : {stats.density * 100:.1f}%")
    print(f"(1, 32) micro-tile cover     : "
          f"{stats.covered_micro_elems() / total * 100:.1f}%")
    print(f"(1, 8) fine micro-tile cover : "
          f"{stats.covered_micro_fine * 8 / total * 100:.1f}%")
    print(f"32x32 block cover            : "
          f"{stats.covered_block_elems() / total * 100:.1f}%")
    print("global-token columns hurt wide covers; PIT's selector picks the "
          "transaction-minimum 1x8 micro-tile")


def end_to_end_demo():
    print("\n== Longformer end to end (fp32, batch 16, V100) ==")
    lineup = ("PyTorch", "PyTorch-S", "Longformer-S", "DeepSpeed", "PIT")
    rows = []
    for seq in (2048, 4096):
        wl = longformer_workload("base", seq, batch_size=16, seed=0)
        reports = run_lineup(wl, lineup, V100, "float32")
        by_name = {r.backend: r for r in reports}
        rows.append(
            [f"base-{seq}"]
            + [
                "OOM" if by_name[n].oom else
                f"{by_name[n].latency_ms:.0f}ms/{by_name[n].peak_mem_gib:.1f}G"
                for n in lineup
            ]
        )
    print(format_table(["config"] + list(lineup), rows))
    print("(the Triton-based systems sit near the 32GB ceiling at 4096 and "
          "OOM on the large model — see benchmarks/bench_fig12_longformer.py)")


if __name__ == "__main__":
    correctness_demo()
    coverage_demo()
    end_to_end_demo()
