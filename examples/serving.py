"""Serving demo: sustained multi-request load with plan caching.

Simulates a small inference service in front of the PIT backend: BERT
requests with dataset-drawn variable sequence lengths arrive every few
milliseconds, the engine buckets them into token-budget batches, and every
batch resolves its kernel plans through the shared PlanCache — so only the
first batch of each traffic shape pays the Algorithm 1 search.

Run:  PYTHONPATH=src python examples/serving.py
"""

from repro.core import PlanCache
from repro.hw import V100
from repro.models import bert_workload, opt_inference_workload
from repro.runtime import ServingEngine, format_table


def main():
    cache = PlanCache()
    engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, plan_cache=cache
    )

    # A mixed request stream: BERT classification plus OPT generation
    # prefills (the latter exploit ReLU activation sparsity).
    requests = [bert_workload("mnli", 8, seed=s) for s in range(12)]
    requests += [opt_inference_workload("125m", 4, seed=s % 2) for s in range(6)]
    engine.submit_many(requests, interarrival_us=2000.0)

    report = engine.run()
    print(report.describe())
    print()
    print(
        format_table(
            ["batch", "reqs", "tokens", "padded", "exec ms", "select us",
             "cache"],
            [
                [
                    b.batch_id,
                    b.size,
                    b.tokens,
                    b.padded_tokens,
                    b.exec_us / 1e3,
                    b.selection_us,
                    f"{b.cache_hits}h/{b.cache_misses}m",
                ]
                for b in report.batches
            ],
            title="Per-batch breakdown",
        )
    )


if __name__ == "__main__":
    main()
