"""Serving demo: sustained multi-request load with plan caching.

Simulates a small inference service in front of the PIT backend: BERT
requests with dataset-drawn variable sequence lengths arrive every few
milliseconds, the engine buckets them into token-budget batches, and every
batch resolves its kernel plans — declarative PlanSpecs — through the
shared Planner/PlanCache, so only the first batch of each traffic shape
pays the Algorithm 1 search.

The second half re-serves the same traffic through the continuous-batching
scheduler: open batches admit arrivals until the batching window closes
them, and closed batches place onto the least-loaded of four device
replicas — all four warmed by the plan cache the drain run populated.

The final sections show the PlanSpec redesign's two new tricks: MoE
co-batching (merged routing tables planned as ``moe-grouped`` specs
alongside attention plans, with per-kind counts from
``ServingReport.selection_summary()``) and persistence — ``save()`` the
warm cache, revive it with ``PlanCache.load()`` in a fresh engine, and
serve the same traffic with zero cold searches.

The last section leaves the simulated clock entirely: the **live asyncio
front end** serves the same kind of traffic through real concurrent
replica workers (all sharing the engine's sharded plan cache), sheds
arrivals past its queue-depth bound instead of queueing them past SLO
feasibility, and — replayed in virtual time — reproduces the simulated
scheduler's decisions exactly (see docs/concurrency.md).

The closing section goes one step further: the **process pool** serves
the same traffic with each replica a real OS worker process behind an RPC
channel, plan-cache deltas keeping the fleet warm with one process's
worth of cold searches, and the replay proving the boundary changed no
decision (see docs/cluster.md).

Run:  PYTHONPATH=src python examples/serving.py
"""

import os
import tempfile

from repro.core import PlanCache
from repro.hw import V100
from repro.models import (
    bert_workload,
    longformer_workload,
    opt_inference_workload,
    switch_workload,
)
from repro.runtime import ServingEngine, format_table


def mixed_stream():
    # A mixed request stream: BERT classification plus OPT generation
    # prefills (the latter exploit ReLU activation sparsity).
    requests = [bert_workload("mnli", 8, seed=s) for s in range(12)]
    requests += [opt_inference_workload("125m", 4, seed=s % 2) for s in range(6)]
    return requests


def batch_table(report, title):
    return format_table(
        ["batch", "reqs", "tokens", "padded", "replica", "exec ms",
         "select us", "cache"],
        [
            [
                b.batch_id,
                b.size,
                b.tokens,
                b.padded_tokens,
                b.replica_id,
                b.exec_us / 1e3,
                b.selection_us,
                f"{b.cache_hits}h/{b.cache_misses}m",
            ]
            for b in report.batches
        ],
        title=title,
    )


def main():
    cache = PlanCache()
    engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, plan_cache=cache
    )
    engine.submit_many(mixed_stream(), interarrival_us=2000.0)
    report = engine.run()
    print(report.describe())
    print()
    print(batch_table(report, "Per-batch breakdown (drain, 1 device)"))

    # Same traffic, continuous batching across four replicas.  The plan
    # cache is already warm from the drain run, so no replica pays a cold
    # Algorithm 1 search.
    engine = ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=8,
        replicas=4,
        batch_window_us=3000.0,
        plan_cache=cache,
    )
    engine.submit_many(mixed_stream(), interarrival_us=2000.0)
    report = engine.run(policy="continuous")
    print()
    print(report.describe())
    print()
    print(batch_table(report, "Per-batch breakdown (continuous, 4 replicas)"))

    # A cold continuous run (fresh cache): the scheduler issues each
    # batch's Algorithm 1 search at batch-open time, so the real search
    # milliseconds hide behind the batching window and prior compute —
    # describe() reports the time removed from the critical path.
    engine = ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=8,
        batch_window_us=3000.0,
        plan_cache=PlanCache(),
    )
    engine.submit_many(mixed_stream(), interarrival_us=2000.0)
    report = engine.run(policy="continuous")
    print()
    print(report.describe())
    print(
        f"cold searches overlapped with compute: saved "
        f"{report.overlap_saved_us / 1e3:.2f} ms"
    )

    # Heterogeneous fleet: a mixed V100+A100 lineup (slow device listed
    # first) under cost-aware placement.  Each closed batch is priced on
    # both device classes' analytical models and placed to minimize
    # predicted finish time, so the idle-fleet batches land on the A100
    # instead of replica id 0; least-loaded placement on the identical
    # lineup shows what speed-blind placement costs.
    from repro.hw import parse_lineup

    lineup = parse_lineup("v100+a100")
    for placement in ("least-loaded", "cost-aware"):
        het_cache = PlanCache()
        for _ in range(2):  # second pass serves fully warm
            het_engine = ServingEngine(
                V100,
                replica_specs=lineup,
                placement=placement,
                dtype="float16",
                max_batch_tokens=8192,
                max_batch_size=8,
                batch_window_us=500.0,
                plan_cache=het_cache,
            )
            het_engine.submit_many(
                [bert_workload("mnli", 8, seed=s % 4) for s in range(12)],
                interarrival_us=4000.0,
            )
            het_report = het_engine.run(policy="continuous")
        print()
        print(f"mixed lineup, {placement} placement:")
        print(het_report.describe())

    # MoE co-batching: Switch-Transformer requests with statistically alike
    # routing merge their routing tables and plan one grouped dispatch;
    # Longformer requests plan their dynamic attention cover.  All four
    # plan kinds flow through the same Planner — selection_summary()
    # reports the per-kind mix.
    moe_engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8,
        plan_cache=PlanCache(), enforce_memory=False,
    )
    stream = [switch_workload(8, 4, seed=s % 2) for s in range(6)]
    stream += [longformer_workload(seq_len=2048, batch_size=1, seed=s % 2)
               for s in range(4)]
    stream += [opt_inference_workload("125m", 4, seed=0) for _ in range(2)]
    moe_engine.submit_many(stream, interarrival_us=2000.0)
    moe_report = moe_engine.run()
    print()
    print(moe_report.describe())
    print("plan kinds resolved through the Planner:")
    for kind, agg in sorted(
        moe_report.selection_summary()["plans_by_kind"].items()
    ):
        print(f"  {kind:12s} {agg['resolved']} plans ({agg['cold']} cold)")

    # Warm start across "processes": persist the warm cache, revive it in
    # a fresh engine, and replay the trace — zero cold searches.
    dump = os.path.join(tempfile.gettempdir(), "pit_plan_cache.json")
    saved = moe_engine.save_plan_cache(dump)
    reloaded = PlanCache.load(
        dump, expected_tiledb_key=moe_engine.tiledb.cache_key
    )
    fresh = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8,
        plan_cache=reloaded, enforce_memory=False,
    )
    fresh.submit_many(stream, interarrival_us=2000.0)
    warm_report = fresh.run()
    print()
    print(
        f"saved {saved['entries']} plans to {dump}; fresh engine replayed "
        f"the trace with {reloaded.misses} cold searches "
        f"({warm_report.selection_summary()['cold_batches']} cold batches, "
        f"selection {warm_report.total_selection_us / 1e3:.2f} ms vs "
        f"{moe_report.total_selection_us / 1e3:.2f} ms cold)"
    )

    # ------------------------------------------------------------------
    # The live path: real asyncio workers instead of a simulated clock.
    # ------------------------------------------------------------------
    from repro.runtime import decision_trace, replay_trace, serve_workloads

    # Four replica workers pull closed batches concurrently; every worker
    # gets its own model backend, all resolving into one sharded plan
    # cache, so concurrent cold searches are never duplicated.
    live_engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, replicas=4,
        batch_window_us=3000.0, plan_cache=PlanCache(),
        enforce_memory=False,
    )
    live_report = serve_workloads(live_engine, mixed_stream())
    print()
    print(live_report.describe())
    print(
        f"live front end: {len(live_report.batches)} batches across "
        f"{len({b.replica_id for b in live_report.batches})} workers, "
        f"{live_report.plan_cache_stats['misses']} cold searches"
    )

    # Load shedding: past max_queue_depth the front end refuses arrivals
    # immediately — each shed request still gets a report (never silently
    # dropped), and the SLO percentiles exclude it.
    shed_engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, replicas=2,
        batch_window_us=3000.0, plan_cache=PlanCache(),
        enforce_memory=False,
    )
    shed_report = serve_workloads(
        shed_engine, mixed_stream(), max_queue_depth=8
    )
    print(
        f"with max_queue_depth=8: served "
        f"{len(shed_report.requests) - shed_report.shed_requests}, shed "
        f"{shed_report.shed_requests} (all {len(shed_report.requests)} "
        f"reported)"
    )

    # Deterministic replay: the same front-end pipeline driven in virtual
    # time reproduces the simulated scheduler decision-for-decision.
    # charge_selection=False keeps measured selection wall time off the
    # simulated timeline so even start/exec times compare bit-for-bit.
    def replay_engine():
        return ServingEngine(
            V100, max_batch_tokens=8192, max_batch_size=8, replicas=4,
            batch_window_us=3000.0, plan_cache=PlanCache(),
            enforce_memory=False, charge_selection=False,
        )

    sim_engine = replay_engine()
    sim_engine.submit_many(mixed_stream(), interarrival_us=2000.0)
    simulated = sim_engine.run(policy="continuous")

    replay_src = replay_engine()
    requests = replay_src.submit_many(mixed_stream(), interarrival_us=2000.0)
    replayed = replay_trace(replay_src, requests)
    identical = decision_trace(replayed, include_timing=True) == (
        decision_trace(simulated, include_timing=True)
    )
    print(
        f"virtual-time replay vs simulated scheduler: "
        f"{'decision-identical' if identical else 'DIVERGED'} "
        f"({len(replayed.batches)} batches, timings included)"
    )

    # ------------------------------------------------------------------
    # Fault tolerance: deterministic chaos, failover, degraded planning.
    # ------------------------------------------------------------------
    from repro.runtime import FaultSpec, ResilienceConfig

    # Replica 1 dies 3 ms into the trace and never recovers; transient
    # failures and stragglers hit the survivors.  The FaultSpec is seeded,
    # so this exact fault schedule replays bit-identically — and the
    # engine loses nothing: every request reports one terminal outcome,
    # failed attempts retry with backoff onto a *different* healthy
    # replica, and the health timeline below shows the circuit breaker
    # quarantining the dead replica out of placement.
    chaos = ResilienceConfig(
        max_retries=3,
        retry_backoff_us=400.0,
        fault=FaultSpec(
            1234,
            transient_prob=0.15,
            straggler_prob=0.10,
            straggler_factor=1.5,
            outages=((1, 3000.0, 1e9),),
        ),
    )
    chaos_engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, replicas=4,
        batch_window_us=3000.0, plan_cache=PlanCache(),
        enforce_memory=False, charge_selection=False,
        resilience=chaos,
    )
    chaos_engine.submit_many(mixed_stream(), interarrival_us=2000.0)
    chaos_report = chaos_engine.run(policy="continuous")
    print()
    print(chaos_report.describe())
    served = sum(1 for r in chaos_report.requests if r.ok)
    print(
        f"chaos run: {served}/{len(chaos_report.requests)} served with "
        f"replica 1 dead from 3 ms ({chaos_report.retries} retries, "
        f"{chaos_report.failovers} failovers, "
        f"{chaos_report.degraded_plans} degraded plans)"
    )

    # ------------------------------------------------------------------
    # The process pool: each replica is a real OS process.
    # ------------------------------------------------------------------
    from repro.runtime import cluster_replay_trace, serve_cluster

    # Two worker processes, each with its own backend and planner; the
    # scheduling policy stays in this process and only batch execution
    # crosses the RPC channel.  Every plan a worker searches cold comes
    # back in a cache delta and is broadcast to the rest of the fleet, so
    # N processes pay one process's worth of cold searches (see
    # docs/cluster.md).
    pool_engine = ServingEngine(
        V100, max_batch_tokens=8192, max_batch_size=8, replicas=2,
        batch_window_us=3000.0, plan_cache=PlanCache(),
        enforce_memory=False, overlap_selection=False,
        charge_selection=False,
    )
    pool_report = serve_cluster(pool_engine, mixed_stream())
    print()
    print(pool_report.describe())
    print(
        f"process pool: {len(pool_report.batches)} batches across "
        f"{len({b.replica_id for b in pool_report.batches})} worker "
        f"processes, "
        f"{sum(b.cache_misses for b in pool_report.batches)} cold "
        f"searches fleet-wide"
    )

    # And the same equivalence gate holds across the process boundary:
    # virtual-time replay through real worker processes reproduces the
    # simulated scheduler's decisions, timings included.  (The cluster
    # front end requires overlap_selection=False — speculative batch-open
    # searches would run host-side and fork the plan traffic.)
    def cluster_engine():
        return ServingEngine(
            V100, max_batch_tokens=8192, max_batch_size=8, replicas=4,
            batch_window_us=3000.0, plan_cache=PlanCache(),
            enforce_memory=False, overlap_selection=False,
            charge_selection=False,
        )

    csim = cluster_engine()
    csim.submit_many(mixed_stream(), interarrival_us=2000.0)
    csim_report = csim.run(policy="continuous")
    crep = cluster_engine()
    crequests = crep.submit_many(mixed_stream(), interarrival_us=2000.0)
    creplayed = cluster_replay_trace(crep, crequests)
    cidentical = decision_trace(creplayed, include_timing=True) == (
        decision_trace(csim_report, include_timing=True)
    )
    print(
        f"cluster replay vs simulated scheduler: "
        f"{'decision-identical' if cidentical else 'DIVERGED'} "
        f"({len(creplayed.batches)} batches, real worker processes)"
    )


if __name__ == "__main__":
    main()
