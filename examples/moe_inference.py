"""Mixture-of-Experts inference with PIT (the Figure 8 scenario, in small).

A Switch-Transformer-style MoE layer routes each token to one expert; the
resulting per-expert computation is dynamically sparse.  This example:

1. routes a batch of tokens with a skewed router (real routers are uneven),
2. runs the expert FFNs three ways — per-token reference, PIT's grouped
   SRead/SWrite kernel, and checks they agree numerically,
3. compares end-to-end Switch Transformer latency across PyTorch, Tutel,
   DeepSpeed, MegaBlocks and PIT on the simulated A100.

Run:  python examples/moe_inference.py
"""

import numpy as np

from repro.core import GroupedMatmulKernel
from repro.hw import A100, TileConfig
from repro.models import moe_layer_grouped, moe_layer_reference, switch_workload
from repro.runtime import format_table, run_lineup
from repro.sparsity import Router


def expert_layer_demo():
    print("== one MoE layer: grouped PIT kernel vs per-token reference ==")
    rng = np.random.default_rng(0)
    num_tokens, d_model, d_ff, num_experts = 256, 64, 128, 8
    tokens = rng.standard_normal((num_tokens, d_model))
    w1 = rng.standard_normal((num_experts, d_model, d_ff)) * 0.1
    w2 = rng.standard_normal((num_experts, d_ff, d_model)) * 0.1

    router = Router(num_experts, concentration=0.4, seed=3)
    routing = router.route(num_tokens, seed=7)
    print(f"tokens per expert: {routing.counts.tolist()}")
    print(f"load imbalance (max/mean): {routing.imbalance():.1f}x")

    reference = moe_layer_reference(tokens, w1, w2, routing.assignment)
    grouped = moe_layer_grouped(tokens, w1, w2, routing.assignment, seed=11)
    err = np.abs(reference - grouped).max()
    print(f"max |grouped - reference| = {err:.2e}")
    assert err < 1e-8

    # The grouped kernel's cost follows the *total* token count, not the
    # busiest expert — the padding-free property.
    kern = GroupedMatmulKernel(TileConfig(32, 32, 32), A100, "float16")
    result = kern.run(tokens, w1, routing.assignment)
    print(f"grouped kernel simulated latency: "
          f"{result.report.latency_us:.1f} us "
          f"(detector {result.report.convert_us:.1f} us)")


def end_to_end_demo():
    print("\n== Switch Transformer end to end (fp16, batch 32, A100) ==")
    lineup = ("PyTorch", "PyTorch-S", "Tutel", "DeepSpeed", "MegaBlocks", "PIT")
    rows = []
    for experts in (64, 128):
        wl = switch_workload(experts, 32, seed=0)
        reports = run_lineup(wl, lineup, A100, "float16")
        by_name = {r.backend: r for r in reports}
        pit = by_name["PIT"]
        rows.append(
            [f"{experts} experts"]
            + [
                "OOM" if by_name[n].oom else f"{by_name[n].latency_ms:.1f}ms"
                for n in lineup
            ]
            + [f"{by_name['PyTorch'].latency_ms / pit.latency_ms:.1f}x"]
        )
    print(format_table(["config"] + list(lineup) + ["PIT vs PyTorch"], rows))


if __name__ == "__main__":
    expert_layer_demo()
    end_to_end_demo()
