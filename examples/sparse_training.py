"""Iterative-pruning sparse training with PIT (the Figure 15 scenario).

Magnitude pruning regenerates the weight mask every step, so a compiled
per-pattern kernel is stale immediately.  This example streams a pruning
schedule, shows the masks churning, compares the per-step training cost of
PyTorch, PyTorch-S and PIT at the paper's two granularities, and
warm-starts a second "epoch" from a persisted plan cache — zero cold
Algorithm 1 searches after the reload (see docs/training.md).

Run:  python examples/sparse_training.py
"""

import os
import tempfile

import numpy as np

from repro.core import PlanCache, TileDB
from repro.hw import V100
from repro.runtime import format_table, sparse_training_run, sparse_training_step
from repro.sparsity import (
    MagnitudePruner,
    PruningSchedule,
    mask_sparsity,
    pattern_fingerprint,
)


def mask_churn_demo():
    print("== the pruning mask changes every step ==")
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((256, 256))
    pruner = MagnitudePruner((32, 1))
    schedule = PruningSchedule(start_sparsity=0.5, end_sparsity=0.95, num_steps=6)
    fingerprints = set()
    rows = []
    for step, sparsity, mask in pruner.mask_stream(
        weights, schedule, drift=0.05, seed=1
    ):
        fp = pattern_fingerprint(mask)
        rows.append(
            [step, f"{sparsity * 100:.1f}%", f"{mask_sparsity(mask) * 100:.1f}%",
             "repeat!" if fp in fingerprints else "fresh"]
        )
        fingerprints.add(fp)
    print(format_table(["step", "target", "measured", "pattern"], rows))
    print("every step's mask is fresh -> indexes must be built online\n")


def training_cost_demo():
    print("== per-batch training cost (BERT, V100, batch 32x128 tokens) ==")
    for block in ((32, 64), (32, 1)):
        rows = []
        for sparsity in (0.5, 0.9, 0.98):
            row = [f"{sparsity * 100:.0f}%"]
            for backend in ("pytorch", "pytorch-s", "pit"):
                rep = sparse_training_step(
                    backend, V100, block=block, sparsity=sparsity, seed=5
                )
                row.append(
                    f"{rep.latency_ms:.0f}ms (+{rep.convert_ms:.0f}ms conv)"
                )
            rows.append(row)
        print(f"\nblock granularity {block[0]}x{block[1]}:")
        print(format_table(
            ["sparsity", "PyTorch", "PyTorch-S", "PIT"], rows
        ))

    coarse = sparse_training_step("pit", V100, block=(32, 64), sparsity=0.9, seed=5)
    fine = sparse_training_step("pit", V100, block=(32, 1), sparsity=0.9, seed=5)
    print(
        f"\nPIT 32x1 vs 32x64 latency: {fine.latency_ms:.0f}ms vs "
        f"{coarse.latency_ms:.0f}ms — fine granularity is (nearly) free: "
        f"micro-tiles cover the data, the compute tile stays coarse."
    )


def warm_start_demo():
    print("\n== plan-cache warm start across pruning epochs ==")
    sparsities = (0.5, 0.8, 0.9, 0.98)

    def epoch(cache, label):
        reports = sparse_training_run(
            "pit", V100, sparsities=sparsities, block=(32, 1), seed=5,
            plan_cache=cache,
        )
        rows = [
            [f"{r.sparsity * 100:.0f}%", r.plan_misses, r.plan_hits,
             f"{r.search_us / 1e3:.2f}", f"{r.latency_ms:.0f}"]
            for r in reports
        ]
        print(format_table(
            ["sparsity", "cold searches", "plan hits", "selection ms", "step ms"],
            rows, title=label,
        ))
        return reports

    cache = PlanCache()
    epoch(cache, "epoch 1: cold cache, every family pays Algorithm 1")

    # Persist, then revive in a fresh cache — the restarted-trainer case.
    tiledb = TileDB.shared(V100, "float32")
    path = os.path.join(tempfile.mkdtemp(), "training_plans.json")
    cache.save(path, tiledb_key=tiledb.cache_key)
    revived = PlanCache.load(path, expected_tiledb_key=tiledb.cache_key)
    warm = epoch(revived, "epoch 2: reloaded dump, plans replay")
    assert sum(r.plan_misses for r in warm) == 0
    print("second epoch resolved every plan from the dump: zero cold searches")


if __name__ == "__main__":
    mask_churn_demo()
    training_cost_demo()
    warm_start_demo()
