"""Paged attention as a PIT policy (the Section 6 observation, realized).

vLLM's Paged Attention stores each request's KV cache as fixed-size pages
at arbitrary physical addresses.  Pages are exactly micro-tiles; the page
table is the sparse index; gathering a request's K/V is SRead along the
sequence axis — a PIT-axis of BatchMatMul.  This example builds a paged KV
pool, serves requests of different lengths, and verifies attention over
gathered pages equals attention over contiguous KV.

Run:  python examples/paged_attention.py
"""

import numpy as np

from repro.core import PagedAttentionPolicy
from repro.tensor.ops import softmax


def main():
    rng = np.random.default_rng(0)
    page_size, head_dim, num_pages = 16, 32, 64
    policy = PagedAttentionPolicy(page_size=page_size)
    print(f"policy: {policy.decision().label}, PIT-axis "
          f"{policy.decision().pit_axis}, page (micro-tile) size {page_size}")

    # A shared physical KV pool; pages are handed out non-contiguously as
    # requests grow (the dynamic part).
    k_pool = rng.standard_normal((num_pages, page_size, head_dim))
    v_pool = rng.standard_normal((num_pages, page_size, head_dim))

    free_pages = list(rng.permutation(num_pages))
    requests = []
    for seq_pages in (3, 5, 2):
        table = [free_pages.pop() for _ in range(seq_pages)]
        requests.append(table)
    print(f"page tables: {requests}")

    for i, table in enumerate(requests):
        seq = len(table) * page_size
        q = rng.standard_normal((seq, head_dim))

        # SRead at page granularity: gather this request's K and V.
        k = policy.gather_pages(k_pool, table)
        v = policy.gather_pages(v_pool, table)

        # Reference: the same KV copied contiguously.
        k_ref = np.concatenate([k_pool[p] for p in table]).reshape(-1, head_dim)
        v_ref = np.concatenate([v_pool[p] for p in table]).reshape(-1, head_dim)

        out = softmax(q @ k.T / np.sqrt(head_dim)) @ v
        ref = softmax(q @ k_ref.T / np.sqrt(head_dim)) @ v_ref
        err = np.abs(out - ref).max()
        print(f"request {i}: seq={seq:3d}  max |paged - contiguous| = {err:.2e}")
        assert err == 0.0

    print("\npaged attention == PIT's SRead with (page_size, head_dim) "
          "micro-tiles: no contiguity, no copies, identical results")


if __name__ == "__main__":
    main()
