"""Quickstart: compile and run a dynamically sparse matmul with PIT.

Walks the full pipeline on one operator:

1. infer the PIT-axes of the matmul tensor expression (Theorem 1),
2. JIT-compile a sparse kernel with Algorithm 1 (micro-tile + tile search),
3. execute with online sparsity detection, SRead and SWrite,
4. verify the result against the dense reference and compare the simulated
   latency against dense execution and the sparse-library baselines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import CuSparseKernel, TritonBlockSparseKernel
from repro.core import PITCompiler, get_operator_expr, pit_axes
from repro.hw import V100, dense_matmul_time_us
from repro.sparsity import granular_mask


def main():
    # ------------------------------------------------------------------
    # 1. PIT-axis inference: which axes may be permuted?
    # ------------------------------------------------------------------
    expr = get_operator_expr("MatMul")
    print(f"operator:  {expr}")
    print(f"PIT-axes:  {', '.join(pit_axes(expr))}  (Theorem 1)")

    # ------------------------------------------------------------------
    # 2. A dynamically sparse problem: C = A_sparse @ B at 95% sparsity
    #    with a fine 8x1 granularity no block-sparse library tiles well.
    # ------------------------------------------------------------------
    m = k = n = 2048
    rng = np.random.default_rng(0)
    mask = granular_mask((m, k), (8, 1), sparsity=0.95, seed=1)
    a = rng.standard_normal((m, k)) * mask
    b = rng.standard_normal((k, n))

    # ------------------------------------------------------------------
    # 3. Compile: describe the plan as a PlanSpec (shape + quantized
    #    sparsity signature), then Algorithm 1 picks the PIT-axis,
    #    micro-tile and dense tile for it.
    # ------------------------------------------------------------------
    compiler = PITCompiler(V100, "float32")
    spec = compiler.plan_spec([mask], m, k, n)
    compiled = compiler.compile(spec, [mask])
    print(f"\nplan spec: {spec.describe()}")
    print(f"selected:  {compiled.choice.describe()}")
    print(f"covered sparsity after micro-tiling: "
          f"{compiled.choice.covered_sparsity * 100:.2f}%")

    # ------------------------------------------------------------------
    # 4. Execute: online detection + SRead/SWrite + dense-tile compute.
    # ------------------------------------------------------------------
    result = compiled.run(a, b, mask=mask, seed=42)
    reference = a @ b
    max_err = np.abs(result.output - reference).max()
    print(f"\nmax |PIT - dense reference| = {max_err:.2e}")
    assert max_err < 1e-8, "permutation invariance violated!"

    # ------------------------------------------------------------------
    # 5. Compare simulated latency against dense and the libraries.
    # ------------------------------------------------------------------
    dense_us = dense_matmul_time_us(
        m, k, n,
        compiler.tiledb.best_dense_tile(m, k, n).tile,
        "float32", V100,
    )
    pit_us = result.report.latency_us
    triton = TritonBlockSparseKernel(V100).spmm(mask, n)
    cusparse = CuSparseKernel(V100).spmm(mask, n)
    print(f"\nsimulated latency on {V100.name}:")
    print(f"  dense (cuBLAS-style) : {dense_us / 1e3:8.3f} ms")
    print(f"  cuSPARSE             : {cusparse.total_us / 1e3:8.3f} ms "
          f"(incl. {cusparse.convert_us / 1e3:.3f} ms conversion)")
    print(f"  Triton block-sparse  : {triton.total_us / 1e3:8.3f} ms "
          f"(incl. {triton.convert_us / 1e3:.3f} ms layout build)")
    print(f"  PIT                  : {pit_us / 1e3:8.3f} ms "
          f"(incl. {result.report.convert_us / 1e3:.3f} ms online detection)")
    print(f"\nPIT speedup over dense: {dense_us / pit_us:.1f}x")


if __name__ == "__main__":
    main()
