"""GPU device specifications for the analytical hardware model.

The paper evaluates PIT on NVIDIA A100-80GB and V100-32GB GPUs.  This module
captures the first-order architectural parameters those figures depend on:

* number of streaming multiprocessors (SMs) — governs wave quantization,
* peak arithmetic throughput per precision — governs compute-bound tiles,
* DRAM bandwidth — governs memory-bound tiles and format conversions,
* the 32-byte global-memory transaction granularity — governs the minimum
  micro-tile size (PIT, Section 3.1: "the read/write transaction of global
  memory in CUDA GPUs is 32 bytes, the smallest micro-tile size on this type
  of accelerator is 1x8 float32"),
* shared-memory capacity — caps tile working sets,
* device memory capacity — governs the OOM events in Figures 8, 12 and 13.

All latency values produced by the model are in microseconds and all sizes in
bytes unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Bytes per element for the precisions used in the paper's evaluation.
DTYPE_BYTES = {
    "float64": 8,
    "float32": 4,
    "float16": 2,
    "bfloat16": 2,
    "int32": 4,
    "int8": 1,
}


def dtype_bytes(dtype: str) -> int:
    """Return the storage size of one element of ``dtype``.

    Raises ``KeyError`` with a helpful message for unknown dtypes so that a
    typo in a benchmark configuration fails loudly rather than silently
    producing a nonsense cost.
    """
    try:
        return DTYPE_BYTES[dtype]
    except KeyError:
        known = ", ".join(sorted(DTYPE_BYTES))
        raise KeyError(f"unknown dtype {dtype!r}; known dtypes: {known}") from None


@dataclass(frozen=True)
class GPUSpec:
    """An analytical model of a CUDA GPU.

    The model is intentionally simple — it captures exactly the effects the
    paper's evaluation reasons about (tile efficiency, wave quantization,
    bandwidth-bound conversions, memory capacity) and nothing more.
    """

    name: str
    #: Number of streaming multiprocessors.
    num_sms: int
    #: Peak fp32 throughput in TFLOP/s (CUDA cores).
    fp32_tflops: float
    #: Peak fp16 throughput in TFLOP/s (Tensor Cores where available).
    fp16_tflops: float
    #: DRAM bandwidth in GB/s.
    mem_bandwidth_gbs: float
    #: Device memory capacity in GiB.
    mem_capacity_gib: float
    #: Shared memory per SM in KiB.
    shared_mem_per_sm_kib: int
    #: Global-memory read/write transaction granularity in bytes.
    transaction_bytes: int = 32
    #: Fixed cost of launching one kernel, in microseconds.
    kernel_launch_us: float = 5.0
    #: Per-thread-block scheduling overhead, in microseconds.  Small tiles pay
    #: this relatively more, which is the root of the tile-shape dilemma in
    #: Figure 3a.
    tile_overhead_us: float = 0.25
    #: Maximum resident thread blocks per SM (occupancy ceiling).
    max_blocks_per_sm: int = 4
    #: Whether the device has Tensor Cores usable through wmma.
    has_tensor_cores: bool = True
    #: Relative efficiency of scattered (transaction-granular) global memory
    #: access vs. fully coalesced streaming access.  SRead/SWrite at
    #: micro-tile granularity run at this fraction of peak bandwidth — near
    #: unity once each micro-tile fills a whole transaction (the paper's
    #: "negligible overhead" claim for SRead/SWrite, Section 5.3).
    gather_efficiency: float = 0.95

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def peak_flops(self, dtype: str) -> float:
        """Peak throughput in FLOP/s for ``dtype``."""
        if dtype in ("float16", "bfloat16") and self.has_tensor_cores:
            return self.fp16_tflops * 1e12
        if dtype == "float64":
            return self.fp32_tflops * 1e12 / 2.0
        return self.fp32_tflops * 1e12

    def flops_per_sm_us(self, dtype: str) -> float:
        """Peak FLOPs one SM can retire in one microsecond."""
        return self.peak_flops(dtype) / self.num_sms / 1e6

    def bandwidth_bytes_us(self) -> float:
        """DRAM bandwidth in bytes per microsecond (whole device)."""
        return self.mem_bandwidth_gbs * 1e9 / 1e6

    def bandwidth_per_sm_us(self) -> float:
        """Fair-share DRAM bandwidth of one SM, bytes per microsecond."""
        return self.bandwidth_bytes_us() / self.num_sms

    def mem_capacity_bytes(self) -> int:
        """Device memory capacity in bytes."""
        return int(self.mem_capacity_gib * (1 << 30))

    def min_microtile_elems(self, dtype: str) -> int:
        """Smallest useful micro-tile extent (elements) on the contiguous axis.

        Per Section 3.1, a micro-tile should saturate one memory transaction:
        32 bytes -> 8 float32 or 4 float64 elements.
        """
        return max(1, self.transaction_bytes // dtype_bytes(dtype))


#: NVIDIA A100-80GB (SXM).  108 SMs, 19.5 fp32 TFLOP/s, 312 fp16 TFLOP/s
#: (Tensor Core), 2039 GB/s HBM2e.
A100 = GPUSpec(
    name="A100-80GB",
    num_sms=108,
    fp32_tflops=19.5,
    fp16_tflops=312.0,
    mem_bandwidth_gbs=2039.0,
    mem_capacity_gib=80.0,
    shared_mem_per_sm_kib=164,
)

#: NVIDIA V100-32GB (SXM2).  80 SMs, 15.7 fp32 TFLOP/s, 125 fp16 TFLOP/s,
#: 900 GB/s HBM2.
V100 = GPUSpec(
    name="V100-32GB",
    num_sms=80,
    fp32_tflops=15.7,
    fp16_tflops=125.0,
    mem_bandwidth_gbs=900.0,
    mem_capacity_gib=32.0,
    shared_mem_per_sm_kib=96,
)

#: V100 with 16GB of memory — footnote 2 of the paper notes index-construction
#: behaviour differs slightly on the 16GB part; we expose it so that the
#: footnote can be explored.
V100_16GB = GPUSpec(
    name="V100-16GB",
    num_sms=80,
    fp32_tflops=15.7,
    fp16_tflops=125.0,
    mem_bandwidth_gbs=900.0,
    mem_capacity_gib=16.0,
    shared_mem_per_sm_kib=96,
)


_REGISTRY = {
    "a100": A100,
    "a100-80gb": A100,
    "v100": V100,
    "v100-32gb": V100,
    "v100-16gb": V100_16GB,
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a device spec by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known GPUs: {known}") from None


def parse_lineup(text: str) -> list:
    """Parse a heterogeneous replica lineup like ``"2xa100+v100"``.

    The grammar is ``count x name`` terms joined by ``+`` (or ``,``), with
    the count optional: ``"a100+v100"`` is one of each,
    ``"2xa100+2xv100"`` a four-replica mixed fleet.  Order is preserved —
    replica ids follow lineup order — and every name resolves through
    :func:`get_gpu`, so a typo fails loudly with the known-device list.
    """
    specs = []
    for term in text.replace(",", "+").split("+"):
        term = term.strip().lower()  # names resolve case-insensitively
        if not term:
            raise ValueError(f"empty term in lineup {text!r}")
        count, name = 1, term
        head, sep, tail = term.partition("x")
        if sep and head.strip().isdigit():
            count, name = int(head), tail
        if count < 1:
            raise ValueError(f"replica count must be >= 1 in {term!r}")
        specs.extend([get_gpu(name)] * count)
    return specs
