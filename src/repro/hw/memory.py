"""Global-memory access model: transactions, streaming, gather/scatter.

PIT's central performance argument for SRead/SWrite is that rearranging data
*at micro-tile granularity* is free as long as each micro-tile saturates one
global-memory transaction (32 bytes).  This module provides the byte/latency
accounting behind that argument:

* :func:`transactions_for` — number of 32B transactions to move a region,
* :func:`stream_time_us` — time for a fully coalesced streaming access,
* :func:`gather_time_us` — time for a transaction-granular scattered access
  (SRead/SWrite), which degrades only when micro-tiles are narrower than one
  transaction.
"""

from __future__ import annotations

import math

from .spec import GPUSpec, dtype_bytes


def transactions_for(num_bytes: int, spec: GPUSpec) -> int:
    """Number of global-memory transactions needed to move ``num_bytes``."""
    if num_bytes <= 0:
        return 0
    return math.ceil(num_bytes / spec.transaction_bytes)


def stream_time_us(num_bytes: int, spec: GPUSpec) -> float:
    """Time to stream ``num_bytes`` through DRAM at full coalesced bandwidth."""
    if num_bytes <= 0:
        return 0.0
    return num_bytes / spec.bandwidth_bytes_us()


def gather_efficiency(contig_bytes: int, spec: GPUSpec) -> float:
    """Effective bandwidth fraction for a gather with ``contig_bytes``-wide runs.

    A gather whose contiguous runs cover at least one full transaction runs at
    ``spec.gather_efficiency`` of peak (the residual loss models address
    generation and the unordered index).  Narrower runs waste the remainder of
    each transaction: a 4-byte element fetched through a 32-byte transaction
    achieves at most 1/8 of peak.  This is exactly why PIT sizes micro-tiles
    to the transaction granularity (Section 3.1).
    """
    if contig_bytes <= 0:
        raise ValueError("contig_bytes must be positive")
    useful_fraction = min(1.0, contig_bytes / spec.transaction_bytes)
    return spec.gather_efficiency * useful_fraction


def gather_time_us(
    num_bytes: int,
    contig_bytes: int,
    spec: GPUSpec,
) -> float:
    """Time to gather/scatter ``num_bytes`` in runs of ``contig_bytes``.

    ``num_bytes`` counts *useful* bytes; the transaction waste of narrow runs
    is folded into the efficiency factor.
    """
    if num_bytes <= 0:
        return 0.0
    eff = gather_efficiency(contig_bytes, spec)
    return num_bytes / (spec.bandwidth_bytes_us() * eff)


def microtile_contig_bytes(microtile_shape: tuple, dtype: str) -> int:
    """Contiguous bytes of one micro-tile, assuming the last axis is innermost.

    For a row-major tensor a ``(1, 32)`` micro-tile is one 128-byte run; a
    ``(32, 1)`` micro-tile is 32 separate 4-byte runs (for float32), which is
    why PIT requires the sparse tensor to be non-contiguous on the PIT-axis —
    i.e. stored so that the *other* axes are innermost (Section 3.2).
    """
    return microtile_shape[-1] * dtype_bytes(dtype)


def tensor_bytes(shape: tuple, dtype: str) -> int:
    """Total bytes of a dense tensor of ``shape`` and ``dtype``."""
    n = 1
    for s in shape:
        n *= int(s)
    return n * dtype_bytes(dtype)
