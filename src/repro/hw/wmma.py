"""Tensor Core (wmma) instruction model.

Figure 17 and the hardware discussion in Section 5.3 rely on two facts about
NVIDIA's wmma interface that this module encodes:

* wmma only supports three fragment shapes in half precision —
  ``16x16x16``, ``32x8x16`` and ``8x32x16`` (m x n x k) — so a sparse kernel
  must build *dense* fragments of one of those shapes; it cannot consume a
  32x1 sparsity granularity directly.  PIT's transformation constructs dense
  fragments from sparsely located micro-tiles, which is how it "loosens the
  constraints on hardware instructions".
* the A100's *Sparse Tensor Core* (``mma.sp``) consumes a strict 2:4 pattern
  (every 1x4 run has exactly two zeros); PIT can feed it only the eligible
  micro-tiles (Section 6, future work) — :class:`SparseTensorCore` models the
  2x throughput on eligible fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import TileConfig
from .spec import GPUSpec

#: The three fp16 fragment shapes wmma supports, as (m, n, k).
WMMA_FP16_SHAPES: tuple[tuple[int, int, int], ...] = (
    (16, 16, 16),
    (32, 8, 16),
    (8, 32, 16),
)


def wmma_supports(tm: int, tn: int, tk: int) -> bool:
    """Whether a (tm, tn, tk) fragment is directly expressible with wmma.

    A computation tile is wmma-compatible when each extent is a multiple of
    some supported fragment shape.
    """
    return any(
        tm % fm == 0 and tn % fn == 0 and tk % fk == 0
        for fm, fn, fk in WMMA_FP16_SHAPES
    )


def validate_wmma_tile(tile: TileConfig) -> None:
    """Raise ``ValueError`` if ``tile`` cannot be built from wmma fragments."""
    if not wmma_supports(tile.tm, tile.tn, tile.tk):
        raise ValueError(
            f"tile {tile.describe()} is not decomposable into wmma fragments "
            f"{WMMA_FP16_SHAPES}; PIT must transform micro-tiles into one of "
            f"these dense shapes first"
        )


@dataclass(frozen=True)
class SparseTensorCore:
    """Model of the A100 ``mma.sp`` 2:4 structured-sparsity path.

    Eligible fragments (every 1x4 run containing exactly two zeros) execute at
    ``speedup`` times the dense Tensor Core rate; ineligible fragments must
    take the dense path.  PIT's augmentation (Section 6) routes all-zero
    micro-tiles away entirely and feeds only the 2:4-eligible ones here.
    """

    spec: GPUSpec
    speedup: float = 2.0

    def fragment_time_ratio(self, eligible: bool) -> float:
        """Relative per-fragment time vs. the dense Tensor Core path."""
        return 1.0 / self.speedup if eligible else 1.0


def is_two_four_eligible(block) -> bool:
    """Check the strict 2:4 pattern on a numpy block's innermost axis.

    Every aligned run of 4 elements along the last axis must contain at most
    two non-zeros.  (All-zero runs are trivially eligible but wasteful — PIT
    skips them before they reach the instruction.)
    """
    import numpy as np

    arr = np.asarray(block)
    if arr.shape[-1] % 4 != 0:
        return False
    runs = arr.reshape(*arr.shape[:-1], -1, 4)
    nnz_per_run = (runs != 0).sum(axis=-1)
    return bool((nnz_per_run <= 2).all())
