"""Analytical GPU hardware model: the performance substrate.

Public surface:

* :mod:`repro.hw.spec` — device specifications (:data:`A100`, :data:`V100`).
* :mod:`repro.hw.costmodel` — tile/kernel latency model.
* :mod:`repro.hw.memory` — transaction-granular memory access costs.
* :mod:`repro.hw.memtracker` — footprint accounting and simulated OOM.
* :mod:`repro.hw.profiler` — offline tile profiling feeding the TileDB.
* :mod:`repro.hw.wmma` — Tensor Core instruction constraints.
* :mod:`repro.hw.timeline` — per-op execution reports.
"""

from .costmodel import (
    TileConfig,
    compute_efficiency,
    dense_matmul_time_us,
    elementwise_time_us,
    kernel_time_us,
    layernorm_time_us,
    matmul_step_time_us,
    matmul_tile_fixed_time_us,
    matmul_tile_time_us,
    predicted_finish_us,
    reduction_time_us,
    softmax_time_us,
    sparse_matmul_time_us,
)
from .memory import (
    gather_efficiency,
    gather_time_us,
    microtile_contig_bytes,
    stream_time_us,
    tensor_bytes,
    transactions_for,
)
from .memtracker import MemoryTracker, OutOfMemoryError
from .profiler import TileProfile, clear_profile_cache, profile_matmul_tiles
from .spec import A100, V100, V100_16GB, GPUSpec, dtype_bytes, get_gpu, parse_lineup
from .timeline import ExecReport, Timeline
from .wmma import (
    WMMA_FP16_SHAPES,
    SparseTensorCore,
    is_two_four_eligible,
    validate_wmma_tile,
    wmma_supports,
)

__all__ = [
    "A100",
    "V100",
    "V100_16GB",
    "ExecReport",
    "GPUSpec",
    "MemoryTracker",
    "OutOfMemoryError",
    "SparseTensorCore",
    "TileConfig",
    "TileProfile",
    "Timeline",
    "WMMA_FP16_SHAPES",
    "clear_profile_cache",
    "compute_efficiency",
    "dense_matmul_time_us",
    "dtype_bytes",
    "elementwise_time_us",
    "gather_efficiency",
    "gather_time_us",
    "get_gpu",
    "is_two_four_eligible",
    "kernel_time_us",
    "layernorm_time_us",
    "matmul_step_time_us",
    "matmul_tile_fixed_time_us",
    "matmul_tile_time_us",
    "microtile_contig_bytes",
    "parse_lineup",
    "predicted_finish_us",
    "profile_matmul_tiles",
    "reduction_time_us",
    "softmax_time_us",
    "sparse_matmul_time_us",
    "stream_time_us",
    "tensor_bytes",
    "transactions_for",
    "validate_wmma_tile",
    "wmma_supports",
]
