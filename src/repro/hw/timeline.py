"""Execution reports: per-op latency breakdowns and aggregation.

Every simulated kernel execution produces an :class:`ExecReport`; a model
forward pass produces a :class:`Timeline` of them.  The benchmark harness
aggregates timelines into the latency/memory rows the paper's figures plot,
including the "PyTorch-S Convert" / "PIT Convert" breakdown bars (the stacked
conversion-overhead components of Figures 8-15 and 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecReport:
    """Result of one simulated kernel (or fused op) execution."""

    op: str
    latency_us: float
    #: Portion of ``latency_us`` spent on sparse-index construction / format
    #: conversion (the paper's "Convert" bars).  Always <= latency_us.
    convert_us: float = 0.0
    #: Fraction of computed output elements that were zero padding/waste.
    wasted_fraction: float = 0.0
    #: Free-form breakdown for debugging and ablations.
    detail: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")
        if self.convert_us < 0 or self.convert_us > self.latency_us + 1e-9:
            raise ValueError(
                f"convert_us ({self.convert_us}) must be within "
                f"[0, latency_us={self.latency_us}]"
            )


@dataclass
class Timeline:
    """An ordered sequence of :class:`ExecReport` for one run."""

    reports: list = field(default_factory=list)

    def add(self, report: ExecReport) -> ExecReport:
        self.reports.append(report)
        return report

    def record(self, op: str, latency_us: float, **kwargs) -> ExecReport:
        """Convenience: build and append a report."""
        return self.add(ExecReport(op=op, latency_us=latency_us, **kwargs))

    @property
    def total_us(self) -> float:
        return sum(r.latency_us for r in self.reports)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1e3

    @property
    def convert_us(self) -> float:
        return sum(r.convert_us for r in self.reports)

    @property
    def convert_ms(self) -> float:
        return self.convert_us / 1e3

    def by_op(self) -> dict[str, float]:
        """Total latency per op name (microseconds)."""
        out: dict[str, float] = {}
        for r in self.reports:
            out[r.op] = out.get(r.op, 0.0) + r.latency_us
        return out

    def extend(self, other: "Timeline") -> None:
        self.reports.extend(other.reports)

    def scaled(self, factor: float) -> "Timeline":
        """A copy with every latency multiplied by ``factor``.

        Used to model backward passes as a multiple of forward compute when
        the exact backward op stream is not materialized.
        """
        out = Timeline()
        for r in self.reports:
            out.add(
                ExecReport(
                    op=r.op,
                    latency_us=r.latency_us * factor,
                    convert_us=r.convert_us * factor,
                    wasted_fraction=r.wasted_fraction,
                    detail=dict(r.detail),
                )
            )
        return out
