"""Analytical kernel cost model: tiles, waves, and kernel latency.

This is the performance substrate every benchmark rests on.  It models GPU
kernels the way the paper reasons about them (Sections 2.2 and 3.2):

* a kernel is a grid of *tiles* (thread blocks), each producing one output
  tile while streaming its operand slices through shared memory;
* one tile's latency is the max of its compute time and its memory time,
  plus a fixed per-tile scheduling overhead — small tiles therefore have a
  worse latency per useful FLOP, which is the GPU-efficiency side of the
  tile-shape dilemma in Figure 3a;
* kernel latency is wave-quantized: ``ceil(num_tiles / num_sms)`` rounds of
  the per-tile latency, plus one kernel-launch overhead;
* Algorithm 1 estimates a sparse kernel's cost as
  ``num_covered_tiles * tile_cost`` — :func:`sparse_kernel_time_us` implements
  exactly that, with the detector and SRead/SWrite surcharges added on top.

All times are microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .memory import gather_efficiency, stream_time_us
from .spec import GPUSpec, dtype_bytes

#: Number of output elements per thread block that saturates one SM's
#: arithmetic pipelines.  A 32x32 tile (1024 outputs) reaches full efficiency;
#: an 8x8 tile (64 outputs) reaches 1/16 of it.  This single constant
#: reproduces the "GPU-efficient tiles vs. sparsity-aligned tiles" tension.
FULL_EFFICIENCY_OUTPUTS = 1024

#: Efficiency floor: even tiny blocks retire some work per cycle.
MIN_COMPUTE_EFFICIENCY = 1.0 / 64.0


@dataclass(frozen=True)
class TileConfig:
    """A dense matmul computation tile ``[tm, tk] x [tk, tn] -> [tm, tn]``.

    ``tm``/``tn`` are the output tile extents; ``tk`` is the shared-memory
    K-step.  The paper's tile database stores such shapes together with their
    profiled per-tile cost (Section 3.2, "offline profiling").
    """

    tm: int
    tk: int
    tn: int

    def __post_init__(self) -> None:
        if self.tm < 1 or self.tk < 1 or self.tn < 1:
            raise ValueError(f"tile extents must be >= 1, got {self}")

    @property
    def output_elems(self) -> int:
        return self.tm * self.tn

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``[32, 64] x [64, 32]``."""
        return f"[{self.tm}, {self.tk}] x [{self.tk}, {self.tn}]"


def compute_efficiency(tile: TileConfig) -> float:
    """Fraction of one SM's peak FLOPs a tile of this shape can use.

    Efficiency grows with the number of output elements per block (more
    threads, more ILP, better latency hiding) and saturates at 1.0.  Very
    skewed tiles (tm or tn of 1-2) lose a little extra to poor register
    blocking.
    """
    parallelism = min(1.0, tile.output_elems / FULL_EFFICIENCY_OUTPUTS)
    skew = min(tile.tm, tile.tn) / max(tile.tm, tile.tn)
    skew_factor = 0.5 + 0.5 * min(1.0, skew * 8.0)
    return max(MIN_COMPUTE_EFFICIENCY, parallelism * skew_factor)


def matmul_step_time_us(
    tile: TileConfig,
    dtype: str,
    spec: GPUSpec,
    *,
    tensor_core: bool = False,
    load_efficiency: float = 1.0,
) -> float:
    """Latency of one K-step of a matmul tile.

    A K-step loads ``tm*tk + tk*tn`` elements into shared memory and performs
    ``2*tm*tk*tn`` FLOPs; its time is ``max(compute, memory)`` because the
    two pipelines overlap.  ``load_efficiency`` scales the effective load
    bandwidth (SRead uses it to model transaction-granular gathers).
    """
    if not 0.0 < load_efficiency <= 1.0:
        raise ValueError("load_efficiency must be in (0, 1]")
    dsize = dtype_bytes(dtype)
    eff = compute_efficiency(tile)
    flops_per_step = 2.0 * tile.tm * tile.tk * tile.tn
    dtype_for_peak = dtype if not tensor_core else "float16"
    compute_us = flops_per_step / (spec.flops_per_sm_us(dtype_for_peak) * eff)
    bytes_per_step = (tile.tm * tile.tk + tile.tk * tile.tn) * dsize
    mem_us = bytes_per_step / (spec.bandwidth_per_sm_us() * load_efficiency)
    return max(compute_us, mem_us)


def matmul_tile_fixed_time_us(tile: TileConfig, dtype: str, spec: GPUSpec) -> float:
    """Per-tile cost independent of K: output write plus block scheduling."""
    dsize = dtype_bytes(dtype)
    out_us = (tile.output_elems * dsize) / spec.bandwidth_per_sm_us()
    return out_us + spec.tile_overhead_us


def matmul_tile_time_us(
    tile: TileConfig,
    k_extent: int,
    dtype: str,
    spec: GPUSpec,
    *,
    tensor_core: bool = False,
    load_efficiency: float = 1.0,
) -> float:
    """Latency of one output tile accumulating over ``k_extent``.

    ``ceil(k_extent / tk)`` K-steps at :func:`matmul_step_time_us` each, plus
    the per-tile fixed cost (:func:`matmul_tile_fixed_time_us`).
    """
    if k_extent < 1:
        raise ValueError("k_extent must be >= 1")
    steps = math.ceil(k_extent / tile.tk)
    step = matmul_step_time_us(
        tile, dtype, spec, tensor_core=tensor_core, load_efficiency=load_efficiency
    )
    return steps * step + matmul_tile_fixed_time_us(tile, dtype, spec)


def kernel_time_us(num_tiles: int, tile_time_us: float, spec: GPUSpec) -> float:
    """Wave-quantized kernel latency for ``num_tiles`` blocks.

    Blocks are scheduled in waves of ``num_sms`` (one resident block per SM is
    enough for this model because per-tile times already include latency
    hiding via the max(compute, memory) overlap).
    """
    if num_tiles < 0:
        raise ValueError("num_tiles must be >= 0")
    if num_tiles == 0:
        return spec.kernel_launch_us
    waves = math.ceil(num_tiles / spec.num_sms)
    return waves * tile_time_us + spec.kernel_launch_us


def dense_matmul_time_us(
    m: int,
    k: int,
    n: int,
    tile: TileConfig,
    dtype: str,
    spec: GPUSpec,
    *,
    tensor_core: bool = False,
    batch: int = 1,
) -> float:
    """Latency of a dense (possibly batched) matmul with the given tile."""
    tiles_m = math.ceil(m / tile.tm)
    tiles_n = math.ceil(n / tile.tn)
    num_tiles = tiles_m * tiles_n * batch
    t_tile = matmul_tile_time_us(tile, k, dtype, spec, tensor_core=tensor_core)
    return kernel_time_us(num_tiles, t_tile, spec)


def sparse_matmul_time_us(
    total_k_steps: int,
    num_output_tiles: int,
    tile: TileConfig,
    dtype: str,
    spec: GPUSpec,
    *,
    tensor_core: bool = False,
    sread_contig_bytes: int | None = None,
    detector_us: float = 0.0,
) -> float:
    """Latency of a PIT-style sparse matmul kernel (Algorithm 1's cost).

    ``total_k_steps`` is the total number of K-steps across all dense
    computation tiles after micro-tile merging (CoverAlgo's output), and
    ``num_output_tiles`` the number of distinct output tiles (each pays the
    fixed write/scheduling cost once).  ``sread_contig_bytes`` is the
    contiguous run length of one micro-tile; when provided, operand loads run
    at gather efficiency instead of streaming efficiency — the SRead
    surcharge, near zero once micro-tiles saturate a 32B transaction.
    """
    if total_k_steps < 0 or num_output_tiles < 0:
        raise ValueError("workload counts must be non-negative")
    load_eff = 1.0
    if sread_contig_bytes is not None:
        load_eff = gather_efficiency(sread_contig_bytes, spec)
    step = matmul_step_time_us(
        tile, dtype, spec, tensor_core=tensor_core, load_efficiency=load_eff
    )
    fixed = matmul_tile_fixed_time_us(tile, dtype, spec)
    step_waves = math.ceil(total_k_steps / spec.num_sms)
    tile_waves = math.ceil(num_output_tiles / spec.num_sms)
    return step_waves * step + tile_waves * fixed + spec.kernel_launch_us + detector_us


def predicted_finish_us(
    close_us: float, free_at_us: float, est_exec_us: float
) -> float:
    """Predicted completion time of a batch placed on one replica.

    The cost-aware placement objective: a batch closed at ``close_us`` can
    start no earlier than the replica frees up, then runs for the device
    model's estimated execution time.  ``inf`` estimates (a batch the device
    cannot serve, e.g. predicted OOM) propagate, pushing placement toward
    replicas that can finish at all.
    """
    if est_exec_us < 0:
        raise ValueError("est_exec_us must be >= 0")
    return max(close_us, free_at_us) + est_exec_us


def health_adjusted_finish_us(
    close_us: float,
    free_at_us: float,
    est_exec_us: float,
    health_penalty_us: float = 0.0,
) -> float:
    """:func:`predicted_finish_us` plus a replica-health placement penalty.

    The resilience layer's placement objective: a suspect replica's finite
    penalty makes healthy peers win ties without excluding it, while a
    quarantined or dead replica's ``inf`` penalty excludes it whenever any
    alternative exists.  A zero penalty reduces exactly to
    :func:`predicted_finish_us`, so health-aware and legacy placement agree
    bit-for-bit on an all-healthy fleet.
    """
    if health_penalty_us < 0:
        raise ValueError("health_penalty_us must be >= 0")
    return predicted_finish_us(close_us, free_at_us, est_exec_us) + health_penalty_us


def transport_adjusted_finish_us(
    close_us: float,
    free_at_us: float,
    est_exec_us: float,
    transport_overhead_us: float = 0.0,
) -> float:
    """:func:`predicted_finish_us` plus a per-dispatch transport overhead.

    The cluster frontend's reservation objective: dispatching a batch to a
    worker *process* costs one serialize/send/receive round trip that a
    same-process thread does not pay, so the replica's ``free_at`` horizon
    advances by the configured overhead on top of the execution estimate.
    A zero overhead reduces exactly to :func:`predicted_finish_us`, so
    process-pool and threaded reservations agree bit-for-bit by default —
    which is what keeps the cluster replay decision-identical to the
    simulated scheduler.
    """
    if transport_overhead_us < 0:
        raise ValueError("transport_overhead_us must be >= 0")
    return (
        predicted_finish_us(close_us, free_at_us, est_exec_us)
        + transport_overhead_us
    )


def elementwise_time_us(
    num_elems: int,
    dtype: str,
    spec: GPUSpec,
    *,
    num_inputs: int = 1,
    num_outputs: int = 1,
) -> float:
    """Latency of a bandwidth-bound elementwise kernel (ReLU, add, mask...)."""
    total_bytes = num_elems * dtype_bytes(dtype) * (num_inputs + num_outputs)
    return stream_time_us(total_bytes, spec) + spec.kernel_launch_us


def reduction_time_us(
    num_input_elems: int,
    dtype: str,
    spec: GPUSpec,
    *,
    passes: int = 1,
) -> float:
    """Latency of a bandwidth-bound reduction (softmax row-max/sum, layernorm).

    ``passes`` counts how many times the input is streamed; a numerically
    stable softmax streams three times (max, exp-sum, normalize), layernorm
    twice.
    """
    bytes_per_pass = num_input_elems * dtype_bytes(dtype)
    return passes * stream_time_us(bytes_per_pass, spec) + spec.kernel_launch_us


def softmax_time_us(rows: int, cols: int, dtype: str, spec: GPUSpec) -> float:
    """Latency of a row-wise numerically stable softmax."""
    return reduction_time_us(rows * cols, dtype, spec, passes=3)


def layernorm_time_us(rows: int, cols: int, dtype: str, spec: GPUSpec) -> float:
    """Latency of a row-wise layer normalization."""
    return reduction_time_us(rows * cols, dtype, spec, passes=2)
