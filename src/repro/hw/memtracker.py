"""GPU memory footprint accounting with device-capacity OOM.

The paper's end-to-end figures report memory next to latency, and several
baselines *crash with out-of-memory* at the large configurations (Tutel and
DeepSpeed on Switch Transformer with many experts, PyTorch-S and DeepSpeed on
Longformer-4k and Museformer long sequences).  Reproducing those OOM events
requires explicit accounting: every backend allocates weights, activations,
padding buffers and format-conversion workspaces through a
:class:`MemoryTracker` bound to a device spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import GPUSpec


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the device memory capacity."""

    def __init__(self, requested: int, in_use: int, capacity: int, label: str):
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        self.label = label
        super().__init__(
            f"CUDA out of memory (simulated): tried to allocate "
            f"{requested / (1 << 30):.2f} GiB for {label!r} with "
            f"{in_use / (1 << 30):.2f} GiB already in use of "
            f"{capacity / (1 << 30):.2f} GiB capacity"
        )


@dataclass
class Allocation:
    """One live allocation."""

    label: str
    num_bytes: int
    category: str


class MemoryTracker:
    """Tracks live allocations and the peak footprint against a device.

    Categories let reports split the footprint the way the paper discusses it
    (weights vs. activations vs. padding waste vs. conversion workspace).
    """

    def __init__(self, spec: GPUSpec, *, enforce_capacity: bool = True):
        self.spec = spec
        self.enforce_capacity = enforce_capacity
        self._live: dict[int, Allocation] = {}
        self._next_handle = 0
        self.current_bytes = 0
        self.peak_bytes = 0

    def alloc(self, num_bytes: int, label: str = "", category: str = "other") -> int:
        """Allocate ``num_bytes``; returns a handle for :meth:`free`.

        Raises :class:`OutOfMemoryError` if the device capacity would be
        exceeded and enforcement is on.
        """
        num_bytes = int(num_bytes)
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        capacity = self.spec.mem_capacity_bytes()
        if self.enforce_capacity and self.current_bytes + num_bytes > capacity:
            raise OutOfMemoryError(num_bytes, self.current_bytes, capacity, label)
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = Allocation(label, num_bytes, category)
        self.current_bytes += num_bytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation."""
        alloc = self._live.pop(handle, None)
        if alloc is None:
            raise KeyError(f"unknown or already-freed allocation handle {handle}")
        self.current_bytes -= alloc.num_bytes

    def free_category(self, category: str) -> int:
        """Release every live allocation in ``category``; returns bytes freed."""
        handles = [h for h, a in self._live.items() if a.category == category]
        freed = 0
        for handle in handles:
            freed += self._live[handle].num_bytes
            self.free(handle)
        return freed

    def by_category(self) -> dict[str, int]:
        """Live bytes per category."""
        out: dict[str, int] = {}
        for alloc in self._live.values():
            out[alloc.category] = out.get(alloc.category, 0) + alloc.num_bytes
        return out

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / (1 << 30)

    @property
    def current_gib(self) -> float:
        return self.current_bytes / (1 << 30)

    def reset_peak(self) -> None:
        """Reset the peak statistic to the current footprint."""
        self.peak_bytes = self.current_bytes
