"""Offline tile profiling (Section 3.2 / Section 4).

The paper: "PIT just records the execution time of different tile shapes
(e.g., 32x32 and 64x64) for dense computation. Therefore, the offline
profiling is conducted once per operator and per GPU type."

:func:`profile_matmul_tiles` enumerates a realistic set of dense matmul tile
shapes and records each one's per-tile latency on the analytical device model.
The result feeds the TileDB (``repro.core.tiledb``) exactly like the authors'
performance look-up table feeds their micro-tile selector.  Profiles are
cached per (device, dtype) so repeated benchmark runs do not re-enumerate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .costmodel import TileConfig, matmul_tile_time_us
from .spec import GPUSpec
from .wmma import wmma_supports

#: Candidate extents for the output-tile dimensions.
DEFAULT_TM = (8, 16, 32, 64, 128)
DEFAULT_TN = (8, 16, 32, 64, 128)
#: Candidate K-step extents.
DEFAULT_TK = (8, 16, 32, 64)

#: Reference K extent used to express profiled costs per-tile.  The tile cost
#: stored in the DB is normalized to "per K element" so selection can rescale
#: it to any problem's K extent.
_PROFILE_K = 4096


@dataclass(frozen=True)
class TileProfile:
    """One profiled dense computation tile."""

    tile: TileConfig
    #: Per-tile latency for a K-extent of 1 element (microseconds); multiply
    #: by the problem's K extent (plus the fixed overhead) to estimate cost.
    time_per_k_us: float
    #: Fixed per-tile cost independent of K (output write + scheduling).
    fixed_us: float
    #: Whether the tile is expressible with wmma fragments in fp16.
    tensor_core_ok: bool

    def tile_time_us(self, k_extent: int) -> float:
        """Estimated latency of one tile accumulating over ``k_extent``."""
        return self.time_per_k_us * max(1, k_extent) + self.fixed_us


_CACHE: dict = {}


def profile_matmul_tiles(
    spec: GPUSpec,
    dtype: str,
    *,
    tm_candidates=DEFAULT_TM,
    tn_candidates=DEFAULT_TN,
    tk_candidates=DEFAULT_TK,
    tensor_core: bool = False,
) -> list:
    """Profile every candidate matmul tile shape on the device model.

    Returns a list of :class:`TileProfile`, sorted by per-FLOP efficiency
    (best first).  Shapes whose shared-memory working set exceeds the device's
    per-SM shared memory are skipped, mirroring real occupancy limits.
    """
    # The full frozen GPUSpec keys the cache: two same-named specs with
    # different parameters must not share profiles.
    key = (spec, dtype, tm_candidates, tn_candidates, tk_candidates, tensor_core)
    if key in _CACHE:
        return _CACHE[key]

    from .spec import dtype_bytes

    dsize = dtype_bytes(dtype)
    shared_budget = spec.shared_mem_per_sm_kib * 1024

    profiles = []
    for tm, tk, tn in itertools.product(tm_candidates, tk_candidates, tn_candidates):
        tile = TileConfig(tm=tm, tk=tk, tn=tn)
        working_set = (tm * tk + tk * tn + tm * tn) * dsize
        if working_set > shared_budget:
            continue
        if tensor_core and not wmma_supports(tm, tn, tk):
            continue
        total = matmul_tile_time_us(
            tile, _PROFILE_K, dtype, spec, tensor_core=tensor_core
        )
        fixed = matmul_tile_time_us(tile, 1, dtype, spec, tensor_core=tensor_core)
        # Solve total = per_k * K + fixed' using two K points; the model is
        # affine in ceil(K / tk) so this recovers it exactly for K >> tk.
        per_k = (total - fixed) / (_PROFILE_K - 1)
        profiles.append(
            TileProfile(
                tile=tile,
                time_per_k_us=per_k,
                fixed_us=fixed - per_k,
                tensor_core_ok=wmma_supports(tm, tn, tk),
            )
        )

    flops_per_k = lambda p: 2.0 * p.tile.tm * p.tile.tn  # noqa: E731
    profiles.sort(key=lambda p: p.time_per_k_us / flops_per_k(p))
    _CACHE[key] = profiles
    return profiles


def clear_profile_cache() -> None:
    """Drop all cached profiles (used by tests that vary spec parameters)."""
    _CACHE.clear()
