"""PIT as a model-level backend.

Applies the transformation policies of :mod:`repro.core.policy` to every
transformer primitive:

* **projections/FFN** gather exactly the real tokens (m-axis rule) — no
  padding rows, plus a one-pass detector charge per fresh mask;
* **FFN second matmul** additionally covers the post-ReLU activation with
  (1, 32) micro-tiles and skips zero coverage (k-axis rule, the OPT
  optimization);
* **attention** covers the dynamic attention mask with row micro-tiles and
  computes only covered score tiles;
* **MoE** uses the grouped kernel: per-expert tile counts with no padding
  and no reorganization pass.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.cover import CoverCache
from ..core.detector import index_construction_time_us
from ..core.kernels import kernel_from_choice
from ..core.plan import Planner, PlanSpec, ResolvedPlan
from ..core.selection import PermutedChoice, PlanCache
from ..hw.costmodel import elementwise_time_us
from ..hw.memtracker import MemoryTracker
from ..hw.spec import dtype_bytes
from ..hw.timeline import ExecReport
from ..sparsity.activation import relu_activation_mask
from .backends import ModelBackend


class PITBackend(ModelBackend):
    """PIT end-to-end backend (the paper's system)."""

    name = "PIT"

    #: Micro-tile width used for activation/attention covers (one 32B-plus
    #: transaction of fp32).
    MICRO_W = 32

    #: Like DeepSpeed's fused layers, PIT's generated kernels piggyback
    #: elementwise epilogues (bias, residual, norm) on SWrite's data
    #: movement, saving most of the separate-launch overheads.
    FUSION_LAUNCH_SAVING = 0.6

    def __init__(self, spec, dtype: str = "float32", *, plan_cache=None):
        super().__init__(spec, dtype)
        #: Cached activation-sparsity workloads keyed by (tokens, d_ff, pct).
        #: When a shared :class:`~repro.core.selection.PlanCache` is supplied
        #: (the serving engine constructs one backend per batch), the memo
        #: lives in a :class:`~repro.core.plan.Planner` over that cache
        #: instead — keyed by ``ffn-act`` :class:`PlanSpec`\\ s, so it
        #: survives across backend instances *and* process restarts via
        #: ``PlanCache.save``/``load``.
        self.plan_cache = plan_cache
        self.planner = (
            Planner(self.tiledb, plan_cache) if plan_cache is not None else None
        )
        self._act_cache: dict = {}
        #: Sparse-structure kinds already detected this run: the token mask
        #: and the attention mask are each detected *once per batch* and the
        #: index is shared by every layer (the structures do not change
        #: within a forward pass).
        self._detected: set = set()

    def set_fusion(self, active: bool) -> None:
        super().set_fusion(active)
        self._detected.clear()  # engine calls this at run start/end

    # ------------------------------------------------------------------
    def padded_tokens(self, lengths) -> int:
        """PIT computes on exactly the real tokens."""
        return int(np.asarray(lengths).sum()) if np.asarray(lengths).size else 0

    def _detector_us(self, rows: int, cols: int, num_microtiles: int) -> float:
        return index_construction_time_us(
            (rows, cols), self.dtype, self.spec, num_microtiles
        )

    def _detector_once_us(self, kind: str, rows: int, cols: int,
                          num_microtiles: int) -> float:
        """Charge a detector pass only on the first use of a structure."""
        if kind in self._detected:
            return 0.0
        self._detected.add(kind)
        return self._detector_us(rows, cols, num_microtiles)

    def layernorm(self, lengths, d_model: int) -> list:
        reports = super().layernorm(lengths, d_model)
        return [
            ExecReport(op=r.op, latency_us=r.latency_us * self.FUSION_LAUNCH_SAVING)
            for r in reports
        ]

    def pointwise(self, lengths, d_model: int, *, label: str = "residual") -> list:
        reports = super().pointwise(lengths, d_model, label=label)
        return [
            ExecReport(op=r.op, latency_us=r.latency_us * self.FUSION_LAUNCH_SAVING)
            for r in reports
        ]

    # ------------------------------------------------------------------
    def linear(
        self, lengths, in_f: int, out_f: int,
        *, label: str = "linear", mem: Optional[MemoryTracker] = None,
    ) -> list:
        tokens = self.padded_tokens(lengths)
        batch = int(np.asarray(lengths).size)
        max_len = int(np.asarray(lengths).max()) if batch else 0
        latency = self._matmul_us(tokens, in_f, out_f)
        # Detect real-token rows once per *batch*: one pass over the
        # token->row map (int32 per padded row).  The token structure does
        # not change across layers, so every subsequent op reuses the index
        # — the reason PIT Convert is 0.7-1.1% end to end (Figure 19).
        detector = (
            self._detector_once_us("tokens", batch * max_len, 1, tokens)
            if tokens
            else 0.0
        )
        self._alloc(mem, tokens * out_f, label)
        return [
            ExecReport(op=label, latency_us=latency + detector, convert_us=detector)
        ]

    # ------------------------------------------------------------------
    # Training path: weight-sparse / nm-sparse plans through the Planner
    # ------------------------------------------------------------------
    def _training_planner(self) -> Planner:
        """The planner the training path resolves against.

        Training always plans (that is the point of the unification); when
        no shared :class:`PlanCache` was supplied, a private one memoizes
        within this backend's lifetime so repeated pruning steps still
        warm-start.
        """
        if self.planner is None:
            self.plan_cache = PlanCache()
            self.planner = Planner(self.tiledb, self.plan_cache)
        return self.planner

    def weight_sparse_plan(
        self,
        mask_samples,
        m: int,
        k: int,
        n: int,
        *,
        pattern: tuple = (),
        permutation: tuple = (),
    ) -> ResolvedPlan:
        """Resolve the plan for a weight-masked matmul ``X[m,k] @ W[k,n]``.

        ``mask_samples`` are boolean ``[k, n]`` masks of W.  An empty
        ``pattern`` names the unstructured ``weight-sparse`` kind (iterative
        magnitude pruning); a ``(n, m)`` pattern names ``nm-sparse``, whose
        search composes channel permutations with the structured projection.
        The full Algorithm 1 search runs only on a miss — drifting masks
        with the same quantized signature replay the cached plan.
        """
        planner = self._training_planner()
        kind = "nm-sparse" if pattern else "weight-sparse"
        spec = planner.make_spec(
            kind, mask_samples, m, k, n,
            sparse_operand="B", pattern=pattern, permutation=permutation,
        )
        return planner.resolve(
            spec, lambda: [np.asarray(s, dtype=bool) for s in mask_samples]
        )

    def weight_sparse_matmul_us(
        self, resolved: ResolvedPlan, mask, m: int, *, cover=None
    ) -> float:
        """Price one weight-masked matmul under an already-resolved plan.

        A cold plan's estimate *is* the price — Algorithm 1 just scored this
        very mask, so re-estimating would duplicate the cover pass.  A warm
        plan replays the cached kernel (and, for nm-sparse, the cached
        channel permutation + N:M projection) against the current mask;
        pass ``cover`` (a :class:`CoverCache` of ``mask``) to reuse an
        existing pyramid on that path.
        """
        if resolved.cold:
            return resolved.choice.est_cost_us
        choice = resolved.choice
        if isinstance(choice, PermutedChoice):
            if choice.is_dense_fallback:
                choice = choice.choice
            else:
                from ..sparsity.masks import nm_prune_mask

                projected = np.asarray(mask, dtype=bool)
                if choice.permutation:
                    projected = projected[np.asarray(choice.permutation), :]
                projected = nm_prune_mask(projected, *choice.pattern, axis=0)
                kern = kernel_from_choice(
                    choice.choice, self.spec, self.dtype,
                    sparse_operand="B", tensor_core=self.tensor_core,
                )
                return kern.estimate_us(projected, m)
        if choice.is_dense_fallback:
            kern = kernel_from_choice(
                choice, self.spec, self.dtype, tensor_core=self.tensor_core
            )
            k, n = mask.shape
            return kern.estimate_us(m, k, n)
        kern = kernel_from_choice(
            choice, self.spec, self.dtype,
            sparse_operand="B", tensor_core=self.tensor_core,
        )
        return kern.estimate_us(cover if cover is not None else mask, m)

    # ------------------------------------------------------------------
    def _act_sparse_workload(
        self, tokens: int, d_ff: int, sparsity: float, seed: int
    ) -> tuple:
        """(covered_fraction, num_microtiles) of a (1, 32)-micro-tile cover
        over a ReLU activation mask.  Sampled once per configuration — the
        cover fraction concentrates tightly for i.i.d.-ish masks."""
        key = (min(tokens, 2048), d_ff, round(sparsity, 4))

        def compute():
            sample_rows = key[0]
            mask = relu_activation_mask(sample_rows, d_ff, sparsity, seed=seed)
            grid = CoverCache(mask).grid((1, self.MICRO_W))
            covered = float(grid.sum()) / max(1, grid.size)
            micro_per_row = float(grid.sum()) / max(1, sample_rows)
            return (covered, micro_per_row)

        if self.planner is not None:
            spec = PlanSpec(
                kind="ffn-act",
                m=key[0],
                k=d_ff,
                n=self.MICRO_W,
                signature=("cover", key[2]),
                tiledb_key=self.tiledb.cache_key,
            )
            covered, micro_per_row = self.planner.memo(spec, compute)
            return covered, int(micro_per_row * tokens)
        if key not in self._act_cache:
            self._act_cache[key] = compute()
        covered, micro_per_row = self._act_cache[key]
        return covered, int(micro_per_row * tokens)

    def ffn(
        self, lengths, d_model: int, d_ff: int,
        *, activation: str = "gelu", act_sparsity: Optional[float] = None,
        seed: int = 0, mem: Optional[MemoryTracker] = None,
    ) -> list:
        reports = self.linear(lengths, d_model, d_ff, label="ffn.in", mem=mem)
        tokens = self.padded_tokens(lengths)
        reports.append(
            ExecReport(
                op=f"ffn.{activation}",
                latency_us=elementwise_time_us(tokens * d_ff, self.dtype, self.spec),
            )
        )
        if act_sparsity is None or activation != "relu":
            reports.extend(
                self.linear(lengths, d_ff, d_model, label="ffn.out", mem=mem)
            )
            return reports

        # ReLU activation sparsity: the second matmul's A operand
        # [tokens, d_ff] is sparse at (1, 32) micro-tile granularity.
        covered, num_micro = self._act_sparse_workload(
            tokens, d_ff, act_sparsity, seed
        )
        dense_us = self._matmul_us(tokens, d_ff, d_model)
        detector = self._detector_us(tokens, d_ff, num_micro)
        latency = dense_us * max(covered, 1e-4) + detector
        self._alloc(mem, tokens * d_model, "ffn.out")
        reports.append(
            ExecReport(
                op="ffn.out[sparse-act]",
                latency_us=latency,
                convert_us=detector,
                wasted_fraction=0.0,
                detail={"covered_fraction": covered},
            )
        )
        return reports

    # ------------------------------------------------------------------
    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask: Optional[np.ndarray] = None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        lengths = np.asarray(lengths)
        batch = int(lengths.size)
        if attn_mask is None:
            return self._attention_varlen(lengths, heads, head_dim, causal, mem)
        return self._attention_masked(
            lengths, heads, head_dim, attn_mask, mem
        )

    def _attention_varlen(self, lengths, heads, head_dim, causal, mem) -> list:
        """Per-sequence exact-length attention (no padding waste)."""
        factor = 0.5 if causal else 1.0
        score_elems = float((lengths.astype(float) ** 2).sum()) * factor
        bh_tokens = int(lengths.sum())
        qk = self._scores_matmul_us(score_elems * heads, head_dim)
        # Softmax streams exactly the computed scores (no padded rows).
        sm = self._stream_scores_us(score_elems * heads, passes=3)
        pv = self._scores_matmul_us(score_elems * heads, head_dim)
        detector = self._detector_once_us("attn-varlen", bh_tokens, 1, bh_tokens)
        self._alloc(mem, int(score_elems * heads), "attn.scores")
        self._alloc(mem, bh_tokens * heads * head_dim, "attn.out")
        return [
            ExecReport(op="attn.qk", latency_us=qk + detector, convert_us=detector),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    def _attention_masked(self, lengths, heads, head_dim, attn_mask, mem) -> list:
        """Dynamic sparse attention: cover the [s, s] mask with (1, 32)
        micro-tiles; compute QK^T/softmax/PV only on covered positions."""
        from ..sparsity.attention import as_mask_stats

        batch = int(np.asarray(lengths).size)
        stats = as_mask_stats(attn_mask, micro_w=self.MICRO_W)
        # Micro-tile selection: the finest transaction-sized micro-tile
        # (1, 8) wins when the mask has scattered single columns (global /
        # summary tokens); (1, 32) wins on wide bands.
        covered_elems = float(stats.best_micro_cover_elems())
        num_micro = max(stats.covered_micro, stats.covered_micro_fine)
        bh = batch * heads
        qk = self._scores_matmul_us(covered_elems * bh, head_dim)
        sm = self._stream_scores_us(covered_elems * bh, passes=3)
        pv = self._scores_matmul_us(covered_elems * bh, head_dim)
        detector = self._detector_once_us(
            "attn-mask", stats.seq, stats.seq, num_micro
        )
        self._alloc(mem, int(covered_elems * bh), "attn.scores")
        s = stats.seq
        self._alloc(mem, batch * s * heads * head_dim, "attn.out")
        return [
            ExecReport(op="attn.qk", latency_us=qk + detector, convert_us=detector),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    def _scores_matmul_us(self, score_elems: float, head_dim: int) -> float:
        """Score-tile matmul: total output elements x head_dim reduction,
        executed as merged 32x32-output tiles."""
        tile = self.tiledb.best_dense_tile(
            32, head_dim, 32
        ).tile
        out_tiles = math.ceil(score_elems / (tile.tm * tile.tn))
        steps = out_tiles * math.ceil(head_dim / tile.tk)
        return self._tiled_matmul_us(steps, out_tiles, tile)

    def _stream_scores_us(self, score_elems: float, *, passes: int) -> float:
        from ..hw.memory import stream_time_us

        nbytes = int(score_elems) * dtype_bytes(self.dtype)
        return passes * stream_time_us(nbytes, self.spec) + self.spec.kernel_launch_us

    # ------------------------------------------------------------------
    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        """Grouped sparse expert FFN: SRead tokens per expert, dense tiles,
        SWrite back — cost follows total tokens, not the busiest expert."""
        tile = self.tiledb.best_dense_tile(
            max(32, routing.num_tokens // max(1, routing.num_experts)),
            d_model, d_ff,
        ).tile
        steps_up = 0
        steps_down = 0
        tiles_up = 0
        tiles_down = 0
        for count in routing.counts:
            count = int(count)
            if count == 0:
                continue
            m_tiles = math.ceil(count / tile.tm)
            tiles_up += m_tiles * math.ceil(d_ff / tile.tn)
            steps_up += m_tiles * math.ceil(d_ff / tile.tn) * math.ceil(d_model / tile.tk)
            tiles_down += m_tiles * math.ceil(d_model / tile.tn)
            steps_down += m_tiles * math.ceil(d_model / tile.tn) * math.ceil(d_ff / tile.tk)
        detector = self._detector_us(routing.num_tokens, 1, routing.num_tokens)
        up = self._tiled_matmul_us(steps_up, tiles_up, tile)
        act = elementwise_time_us(routing.num_tokens * d_ff, self.dtype, self.spec)
        down = self._tiled_matmul_us(steps_down, tiles_down, tile)
        self._alloc(mem, routing.num_tokens * d_ff, "moe.hidden")
        self._alloc(mem, routing.num_tokens * d_model, "moe.out")
        return [
            ExecReport(
                op="moe.pit_grouped",
                latency_us=up + act + down + detector,
                convert_us=detector,
                detail={"tile": tile.describe()},
            )
        ]
