"""Model-level backends: the end-to-end systems of Figures 8-15 and 19.

A :class:`ModelBackend` prices the transformer primitives (projections, FFN,
attention, MoE dispatch) with one system's padding/conversion/fusion
semantics, and books activations into a :class:`~repro.hw.MemoryTracker`.
The runtime engine (:mod:`repro.runtime.engine`) walks a model architecture
and sums the reports.

This module holds the base class and the dense systems (PyTorch, TVM); the
sparse/MoE/specialized systems live in sibling modules.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..hw.costmodel import (
    TileConfig,
    dense_matmul_time_us,
    elementwise_time_us,
    kernel_time_us,
    layernorm_time_us,
    matmul_step_time_us,
    matmul_tile_fixed_time_us,
    softmax_time_us,
)
from ..hw.memtracker import MemoryTracker
from ..hw.spec import GPUSpec, dtype_bytes
from ..hw.timeline import ExecReport
from .base import shared_tiledb


class UnsupportedModelError(RuntimeError):
    """Raised when a baseline cannot run a model (missing ops, crashes)."""


class ModelBackend:
    """Base backend: dense padded execution (PyTorch semantics).

    Subclasses override the padding/conversion/sparsity behaviour; every
    shared cost helper lives here so backends stay commensurate.
    """

    name = "PyTorch"
    #: Which precisions the system ships kernels for (MegaBlocks is fp16-only).
    supported_dtypes = ("float32", "float16")
    #: Fusing the whole encoder layer into one op saves activation memory at
    #: inference (DeepSpeed, TurboTransformer).
    fuses_inference_layers = False
    #: Labels of intra-layer intermediates that fused backends never
    #: materialize at inference (set by the engine via :meth:`set_fusion`).
    INTERMEDIATE_LABELS = ("ffn.in", "attn.scores", "moe.hidden")

    def __init__(self, spec: GPUSpec, dtype: str = "float32"):
        if dtype not in self.supported_dtypes:
            raise UnsupportedModelError(
                f"{self.name} does not provide {dtype} kernels"
            )
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = dtype == "float16" and spec.has_tensor_cores
        self.tiledb = shared_tiledb(spec, dtype, tensor_core=self.tensor_core)
        self._fusion_active = False

    def set_fusion(self, active: bool) -> None:
        """Engine hook: enable inference-layer fusion memory savings.

        Only takes effect on backends with ``fuses_inference_layers`` — and
        only at inference; training must keep activations for backward
        (Figure 14's DeepSpeed memory discussion).
        """
        self._fusion_active = active and self.fuses_inference_layers

    # ------------------------------------------------------------------
    # Shared cost helpers
    # ------------------------------------------------------------------
    def _dsize(self) -> int:
        return dtype_bytes(self.dtype)

    def _matmul_us(self, m: int, k: int, n: int, *, batch: int = 1) -> float:
        """Dense matmul latency with the best profiled tile."""
        if m <= 0 or k <= 0 or n <= 0 or batch <= 0:
            return 0.0
        entry = self.tiledb.best_dense_tile(m, k, n)
        tiles = math.ceil(m / entry.tile.tm) * math.ceil(n / entry.tile.tn) * batch
        return kernel_time_us(tiles, entry.tile_cost_us(k), self.spec)

    def dense_matmul_us(self, m: int, k: int, n: int, *, batch: int = 1) -> float:
        """Public dense matmul pricing with the wave-quantized formula — the
        training path charges baseline backends through this instead of
        reimplementing tile lookup (the inference paths use the
        profiled-tile-cost variant, :meth:`_matmul_us`)."""
        if m <= 0 or k <= 0 or n <= 0 or batch <= 0:
            return 0.0
        entry = self.tiledb.best_dense_tile(m, k, n)
        return dense_matmul_time_us(
            m, k, n, entry.tile, self.dtype, self.spec,
            tensor_core=self.tensor_core, batch=batch,
        )

    def _tiled_matmul_us(
        self, total_steps: int, out_tiles: int, tile: TileConfig,
        *, load_efficiency: float = 1.0,
    ) -> float:
        """Latency of a fused kernel given its tile workload."""
        if total_steps <= 0:
            return self.spec.kernel_launch_us
        step = matmul_step_time_us(
            tile, self.dtype, self.spec,
            tensor_core=self.tensor_core, load_efficiency=load_efficiency,
        )
        fixed = matmul_tile_fixed_time_us(tile, self.dtype, self.spec)
        step_waves = math.ceil(total_steps / self.spec.num_sms)
        tile_waves = math.ceil(out_tiles / self.spec.num_sms)
        return step_waves * step + tile_waves * fixed + self.spec.kernel_launch_us

    def _alloc(
        self, mem: Optional[MemoryTracker], num_elems: int, label: str,
        category: str = "activations",
    ) -> None:
        if mem is None or num_elems <= 0:
            return
        if self._fusion_active and label in self.INTERMEDIATE_LABELS:
            return  # fused kernels never materialize these
        mem.alloc(int(num_elems) * self._dsize(), label, category=category)

    # ------------------------------------------------------------------
    # Token accounting (padding semantics)
    # ------------------------------------------------------------------
    def padded_tokens(self, lengths) -> int:
        """Rows a token-level matmul computes over: pad to the batch max."""
        lengths = np.asarray(lengths)
        if lengths.size == 0:
            return 0
        return int(lengths.max()) * int(lengths.size)

    def padded_seq(self, lengths) -> int:
        """Per-sequence padded length used by attention."""
        lengths = np.asarray(lengths)
        return int(lengths.max()) if lengths.size else 0

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def linear(
        self, lengths, in_f: int, out_f: int,
        *, label: str = "linear", mem: Optional[MemoryTracker] = None,
    ) -> list:
        """Token projection: [tokens, in_f] @ [in_f, out_f]."""
        tokens = self.padded_tokens(lengths)
        latency = self._matmul_us(tokens, in_f, out_f)
        self._alloc(mem, tokens * out_f, label)
        return [ExecReport(op=label, latency_us=latency)]

    def layernorm(self, lengths, d_model: int) -> list:
        tokens = self.padded_tokens(lengths)
        return [
            ExecReport(
                op="layernorm",
                latency_us=layernorm_time_us(tokens, d_model, self.dtype, self.spec),
            )
        ]

    def pointwise(self, lengths, d_model: int, *, label: str = "residual") -> list:
        """Residual add / bias add over the token activation."""
        tokens = self.padded_tokens(lengths)
        return [
            ExecReport(
                op=label,
                latency_us=elementwise_time_us(
                    tokens * d_model, self.dtype, self.spec, num_inputs=2
                ),
            )
        ]

    def ffn(
        self, lengths, d_model: int, d_ff: int,
        *, activation: str = "gelu", act_sparsity: Optional[float] = None,
        seed: int = 0, mem: Optional[MemoryTracker] = None,
    ) -> list:
        """Two-matmul FFN.  Dense systems cannot exploit ``act_sparsity``."""
        reports = self.linear(lengths, d_model, d_ff, label="ffn.in", mem=mem)
        tokens = self.padded_tokens(lengths)
        reports.append(
            ExecReport(
                op=f"ffn.{activation}",
                latency_us=elementwise_time_us(tokens * d_ff, self.dtype, self.spec),
            )
        )
        reports.extend(self.linear(lengths, d_ff, d_model, label="ffn.out", mem=mem))
        return reports

    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask: Optional[np.ndarray] = None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        """Multi-head attention: QK^T, softmax, PV, at padded length.

        Dense systems compute the full [s, s] score matrix regardless of the
        mask; the mask only changes softmax masking (same cost).
        """
        from ..sparsity.attention import MaskStats

        batch = int(np.asarray(lengths).size)
        s = self.padded_seq(lengths)
        if isinstance(attn_mask, MaskStats):
            s = attn_mask.seq
        elif attn_mask is not None:
            s = np.asarray(attn_mask).shape[0]
        bh = batch * heads
        qk = self._matmul_us(s, head_dim, s, batch=bh)
        sm = softmax_time_us(bh * s, s, self.dtype, self.spec)
        pv = self._matmul_us(s, s, head_dim, batch=bh)
        self._alloc(mem, bh * s * s, "attn.scores")
        self._alloc(mem, batch * s * heads * head_dim, "attn.out")
        return [
            ExecReport(op="attn.qk", latency_us=qk),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    #: Per-expert stall of the eager MoE loop: selecting each expert's
    #: tokens calls ``.nonzero()`` / boolean indexing, which synchronizes
    #: the device and re-fills the pipeline, on top of the launch overheads
    #: of the per-expert small kernels.  This is why eager PyTorch degrades
    #: so sharply as the expert count grows (Figure 8).
    MOE_EXPERT_SYNC_US = 150.0

    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        """PyTorch MoE: a Python loop over experts, one pair of small
        matmuls per expert (plus gather/scatter and a device sync each)."""
        reports = []
        total = 0.0
        for count in routing.counts:
            count = int(count)
            if count == 0:
                continue
            gather = elementwise_time_us(count * d_model, self.dtype, self.spec)
            up = self._matmul_us(count, d_model, d_ff)
            act = elementwise_time_us(count * d_ff, self.dtype, self.spec)
            down = self._matmul_us(count, d_ff, d_model)
            scatter = elementwise_time_us(count * d_model, self.dtype, self.spec)
            total += gather + up + act + down + scatter + self.MOE_EXPERT_SYNC_US
        self._alloc(mem, routing.num_tokens * d_ff, "moe.hidden")
        self._alloc(mem, routing.num_tokens * d_model, "moe.out")
        reports.append(ExecReport(op="moe.sequential", latency_us=total))
        return reports

    # ------------------------------------------------------------------
    def weight_bytes(self, num_params: int) -> int:
        return num_params * self._dsize()


class TVMBackend(ModelBackend):
    """TVM + Ansor: an AOT-tuned dense compiler (Figure 19's extra baseline).

    After 2000 trials per task it emits slightly better-fused dense kernels
    than the framework (modest matmul gain, fewer launches), but it is still
    *dense*: it pads exactly like PyTorch, and re-tuning per dynamic shape at
    runtime is infeasible (its tuning time is hours, charged offline).
    """

    name = "TVM"
    #: Ansor-tuned kernels beat the vendor library by a few percent.
    MATMUL_GAIN = 0.94

    def _matmul_us(self, m: int, k: int, n: int, *, batch: int = 1) -> float:
        return super()._matmul_us(m, k, n, batch=batch) * self.MATMUL_GAIN
