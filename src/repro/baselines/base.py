"""Shared baseline machinery.

Two baseline families mirror the paper's comparisons:

* **kernel-level** (Figures 3b, 16, 17, 18): sparse matrix-multiplication
  libraries exposing ``spmm(mask, n) -> SpmmResult`` with separate compute
  and format-conversion costs;
* **model-level** (Figures 8-15, 19): end-to-end inference/training systems
  exposing transformer-op primitives with each system's padding, conversion
  and fusion semantics.  Those live in :mod:`repro.baselines.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.tiledb import TileDB
from ..hw.costmodel import dense_matmul_time_us
from ..hw.spec import GPUSpec

def shared_tiledb(spec: GPUSpec, dtype: str, *, tensor_core: bool = False) -> TileDB:
    """A cached TileDB for (device, dtype) — offline profiling happens once.

    Delegates to :meth:`TileDB.shared`, so baselines, the compiler and the
    serving engine all hold the *same* instance per configuration.
    """
    return TileDB.shared(spec, dtype, tensor_core=tensor_core)


@dataclass(frozen=True)
class SpmmResult:
    """One sparse-matmul invocation: compute + conversion latency (us)."""

    compute_us: float
    convert_us: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.compute_us + self.convert_us


class SpmmKernel:
    """Base class for kernel-level SpMM baselines.

    Subclasses implement :meth:`spmm` for ``C[M,N] = A_sparse[M,K] @ B[K,N]``
    where ``mask`` is A's non-zero mask.
    """

    name = "abstract"

    def __init__(self, spec: GPUSpec, dtype: str = "float32"):
        self.spec = spec
        self.dtype = dtype

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        raise NotImplementedError

    def dense_reference_us(self, m: int, k: int, n: int) -> float:
        """cuBLAS-style dense latency for the same problem."""
        db = shared_tiledb(self.spec, self.dtype)
        entry = db.best_dense_tile(m, k, n)
        return dense_matmul_time_us(m, k, n, entry.tile, self.dtype, self.spec)


class DenseKernelBaseline(SpmmKernel):
    """cuBLAS: ignore sparsity, run the dense kernel (Figure 3b's yardstick)."""

    name = "cuBLAS"

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        m, k = mask.shape
        return SpmmResult(compute_us=self.dense_reference_us(m, k, n))
