"""Sputnik-style fine-grained SpMM baseline (Gale et al., SC'20).

Sputnik is the strongest fine-grained (1-wide) sparse kernel the paper
compares against: CSR with row swizzling for load balance, vector memory
ops, and one-dimensional tiling.  It beats cuSPARSE by roughly the ratio of
their efficiency constants but still pays per-non-zero index traffic and
cannot use dense-tile compute — PIT measures 1.1-5.8x over it depending on
granularity (Figure 16).

Sputnik also profits from *structured* rows: when non-zeros come in runs
(e.g. 1x64 granularity), its vector loads approach coalesced bandwidth; the
efficiency model below interpolates with the mean run length.
"""

from __future__ import annotations

import numpy as np

from ..hw.memory import stream_time_us
from ..hw.spec import dtype_bytes
from ..tensor.sparse import SPUTNIK_CONVERT_PASSES
from .base import SpmmKernel, SpmmResult

#: Peak-FLOPs fraction for scattered single-element rows.
SPUTNIK_BASE_EFFICIENCY = 0.055
#: Peak-FLOPs fraction when non-zeros form long contiguous runs.
SPUTNIK_VECTOR_EFFICIENCY = 0.22


def mean_run_length(mask: np.ndarray) -> float:
    """Average length of horizontal non-zero runs (granularity detector)."""
    m = np.asarray(mask, dtype=bool)
    if not m.any():
        return 0.0
    padded = np.pad(m, ((0, 0), (1, 0)), constant_values=False)
    starts = m & ~padded[:, :-1]
    num_runs = int(starts.sum())
    return float(m.sum()) / max(1, num_runs)


class SputnikKernel(SpmmKernel):
    """Sputnik fine-grained SpMM with run-length-aware efficiency."""

    name = "Sputnik"

    def efficiency(self, mask: np.ndarray) -> float:
        run = mean_run_length(mask)
        # Saturates once runs reach ~8 elements (a full vector load).
        blend = min(1.0, max(0.0, (run - 1.0) / 7.0))
        return SPUTNIK_BASE_EFFICIENCY + blend * (
            SPUTNIK_VECTOR_EFFICIENCY - SPUTNIK_BASE_EFFICIENCY
        )

    def convert_us(self, mask: np.ndarray) -> float:
        m, k = mask.shape
        nnz = int(np.count_nonzero(mask))
        dense_bytes = m * k * dtype_bytes(self.dtype)
        index_bytes = (m + 1) * 4 + nnz * (4 + dtype_bytes(self.dtype)) + m * 4
        return (
            stream_time_us(int(dense_bytes * SPUTNIK_CONVERT_PASSES), self.spec)
            + stream_time_us(index_bytes, self.spec)
            + 3 * self.spec.kernel_launch_us
        )

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        nnz = int(np.count_nonzero(mask))
        flops = 2.0 * nnz * n
        peak = self.spec.peak_flops(self.dtype) / 1e6
        compute = flops / (peak * self.efficiency(mask))
        index_bytes = nnz * (4 + dtype_bytes(self.dtype))
        compute += stream_time_us(index_bytes, self.spec) + self.spec.kernel_launch_us
        return SpmmResult(
            compute_us=compute,
            convert_us=self.convert_us(mask),
            detail={"nnz": nnz, "efficiency": self.efficiency(mask)},
        )
