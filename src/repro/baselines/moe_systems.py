"""MoE-system baselines: Tutel, DeepSpeed, MegaBlocks (Figures 8 and 9).

All three execute the experts *together* instead of PyTorch's Python loop,
but differ in how they handle the uneven token distribution:

* **Tutel** pads every expert's buffer to the *maximum* per-expert token
  count and runs one BatchMatmul — enormous padding waste and memory when
  routing is skewed (its OOMs in Figure 8);
* **DeepSpeed-MoE** pads to a fixed capacity factor and *drops* overflow
  tokens; plus it fuses inference layers (activation-memory savings);
* **MegaBlocks** reorganizes tokens into a block-sparse layout and runs a
  block-grouped GEMM — only ceil-to-32 padding, but it pays the
  reorganization passes and ships fp16 kernels only.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..hw.costmodel import TileConfig, elementwise_time_us
from ..hw.memory import stream_time_us
from ..hw.memtracker import MemoryTracker
from ..hw.spec import dtype_bytes
from ..hw.timeline import ExecReport
from ..sparsity.moe import capacity_tokens
from .backends import ModelBackend


class TutelBackend(ModelBackend):
    """Tutel: BatchMatmul over expert buffers padded to the max load."""

    name = "Tutel"
    #: Workspace overhead factor: the all-to-all dispatch stages input and
    #: output copies of the capacity-sized buffers, and because every
    #: batch's capacity differs the caching allocator retains blocks it
    #: cannot reuse.  Together ~2x the nominal buffer bytes.
    WORKSPACE_RETENTION = 2.0

    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        cap = routing.max_tokens_per_expert
        e = routing.num_experts
        if cap == 0:
            return [ExecReport(op="moe.tutel", latency_us=self.spec.kernel_launch_us)]
        # Dispatch: scatter tokens into the [E, cap, d_model] buffer.
        dispatch = 2 * elementwise_time_us(
            routing.num_tokens * d_model, self.dtype, self.spec
        )
        up = self._matmul_us(cap, d_model, d_ff, batch=e)
        act = elementwise_time_us(e * cap * d_ff, self.dtype, self.spec)
        down = self._matmul_us(cap, d_ff, d_model, batch=e)
        combine = 2 * elementwise_time_us(
            routing.num_tokens * d_model, self.dtype, self.spec
        )
        # Memory: the padded dispatch buffers dominate (E x cap x dims).
        # Because every batch's capacity differs, the caching allocator
        # retains each MoE layer's buffers instead of reusing them — the
        # "excessive padding" OOMs of Figure 8 (category survives the
        # engine's per-layer free of 'padding').
        retained = self.WORKSPACE_RETENTION
        self._alloc(mem, int(e * cap * d_model * retained), "moe.dispatch", "moe-workspace")
        self._alloc(mem, int(e * cap * d_ff * retained), "moe.hidden", "moe-workspace")
        self._alloc(mem, int(e * cap * d_model * retained), "moe.combine", "moe-workspace")
        waste = 1.0 - routing.num_tokens / max(1, e * cap)
        return [
            ExecReport(
                op="moe.tutel",
                latency_us=dispatch + up + act + down + combine,
                wasted_fraction=waste,
                detail={"capacity": cap, "experts": e},
            )
        ]


class DeepSpeedBackend(ModelBackend):
    """DeepSpeed inference: fused layers + capacity-factor MoE."""

    name = "DeepSpeed"
    fuses_inference_layers = True
    WORKSPACE_RETENTION = 1.3
    #: Default inference capacity factor.
    CAPACITY_FACTOR = 1.25
    #: Layer fusion removes most non-matmul launch overheads.
    FUSION_LAUNCH_SAVING = 0.6

    def layernorm(self, lengths, d_model: int) -> list:
        reports = super().layernorm(lengths, d_model)
        return [
            ExecReport(op=r.op, latency_us=r.latency_us * self.FUSION_LAUNCH_SAVING)
            for r in reports
        ]

    def pointwise(self, lengths, d_model: int, *, label: str = "residual") -> list:
        reports = super().pointwise(lengths, d_model, label=label)
        return [
            ExecReport(op=r.op, latency_us=r.latency_us * self.FUSION_LAUNCH_SAVING)
            for r in reports
        ]

    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask=None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        if attn_mask is not None:
            # DeepSpeed's sparse attention is built on the same Triton
            # block-sparse kernels as PyTorch-S (Section 5.1), outside the
            # fused-layer fast path — including its temporaries.
            from .pytorch_s import triton_masked_attention

            return triton_masked_attention(
                self, lengths, heads, head_dim, attn_mask, mem
            )
        return super().attention(
            lengths, heads, head_dim, attn_mask=None, causal=causal, mem=mem
        )

    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        e = routing.num_experts
        cap = capacity_tokens(routing.num_tokens, e, self.CAPACITY_FACTOR)
        dispatch = 2 * elementwise_time_us(
            routing.num_tokens * d_model, self.dtype, self.spec
        )
        up = self._matmul_us(cap, d_model, d_ff, batch=e)
        act = elementwise_time_us(e * cap * d_ff, self.dtype, self.spec)
        down = self._matmul_us(cap, d_ff, d_model, batch=e)
        combine = 2 * elementwise_time_us(
            routing.num_tokens * d_model, self.dtype, self.spec
        )
        # Same allocator-retention behaviour as Tutel (see there), at the
        # smaller capacity-factor buffer sizes.
        retained = self.WORKSPACE_RETENTION
        self._alloc(mem, int(e * cap * d_model * retained), "moe.dispatch", "moe-workspace")
        self._alloc(mem, int(e * cap * d_ff * retained), "moe.hidden", "moe-workspace")
        dropped = int(np.maximum(routing.counts - cap, 0).sum())
        waste = 1.0 - routing.num_tokens / max(1, e * cap)
        return [
            ExecReport(
                op="moe.deepspeed",
                latency_us=dispatch + up + act + down + combine,
                wasted_fraction=max(0.0, waste),
                detail={"capacity": cap, "dropped_tokens": dropped},
            )
        ]


class MegaBlocksBackend(ModelBackend):
    """MegaBlocks: block-sparse grouped GEMM over reorganized tokens."""

    name = "MegaBlocks"
    supported_dtypes = ("float16",)
    BLOCK = 32

    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        tile = TileConfig(self.BLOCK, self.BLOCK, self.BLOCK * 2)
        steps_up = steps_down = tiles_up = tiles_down = 0
        padded_tokens = 0
        for count in routing.counts:
            count = int(count)
            if count == 0:
                continue
            m_tiles = math.ceil(count / self.BLOCK)
            padded_tokens += m_tiles * self.BLOCK
            tiles_up += m_tiles * math.ceil(d_ff / tile.tn)
            steps_up += m_tiles * math.ceil(d_ff / tile.tn) * math.ceil(d_model / tile.tk)
            tiles_down += m_tiles * math.ceil(d_model / tile.tn)
            steps_down += m_tiles * math.ceil(d_model / tile.tn) * math.ceil(d_ff / tile.tk)
        up = self._tiled_matmul_us(steps_up, tiles_up, tile)
        act = elementwise_time_us(padded_tokens * d_ff, self.dtype, self.spec)
        down = self._tiled_matmul_us(steps_down, tiles_down, tile)
        # Token reorganization: histogram + sort + gather into the
        # expert-sorted layout, and the scatter back — four passes over the
        # token tensor (the cost PIT's SRead/SWrite piggybacking removes).
        token_bytes = routing.num_tokens * d_model * dtype_bytes(self.dtype)
        reorg = 4 * stream_time_us(token_bytes, self.spec) + 4 * self.spec.kernel_launch_us
        self._alloc(mem, padded_tokens * d_model, "moe.sorted", "conversion")
        self._alloc(mem, padded_tokens * d_ff, "moe.hidden")
        waste = 1.0 - routing.num_tokens / max(1, padded_tokens)
        return [
            ExecReport(
                op="moe.megablocks",
                latency_us=up + act + down + reorg,
                convert_us=reorg,
                wasted_fraction=waste,
                detail={"padded_tokens": padded_tokens},
            )
        ]
