"""OpenAI / Triton block-sparse SpMM baseline.

Triton's block-sparse kernels execute dense 32x32 (or 16x16) blocks — fully
GPU-efficient per block, but the *cover* is block-granular: a single 1x32
non-zero strip drags in a whole 32x32 block of work.  Two consequences the
paper measures:

* coverage waste at fine granularity (Figure 16's 32x1 and 1x64 panels,
  PyTorch-S's poor BERT latency on short GLUE sequences in Figure 11);
* an expensive block-layout (lookup-table) construction whose passes grow
  with the block map size — PIT's index build is 11-26x faster (Figure 18).
"""

from __future__ import annotations

import math

import numpy as np

from ..hw.costmodel import TileConfig, kernel_time_us, matmul_tile_time_us
from ..hw.memory import stream_time_us
from ..hw.spec import dtype_bytes
from ..core.cover import cover_grid
from .base import SpmmKernel, SpmmResult


def triton_convert_passes(block: int) -> float:
    """Layout-build passes grow with block size (mask reduce + LUT build).

    Calibrated so PIT's single-pass detector is ~11-14x faster at 16x16 and
    ~13-26x faster at 32x32, the ranges of Figure 18.
    """
    return 10.0 + (block * block) / 64.0


class TritonBlockSparseKernel(SpmmKernel):
    """Block-granular SpMM with Triton-style layout construction."""

    name = "OpenAI Block (Triton)"

    def __init__(self, spec, dtype: str = "float32", *, block: int = 32):
        super().__init__(spec, dtype)
        if block < 8:
            raise ValueError("Triton block-sparse supports blocks >= 8")
        self.block = block
        # One K-step per covered block.  The schedule processes several
        # consecutive output-column blocks per CTA (Triton's blocksparse
        # matmul uses a wide-n program), which restores most of the data
        # reuse a naive block x block tile would lose.
        self.tile = TileConfig(tm=block, tk=block, tn=min(128, 4 * block))

    def convert_us(self, mask: np.ndarray) -> float:
        m, k = mask.shape
        passes = triton_convert_passes(self.block)
        dense_bytes = m * k * dtype_bytes(self.dtype)
        grid_cells = math.ceil(m / self.block) * math.ceil(k / self.block)
        lut_bytes = grid_cells * 8
        return (
            stream_time_us(int(dense_bytes * passes), self.spec)
            + stream_time_us(lut_bytes, self.spec)
            + 4 * self.spec.kernel_launch_us
        )

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        grid = cover_grid(mask, (self.block, self.block))
        covered = int(grid.sum())
        n_tiles_cols = math.ceil(n / self.tile.tn)
        # Each covered A-block is one K-step of the (block x block) tile,
        # executed for every output column tile.
        total_steps = covered * n_tiles_cols
        row_blocks = int(grid.any(axis=1).sum())
        out_tiles = row_blocks * n_tiles_cols
        step = matmul_tile_time_us(self.tile, self.tile.tk, self.dtype, self.spec)
        waves = math.ceil(total_steps / self.spec.num_sms)
        compute = waves * step + self.spec.kernel_launch_us
        nnz = int(np.count_nonzero(mask))
        stored = covered * self.block * self.block
        waste = 0.0 if stored == 0 else 1.0 - nnz / stored
        return SpmmResult(
            compute_us=compute,
            convert_us=self.convert_us(mask),
            detail={
                "covered_blocks": covered,
                "coverage_waste": waste,
                "out_tiles": out_tiles,
            },
        )
