"""PyTorch-S: the paper's sparse-kernel PyTorch variant.

"We also create PyTorch-S, a variant of PyTorch that uses the
best-performing sparse kernels from cuSPARSE, Sputnik, and Triton.  We
select the best result among these sparse kernels for each model."

At the model level PyTorch-S behaves like PyTorch with Triton block-sparse
(block 32) kernels substituted where sparsity exists:

* token-level sparsity is handled at 32-token block granularity — short
  sequences pad up to a multiple of 32 (a 16-token sequence wastes 50%,
  the Figure 11 discussion);
* every fresh sparsity pattern requires rebuilding the Triton block layout
  ("PyTorch-S Convert" in every figure);
* converted sparse copies of the data are materialized, costing memory
  (Longformer-4k and Museformer OOMs).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..hw.costmodel import TileConfig, elementwise_time_us
from ..hw.memory import stream_time_us
from ..hw.memtracker import MemoryTracker
from ..hw.spec import dtype_bytes
from ..hw.timeline import ExecReport
from .backends import ModelBackend
from .cusparse import CuSparseKernel
from .sputnik import SputnikKernel
from .triton_block import TritonBlockSparseKernel, triton_convert_passes

#: Host synchronization + layout rebuild of the Triton sparse-attention
#: wrapper, paid once per layer per fresh mask.
TRITON_ATTENTION_SYNC_US = 250.0


def triton_masked_attention(
    backend: ModelBackend,
    lengths,
    heads: int,
    head_dim: int,
    attn_mask,
    mem: Optional[MemoryTracker],
    *,
    block: int = 32,
) -> list:
    """Triton block-sparse attention over a dynamic mask.

    Shared by PyTorch-S and DeepSpeed ("DeepSpeed uses Triton to implement
    their sparse attention, so it has a similar performance to PyTorch-S",
    Section 5.1).  The mask is covered with 32x32 blocks; QK^T/softmax/PV
    run on covered blocks only, but the wrapper must materialize the
    broadcast mask, the raw block scores, a converted copy, and the softmax
    output — the temporaries behind the Figure 12/13 memory story.
    """
    from ..sparsity.attention import as_mask_stats
    from ..hw.costmodel import TileConfig

    lengths = np.asarray(lengths)
    batch = int(lengths.size)
    stats = as_mask_stats(attn_mask, block=block)
    covered_blocks = stats.covered_blocks
    score_elems = float(stats.covered_block_elems())
    s = stats.seq
    tile = TileConfig(block, block, block)

    bh = batch * heads
    steps = covered_blocks * bh * math.ceil(head_dim / tile.tk)
    out_tiles = covered_blocks * bh
    qk = backend._tiled_matmul_us(steps, out_tiles, tile)
    sm_bytes = int(score_elems * bh) * dtype_bytes(backend.dtype)
    sm = 3 * stream_time_us(sm_bytes, backend.spec) + backend.spec.kernel_launch_us
    pv = backend._tiled_matmul_us(steps, out_tiles, tile)

    # Layout build: one scan of the [s, s] byte mask, multi-pass work on
    # the (s/32)^2 block map, and a fixed host-sync cost.  The fixed part
    # dominates at short sequences (Figure 13's 23.2%-then-diluted
    # conversion share).
    passes = triton_convert_passes(block)
    block_map_bytes = (s // block + 1) ** 2 * 8
    convert = (
        stream_time_us(s * s, backend.spec)
        + stream_time_us(int(block_map_bytes * passes), backend.spec)
        + TRITON_ATTENTION_SYNC_US
    )
    # Temporaries: broadcast byte mask, raw + converted + softmax'd scores.
    if mem is not None:
        mem.alloc(s * s, "attn.mask.bytes", category="conversion")
    backend._alloc(mem, int(score_elems * bh), "attn.scores.block")
    backend._alloc(mem, int(score_elems * bh), "attn.scores.converted", "conversion")
    backend._alloc(mem, int(score_elems * bh), "attn.probs.block")
    backend._alloc(mem, batch * s * heads * head_dim, "attn.out")
    return [
        ExecReport(op="attn.qk", latency_us=qk + convert, convert_us=convert),
        ExecReport(op="attn.softmax", latency_us=sm),
        ExecReport(op="attn.pv", latency_us=pv),
    ]


class PyTorchSBackend(ModelBackend):
    """PyTorch + best-of {cuSPARSE, Sputnik, Triton} sparse kernels."""

    name = "PyTorch-S"
    BLOCK = 32

    def __init__(self, spec, dtype: str = "float32"):
        super().__init__(spec, dtype)
        self.tile = TileConfig(self.BLOCK, self.BLOCK, self.BLOCK)
        self._causal_model = False

    def check_model(self, family: str, max_seq: int) -> None:
        """Engine hook: decoder (causal) models keep full padding.

        The sparse wrappers pack encoder batches into 32-token blocks, but
        packing breaks the causal-mask structure their attention kernels
        assume, so decoder models (OPT, Museformer) run at PyTorch padding —
        part of why PyTorch-S has the *highest* OPT latency in Figure 10.
        """
        self._causal_model = family in ("opt", "museformer")

    # ------------------------------------------------------------------
    def padded_tokens(self, lengths) -> int:
        """Tokens computed on: each sequence padded to a multiple of 32
        (encoders) or to the batch max (causal decoders; see check_model)."""
        lengths = np.asarray(lengths)
        if lengths.size == 0:
            return 0
        if self._causal_model:
            return int(lengths.max()) * int(lengths.size)
        return int((np.ceil(lengths / self.BLOCK) * self.BLOCK).sum())

    #: Host-visible work of one sparse-wrapper invocation: building the
    #: Triton layout (mask reduce + LUT) and synchronizing before launch.
    CONVERT_FIXED_US = 30.0
    #: Achieved bandwidth fraction of the dense->block *data* conversion
    #: (scattered writes + stage synchronizations).
    CONVERT_DATA_BW_EFF = 0.2

    def _layout_convert_us(self, rows: int, cols: int) -> float:
        """Per-op conversion for *token-structured* sparsity.

        The wrapper materializes the sparse view of the activation (read +
        write: two streaming passes) and rebuilds the block layout from the
        block occupancy map, plus fixed launch/sync overhead.  Weight-data
        conversions to BCSR (Figure 15's path) are costed separately with
        the full multi-pass build in :mod:`repro.tensor.sparse`.
        """
        dense_bytes = rows * cols * dtype_bytes(self.dtype)
        layout_bytes = max(1, (rows // self.BLOCK) * (cols // self.BLOCK)) * 8
        return (
            stream_time_us(int(dense_bytes * 2.2), self.spec)
            + stream_time_us(layout_bytes, self.spec)
            + self.CONVERT_FIXED_US
        )

    # ------------------------------------------------------------------
    def linear(
        self, lengths, in_f: int, out_f: int,
        *, label: str = "linear", mem: Optional[MemoryTracker] = None,
    ) -> list:
        tokens = self.padded_tokens(lengths)
        batch = int(np.asarray(lengths).size)
        max_len = int(np.asarray(lengths).max()) if batch else 0
        latency = self._matmul_us(tokens, in_f, out_f)
        # The token block layout is rebuilt per fresh batch mask: one Triton
        # layout pass over the padded activation.
        convert = self._layout_convert_us(batch * max_len, in_f)
        self._alloc(mem, tokens * out_f, label)
        # Converted sparse copy of the input activation.
        self._alloc(mem, tokens * in_f, f"{label}.converted", "conversion")
        return [
            ExecReport(op=label, latency_us=latency + convert, convert_us=convert)
        ]

    def ffn(
        self, lengths, d_model: int, d_ff: int,
        *, activation: str = "gelu", act_sparsity: Optional[float] = None,
        seed: int = 0, mem: Optional[MemoryTracker] = None,
    ) -> list:
        reports = self.linear(lengths, d_model, d_ff, label="ffn.in", mem=mem)
        tokens = self.padded_tokens(lengths)
        reports.append(
            ExecReport(
                op=f"ffn.{activation}",
                latency_us=elementwise_time_us(tokens * d_ff, self.dtype, self.spec),
            )
        )
        if act_sparsity is None or activation != "relu":
            reports.extend(
                self.linear(lengths, d_ff, d_model, label="ffn.out", mem=mem)
            )
            return reports
        # OPT's ReLU activation sparsity (Figure 10): PyTorch-S tries to
        # exploit it with Triton's 32x32 blocks, but the 1-element-granular
        # pattern lights up essentially every block — the compute stays
        # (nearly) dense while the wrapper still converts the big
        # [tokens, d_ff] activation *data* to the block format every batch.
        # This is why PyTorch-S has the highest OPT latency in the paper.
        block_elems = self.BLOCK * self.BLOCK
        covered_fraction = 1.0 - (act_sparsity ** block_elems)
        compute = self._matmul_us(tokens, d_ff, d_model) * covered_fraction
        from ..tensor.sparse import TRITON_CONVERT_PASSES

        # Converting the activation *data* into the block format runs far
        # below streaming bandwidth: scattered block writes, several small
        # kernels and synchronizations between the stages.
        act_bytes = tokens * d_ff * dtype_bytes(self.dtype)
        convert = (
            stream_time_us(int(act_bytes * TRITON_CONVERT_PASSES), self.spec)
            / self.CONVERT_DATA_BW_EFF
            + 4 * self.spec.kernel_launch_us
        )
        self._alloc(mem, tokens * d_model, "ffn.out")
        self._alloc(mem, tokens * d_ff, "ffn.act.converted", "conversion")
        reports.append(
            ExecReport(
                op="ffn.out[block-sparse-act]",
                latency_us=compute + convert,
                convert_us=convert,
                wasted_fraction=covered_fraction - (1.0 - act_sparsity),
            )
        )
        return reports

    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask: Optional[np.ndarray] = None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        lengths = np.asarray(lengths)
        batch = int(lengths.size)
        if attn_mask is not None:
            return triton_masked_attention(
                self, lengths, heads, head_dim, attn_mask, mem
            )
        # Variable lengths: block-diagonal attention at 32-token blocks.
        padded = np.ceil(lengths / self.BLOCK) * self.BLOCK
        score_elems = float((padded**2).sum())
        s = int(lengths.max()) if batch else 0
        covered_blocks = int(score_elems // (self.BLOCK**2))

        bh = batch * heads
        steps = covered_blocks * heads * math.ceil(head_dim / self.tile.tk)
        out_tiles = covered_blocks * heads
        qk = self._tiled_matmul_us(steps, out_tiles, self.tile)
        sm_bytes = int(score_elems * heads) * dtype_bytes(self.dtype)
        sm = 3 * stream_time_us(sm_bytes, self.spec) + self.spec.kernel_launch_us
        pv = self._tiled_matmul_us(steps, out_tiles, self.tile)
        convert = self._layout_convert_us(batch * s, s)
        self._alloc(mem, int(score_elems * heads), "attn.scores")
        self._alloc(mem, int(score_elems * heads), "attn.scores.converted", "conversion")
        self._alloc(mem, batch * s * heads * head_dim, "attn.out")
        return [
            ExecReport(op="attn.qk", latency_us=qk + convert, convert_us=convert),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    def moe_ffn(
        self, routing, d_model: int, d_ff: int,
        *, mem: Optional[MemoryTracker] = None,
    ) -> list:
        """PyTorch-S MoE: the same sequential expert loop as PyTorch (it is
        PyTorch with sparse kernels substituted, not a grouped-GEMM system),
        with a per-expert sparse-format conversion on top.  This is why the
        Figure 8 speedups over PyTorch-S track those over PyTorch."""
        total = 0.0
        convert_total = 0.0
        for count in routing.counts:
            count = int(count)
            if count == 0:
                continue
            padded = math.ceil(count / self.BLOCK) * self.BLOCK
            gather = elementwise_time_us(count * d_model, self.dtype, self.spec)
            up = self._matmul_us(padded, d_model, d_ff)
            act = elementwise_time_us(padded * d_ff, self.dtype, self.spec)
            down = self._matmul_us(padded, d_ff, d_model)
            scatter = elementwise_time_us(count * d_model, self.dtype, self.spec)
            convert = self._layout_convert_us(padded, d_model)
            total += (
                gather + up + act + down + scatter + convert
                + self.MOE_EXPERT_SYNC_US
            )
            convert_total += convert
        self._alloc(mem, routing.num_tokens * d_ff, "moe.hidden")
        self._alloc(mem, routing.num_tokens * d_model, "moe.converted", "conversion")
        return [
            ExecReport(
                op="moe.sequential_sparse",
                latency_us=total,
                convert_us=convert_total,
            )
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def best_spmm_kernel(spec, dtype, mask: np.ndarray, n: int):
        """Kernel-level selection among cuSPARSE/Sputnik/Triton: the
        'best result among these sparse kernels' rule of Section 5.1."""
        candidates = [
            CuSparseKernel(spec, dtype),
            SputnikKernel(spec, dtype),
            TritonBlockSparseKernel(spec, dtype, block=32),
            TritonBlockSparseKernel(spec, dtype, block=16),
        ]
        results = [(k, k.spmm(mask, n)) for k in candidates]
        return min(results, key=lambda kr: kr[1].total_us)
