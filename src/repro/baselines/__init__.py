"""Baseline systems the paper compares against.

Kernel level (Figures 3b, 16-18): cuSPARSE, Sputnik, OpenAI/Triton block
sparse, SparTA, cuBLAS dense, plus a PIT adapter.

Model level (Figures 8-15, 19): PyTorch, PyTorch-S, Tutel, DeepSpeed,
MegaBlocks, TurboTransformers, Longformer-S, TVM, and the PIT backend.
"""

from .backends import ModelBackend, TVMBackend, UnsupportedModelError
from .base import DenseKernelBaseline, SpmmKernel, SpmmResult, shared_tiledb
from .cusparse import CuSparseKernel
from .longformer_s import LongformerSBackend
from .moe_systems import DeepSpeedBackend, MegaBlocksBackend, TutelBackend
from .pit_adapter import PITSpmmKernel
from .pit_backend import PITBackend
from .pytorch_s import PyTorchSBackend
from .sparta import SPARTA_COMPILE_US, SparTAKernel
from .sputnik import SputnikKernel, mean_run_length
from .triton_block import TritonBlockSparseKernel, triton_convert_passes
from .turbo import TURBO_MAX_SEQ, TurboTransformerBackend, length_buckets

#: PyTorch semantics == the dense base backend.
PyTorchBackend = ModelBackend

__all__ = [
    "CuSparseKernel",
    "DeepSpeedBackend",
    "DenseKernelBaseline",
    "LongformerSBackend",
    "MegaBlocksBackend",
    "ModelBackend",
    "PITBackend",
    "PITSpmmKernel",
    "PyTorchBackend",
    "PyTorchSBackend",
    "SPARTA_COMPILE_US",
    "SparTAKernel",
    "SpmmKernel",
    "SpmmResult",
    "SputnikKernel",
    "TURBO_MAX_SEQ",
    "TVMBackend",
    "TritonBlockSparseKernel",
    "TurboTransformerBackend",
    "TutelBackend",
    "UnsupportedModelError",
    "length_buckets",
    "mean_run_length",
    "shared_tiledb",
    "triton_convert_passes",
]
