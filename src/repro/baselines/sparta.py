"""SparTA-style static-sparsity compiler baseline (OSDI'22).

SparTA specializes a kernel ahead of time for one *specific* sparsity
pattern: it searches tile shapes, propagates the sparsity attribute, and
emits code with the zeros stripped.  Two faces matter for the figures:

* **compile cost** (Figure 3b): 400-600 *seconds* per pattern — unusable
  when patterns change at runtime;
* **kernel quality** (Figure 16): for a *static* pattern, SparTA covers the
  mask in place with the best tile it can find.  It cannot permute data, so
  at fine granularity (32x1) a GPU-efficient tile covers mostly zeros while
  a granularity-aligned tile is GPU-inefficient — exactly the dilemma PIT's
  transformation escapes (PIT measures 1.5-5.7x over SparTA there).
"""

from __future__ import annotations

import math

import numpy as np

from ..hw.costmodel import matmul_step_time_us, matmul_tile_fixed_time_us
from ..core.cover import cover_grid
from .base import SpmmKernel, SpmmResult, shared_tiledb

#: AOT specialization cost per new sparsity pattern (microseconds).
#: Figure 3b reports 400-600 seconds; we charge the midpoint.
SPARTA_COMPILE_US = 500e6


class SparTAKernel(SpmmKernel):
    """In-place tile cover with AOT-searched tile shape (no permutation)."""

    name = "SparTA"

    def __init__(self, spec, dtype: str = "float32", *, include_compile: bool = False):
        super().__init__(spec, dtype)
        #: Whether spmm() charges the AOT compilation (dynamic-pattern use).
        self.include_compile = include_compile

    def _cover_cost_us(self, mask: np.ndarray, tile, n: int) -> float:
        """Cost of covering the mask in place with (tm, tk) blocks."""
        grid = cover_grid(mask, (tile.tm, tile.tk))
        covered_steps = int(grid.sum())
        n_tiles_cols = math.ceil(n / tile.tn)
        total_steps = covered_steps * n_tiles_cols
        out_tiles = int(grid.any(axis=1).sum()) * n_tiles_cols
        step = matmul_step_time_us(tile, self.dtype, self.spec)
        fixed = matmul_tile_fixed_time_us(tile, self.dtype, self.spec)
        step_waves = math.ceil(total_steps / self.spec.num_sms)
        tile_waves = math.ceil(out_tiles / self.spec.num_sms)
        return step_waves * step + tile_waves * fixed + self.spec.kernel_launch_us

    def best_tile_for(self, mask: np.ndarray, n: int):
        """The AOT tile search: minimize in-place cover cost for the pattern."""
        db = shared_tiledb(self.spec, self.dtype)
        best_tile, best_cost = None, float("inf")
        for entry in db.tiles():
            cost = self._cover_cost_us(mask, entry.tile, n)
            if cost < best_cost:
                best_tile, best_cost = entry.tile, cost
        return best_tile, best_cost

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        tile, compute = self.best_tile_for(mask, n)
        convert = SPARTA_COMPILE_US if self.include_compile else 0.0
        return SpmmResult(
            compute_us=compute,
            convert_us=convert,
            detail={"tile": tile.describe()},
        )
