"""PIT exposed through the kernel-level SpMM interface.

Lets the micro-benchmarks (Figures 16, 17, 18) compare PIT against the
library baselines uniformly.  Selection runs Algorithm 1 per mask (cached by
shape so repeated sparsity ratios re-select, as the online system would).
"""

from __future__ import annotations

import numpy as np

from ..core.detector import index_construction_time_us
from ..core.kernels import SparseMatmulKernel
from ..core.selection import kernel_selection
from ..core.tiledb import TileDB
from ..hw.costmodel import dense_matmul_time_us
from .base import SpmmKernel, SpmmResult


class PITSpmmKernel(SpmmKernel):
    """PIT sparse matmul: Algorithm 1 selection + generated kernel cost."""

    name = "PIT"

    def __init__(self, spec, dtype: str = "float32", *, tensor_core: bool = False):
        super().__init__(spec, dtype)
        self.tensor_core = tensor_core
        self.tiledb = TileDB(spec, dtype, tensor_core=tensor_core)

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        m, k = mask.shape
        choice = kernel_selection([mask], m, k, n, self.tiledb)
        if choice.is_dense_fallback:
            compute = dense_matmul_time_us(
                m, k, n, choice.tile, self.dtype, self.spec,
                tensor_core=self.tensor_core,
            )
            return SpmmResult(
                compute_us=compute,
                convert_us=0.0,
                detail={"choice": choice.describe(), "fallback": True},
            )
        kernel = SparseMatmulKernel(
            choice.tile,
            choice.pit_axis,
            self.spec,
            self.dtype,
            tensor_core=self.tensor_core,
        )
        compute = kernel.estimate_us(mask, n, include_detector=False)
        wl = kernel.workload(mask, n)
        convert = index_construction_time_us(
            mask.shape, self.dtype, self.spec, wl.num_microtiles
        )
        return SpmmResult(
            compute_us=compute,
            convert_us=convert,
            detail={
                "choice": choice.describe(),
                "microtile": str(choice.microtile),
                "covered_sparsity": choice.covered_sparsity,
                "search_us": choice.search_time_us,
            },
        )

    def convert_us(self, mask: np.ndarray, microtile_shape: tuple) -> float:
        """Index-construction latency alone (Figure 18)."""
        from ..core.cover import cover_grid

        grid = cover_grid(mask, microtile_shape)
        return index_construction_time_us(
            mask.shape, self.dtype, self.spec, int(grid.sum())
        )
