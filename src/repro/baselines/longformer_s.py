"""Longformer-S: the model-specific sparse attention of allenai/longformer.

Longformer's authors hand-optimized their window+global pattern by
*decomposing* it: the sliding window becomes a banded matmul over chunked
diagonals, and the global tokens become separate dense slabs.  That removes
coverage waste entirely, but at the price of

* heavy data rearrangement (chunking/rolling Q and K into overlapping
  blocks, padding, and copying results back), and
* temporary intermediate tensors (the Figure 12 memory discussion).

The design is pattern-specific: it cannot serve Museformer or MoE models.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..hw.costmodel import TileConfig
from ..hw.memory import stream_time_us
from ..hw.memtracker import MemoryTracker
from ..hw.spec import dtype_bytes
from ..hw.timeline import ExecReport
from .backends import ModelBackend, UnsupportedModelError

#: Rearrangement passes over Q/K/V for the chunked-diagonal layout:
#: chunk, pad, roll and transpose each of Q/K/V plus the un-chunk of the
#: band outputs.
REARRANGE_PASSES = 10


class LongformerSBackend(ModelBackend):
    """Pattern-decomposed window+global attention."""

    name = "Longformer-S"

    def __init__(self, spec, dtype: str = "float32", *, window: int = 512,
                 num_global: int = 64):
        super().__init__(spec, dtype)
        self.window = window
        self.num_global = num_global

    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask: Optional[np.ndarray] = None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        lengths = np.asarray(lengths)
        batch = int(lengths.size)
        s = int(lengths.max()) if batch else 0
        bh = batch * heads
        w, g = self.window, self.num_global

        tile = TileConfig(32, min(64, max(8, head_dim)), 32)
        # Banded part: the chunked-diagonal implementation computes a full
        # 2w-wide band per row (the overlapping-chunk trick), i.e. 2x the
        # useful window scores.
        band_scores = s * 2 * w
        band_tiles = math.ceil(band_scores / (tile.tm * tile.tn)) * bh
        band_steps = band_tiles * math.ceil(head_dim / tile.tk)
        # Global part: 2*g dense stripes of length s.
        glob_scores = 2 * g * s
        glob_tiles = math.ceil(glob_scores / (tile.tm * tile.tn)) * bh
        glob_steps = glob_tiles * math.ceil(head_dim / tile.tk)

        qk = self._tiled_matmul_us(band_steps + glob_steps, band_tiles + glob_tiles, tile)
        pv = qk  # symmetric second matmul
        total_scores = (band_scores + glob_scores) * bh
        sm_bytes = int(total_scores) * dtype_bytes(self.dtype)
        sm = 3 * stream_time_us(sm_bytes, self.spec) + self.spec.kernel_launch_us

        # The rearrangement overhead: chunk/roll/pad copies of Q, K, V and
        # the un-chunk of outputs.
        qkv_bytes = 3 * batch * s * heads * head_dim * dtype_bytes(self.dtype)
        rearrange = (
            REARRANGE_PASSES * stream_time_us(qkv_bytes, self.spec)
            + REARRANGE_PASSES * self.spec.kernel_launch_us
        )

        # Temporaries: chunked copies (2x QKV) and banded score buffers.
        self._alloc(mem, int(total_scores), "attn.scores")
        self._alloc(mem, 2 * 3 * batch * s * heads * head_dim, "attn.chunked", "conversion")
        self._alloc(mem, batch * s * heads * head_dim, "attn.out")
        return [
            ExecReport(
                op="attn.qk", latency_us=qk + rearrange, convert_us=rearrange
            ),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    def moe_ffn(self, routing, d_model: int, d_ff: int, *, mem=None) -> list:
        raise UnsupportedModelError(
            "Longformer-S is attention-specific; it has no MoE operators"
        )
