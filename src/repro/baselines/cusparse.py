"""cuSPARSE-style CSR SpMM baseline.

cuSPARSE computes on individual non-zeros in CSR format.  Two properties
drive its curves in Figures 3b and 16:

* **conversion**: the dense->CSR build is a multi-pass, synchronizing
  operation whose cost rivals or exceeds the SpMM itself at high sparsity;
* **compute**: per-non-zero processing gathers B rows element-wise with very
  poor data reuse, so the achieved throughput is a tiny fraction of peak —
  the paper measures PIT up to 88.7x faster.

The efficiency constant below (~1.2% of peak FLOPs) reflects published SpMM
throughput for unstructured CSR on V100-class parts at the evaluated
sparsities.
"""

from __future__ import annotations

import numpy as np

from ..hw.memory import stream_time_us
from ..hw.spec import dtype_bytes
from ..tensor.sparse import CUSPARSE_CONVERT_PASSES, dense_to_csr
from .base import SpmmKernel, SpmmResult

#: Fraction of device peak FLOPs unstructured CSR SpMM achieves.
CUSPARSE_COMPUTE_EFFICIENCY = 0.012


class CuSparseKernel(SpmmKernel):
    """cuSPARSE CSR SpMM with explicit conversion accounting."""

    name = "cuSPARSE"

    def convert_us(self, mask: np.ndarray) -> float:
        """Dense->CSR conversion latency (the Figure 3b 'Convert' bars)."""
        m, k = mask.shape
        nnz = int(np.count_nonzero(mask))
        dense_bytes = m * k * dtype_bytes(self.dtype)
        index_bytes = (m + 1) * 4 + nnz * (4 + dtype_bytes(self.dtype))
        return (
            stream_time_us(int(dense_bytes * CUSPARSE_CONVERT_PASSES), self.spec)
            + stream_time_us(index_bytes, self.spec)
            + 3 * self.spec.kernel_launch_us
        )

    def compute_us(self, nnz: int, n: int) -> float:
        """CSR SpMM latency: nnz * N MACs at CSR efficiency."""
        flops = 2.0 * nnz * n
        peak = self.spec.peak_flops(self.dtype) / 1e6  # FLOPs per us
        compute = flops / (peak * CUSPARSE_COMPUTE_EFFICIENCY)
        # Index traffic: row pointers + column indices + values once.
        index_bytes = nnz * (4 + dtype_bytes(self.dtype))
        return compute + stream_time_us(index_bytes, self.spec) + self.spec.kernel_launch_us

    def spmm(self, mask: np.ndarray, n: int) -> SpmmResult:
        nnz = int(np.count_nonzero(mask))
        return SpmmResult(
            compute_us=self.compute_us(nnz, n),
            convert_us=self.convert_us(mask),
            detail={"nnz": nnz},
        )

    def run_functional(self, a: np.ndarray, b: np.ndarray):
        """Real CSR SpMM (for correctness tests): returns (C, SpmmResult)."""
        from ..tensor.sparse import csr_spmm

        csr = dense_to_csr(a, self.dtype, self.spec, passes=CUSPARSE_CONVERT_PASSES)
        out = csr_spmm(csr, b)
        result = self.spmm(a != 0, b.shape[1])
        return out, result
