"""TurboTransformers baseline (Figure 11).

TurboTransformers serves BERT with *smart dynamic batching*: it sorts
requests by length and runs sub-batches of similar lengths sequentially,
so each sub-batch pads only to its own maximum.  It also fuses non-GEMM ops
(activation-memory savings).  Its limits, per the paper:

* it "only supports the BERT model and fails to run other models due to
  missing operators";
* it "crashes when the input sequence length increases due to kernel
  implementation issues";
* the sub-batches run *sequentially*, so short sub-batches underfill the
  GPU — PIT's whole-batch gather is 1.1-1.9x faster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hw.memtracker import MemoryTracker
from ..hw.timeline import ExecReport
from .backends import ModelBackend, UnsupportedModelError

#: Sequence length beyond which TurboTransformers' kernels crash.
TURBO_MAX_SEQ = 512
#: Number of length-sorted sub-batches the scheduler forms.
TURBO_BUCKETS = 4


def length_buckets(lengths, num_buckets: int = TURBO_BUCKETS) -> list:
    """Split lengths into sorted sub-batches (each padded to its own max)."""
    lengths = np.sort(np.asarray(lengths))
    if lengths.size == 0:
        return []
    splits = np.array_split(lengths, min(num_buckets, lengths.size))
    return [s for s in splits if s.size]


class TurboTransformerBackend(ModelBackend):
    """Length-bucketed sequential execution, BERT-only."""

    name = "TurboTransformer"
    fuses_inference_layers = True
    supported_model_families = ("bert",)

    def check_model(self, family: str, max_seq: int) -> None:
        """Raise for unsupported models/lengths (the paper's crash notes)."""
        if family not in self.supported_model_families:
            raise UnsupportedModelError(
                f"TurboTransformers only supports BERT; {family!r} has "
                f"missing operators"
            )
        if max_seq > TURBO_MAX_SEQ:
            raise UnsupportedModelError(
                f"TurboTransformers kernels crash beyond {TURBO_MAX_SEQ} "
                f"tokens (requested {max_seq})"
            )

    def padded_tokens(self, lengths) -> int:
        return sum(
            int(bucket.max()) * bucket.size for bucket in length_buckets(lengths)
        )

    def linear(
        self, lengths, in_f: int, out_f: int,
        *, label: str = "linear", mem: Optional[MemoryTracker] = None,
    ) -> list:
        total = 0.0
        tokens_out = 0
        for bucket in length_buckets(lengths):
            rows = int(bucket.max()) * bucket.size
            total += self._matmul_us(rows, in_f, out_f)
            tokens_out += rows
        self._alloc(mem, tokens_out * out_f, label)
        return [ExecReport(op=label, latency_us=total)]

    def attention(
        self, lengths, heads: int, head_dim: int,
        *, attn_mask=None, causal: bool = False,
        mem: Optional[MemoryTracker] = None,
    ) -> list:
        from ..hw.costmodel import softmax_time_us

        if attn_mask is not None:
            raise UnsupportedModelError(
                "TurboTransformers has no sparse-attention operators"
            )
        qk = sm = pv = 0.0
        score_elems = 0
        for bucket in length_buckets(lengths):
            s = int(bucket.max())
            bh = bucket.size * heads
            qk += self._matmul_us(s, head_dim, s, batch=bh)
            sm += softmax_time_us(bh * s, s, self.dtype, self.spec)
            pv += self._matmul_us(s, s, head_dim, batch=bh)
            score_elems += bh * s * s
        self._alloc(mem, score_elems, "attn.scores")
        return [
            ExecReport(op="attn.qk", latency_us=qk),
            ExecReport(op="attn.softmax", latency_us=sm),
            ExecReport(op="attn.pv", latency_us=pv),
        ]

    def moe_ffn(self, routing, d_model: int, d_ff: int, *, mem=None) -> list:
        raise UnsupportedModelError("TurboTransformers has no MoE operators")
