"""Inference/training workloads: one per evaluated model (Table 2).

A :class:`Workload` couples a model architecture with the dynamic-sparsity
structure of one batch: sequence lengths, activation sparsity, attention
mask statistics, and MoE routing.  The runtime engine walks the architecture
and prices every op against a backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..sparsity.attention import MaskStats, longformer_mask_stats, museformer_mask_stats
from ..sparsity.moe import Router, RoutingResult
from ..sparsity.seqlen import get_dataset
from .config import (
    ModelConfig,
    bert_base,
    longformer,
    museformer,
    opt,
    swin_moe,
    switch_transformer,
)


@dataclass
class Workload:
    """One batch's worth of dynamic sparsity for one model."""

    config: ModelConfig
    #: Per-sequence token counts.
    lengths: np.ndarray
    #: Post-ReLU FFN activation sparsity ratio (None = not exploited).
    act_sparsity: Optional[float] = None
    #: Attention mask statistics shared across layers (None = dense).
    attn_stats: Optional[MaskStats] = None
    #: layer index -> RoutingResult for MoE layers (None elsewhere).
    routing_by_layer: dict = field(default_factory=dict)
    seed: int = 0

    @property
    def batch_size(self) -> int:
        return int(self.lengths.size)

    @property
    def total_tokens(self) -> int:
        return int(self.lengths.sum())

    @property
    def max_len(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def routing_for(self, layer: int) -> Optional[RoutingResult]:
        return self.routing_by_layer.get(layer)

    def is_moe_layer(self, layer: int) -> bool:
        return layer in self.routing_by_layer


def _route_moe_layers(config: ModelConfig, padded_tokens: int, seed: int) -> dict:
    """Build per-layer routing for every MoE layer of the stack.

    Routing is sampled over the *padded* token count (the canonical view a
    padding system sees); the engine rescales it to each backend's effective
    token count via :meth:`RoutingResult.scaled_to`.
    """
    if config.moe is None:
        return {}
    router = Router(
        config.moe.num_experts,
        concentration=config.moe.concentration,
        seed=seed,
    )
    routing = {}
    total_layers = config.n_layers + config.decoder_layers
    for layer in range(total_layers):
        if (layer + 1) % config.moe.every == 0:
            routing[layer] = router.route(padded_tokens, seed=seed * 131 + layer)
    return routing


def bert_workload(
    dataset: str = "mnli", batch_size: int = 32, *, seed: int = 0
) -> Workload:
    """Figure 11: BERT-base, varying sequence lengths per dataset."""
    config = bert_base()
    lengths = get_dataset(dataset).sample(batch_size, seed=seed)
    lengths = np.minimum(lengths, config.max_seq)
    return Workload(config=config, lengths=lengths, seed=seed)


def opt_inference_workload(
    size: str = "13b", batch_size: int = 32, *, act_sparsity: float = 0.99,
    seed: int = 0,
) -> Workload:
    """Figure 10: OPT on Alpaca with ReLU activation sparsity."""
    config = opt(size)
    lengths = get_dataset("alpaca").sample(batch_size, seed=seed)
    lengths = np.minimum(lengths, config.max_seq)
    return Workload(
        config=config, lengths=lengths, act_sparsity=act_sparsity, seed=seed
    )


def opt_training_workload(
    size: str = "125m", batch_size: int = 8, *, seed: int = 0
) -> Workload:
    """Figure 14: OPT fine-tuning on Alpaca (padding waste only; the paper's
    training runs do not exploit activation sparsity)."""
    config = opt(size)
    lengths = get_dataset("alpaca").sample(batch_size, seed=seed)
    lengths = np.minimum(lengths, config.max_seq)
    return Workload(config=config, lengths=lengths, seed=seed)


def switch_workload(
    num_experts: int = 64, batch_size: int = 32, *, seed: int = 0
) -> Workload:
    """Figure 8: Switch Transformer on MNLI with top-1 routing."""
    config = switch_transformer(num_experts)
    lengths = get_dataset("mnli").sample(batch_size, seed=seed)
    lengths = np.minimum(lengths, config.max_seq)
    padded = int(lengths.max()) * int(lengths.size)
    routing = _route_moe_layers(config, padded, seed)
    return Workload(
        config=config, lengths=lengths, routing_by_layer=routing, seed=seed
    )


def swin_moe_workload(
    num_experts: int = 8, batch_size: int = 32, *, seed: int = 0
) -> Workload:
    """Figure 9: Swin-MoE; fixed-resolution images -> constant 196 tokens."""
    config = swin_moe(num_experts)
    lengths = np.full(batch_size, config.max_seq, dtype=int)
    routing = _route_moe_layers(config, int(lengths.sum()), seed)  # no padding: fixed lengths
    return Workload(
        config=config, lengths=lengths, routing_by_layer=routing, seed=seed
    )


def longformer_workload(
    size: str = "base", seq_len: int = 2048, batch_size: int = 1, *, seed: int = 0
) -> Workload:
    """Figure 12: Longformer with window + dynamic global attention."""
    config = longformer(size)
    spec = config.attention
    stats = longformer_mask_stats(
        seq_len, spec.window, num_global=spec.num_global, seed=seed
    )
    lengths = np.full(batch_size, seq_len, dtype=int)
    return Workload(config=config, lengths=lengths, attn_stats=stats, seed=seed)


def museformer_workload(
    seq_len: int = 4096, batch_size: int = 1, *, seed: int = 0
) -> Workload:
    """Figure 13: Museformer's fine/coarse dynamic attention."""
    config = museformer()
    spec = config.attention
    stats = museformer_mask_stats(
        seq_len,
        bar_len=spec.bar_len,
        fine_bars=spec.fine_bars,
        summary_stride=spec.summary_stride,
        seed=seed,
    )
    lengths = np.full(batch_size, seq_len, dtype=int)
    return Workload(config=config, lengths=lengths, attn_stats=stats, seed=seed)
