"""Functional (numpy) transformer blocks — the numerical reference models.

These compute real values at small scale so tests can verify PIT's
model-level claims numerically:

* a padded batch forward equals a PIT-style gathered (varlen) forward on
  the real tokens (the SeqLen policy's correctness);
* an MoE layer computed with the grouped PIT kernel equals the per-token
  expert loop;
* masked attention computed on gathered score tiles equals the dense
  masked reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor.ops import gelu, layernorm, masked_softmax, relu, softmax


@dataclass
class LayerWeights:
    """Weights of one pre-LN transformer encoder/decoder layer."""

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    w1: np.ndarray
    w2: np.ndarray
    ln1_g: np.ndarray
    ln1_b: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray

    @classmethod
    def random(cls, d_model: int, d_ff: int, *, seed: int = 0) -> "LayerWeights":
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(d_model)

        def w(shape):
            return rng.standard_normal(shape) * scale

        return cls(
            wq=w((d_model, d_model)), wk=w((d_model, d_model)),
            wv=w((d_model, d_model)), wo=w((d_model, d_model)),
            w1=w((d_model, d_ff)), w2=w((d_ff, d_model)),
            ln1_g=np.ones(d_model), ln1_b=np.zeros(d_model),
            ln2_g=np.ones(d_model), ln2_b=np.zeros(d_model),
        )


def attention_block(
    x: np.ndarray,
    w: LayerWeights,
    heads: int,
    *,
    attn_mask: np.ndarray = None,
    causal: bool = False,
) -> np.ndarray:
    """Multi-head self-attention over one sequence [s, d_model]."""
    s, d_model = x.shape
    head_dim = d_model // heads
    q = (x @ w.wq).reshape(s, heads, head_dim).transpose(1, 0, 2)
    k = (x @ w.wk).reshape(s, heads, head_dim).transpose(1, 0, 2)
    v = (x @ w.wv).reshape(s, heads, head_dim).transpose(1, 0, 2)
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
    mask = np.ones((s, s), dtype=bool)
    if attn_mask is not None:
        mask &= attn_mask
    if causal:
        mask &= np.tril(np.ones((s, s), dtype=bool))
    probs = masked_softmax(scores, np.broadcast_to(mask, scores.shape))
    out = (probs @ v).transpose(1, 0, 2).reshape(s, d_model)
    return out @ w.wo


def ffn_block(x: np.ndarray, w: LayerWeights, activation: str = "gelu") -> np.ndarray:
    act = relu if activation == "relu" else gelu
    return act(x @ w.w1) @ w.w2


def encoder_layer(
    x: np.ndarray,
    w: LayerWeights,
    heads: int,
    *,
    attn_mask: np.ndarray = None,
    causal: bool = False,
    activation: str = "gelu",
) -> np.ndarray:
    """One pre-LN transformer layer over a single sequence [s, d_model]."""
    h = x + attention_block(
        layernorm(x, w.ln1_g, w.ln1_b), w, heads,
        attn_mask=attn_mask, causal=causal,
    )
    return h + ffn_block(layernorm(h, w.ln2_g, w.ln2_b), w, activation=activation)


def padded_batch_forward(
    sequences: list,
    w: LayerWeights,
    heads: int,
    *,
    activation: str = "gelu",
    causal: bool = False,
) -> list:
    """PyTorch-style forward: pad to the batch max, run, strip padding.

    Padding tokens attend nowhere and are attended by nobody, so the real
    token outputs must equal the per-sequence forward — the property the
    varlen test relies on.
    """
    max_len = max(s.shape[0] for s in sequences)
    outs = []
    for seq in sequences:
        s = seq.shape[0]
        padded = np.zeros((max_len, seq.shape[1]))
        padded[:s] = seq
        token_mask = np.zeros(max_len, dtype=bool)
        token_mask[:s] = True
        attn_mask = np.outer(token_mask, token_mask)
        out = encoder_layer(
            padded, w, heads, attn_mask=attn_mask, causal=causal,
            activation=activation,
        )
        outs.append(out[:s])
    return outs


def varlen_forward(
    sequences: list,
    w: LayerWeights,
    heads: int,
    *,
    activation: str = "gelu",
    causal: bool = False,
    seed: int = 0,
) -> list:
    """PIT-style forward: process each sequence at its exact length, with
    the batch's token rows visited in a shuffled (unordered-index) order."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(sequences))
    outs = [None] * len(sequences)
    for i in order:
        outs[i] = encoder_layer(
            sequences[i], w, heads, causal=causal, activation=activation
        )
    return outs


def moe_layer_reference(
    tokens: np.ndarray,
    expert_w1: np.ndarray,
    expert_w2: np.ndarray,
    assignment: np.ndarray,
    *,
    activation: str = "relu",
) -> np.ndarray:
    """Per-token expert FFN (the semantic ground truth of MoE dispatch)."""
    act = relu if activation == "relu" else gelu
    out = np.zeros((tokens.shape[0], expert_w2.shape[2]))
    for t in range(tokens.shape[0]):
        e = assignment[t]
        out[t] = act(tokens[t] @ expert_w1[e]) @ expert_w2[e]
    return out


def moe_layer_grouped(
    tokens: np.ndarray,
    expert_w1: np.ndarray,
    expert_w2: np.ndarray,
    assignment: np.ndarray,
    *,
    activation: str = "relu",
    seed: int = 0,
) -> np.ndarray:
    """PIT-style grouped execution: gather each expert's tokens (unordered),
    run dense matmuls per expert, scatter back."""
    act = relu if activation == "relu" else gelu
    rng = np.random.default_rng(seed)
    out = np.zeros((tokens.shape[0], expert_w2.shape[2]))
    for e in range(expert_w1.shape[0]):
        idx = np.flatnonzero(assignment == e)
        if idx.size == 0:
            continue
        idx = idx[rng.permutation(idx.size)]
        out[idx] = act(tokens[idx] @ expert_w1[e]) @ expert_w2[e]
    return out
