"""Model configurations — Table 2's model zoo.

Every architecture the evaluation runs, with the published hyperparameters:
Switch Transformer (encoder-decoder MoE), Swin-MoE (vision MoE), OPT
(decoder-only, 125M-30B), BERT-base (encoder), Longformer (sparse-attention
encoder) and Museformer (sparse-attention decoder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class MoESpec:
    """Mixture-of-experts structure of a model."""

    num_experts: int
    #: An MoE FFN replaces the dense FFN every ``every``-th layer.
    every: int = 2
    #: Router imbalance knob (Dirichlet concentration; lower = more skew).
    concentration: float = 0.5


@dataclass(frozen=True)
class AttentionSpec:
    """Sparse-attention structure (Longformer/Museformer)."""

    kind: str  # "dense" | "longformer" | "museformer"
    window: int = 512
    num_global: int = 16
    bar_len: int = 256
    fine_bars: int = 2
    summary_stride: int = 4


@dataclass(frozen=True)
class ModelConfig:
    """One transformer architecture."""

    name: str
    family: str  # bert | opt | switch | swin_moe | longformer | museformer
    n_layers: int
    d_model: int
    heads: int
    d_ff: int
    vocab: int = 50272
    causal: bool = False
    activation: str = "gelu"
    max_seq: int = 512
    moe: Optional[MoESpec] = None
    attention: AttentionSpec = field(default_factory=lambda: AttentionSpec("dense"))
    #: Decoder stack of an encoder-decoder model (Switch Transformer).
    decoder_layers: int = 0

    @property
    def head_dim(self) -> int:
        return self.d_model // self.heads

    def num_moe_layers(self) -> int:
        if self.moe is None:
            return 0
        total = self.n_layers + self.decoder_layers
        return total // self.moe.every

    def num_dense_ffn_layers(self) -> int:
        return self.n_layers + self.decoder_layers - self.num_moe_layers()

    def param_count(self) -> int:
        """Approximate parameter count (weights only, the memory model's
        'weights' category)."""
        per_layer_attn = 4 * self.d_model * self.d_model
        per_layer_ffn = 2 * self.d_model * self.d_ff
        layers = self.n_layers + self.decoder_layers
        dense_ffn = self.num_dense_ffn_layers() * per_layer_ffn
        moe_ffn = 0
        if self.moe is not None:
            moe_ffn = self.num_moe_layers() * self.moe.num_experts * per_layer_ffn
        embed = self.vocab * self.d_model
        return layers * per_layer_attn + dense_ffn + moe_ffn + embed


def bert_base() -> ModelConfig:
    return ModelConfig(
        name="BERT-base", family="bert", n_layers=12, d_model=768, heads=12,
        d_ff=3072, vocab=30522, activation="gelu", max_seq=512,
    )


_OPT_SHAPES = {
    "125m": (12, 768, 12),
    "350m": (24, 1024, 16),
    "1.3b": (24, 2048, 32),
    "13b": (40, 5120, 40),
    "30b": (48, 7168, 56),
}


def opt(size: str) -> ModelConfig:
    """OPT decoder models; ReLU FFN activations (the 99%-sparse ones)."""
    try:
        n_layers, d_model, heads = _OPT_SHAPES[size.lower()]
    except KeyError:
        known = ", ".join(sorted(_OPT_SHAPES))
        raise KeyError(f"unknown OPT size {size!r}; known: {known}") from None
    return ModelConfig(
        name=f"OPT-{size.upper()}", family="opt", n_layers=n_layers,
        d_model=d_model, heads=heads, d_ff=4 * d_model, causal=True,
        activation="relu", max_seq=2048,
    )


def switch_transformer(num_experts: int) -> ModelConfig:
    """Switch-Base: T5-base backbone, MoE FFN every other layer in both the
    encoder and the decoder."""
    return ModelConfig(
        name=f"SwitchTransformer-{num_experts}e", family="switch",
        n_layers=12, decoder_layers=12, d_model=768, heads=12, d_ff=3072,
        vocab=32128, activation="relu", max_seq=128,
        moe=MoESpec(num_experts=num_experts, every=2),
    )


def swin_moe(num_experts: int) -> ModelConfig:
    """Swin-MoE (Swin-B backbone): fixed 196-token visual sequences, MoE in
    the deeper stages (modeled as every other layer of a uniform stack)."""
    return ModelConfig(
        name=f"Swin-MoE-{num_experts}e", family="swin_moe",
        n_layers=24, d_model=512, heads=16, d_ff=2048, vocab=0,
        activation="gelu", max_seq=196,
        moe=MoESpec(num_experts=num_experts, every=2, concentration=2.0),
    )


def longformer(size: str = "base") -> ModelConfig:
    if size == "base":
        n_layers, d_model, heads = 12, 768, 12
    elif size == "large":
        n_layers, d_model, heads = 24, 1024, 16
    else:
        raise KeyError(f"unknown Longformer size {size!r} (base|large)")
    return ModelConfig(
        name=f"Longformer-{size}", family="longformer", n_layers=n_layers,
        d_model=d_model, heads=heads, d_ff=4 * d_model, max_seq=4096,
        attention=AttentionSpec("longformer", window=512, num_global=64),
    )


def museformer() -> ModelConfig:
    return ModelConfig(
        name="Museformer", family="museformer", n_layers=12, d_model=512,
        heads=8, d_ff=2048, causal=True, max_seq=32768,
        attention=AttentionSpec(
            "museformer", bar_len=256, fine_bars=2, summary_stride=4
        ),
    )


#: Table 2 reproduced: model -> (dataset, structure, precision, device).
TABLE2 = {
    "Switch Transformer": ("MNLI", "Encoder-Decoder MoE", ("fp16", "fp32"), "A100"),
    "Swin-MoE": ("ImageNet", "Encoder MoE", ("fp16",), "A100"),
    "OPT": ("Alpaca", "Decoder", ("fp32",), "V100"),
    "BERT": ("GLUE/News/etc", "Encoder", ("fp32",), "V100"),
    "Longformer": ("Arxiv", "Encoder", ("fp32",), "V100"),
    "Museformer": ("LMD", "Decoder", ("fp32",), "V100"),
}
