"""The evaluated models (Table 2): configurations, functional reference
blocks, and per-figure workload builders."""

from .config import (
    TABLE2,
    AttentionSpec,
    ModelConfig,
    MoESpec,
    bert_base,
    longformer,
    museformer,
    opt,
    swin_moe,
    switch_transformer,
)
from .functional import (
    LayerWeights,
    attention_block,
    encoder_layer,
    ffn_block,
    moe_layer_grouped,
    moe_layer_reference,
    padded_batch_forward,
    varlen_forward,
)
from .workloads import (
    Workload,
    bert_workload,
    longformer_workload,
    museformer_workload,
    opt_inference_workload,
    opt_training_workload,
    swin_moe_workload,
    switch_workload,
)

__all__ = [
    "AttentionSpec",
    "LayerWeights",
    "ModelConfig",
    "MoESpec",
    "TABLE2",
    "Workload",
    "attention_block",
    "bert_base",
    "bert_workload",
    "encoder_layer",
    "ffn_block",
    "longformer",
    "longformer_workload",
    "moe_layer_grouped",
    "moe_layer_reference",
    "museformer",
    "museformer_workload",
    "opt",
    "opt_inference_workload",
    "opt_training_workload",
    "padded_batch_forward",
    "swin_moe",
    "swin_moe_workload",
    "switch_transformer",
    "varlen_forward",
]
