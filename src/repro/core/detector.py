"""Online sparsity detection (Section 3.3).

PIT constructs the sparse index *at micro-tile granularity* and *unordered*:
each GPU thread block scans a region of the tensor, and when it finds a
micro-tile containing non-zeros it appends the micro-tile's offset to a
pre-allocated index array via ``atomicAdd``.  Because PIT-axis computation is
permutation invariant, no sorting pass is needed — which is exactly why the
construction is a single bandwidth-bound sweep, unlike cuSPARSE's multi-pass
CSR build or Triton's block-layout build (Figure 18).

The functional side returns real (seeded-shuffled) micro-tile coordinates so
that kernels can gather with them; the shuffle models the nondeterministic
thread-block completion order, and property tests assert results are
invariant to it — that is the PIT property at work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.memory import stream_time_us, tensor_bytes
from ..hw.spec import GPUSpec, dtype_bytes
from .cover import cover_grid
from .microtile import MicroTile


@dataclass
class SparseIndex:
    """An unordered micro-tile index over one sparse tensor."""

    microtile: MicroTile
    #: Shape of the micro-tile grid the tensor was scanned with.
    grid_shape: tuple
    #: ``(num_microtiles, 2)`` array of non-empty micro-tile grid coordinates,
    #: in *unordered* (atomic-add completion) order.
    positions: np.ndarray
    #: Simulated construction latency (microseconds).
    construct_us: float

    @property
    def num_microtiles(self) -> int:
        return int(self.positions.shape[0])

    def index_bytes(self) -> int:
        """Device bytes of the index array (one int32 offset per coordinate)."""
        return self.num_microtiles * 8

    def ordered(self) -> "SparseIndex":
        """A row-major-sorted copy (the ablation baseline: ordered index
        construction would require a sort or ordered atomics)."""
        order = np.lexsort((self.positions[:, 1], self.positions[:, 0]))
        return SparseIndex(
            microtile=self.microtile,
            grid_shape=self.grid_shape,
            positions=self.positions[order],
            construct_us=self.construct_us,
        )


def index_construction_time_us(
    tensor_shape: tuple,
    dtype: str,
    spec: GPUSpec,
    num_microtiles: int,
) -> float:
    """Simulated latency of PIT's online index construction.

    One streaming read of the tensor (every value must be inspected), plus the
    atomic-add index writes (8 bytes per non-empty micro-tile at gather
    efficiency), plus one kernel launch.  No sort, no second pass — the
    unordered-index trick.
    """
    scan = stream_time_us(tensor_bytes(tensor_shape, dtype), spec)
    writes = stream_time_us(num_microtiles * 8, spec) / spec.gather_efficiency
    return scan + writes + spec.kernel_launch_us


def build_index(
    mask: np.ndarray,
    microtile: MicroTile,
    spec: GPUSpec,
    *,
    dtype: str = "float32",
    seed: int = 0,
) -> SparseIndex:
    """Detect non-empty micro-tiles of ``mask`` and build the unordered index.

    ``dtype`` is the dtype of the *values* tensor being scanned (it sets the
    scan bytes; the mask itself is not materialized on a real device).
    """
    grid = cover_grid(mask, microtile.shape)
    coords = np.argwhere(grid)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(coords.shape[0])
    coords = coords[perm]
    construct = index_construction_time_us(mask.shape, dtype, spec, coords.shape[0])
    return SparseIndex(
        microtile=microtile,
        grid_shape=grid.shape,
        positions=coords,
        construct_us=construct,
    )


def build_row_index(
    mask: np.ndarray,
    spec: GPUSpec,
    *,
    dtype: str = "float32",
    seed: int = 0,
) -> "RowIndex":
    """Detect non-empty *rows* — the common case for token-granular dynamic
    sparsity (varying sequence lengths, MoE expert assignment, ReLU rows).

    Cheaper than a full 2-D index: the scan is still one pass but the index
    has one entry per non-empty row.
    """
    if mask.ndim != 2:
        raise ValueError("build_row_index expects a 2-D mask")
    rows = np.flatnonzero((mask != 0).any(axis=1))
    rng = np.random.default_rng(seed)
    rows = rows[rng.permutation(rows.size)]
    construct = index_construction_time_us(mask.shape, dtype, spec, rows.size)
    return RowIndex(rows=rows, num_rows_total=mask.shape[0], construct_us=construct)


@dataclass
class RowIndex:
    """An unordered index of non-empty rows."""

    rows: np.ndarray
    num_rows_total: int
    construct_us: float

    @property
    def num_rows(self) -> int:
        return int(self.rows.size)
