"""Tensor-expression parsing (einsum notation).

Section 3.2 expresses operators in Einstein-summation notation, e.g.::

    C[m, n] += A[m, k] * B[k, n]          # MatMul
    C[p] = A[p] + B[p]                    # Vector addition
    C[n, f, x, y] += A[n, m, x+i, y+j] * B[f, m, i, j]   # Convolution

This module parses such strings into a :class:`TensorExpr`, the data model the
PIT-axis analysis (:mod:`repro.core.pit_axis`) operates on.  The grammar:

* the left-hand side names the output tensor and its indices;
* ``+=`` denotes a sum-reduction over axes absent from the output; ``max=`` /
  ``min=`` / ``*=`` denote other reductions; plain ``=`` means no reduction;
* the right-hand side is one tensor reference or several combined with ``*``
  (product) or ``+`` (elementwise sum);
* an index is either a plain axis name or an affine combination like
  ``x + i`` — axes appearing in such compound indices are *derived* axes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

_REF_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*\[([^\]]*)\]\s*")
_ASSIGN_RE = re.compile(r"(\+=|max=|min=|\*=|=)")
_NAME_RE = re.compile(r"^[A-Za-z_]\w*$")


class ParseError(ValueError):
    """Raised for malformed tensor expressions."""


@dataclass(frozen=True)
class IndexTerm:
    """One index slot of a tensor reference.

    ``axes`` holds the axis names appearing in the slot; a slot with more
    than one axis (e.g. ``x+i``) is a *compound* index, and every axis in it
    is a derived axis for PIT purposes.
    """

    axes: tuple
    source: str

    @property
    def is_compound(self) -> bool:
        return len(self.axes) > 1

    def __str__(self) -> str:
        return self.source


@dataclass(frozen=True)
class TensorRef:
    """A tensor name plus its index terms, e.g. ``A[m, k]``."""

    name: str
    indices: tuple

    def axis_names(self) -> tuple:
        """All axis names used by this reference, in order of appearance."""
        out = []
        for term in self.indices:
            out.extend(term.axes)
        return tuple(out)

    def axis_position(self, axis: str):
        """Index-slot position of ``axis`` in this reference, or None.

        Only meaningful for non-compound slots (a compound slot has no single
        owner position).
        """
        for pos, term in enumerate(self.indices):
            if not term.is_compound and term.axes == (axis,):
                return pos
        return None

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.indices)
        return f"{self.name}[{inner}]"


class ReduceOp(Enum):
    """Reduction combinator applied over non-output axes."""

    NONE = "none"
    SUM = "sum"
    MAX = "max"
    MIN = "min"
    PROD = "prod"

    @property
    def commutative_associative(self) -> bool:
        """Whether the combinator is commutative and associative.

        Theorem 1's precondition.  All combinators expressible in this
        grammar happen to satisfy it; the property is still modeled explicitly
        so that the theorem's check is real (and so extensions adding e.g.
        an ordered scan are correctly rejected).
        """
        return self is not ReduceOp.NONE


_ASSIGN_TO_REDUCE = {
    "+=": ReduceOp.SUM,
    "max=": ReduceOp.MAX,
    "min=": ReduceOp.MIN,
    "*=": ReduceOp.PROD,
    "=": ReduceOp.NONE,
}


@dataclass(frozen=True)
class TensorExpr:
    """A parsed tensor expression: output, inputs, and combinators."""

    output: TensorRef
    inputs: tuple
    reduce_op: ReduceOp
    elementwise_op: str  # "*" | "+" | "" (single input)
    source: str

    def all_axes(self) -> tuple:
        """Every axis name, output first, in order of first appearance."""
        seen = []
        for ref in (self.output, *self.inputs):
            for axis in ref.axis_names():
                if axis not in seen:
                    seen.append(axis)
        return tuple(seen)

    def output_axes(self) -> frozenset:
        return frozenset(self.output.axis_names())

    def derived_axes(self) -> frozenset:
        """Axes that participate in any compound index slot."""
        derived = set()
        for ref in (self.output, *self.inputs):
            for term in ref.indices:
                if term.is_compound:
                    derived.update(term.axes)
        return frozenset(derived)

    def tensor(self, name: str) -> TensorRef:
        for ref in (self.output, *self.inputs):
            if ref.name == name:
                return ref
        raise KeyError(f"no tensor named {name!r} in {self.source!r}")

    def input_names(self) -> tuple:
        return tuple(ref.name for ref in self.inputs)

    def __str__(self) -> str:
        return self.source


def _parse_index_term(text: str) -> IndexTerm:
    source = text.strip()
    if not source:
        raise ParseError("empty index slot")
    parts = [p.strip() for p in source.split("+")]
    axes = []
    for part in parts:
        if not _NAME_RE.match(part):
            raise ParseError(
                f"index term {source!r}: expected axis names joined by '+', "
                f"got component {part!r}"
            )
        axes.append(part)
    if len(set(axes)) != len(axes):
        raise ParseError(f"index term {source!r} repeats an axis")
    return IndexTerm(axes=tuple(axes), source=source)


def _parse_ref(text: str) -> TensorRef:
    match = _REF_RE.fullmatch(text)
    if not match:
        raise ParseError(f"malformed tensor reference: {text!r}")
    name, inner = match.group(1), match.group(2)
    if not inner.strip():
        raise ParseError(f"tensor {name!r} has no indices")
    terms = tuple(_parse_index_term(t) for t in inner.split(","))
    return TensorRef(name=name, indices=terms)


def _split_rhs(rhs: str):
    """Split the right-hand side into refs and the elementwise combinator.

    Only splits on operators *outside* brackets, so ``A[x+i]`` stays intact.
    """
    refs, ops = [], []
    depth = 0
    current = []
    for ch in rhs:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced brackets in {rhs!r}")
        if depth == 0 and ch in "*+":
            refs.append("".join(current))
            ops.append(ch)
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise ParseError(f"unbalanced brackets in {rhs!r}")
    refs.append("".join(current))
    if len(set(ops)) > 1:
        raise ParseError(f"mixed elementwise operators in {rhs!r}")
    return [_parse_ref(r) for r in refs], (ops[0] if ops else "")


def parse_expr(source: str) -> TensorExpr:
    """Parse a tensor-expression string into a :class:`TensorExpr`.

    >>> e = parse_expr("C[m, n] += A[m, k] * B[k, n]")
    >>> e.reduce_op
    <ReduceOp.SUM: 'sum'>
    >>> e.all_axes()
    ('m', 'n', 'k')
    """
    parts = _ASSIGN_RE.split(source, maxsplit=1)
    if len(parts) != 3:
        raise ParseError(f"expected an assignment operator in {source!r}")
    lhs, assign, rhs = parts
    output = _parse_ref(lhs)
    inputs, elementwise = _split_rhs(rhs)
    reduce_op = _ASSIGN_TO_REDUCE[assign]

    expr = TensorExpr(
        output=output,
        inputs=tuple(inputs),
        reduce_op=reduce_op,
        elementwise_op=elementwise,
        source=source.strip(),
    )
    _validate(expr)
    return expr


def _validate(expr: TensorExpr) -> None:
    names = [expr.output.name] + [r.name for r in expr.inputs]
    if len(set(names)) != len(names):
        raise ParseError(f"tensor names must be unique in {expr.source!r}")
    input_axes = set()
    for ref in expr.inputs:
        input_axes.update(ref.axis_names())
    # Every output axis must come from somewhere.
    for axis in expr.output.axis_names():
        if axis not in input_axes:
            raise ParseError(
                f"output axis {axis!r} never appears on the right-hand side "
                f"of {expr.source!r}"
            )
    reduction_axes = input_axes - set(expr.output.axis_names())
    if reduction_axes and expr.reduce_op is ReduceOp.NONE:
        raise ParseError(
            f"axes {sorted(reduction_axes)} are reduced but {expr.source!r} "
            f"uses '=' (no reduction combinator)"
        )
