"""PIT core: the paper's contribution.

Expression analysis (Theorem 1), micro-tiles, CoverAlgo, the tile database,
Algorithm 1 kernel selection, the online sparsity detector, SRead/SWrite and
the generated sparse kernels, tied together by :class:`PITCompiler`.
"""

from .compiler import CompiledMatmul, PITCompiler
from .cover import (
    CoverCache,
    MatmulWorkload,
    count_covering_microtiles,
    cover_grid,
    coverage_waste,
    covered_sparsity,
    dense_matmul_workload,
    matmul_workload,
)
from .detector import (
    RowIndex,
    SparseIndex,
    build_index,
    build_row_index,
    index_construction_time_us,
)
from .expr import ParseError, ReduceOp, TensorExpr, TensorRef, parse_expr
from .kernels import (
    DenseMatmulKernel,
    GroupedMatmulKernel,
    KernelResult,
    SparseMatmulKernel,
    kernel_from_choice,
)
from .microtile import (
    MicroTile,
    MicroTiledOp,
    derive_microtile,
    matmul_microtiled_op,
    microtile_layout_for,
)
from .pit_axis import (
    OPERATOR_EXPRESSIONS,
    TABLE1_PIT_AXES,
    AxisInfo,
    AxisKind,
    classify_axes,
    get_operator_expr,
    is_pit_axis,
    pit_axes,
    table1_rows,
)
from .policy import (
    ActivationPolicy,
    AttentionPolicy,
    MoEPolicy,
    PagedAttentionPolicy,
    PolicyDecision,
    SeqLenPolicy,
)
from .rules import (
    MultiAxisRule,
    PITRule,
    batch_matmul_multi_axis_rules,
    matmul_axes_for_operand,
    matmul_rules,
)
from .selection import (
    SIGNATURE_QUANTUM,
    KernelChoice,
    PlanCache,
    cached_kernel_selection,
    kernel_selection,
    sparsity_signature,
)
from .sread_swrite import (
    gather_microtiles,
    scatter_microtiles,
    sread_cols,
    sread_load_efficiency,
    sread_rows,
    swrite_cols,
    swrite_rows,
)
from .tiledb import TileDB, TileEntry

__all__ = [
    "ActivationPolicy",
    "AttentionPolicy",
    "AxisInfo",
    "AxisKind",
    "CompiledMatmul",
    "CoverCache",
    "DenseMatmulKernel",
    "GroupedMatmulKernel",
    "KernelChoice",
    "KernelResult",
    "MatmulWorkload",
    "MicroTile",
    "MicroTiledOp",
    "MoEPolicy",
    "MultiAxisRule",
    "OPERATOR_EXPRESSIONS",
    "PITCompiler",
    "PITRule",
    "PagedAttentionPolicy",
    "ParseError",
    "PlanCache",
    "PolicyDecision",
    "ReduceOp",
    "RowIndex",
    "SIGNATURE_QUANTUM",
    "SeqLenPolicy",
    "SparseIndex",
    "SparseMatmulKernel",
    "TABLE1_PIT_AXES",
    "TensorExpr",
    "TensorRef",
    "TileDB",
    "TileEntry",
    "batch_matmul_multi_axis_rules",
    "build_index",
    "cached_kernel_selection",
    "build_row_index",
    "classify_axes",
    "count_covering_microtiles",
    "cover_grid",
    "coverage_waste",
    "covered_sparsity",
    "dense_matmul_workload",
    "derive_microtile",
    "gather_microtiles",
    "get_operator_expr",
    "index_construction_time_us",
    "is_pit_axis",
    "kernel_from_choice",
    "kernel_selection",
    "matmul_axes_for_operand",
    "matmul_microtiled_op",
    "matmul_rules",
    "matmul_workload",
    "microtile_layout_for",
    "parse_expr",
    "pit_axes",
    "scatter_microtiles",
    "sparsity_signature",
    "sread_cols",
    "sread_load_efficiency",
    "sread_rows",
    "swrite_cols",
    "swrite_rows",
    "table1_rows",
]
