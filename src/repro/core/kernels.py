"""Generated sparse kernels (the Figure 7 template, realized).

A generated kernel binds a PIT rule to a device and exposes two faces:

* ``run(...)`` — the functional face: build the online sparse index, SRead
  the micro-tiles, execute the dense-tile computation (numpy), SWrite the
  results back.  Produces real values, tested against the dense reference.
* ``estimate_us(...)`` — the cost face: CoverAlgo workload x profiled tile
  cost, wave-quantized, plus detector and SRead surcharges.  This is the
  quantity Algorithm 1 minimizes and the benchmarks report.

Both faces derive from the same rule/tile, so a kernel cannot be fast in the
benchmarks yet wrong in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hw.costmodel import (
    TileConfig,
    dense_matmul_time_us,
    sparse_matmul_time_us,
)
from ..hw.spec import GPUSpec, dtype_bytes
from ..hw.timeline import ExecReport
from ..tensor.layout import Layout
from .cover import MatmulWorkload, dense_matmul_workload, matmul_workload
from .detector import build_row_index, index_construction_time_us
from .microtile import MicroTile, derive_microtile, matmul_microtiled_op
from .sread_swrite import sread_cols, sread_rows, swrite_cols, swrite_rows


@dataclass
class KernelResult:
    """Functional output plus the simulated execution report."""

    output: np.ndarray
    report: ExecReport


def _operand_mask(tensor: np.ndarray, mask) -> np.ndarray:
    if mask is not None:
        return np.asarray(mask, dtype=bool)
    return tensor != 0


def tile_to_json(tile) -> list:
    """Canonical JSON field list of a :class:`TileConfig` — the one place
    that knows the field order, shared by the choice serializer here and
    the tagged plan-cache codec in :mod:`repro.core.plan`."""
    return [tile.tm, tile.tk, tile.tn]


def tile_from_json(data) -> TileConfig:
    return TileConfig(*data)


def microtile_to_json(micro) -> list:
    """Canonical JSON field list of a :class:`MicroTile` (see
    :func:`tile_to_json`)."""
    return list(micro.shape)


def microtile_from_json(data) -> MicroTile:
    return MicroTile(shape=tuple(data))


def choice_to_json(choice) -> dict:
    """Encode a :class:`~repro.core.selection.KernelChoice` as plain JSON data.

    Plans are checkpointable artifacts: a choice serialized here and revived
    with :func:`choice_from_json` compares equal field-for-field, names the
    same kernel through :func:`kernel_from_choice`, and therefore prices and
    executes identically — the property the persistent
    :class:`~repro.core.selection.PlanCache` rests on.
    """
    tile = choice.tile
    micro = choice.microtile
    return {
        "tile": tile_to_json(tile) if tile is not None else None,
        "pit_axis": choice.pit_axis,
        "microtile": microtile_to_json(micro) if micro is not None else None,
        "est_cost_us": choice.est_cost_us,
        "covered_sparsity": choice.covered_sparsity,
        "search_time_us": choice.search_time_us,
    }


def choice_from_json(data: dict):
    """Inverse of :func:`choice_to_json`."""
    from .selection import KernelChoice  # lazy: kernels stays import-light

    tile = data["tile"]
    micro = data["microtile"]
    return KernelChoice(
        tile=tile_from_json(tile) if tile is not None else None,
        pit_axis=data["pit_axis"],
        microtile=microtile_from_json(micro) if micro is not None else None,
        est_cost_us=data["est_cost_us"],
        covered_sparsity=data["covered_sparsity"],
        search_time_us=data["search_time_us"],
    )


def permuted_choice_to_json(choice) -> dict:
    """Encode a :class:`~repro.core.selection.PermutedChoice` — an nm-sparse
    plan — as plain JSON data.  The concrete winning permutation is part of
    the artifact: a revived plan replays the channel order bit-for-bit."""
    return {
        "choice": choice_to_json(choice.choice),
        "permutation": list(choice.permutation),
        "pattern": list(choice.pattern),
    }


def permuted_choice_from_json(data: dict):
    """Inverse of :func:`permuted_choice_to_json`."""
    from .selection import PermutedChoice  # lazy: kernels stays import-light

    return PermutedChoice(
        choice=choice_from_json(data["choice"]),
        permutation=tuple(data["permutation"]),
        pattern=tuple(data["pattern"]),
    )


class DenseMatmulKernel:
    """The dense fallback: no rearrangement, every tile executes."""

    def __init__(self, tile: TileConfig, spec: GPUSpec, dtype: str = "float32",
                 *, tensor_core: bool = False):
        self.tile = tile
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = tensor_core

    def estimate_us(self, m: int, k: int, n: int) -> float:
        return dense_matmul_time_us(
            m, k, n, self.tile, self.dtype, self.spec, tensor_core=self.tensor_core
        )

    def run(self, a: np.ndarray, b: np.ndarray) -> KernelResult:
        out = a @ b
        latency = self.estimate_us(a.shape[0], a.shape[1], b.shape[1])
        report = ExecReport(op="dense_matmul", latency_us=latency)
        return KernelResult(output=out, report=report)


def kernel_from_choice(
    choice,
    spec: GPUSpec,
    dtype: str = "float32",
    *,
    sparse_operand: str = "A",
    tensor_core: bool = False,
):
    """Instantiate the kernel a :class:`~repro.core.selection.KernelChoice`
    names: the dense fallback or the sparse kernel for the winning rule.

    This is the bridge between cached plans and executable kernels — the
    compiler and the serving engine both realize memoized Algorithm 1
    outcomes through it.
    """
    if choice.is_dense_fallback:
        return DenseMatmulKernel(
            choice.tile, spec, dtype, tensor_core=tensor_core
        )
    return SparseMatmulKernel(
        choice.tile,
        choice.pit_axis,
        spec,
        dtype,
        sparse_operand=sparse_operand,
        tensor_core=tensor_core,
    )


class SparseMatmulKernel:
    """A PIT sparse matmul kernel for one (PIT-axis, tile) rule.

    ``C[m, n] += A[m, k] * B[k, n]`` with one sparse operand:

    * ``pit_axis='m'`` (A sparse): SRead gathers non-empty A rows, the dense
      tile computes on the packed rows, SWrite scatters C rows back — the
      first example of Figure 4.
    * ``pit_axis='k'`` (A sparse): SRead gathers non-empty k-columns of A
      *and the matching rows of B*; no SWrite needed (C is dense) — the
      second example of Figure 4.
    * ``pit_axis='n'`` (B sparse): symmetric to 'm' on B's columns.
    """

    def __init__(
        self,
        tile: TileConfig,
        pit_axis: str,
        spec: GPUSpec,
        dtype: str = "float32",
        *,
        sparse_operand: str = "A",
        tensor_core: bool = False,
    ):
        if sparse_operand == "A" and pit_axis not in ("m", "k"):
            raise ValueError(f"sparse A supports axis m or k, got {pit_axis!r}")
        if sparse_operand == "B" and pit_axis not in ("n", "k"):
            raise ValueError(f"sparse B supports axis n or k, got {pit_axis!r}")
        self.tile = tile
        self.pit_axis = pit_axis
        self.spec = spec
        self.dtype = dtype
        self.sparse_operand = sparse_operand
        self.tensor_core = tensor_core
        self.microtiled_op = matmul_microtiled_op(tile, pit_axis)
        self.microtile = derive_microtile(tile, pit_axis, operand=sparse_operand)

    # ------------------------------------------------------------------
    # Cost face
    # ------------------------------------------------------------------
    def workload(self, mask: np.ndarray, dense_extent: int) -> MatmulWorkload:
        return matmul_workload(
            mask,
            self.tile,
            self.pit_axis,
            dense_extent,
            sparse_operand=self.sparse_operand,
        )

    def sread_contig_bytes(self) -> int:
        """Contiguous run of one micro-tile, assuming the piggyback layout
        flip (Section 3.2) already made the PIT-axis non-contiguous."""
        run_elems = max(self.microtile.shape)
        return run_elems * dtype_bytes(self.dtype)

    def estimate_us(
        self,
        mask: np.ndarray,
        dense_extent: int,
        *,
        include_detector: bool = True,
    ) -> float:
        wl = self.workload(mask, dense_extent)
        detector = 0.0
        if include_detector:
            detector = index_construction_time_us(
                mask.shape, self.dtype, self.spec, wl.num_microtiles
            )
        return sparse_matmul_time_us(
            wl.total_k_steps,
            wl.num_output_tiles,
            self.tile,
            self.dtype,
            self.spec,
            tensor_core=self.tensor_core,
            sread_contig_bytes=self.sread_contig_bytes(),
            detector_us=detector,
        )

    # ------------------------------------------------------------------
    # Functional face
    # ------------------------------------------------------------------
    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        mask=None,
        seed: int = 0,
    ) -> KernelResult:
        """Execute functionally; ``mask`` overrides value-derived sparsity."""
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad matmul shapes {a.shape} x {b.shape}")
        if self.sparse_operand == "A":
            op_mask = _operand_mask(a, mask)
            if op_mask.shape != a.shape:
                raise ValueError("mask shape must match A")
            dense_extent = b.shape[1]
        else:
            op_mask = _operand_mask(b, mask)
            if op_mask.shape != b.shape:
                raise ValueError("mask shape must match B")
            dense_extent = a.shape[0]

        rng = np.random.default_rng(seed)
        if self.sparse_operand == "A" and self.pit_axis == "m":
            rows = np.flatnonzero(op_mask.any(axis=1))
            rows = rows[rng.permutation(rows.size)]  # unordered index
            packed = sread_rows(np.where(op_mask, a, 0.0), rows) @ b
            out = swrite_rows((a.shape[0], b.shape[1]), rows, packed)
        elif self.sparse_operand == "A" and self.pit_axis == "k":
            cols = np.flatnonzero(op_mask.any(axis=0))
            cols = cols[rng.permutation(cols.size)]
            a_packed = sread_cols(np.where(op_mask, a, 0.0), cols)
            b_packed = sread_rows(b, cols)
            out = a_packed @ b_packed
        elif self.sparse_operand == "B" and self.pit_axis == "n":
            cols = np.flatnonzero(op_mask.any(axis=0))
            cols = cols[rng.permutation(cols.size)]
            packed = a @ sread_cols(np.where(op_mask, b, 0.0), cols)
            out = swrite_cols((a.shape[0], b.shape[1]), cols, packed)
        else:  # sparse B, axis k
            rows = np.flatnonzero(op_mask.any(axis=1))
            rows = rows[rng.permutation(rows.size)]
            a_packed = sread_cols(a, rows)
            b_packed = sread_rows(np.where(op_mask, b, 0.0), rows)
            out = a_packed @ b_packed

        wl = self.workload(op_mask, dense_extent)
        detector_us = index_construction_time_us(
            op_mask.shape, self.dtype, self.spec, wl.num_microtiles
        )
        latency = self.estimate_us(op_mask, dense_extent)
        report = ExecReport(
            op=f"pit_matmul[{self.pit_axis}]",
            latency_us=latency,
            convert_us=detector_us,
            wasted_fraction=wl.wasted_fraction,
            detail={
                "tile": self.tile.describe(),
                "microtile": str(self.microtile),
                "k_steps": wl.total_k_steps,
                "output_tiles": wl.num_output_tiles,
            },
        )
        return KernelResult(output=out, report=report)


class GroupedMatmulKernel:
    """PIT's MoE expert kernel: one sparse matmul per expert, fused.

    Implements the (b, m) multi-axis extension in the form the Switch
    Transformer evaluation uses: SRead gathers each expert's tokens (rows
    scattered across the batch) straight into dense tiles, each expert
    multiplies by its own weight, and SWrite scatters the outputs back to
    token order.  No padding (Tutel/DeepSpeed) and no input reorganization
    pass (MegaBlocks).
    """

    def __init__(self, tile: TileConfig, spec: GPUSpec, dtype: str = "float32",
                 *, tensor_core: bool = False):
        self.tile = tile
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = tensor_core

    def estimate_us(
        self,
        tokens_per_expert,
        k: int,
        n: int,
        *,
        total_tokens: int,
        include_detector: bool = True,
    ) -> float:
        """Cost of all experts' matmuls executed as one sparse kernel."""
        total_steps = 0
        total_tiles = 0
        k_steps = math.ceil(k / self.tile.tk)
        n_tiles = math.ceil(n / self.tile.tn)
        for count in tokens_per_expert:
            if count == 0:
                continue
            m_tiles = math.ceil(count / self.tile.tm)
            total_steps += m_tiles * n_tiles * k_steps
            total_tiles += m_tiles * n_tiles
        detector = 0.0
        if include_detector:
            # Routing decisions, not tensor values, feed the index: one pass
            # over the token->expert map (4 bytes per token).
            detector = index_construction_time_us(
                (total_tokens, 1), "int32", self.spec, total_tokens
            )
        return sparse_matmul_time_us(
            total_steps,
            total_tiles,
            self.tile,
            self.dtype,
            self.spec,
            tensor_core=self.tensor_core,
            sread_contig_bytes=self.tile.tk * dtype_bytes(self.dtype),
            detector_us=detector,
        )

    def run(
        self,
        tokens: np.ndarray,
        expert_weights: np.ndarray,
        assignment: np.ndarray,
        *,
        seed: int = 0,
    ) -> KernelResult:
        """``tokens``: [T, k]; ``expert_weights``: [E, k, n]; ``assignment``:
        [T] expert id per token.  Returns [T, n] in original token order."""
        num_experts = expert_weights.shape[0]
        if assignment.shape[0] != tokens.shape[0]:
            raise ValueError("assignment length must match token count")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_experts):
            raise ValueError("assignment contains out-of-range expert ids")
        rng = np.random.default_rng(seed)
        out = np.zeros((tokens.shape[0], expert_weights.shape[2]), dtype=tokens.dtype)
        # One stable sort buckets every token by expert (the stable kind
        # keeps each bucket in ascending token order, matching a per-expert
        # flatnonzero scan) — O(T log T) instead of an O(T*E) mask sweep.
        order = np.argsort(assignment, kind="stable")
        bucket_sizes = np.bincount(
            assignment.astype(np.intp, copy=False), minlength=num_experts
        )
        starts = np.zeros(num_experts + 1, dtype=np.int64)
        np.cumsum(bucket_sizes, out=starts[1:])
        counts = [int(c) for c in bucket_sizes]
        for e in range(num_experts):
            if counts[e] == 0:
                continue
            idx = order[starts[e]:starts[e + 1]]
            idx = idx[rng.permutation(idx.size)]  # unordered gather
            packed = sread_rows(tokens, idx) @ expert_weights[e]
            out[idx] = packed
        latency = self.estimate_us(
            counts,
            tokens.shape[1],
            expert_weights.shape[2],
            total_tokens=tokens.shape[0],
        )
        detector_us = index_construction_time_us(
            (tokens.shape[0], 1), "int32", self.spec, tokens.shape[0]
        )
        report = ExecReport(
            op="pit_grouped_matmul",
            latency_us=latency,
            convert_us=detector_us,
            detail={"tokens_per_expert": counts, "tile": self.tile.describe()},
        )
        return KernelResult(output=out, report=report)
