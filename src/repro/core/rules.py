"""PIT rules: (PIT-axis, micro-tile, dense computation tile) triples.

Section 3.2: "a PIT rule contains the combination of a PIT-axis, a micro-tile
shape, and a dense computation tile.  Following a PIT rule, the system applies
SRead/SWrite on the PIT-axis, loading/writing multiple sparsely located
micro-tiles on this axis into/from the dense computation tile."

This module enumerates the feasible rules for an operator given the tile
database, which is the search space Algorithm 1 walks.  It also implements
the multi-axis rules for BatchMatMul ((b, m) / (b, n) joint permutation) the
paper identifies but defers — an extension in this build.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.costmodel import TileConfig
from .microtile import MicroTile, derive_microtile
from .pit_axis import get_operator_expr, pit_axes


@dataclass(frozen=True)
class PITRule:
    """One feasible transformation: permute ``pit_axis``, gather
    ``microtile``-shaped pieces of the sparse operand into ``tile``."""

    operator: str
    pit_axis: str
    microtile: MicroTile
    tile: TileConfig
    #: Which operand the rule reads sparsely ("A" or "B" for matmul).
    sparse_operand: str

    def describe(self) -> str:
        return (
            f"{self.operator}: axis={self.pit_axis}, micro-tile={self.microtile}, "
            f"tile={self.tile.describe()}, sparse={self.sparse_operand}"
        )


#: Matmul PIT-axes that touch each operand; an axis not indexing the sparse
#: operand cannot drive its rearrangement.
_MATMUL_OPERAND_AXES = {"A": ("m", "k"), "B": ("n", "k")}


def matmul_axes_for_operand(sparse_operand: str) -> tuple:
    """Feasible PIT-axes for a matmul with the given sparse operand.

    The axes are first *inferred* from the matmul tensor expression
    (Theorem 1) and then filtered to those indexing the sparse operand.
    """
    inferred = pit_axes(get_operator_expr("MatMul"))
    try:
        touching = _MATMUL_OPERAND_AXES[sparse_operand]
    except KeyError:
        raise ValueError(
            f"sparse_operand must be 'A' or 'B', got {sparse_operand!r}"
        ) from None
    return tuple(a for a in inferred if a in touching)


def matmul_rules(
    tiles,
    *,
    sparse_operand: str = "A",
) -> list:
    """Enumerate all (axis, micro-tile, tile) rules for a sparse matmul.

    ``tiles`` is an iterable of :class:`~repro.hw.costmodel.TileConfig` (or
    tile-DB entries exposing ``.tile``).
    """
    rules = []
    axes = matmul_axes_for_operand(sparse_operand)
    for tile_like in tiles:
        tile = getattr(tile_like, "tile", tile_like)
        for axis in axes:
            micro = derive_microtile(tile, axis, operand=sparse_operand)
            rules.append(
                PITRule(
                    operator="MatMul",
                    pit_axis=axis,
                    microtile=micro,
                    tile=tile,
                    sparse_operand=sparse_operand,
                )
            )
    return rules


@dataclass(frozen=True)
class MultiAxisRule:
    """Extension: joint permutation over two PIT-axes of BatchMatMul.

    The paper (Section 3.2) identifies permutations over (b, m) or (b, n) as
    valid multi-axis PIT rules and leaves them to future work.  Flattening
    (b, m) into one super-axis lets tokens from *different batch elements*
    merge into one dense tile — the transformation MoE dispatch needs
    (tokens of one expert come from many sequences).
    """

    operator: str
    axes: tuple  # e.g. ("b", "m")
    microtile: MicroTile
    tile: TileConfig

    def flattened_extent(self, extents: dict) -> int:
        """Extent of the flattened super-axis."""
        total = 1
        for axis in self.axes:
            total *= extents[axis]
        return total


def batch_matmul_multi_axis_rules(tiles) -> list:
    """Enumerate (b, m) and (b, n) multi-axis rules for BatchMatMul."""
    inferred = set(pit_axes(get_operator_expr("BatchMatMul")))
    rules = []
    for pair in (("b", "m"), ("b", "n")):
        if not set(pair) <= inferred:
            continue
        for tile_like in tiles:
            tile = getattr(tile_like, "tile", tile_like)
            # The flattened super-axis behaves like matmul's m (or n): the
            # micro-tile is one row (or column) of the tile.
            operand = "A" if pair[1] == "m" else "B"
            micro = derive_microtile(tile, pair[1], operand=operand)
            rules.append(
                MultiAxisRule(
                    operator="BatchMatMul",
                    axes=pair,
                    microtile=micro,
                    tile=tile,
                )
            )
    return rules
