"""Transformation policies: how models map their dynamic sparsity onto PIT.

A *policy* decides, per operator in a model, which tensors are sparse, what
granularity their sparsity has, and which PIT rule family applies.  The
policies here correspond one-to-one to the optimizations named in the
evaluation:

* :class:`SeqLenPolicy` — varying sequence lengths in a batch (BERT, OPT,
  Switch Transformer non-MoE layers): tokens are rows; padding rows are the
  sparsity; PIT-axis m gathers real tokens only.
* :class:`MoEPolicy` — expert dispatch (Switch Transformer, Swin-MoE): the
  (b, m) multi-axis rule gathers each expert's tokens into dense tiles.
* :class:`ActivationPolicy` — ReLU activation sparsity in FFN layers (OPT):
  the k-axis rule skips zero activation columns of the second FFN matmul.
* :class:`AttentionPolicy` — dynamic sparse attention (Longformer,
  Museformer): 2-D attention masks covered by micro-tiles on the m-axis of
  softmax(QK^T)V.
* :class:`PagedAttentionPolicy` — the Section 6 observation that vLLM's
  Paged Attention is a special case of PIT: KV-cache pages are micro-tiles
  gathered along the sequence axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pit_axis import get_operator_expr, is_pit_axis


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy tells the engine about one operator invocation."""

    #: Which operand carries dynamic sparsity ("A", "B" or None for dense).
    sparse_operand: str
    #: The PIT-axis family to use.
    pit_axis: str
    #: Granularity of the sparsity as (rows, cols) of the natural unit
    #: (e.g. one token row).
    granularity: tuple
    #: Short label used in reports.
    label: str


class SeqLenPolicy:
    """Varying sequence lengths: padding tokens are zero rows.

    Gathering real tokens along the m-axis of every projection matmul
    removes padding waste entirely; SWrite restores token positions.
    """

    label = "seqlen"

    def decision(self) -> PolicyDecision:
        assert is_pit_axis(get_operator_expr("MatMul"), "m")
        return PolicyDecision(
            sparse_operand="A", pit_axis="m", granularity=(1, -1), label=self.label
        )

    @staticmethod
    def token_mask(lengths, max_len: int) -> np.ndarray:
        """[sum over batch] boolean rows: True for real tokens of a packed
        (batch*max_len, hidden) activation."""
        rows = []
        for length in lengths:
            if length > max_len:
                raise ValueError(f"length {length} exceeds max_len {max_len}")
            row = np.zeros(max_len, dtype=bool)
            row[:length] = True
            rows.append(row)
        return np.concatenate(rows)


class MoEPolicy:
    """Expert dispatch via the (b, m) multi-axis rule.

    Each expert's matmul reads only its routed tokens; token positions inside
    the batch are irrelevant thanks to permutation invariance.
    """

    label = "moe"

    def decision(self) -> PolicyDecision:
        return PolicyDecision(
            sparse_operand="A", pit_axis="m", granularity=(1, -1), label=self.label
        )


class ActivationPolicy:
    """ReLU activation sparsity in FFN second matmuls (OPT).

    After ReLU, activation columns that are zero for *every* row of the tile
    can be skipped on the k-axis; finer per-row zeros are covered at
    micro-tile granularity (1 x 32 in the paper's OPT experiment).
    """

    label = "relu-activation"

    def decision(self) -> PolicyDecision:
        assert is_pit_axis(get_operator_expr("MatMul"), "k")
        return PolicyDecision(
            sparse_operand="A", pit_axis="k", granularity=(1, 32), label=self.label
        )


class AttentionPolicy:
    """Dynamic sparse attention masks (Longformer/Museformer).

    The attention-score matrix is sparse by the (input-dependent) mask; PIT
    covers the mask with micro-tiles and computes only covered score tiles in
    QK^T, softmax and PV.
    """

    label = "sparse-attention"

    def decision(self) -> PolicyDecision:
        return PolicyDecision(
            sparse_operand="A", pit_axis="m", granularity=(1, 32), label=self.label
        )


class PagedAttentionPolicy:
    """vLLM's Paged Attention expressed as a PIT policy (Section 6).

    KV-cache *pages* (fixed-size token blocks at arbitrary physical
    addresses) are exactly micro-tiles of shape (page_size, head_dim); the
    per-request page table is the sparse index; attention gathers pages with
    SRead along the sequence axis — a PIT-axis of BatchMatMul.
    """

    label = "paged-attention"

    def __init__(self, page_size: int = 16):
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self.page_size = page_size

    def decision(self) -> PolicyDecision:
        return PolicyDecision(
            sparse_operand="B",
            pit_axis="k",
            granularity=(self.page_size, -1),
            label=self.label,
        )

    def gather_pages(self, kv_pool: np.ndarray, page_table) -> np.ndarray:
        """Materialize one request's K (or V) from the shared page pool.

        ``kv_pool``: [num_pages, page_size, head_dim]; ``page_table``: page
        ids in sequence order.  This *is* SRead at page granularity.
        """
        table = np.asarray(page_table, dtype=np.int64)
        if table.size and (table.min() < 0 or table.max() >= kv_pool.shape[0]):
            raise ValueError("page table references pages outside the pool")
        gathered = kv_pool[table]
        return gathered.reshape(-1, kv_pool.shape[2])
