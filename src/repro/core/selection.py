"""Kernel selection — Algorithm 1 of the paper.

Given sparsity samples of a dynamically sparse operator, iterate over every
dense computation tile in the TileDB and every feasible PIT-axis, derive the
micro-tile, run CoverAlgo on each sample, estimate the candidate's cost as
``num_tiles x tile_cost`` (plus detector/SRead surcharges), and return the
cheapest candidate.  A dense candidate (no transformation) competes too, so
low-sparsity inputs "seamlessly fall back to the dense computation".

Cover grids are cached per micro-tile shape: many (tile, axis) candidates
share a micro-tile, and Section 5.5's 30-100us online search budget rests on
avoiding redundant passes over the samples.
"""

from __future__ import annotations

import itertools
import math
import os
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.runtime_checks import make_lock
from ..hw.costmodel import TileConfig, sparse_matmul_time_us
from ..hw.spec import GPUSpec, dtype_bytes
from .cover import CoverCache, SampleStack, batched_matmul_workload, matmul_workload
from .detector import index_construction_time_us
from .microtile import MicroTile
from .rules import matmul_rules
from .tiledb import TileDB


@dataclass(frozen=True)
class KernelChoice:
    """Algorithm 1's output: the best computation tile for the operator."""

    tile: TileConfig
    #: None means the dense fallback won.
    pit_axis: Optional[str]
    microtile: Optional[MicroTile]
    #: Estimated per-invocation cost of the winning kernel (microseconds).
    est_cost_us: float
    #: Mean sparsity ratio after covering with the winning micro-tile
    #: (Table 3's "Sparsity Ratio After Cover"); 0.0 for the dense fallback.
    covered_sparsity: float
    #: Wall-clock time the search itself took (microseconds) — Section 5.5
    #: reports 30-100us for the original CUDA implementation.
    search_time_us: float

    @property
    def is_dense_fallback(self) -> bool:
        return self.pit_axis is None

    def describe(self) -> str:
        if self.is_dense_fallback:
            return f"dense fallback, tile={self.tile.describe()}"
        return (
            f"axis={self.pit_axis}, micro-tile={self.microtile}, "
            f"tile={self.tile.describe()}, est={self.est_cost_us:.1f}us"
        )


@dataclass(frozen=True)
class PermutedChoice:
    """An nm-sparse plan: a kernel choice plus the channel permutation that
    won the composed search.

    PermLLM's observation is that the channel order is itself a plan-shaped
    decision: permuting the k-axis before N:M pruning changes which weights
    survive, and therefore the cover cost of every PIT rule.  The winning
    *concrete* permutation is part of the cached plan value (the spec only
    carries the search *policy*), so a warm resolve replays both the kernel
    and the channel order without re-searching.  ``permutation == ()``
    means identity — the search found reordering unprofitable.
    """

    choice: KernelChoice
    #: Concrete k-axis channel order (tuple of ints); () = identity.
    permutation: tuple
    #: The (n, m) structured-sparsity pattern the search projected onto.
    pattern: tuple

    def __post_init__(self) -> None:
        # Normalize sequences so equality/hashing don't depend on whether
        # the codec (or a caller) passed lists or tuples.
        object.__setattr__(
            self, "permutation", tuple(int(p) for p in self.permutation)
        )
        object.__setattr__(self, "pattern", tuple(int(p) for p in self.pattern))

    @property
    def est_cost_us(self) -> float:
        return self.choice.est_cost_us

    @property
    def is_dense_fallback(self) -> bool:
        return self.choice.is_dense_fallback

    @property
    def tile(self):
        return self.choice.tile

    @property
    def pit_axis(self):
        return self.choice.pit_axis

    @property
    def microtile(self):
        return self.choice.microtile

    def describe(self) -> str:
        perm = "identity" if not self.permutation else f"{len(self.permutation)}-perm"
        n, m = self.pattern
        return f"{n}:{m} {perm}, {self.choice.describe()}"


def _rule_workload_shape(rule, transposed: bool) -> tuple:
    """Canonical-orientation grid shape a rule's workload evaluation uses."""
    if rule.pit_axis in ("m", "n"):
        return (1, rule.tile.tk)
    return ((rule.tile.tn if transposed else rule.tile.tm), 1)


def _eval_rules_fast(rules, stack: SampleStack, dense_extent: int,
                     sparse_operand: str, tiledb: TileDB, profile_rules):
    """Vectorized candidate evaluation over a stacked sample batch.

    All samples share one cover pyramid; each rule's workload is computed
    across the whole stack in one pooled-counts pass, and only the O(1)
    cost-model arithmetic runs per sample.
    """
    spec, dtype = tiledb.spec, tiledb.dtype
    transposed = sparse_operand == "B"
    need = []
    for rule in rules:
        need.append(_rule_workload_shape(rule, transposed))
        need.append(rule.microtile.shape)
    stack.prime(need, transposed=transposed)

    sample_shape = stack.sample_shape
    num_samples = stack.num_samples
    best, best_cost, best_cov = None, float("inf"), 0.0
    for rule in rules:
        t0 = time.perf_counter() if profile_rules is not None else 0.0
        wls = batched_matmul_workload(
            stack, rule.tile, rule.pit_axis, dense_extent,
            sparse_operand=sparse_operand,
        )
        cover_counts = stack.num_microtiles(
            rule.microtile.shape, transposed=transposed
        )
        cover_cells = stack.grid_cells(
            rule.microtile.shape, transposed=transposed
        )
        contig = max(rule.microtile.shape) * dtype_bytes(dtype)
        cost = 0.0
        cov = 0.0
        for s in range(num_samples):
            wl = wls[s]
            detector = index_construction_time_us(
                sample_shape, dtype, spec, wl.num_microtiles
            )
            cost += sparse_matmul_time_us(
                wl.total_k_steps,
                wl.num_output_tiles,
                rule.tile,
                dtype,
                spec,
                tensor_core=tiledb.tensor_core,
                sread_contig_bytes=contig,
                detector_us=detector,
            )
            cov += 1.0 - float(cover_counts[s]) / max(1, cover_cells)
        cost /= num_samples
        cov /= num_samples
        if profile_rules is not None:
            profile_rules.append({
                "tile": rule.tile.describe(),
                "pit_axis": rule.pit_axis,
                "microtile": str(rule.microtile),
                "eval_us": (time.perf_counter() - t0) * 1e6,
                "mean_cost_us": cost,
            })
        if cost < best_cost:
            best, best_cost, best_cov = rule, cost, cov
    return best, best_cost, best_cov


def _eval_rules_legacy(rules, samples, dense_extent: int, sparse_operand: str,
                       tiledb: TileDB, profile_rules):
    """The pre-pyramid evaluation loop: one naive cover scan per distinct
    micro-tile shape per sample, per-sample Python iteration per rule.

    Kept verbatim as the ``fastpath=False`` baseline so the selection
    benchmark can attribute the pyramid/batching speedup, and as a second
    implementation the equivalence tests pin the fast path against.
    """
    spec, dtype = tiledb.spec, tiledb.dtype
    caches = [CoverCache(s, pyramid=False) for s in samples]
    best, best_cost, best_cov = None, float("inf"), 0.0
    for rule in rules:
        t0 = time.perf_counter() if profile_rules is not None else 0.0
        cost = 0.0
        cov = 0.0
        for cache in caches:
            sample = cache.mask
            wl = matmul_workload(
                cache, rule.tile, rule.pit_axis, dense_extent,
                sparse_operand=sparse_operand,
            )
            detector = index_construction_time_us(
                sample.shape, dtype, spec, wl.num_microtiles
            )
            contig = max(rule.microtile.shape) * dtype_bytes(dtype)
            cost += sparse_matmul_time_us(
                wl.total_k_steps,
                wl.num_output_tiles,
                rule.tile,
                dtype,
                spec,
                tensor_core=tiledb.tensor_core,
                sread_contig_bytes=contig,
                detector_us=detector,
            )
            grid = cache.grid(
                rule.microtile.shape, transposed=(sparse_operand == "B")
            )
            cov += 1.0 - float(grid.sum()) / max(1, grid.size)
        cost /= len(samples)
        cov /= len(samples)
        if profile_rules is not None:
            profile_rules.append({
                "tile": rule.tile.describe(),
                "pit_axis": rule.pit_axis,
                "microtile": str(rule.microtile),
                "eval_us": (time.perf_counter() - t0) * 1e6,
                "mean_cost_us": cost,
            })
        if cost < best_cost:
            best, best_cost, best_cov = rule, cost, cov
    return best, best_cost, best_cov


def kernel_selection(
    sparsity_samples,
    m: int,
    k: int,
    n: int,
    tiledb: TileDB,
    *,
    sparse_operand: str = "A",
    include_dense_fallback: bool = True,
    fastpath: bool = True,
    profile: Optional[dict] = None,
) -> KernelChoice:
    """Algorithm 1: pick the best (tile, PIT-axis, micro-tile) for an op.

    ``sparsity_samples`` is a list of boolean masks of the sparse operand
    (A: [m, k], B: [k, n]); the paper samples these from recent invocations
    of the dynamic operator.

    ``fastpath=True`` (default) evaluates candidates through the cover-grid
    pyramid with all samples stacked into one batched pass; the result is
    identical to the legacy per-sample loop (``fastpath=False``) — same
    winning tile/axis/micro-tile, cost equal to float tolerance — only the
    search time changes.  Pass a dict as ``profile`` to receive per-rule
    evaluation timings (``profile["rules"]``), so benchmarks can attribute
    where a cold search spends its time.
    """
    samples = [np.asarray(s, dtype=bool) for s in sparsity_samples]
    if not samples:
        raise ValueError("kernel selection needs at least one sparsity sample")
    expected = (m, k) if sparse_operand == "A" else (k, n)
    for s in samples:
        if s.shape != expected:
            raise ValueError(
                f"sample shape {s.shape} != sparse operand shape {expected}"
            )
    dense_extent = n if sparse_operand == "A" else m

    start = time.perf_counter()
    spec = tiledb.spec
    dtype = tiledb.dtype
    profile_rules = [] if profile is not None else None

    # foreach T in GetTilesFromTileDB x foreach A in GetPITAxis
    rules = matmul_rules(tiledb.tiles(), sparse_operand=sparse_operand)
    if fastpath:
        best, best_cost, best_cov = _eval_rules_fast(
            rules, SampleStack(samples), dense_extent, sparse_operand,
            tiledb, profile_rules,
        )
    else:
        best, best_cost, best_cov = _eval_rules_legacy(
            rules, samples, dense_extent, sparse_operand, tiledb,
            profile_rules,
        )

    if best is None and not include_dense_fallback:
        raise ValueError(
            f"no feasible PIT rule for sparse operand {sparse_operand!r} "
            f"(the tile database yielded no candidates) and the dense "
            f"fallback is disabled"
        )

    if best is None:
        choice_axis, choice_micro, choice_tile = None, None, None
    else:
        choice_axis = best.pit_axis
        choice_micro = best.microtile
        choice_tile = best.tile

    if include_dense_fallback:
        # The dense candidate is priced with the same wave-quantized formula
        # as the sparse candidates so that rounding differences cannot flip
        # the comparison; a dense-ish input must fall back (Section 3.2).
        from .cover import dense_matmul_workload

        dense_entry = tiledb.best_dense_tile(m, k, n)
        dwl = dense_matmul_workload(m, k, n, dense_entry.tile)
        dense_cost = sparse_matmul_time_us(
            dwl.total_k_steps,
            dwl.num_output_tiles,
            dense_entry.tile,
            dtype,
            spec,
            tensor_core=tiledb.tensor_core,
        )
        if dense_cost <= best_cost:
            choice_axis, choice_micro = None, None
            choice_tile, best_cost, best_cov = dense_entry.tile, dense_cost, 0.0

    elapsed_us = (time.perf_counter() - start) * 1e6
    if profile is not None:
        profile.update({
            "fastpath": fastpath,
            "num_rules": len(rules),
            "num_samples": len(samples),
            "rules": profile_rules,
            "total_us": elapsed_us,
        })
    return KernelChoice(
        tile=choice_tile,
        pit_axis=choice_axis,
        microtile=choice_micro,
        est_cost_us=best_cost,
        covered_sparsity=best_cov,
        search_time_us=elapsed_us,
    )


def _eval_rules_per_sample(rules, stack: SampleStack, dense_extent: int,
                           sparse_operand: str, tiledb: TileDB, profile_rules):
    """Per-sample candidate costs over a stacked batch (no averaging).

    The nm-sparse search stacks *permutation candidates x samples* into one
    :class:`SampleStack` (the enumerate-all-candidates-in-one-tensor idiom),
    so it needs every stacked entry's cost individually — averaging happens
    per candidate, outside.  Returns ``[(rule, costs[S], covs[S]), ...]``.
    """
    spec, dtype = tiledb.spec, tiledb.dtype
    transposed = sparse_operand == "B"
    need = []
    for rule in rules:
        need.append(_rule_workload_shape(rule, transposed))
        need.append(rule.microtile.shape)
    stack.prime(need, transposed=transposed)

    sample_shape = stack.sample_shape
    num_samples = stack.num_samples
    out = []
    for rule in rules:
        t0 = time.perf_counter() if profile_rules is not None else 0.0
        wls = batched_matmul_workload(
            stack, rule.tile, rule.pit_axis, dense_extent,
            sparse_operand=sparse_operand,
        )
        cover_counts = stack.num_microtiles(
            rule.microtile.shape, transposed=transposed
        )
        cover_cells = stack.grid_cells(
            rule.microtile.shape, transposed=transposed
        )
        contig = max(rule.microtile.shape) * dtype_bytes(dtype)
        costs = np.empty(num_samples)
        covs = np.empty(num_samples)
        for s in range(num_samples):
            wl = wls[s]
            detector = index_construction_time_us(
                sample_shape, dtype, spec, wl.num_microtiles
            )
            costs[s] = sparse_matmul_time_us(
                wl.total_k_steps,
                wl.num_output_tiles,
                rule.tile,
                dtype,
                spec,
                tensor_core=tiledb.tensor_core,
                sread_contig_bytes=contig,
                detector_us=detector,
            )
            covs[s] = 1.0 - float(cover_counts[s]) / max(1, cover_cells)
        if profile_rules is not None:
            profile_rules.append({
                "tile": rule.tile.describe(),
                "pit_axis": rule.pit_axis,
                "microtile": str(rule.microtile),
                "eval_us": (time.perf_counter() - t0) * 1e6,
                "mean_cost_us": float(costs.mean()),
            })
        out.append((rule, costs, covs))
    return out


def nm_permutation_candidates(samples, policy, k: int) -> list:
    """Deterministic k-axis channel-order candidates for the nm search.

    Always proposes identity (``None`` sentinel), a density sort (channels
    ordered by total non-zeros descending — clusters live channels so N:M
    groups keep them together), and a striped deal (density-sorted channels
    dealt round-robin across groups — balances each m-group's live count so
    fewer survivors are dropped).  A ``("learned", count, seed)`` policy
    adds ``count`` explicitly seeded random shuffles, the cheap stand-in
    for PermLLM's learned permutation.  Everything is a pure function of
    the samples and the policy, so the winning order is cacheable.
    """
    counts = np.zeros(k, dtype=np.int64)
    for s in samples:
        counts += np.asarray(s, dtype=bool).sum(axis=1, dtype=np.int64)
    dense_first = np.argsort(-counts, kind="stable")
    candidates = [None, tuple(int(c) for c in dense_first)]
    candidates.append(
        tuple(int(c) for c in dense_first[_striped_order(k)])
    )
    if policy:
        if policy[0] != "learned":
            raise ValueError(
                f"unknown nm permutation policy {policy[0]!r} "
                f"(expected 'learned')"
            )
        _, count, seed = policy
        rng = np.random.default_rng(int(seed))
        for _ in range(int(count)):
            candidates.append(tuple(int(c) for c in rng.permutation(k)))
    return candidates


def _striped_order(k: int) -> np.ndarray:
    """Indices that deal ``k`` sorted positions round-robin into sqrt-ish
    stripes, spreading the densest channels across the axis."""
    stripes = max(2, math.isqrt(k))
    keys = np.array([(i % stripes) * k + i // stripes for i in range(k)])
    return np.argsort(keys, kind="stable")


def nm_kernel_selection(
    sparsity_samples,
    m: int,
    k: int,
    n: int,
    tiledb: TileDB,
    *,
    pattern: tuple,
    permutation: tuple = (),
    include_dense_fallback: bool = True,
    profile: Optional[dict] = None,
) -> PermutedChoice:
    """Algorithm 1 composed with a channel-permutation search (nm-sparse).

    For every candidate permutation of the weight's k-axis, project the
    permuted mask onto the ``(n, m)`` structured pattern (N:M pruning keeps
    the densest ``n`` of every aligned ``m``-group), then evaluate every
    (tile, PIT-axis) rule over *all* candidates stacked into one
    :class:`SampleStack` — one ``[candidates x samples, G]`` pass per rule,
    the PR-3 batched-evaluation idiom.  The cheapest (rule, permutation)
    pair wins; the dense fallback competes exactly as in
    :func:`kernel_selection`.  The full tile database is searched — no
    candidate truncation.
    """
    from ..sparsity.masks import nm_prune_mask

    samples = [np.asarray(s, dtype=bool) for s in sparsity_samples]
    if not samples:
        raise ValueError("nm kernel selection needs at least one sample")
    for s in samples:
        if s.shape != (k, n):
            raise ValueError(
                f"sample shape {s.shape} != sparse operand shape {(k, n)}"
            )
    nn, mm = int(pattern[0]), int(pattern[1])
    if not 1 <= nn <= mm:
        raise ValueError(f"invalid N:M pattern {pattern!r}")
    if k % mm:
        raise ValueError(f"k={k} not divisible by N:M group size {mm}")

    start = time.perf_counter()
    profile_rules = [] if profile is not None else None
    candidates = nm_permutation_candidates(samples, permutation, k)
    stacked = []
    for perm in candidates:
        for s in samples:
            permuted = s if perm is None else s[np.asarray(perm), :]
            stacked.append(nm_prune_mask(permuted, nn, mm, axis=0))

    rules = matmul_rules(tiledb.tiles(), sparse_operand="B")
    per_rule = _eval_rules_per_sample(
        rules, SampleStack(stacked), m, "B", tiledb, profile_rules
    )
    num_samples = len(samples)
    best_rule, best_perm_idx, best_cost, best_cov = None, 0, float("inf"), 0.0
    for rule, costs, covs in per_rule:
        cand_costs = costs.reshape(len(candidates), num_samples).mean(axis=1)
        cand_covs = covs.reshape(len(candidates), num_samples).mean(axis=1)
        idx = int(np.argmin(cand_costs))
        if cand_costs[idx] < best_cost:
            best_rule = rule
            best_perm_idx = idx
            best_cost = float(cand_costs[idx])
            best_cov = float(cand_covs[idx])

    if best_rule is None and not include_dense_fallback:
        raise ValueError(
            "no feasible PIT rule for the nm-sparse operand and the dense "
            "fallback is disabled"
        )

    choice_axis = best_rule.pit_axis if best_rule is not None else None
    choice_micro = best_rule.microtile if best_rule is not None else None
    choice_tile = best_rule.tile if best_rule is not None else None
    winning_perm = candidates[best_perm_idx]

    if include_dense_fallback:
        from .cover import dense_matmul_workload

        dense_entry = tiledb.best_dense_tile(m, k, n)
        dwl = dense_matmul_workload(m, k, n, dense_entry.tile)
        dense_cost = sparse_matmul_time_us(
            dwl.total_k_steps,
            dwl.num_output_tiles,
            dense_entry.tile,
            tiledb.dtype,
            tiledb.spec,
            tensor_core=tiledb.tensor_core,
        )
        if dense_cost <= best_cost:
            choice_axis, choice_micro = None, None
            choice_tile, best_cost, best_cov = dense_entry.tile, dense_cost, 0.0
            winning_perm = None  # a dense kernel has no channel order

    elapsed_us = (time.perf_counter() - start) * 1e6
    if profile is not None:
        profile.update({
            "num_rules": len(rules),
            "num_samples": num_samples,
            "num_candidates": len(candidates),
            "rules": profile_rules,
            "total_us": elapsed_us,
        })
    return PermutedChoice(
        choice=KernelChoice(
            tile=choice_tile,
            pit_axis=choice_axis,
            microtile=choice_micro,
            est_cost_us=best_cost,
            covered_sparsity=best_cov,
            search_time_us=elapsed_us,
        ),
        permutation=winning_perm if winning_perm is not None else (),
        pattern=(nn, mm),
    )


#: Default width of one sparsity-signature quantization bucket.  Masks whose
#: density statistics agree to within one bucket share a cached plan: the
#: selection landscape is flat at that resolution (neighbouring candidates'
#: costs differ by far more than a few percent of density), while patterns
#: that drift past it genuinely can flip the winning rule.
SIGNATURE_QUANTUM = 0.05


def sparsity_signature(sparsity_samples, *, quantum: float = SIGNATURE_QUANTUM):
    """Quantized sparsity signature of a sample set (a hashable tuple).

    Captures the three statistics Algorithm 1's outcome actually depends on:
    overall density, live-row fraction and live-column fraction (the latter
    two discriminate m-axis from k-axis granularity).  Each is quantized to
    ``quantum``-wide buckets so that invocation-to-invocation noise in a
    dynamic pattern maps to the same signature — the key property the
    :class:`PlanCache` needs (Figure 20: exact patterns almost never repeat,
    but their *statistics* are stable).
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    samples = [np.asarray(s, dtype=bool) for s in sparsity_samples]
    if not samples:
        raise ValueError("sparsity signature needs at least one sample")
    densities, row_lives, col_lives = [], [], []
    for s in samples:
        # Density and live-row fraction both derive from the per-row counts,
        # so each sample is reduced twice (rows, then a column any-mark)
        # instead of three full scans; the values are exactly the old ones.
        row_nnz = s.sum(axis=1, dtype=np.int64)
        densities.append(row_nnz.sum() / max(1, s.size))
        row_lives.append((row_nnz > 0).mean())
        col_lives.append(s.any(axis=0).mean())
    density = float(np.mean(densities))
    row_live = float(np.mean(row_lives))
    col_live = float(np.mean(col_lives))
    q = 1.0 / quantum
    return (
        int(round(density * q)),
        int(round(row_live * q)),
        int(round(col_live * q)),
    )


#: Process-wide shared plan caches by name — see :meth:`PlanCache.shared`.
_SHARED_PLAN_CACHES: dict = {}
_SHARED_PLAN_CACHES_LOCK = make_lock("shared_plan_caches", reentrant=False)
_SHARED_PLAN_CACHES_PID = os.getpid()


def _reset_shared_after_fork() -> None:
    """Drop the registry when the pid changes (i.e. after a fork).

    A forked worker process inherits the parent's module-level registry by
    memory copy, so without this guard ``PlanCache.shared()`` in the child
    would silently alias the *parent's* cache objects — sharing stats and
    LRU state that the cluster layer expects to be per-process and synced
    explicitly over the transport.  Runs lock-free on purpose — the
    inherited lock is unusable in the child (see the pragma below).
    """
    global _SHARED_PLAN_CACHES_PID, _SHARED_PLAN_CACHES
    global _SHARED_PLAN_CACHES_LOCK
    if os.getpid() == _SHARED_PLAN_CACHES_PID:
        return
    _SHARED_PLAN_CACHES_PID = os.getpid()
    # pit: allow[lock-discipline] - post-fork reset runs before the child
    # spawns any thread, and the inherited lock may be held forever by a
    # parent thread that does not exist in the child; rebuilding both the
    # registry and its lock is the only safe order here.
    _SHARED_PLAN_CACHES = {}
    _SHARED_PLAN_CACHES_LOCK = make_lock("shared_plan_caches", reentrant=False)

#: Default shard count for new caches.  Eight shards keep bookkeeping
#: contention negligible for the replica counts the serving stack runs
#: (lineups of 2-8) without fragmenting the LRU into uselessly small slices.
DEFAULT_PLAN_CACHE_SHARDS = 8


class _PlanCacheShard:
    """One lock domain of a :class:`PlanCache`.

    ``entries`` maps key -> ``[value, stamp]`` where ``stamp`` is a
    monotonically increasing recency counter shared by all shards, so a
    global LRU order can be reconstructed (for persistence and age-out)
    without any cross-shard coordination on the hot path.  ``inflight``
    holds one :class:`threading.Event` per key whose Algorithm 1 search is
    currently running — the single-flight protocol of
    :meth:`PlanCache.get_or_compute`.
    """

    __slots__ = ("entries", "lock", "hits", "misses", "evictions", "inflight")

    def __init__(self):
        self.entries: OrderedDict = OrderedDict()
        self.lock = make_lock("shard")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inflight: dict = {}


class PlanCacheLoadError(ValueError):
    """A plan-cache dump could not be parsed or decoded.

    Raised by :meth:`PlanCache.load` for *corruption* — truncated or
    invalid JSON, missing header fields, undecodable entries — as distinct
    from the plain :class:`ValueError` it raises for a well-formed dump
    that is merely incompatible (unknown format version, foreign TileDB
    identity).  Subclasses ``ValueError`` so existing callers that guard
    ``load`` with one ``except`` keep working.
    """


class PlanCache:
    """Sharded, thread-safe LRU memo of kernel plans.

    The deployed PIT keeps its online search at 30-100us by reusing cover
    grids and pre-profiled tiles; a serving process goes one step further and
    reuses the whole Algorithm 1 *outcome* across requests whose dynamic
    patterns are statistically alike.  Entries are
    ``(m, k, n, sparse_operand, signature, tiledb_key) -> KernelChoice``
    (arbitrary plan objects are accepted — the PIT backend memoizes its
    activation-cover workloads here too, so one cache serves one process).

    Keys are routed to one of ``shards`` lock domains by their
    ``(plan kind, sparsity signature)`` so that concurrent replicas serving
    different traffic classes never contend on one lock, and
    :meth:`get_or_compute` runs cold searches *outside* the shard lock with
    single-flight deduplication — a cold Algorithm 1 search neither stalls
    warm lookups on other shards nor on its own shard, and concurrent
    requests for the same plan run the search exactly once.

    ``capacity`` bounds the total entry count; eviction pops the LRU entry
    of the shard an insert lands on (never the entry just inserted), so
    with entries spread across shards the cache can transiently exceed
    ``capacity`` by at most ``shards - 1``.  ``shards=1`` reproduces the
    pre-sharding cache decision-for-decision.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        quantum: float = SIGNATURE_QUANTUM,
        shards: int = DEFAULT_PLAN_CACHE_SHARDS,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.capacity = capacity
        self.quantum = quantum
        self.shards = shards
        self._shard_list = [_PlanCacheShard() for _ in range(shards)]
        self._stamp = itertools.count()

    def __len__(self) -> int:
        # Sequential per-shard locking (never nested): the total is a
        # consistent-enough snapshot, and no cross-shard lock order exists.
        total = 0
        for s in self._shard_list:
            with s.lock:
                total += len(s.entries)
        return total

    def __contains__(self, key) -> bool:
        shard = self._shard_for(key)
        with shard.lock:
            return key in shard.entries

    # -- counters ---------------------------------------------------------

    @property
    def hits(self) -> int:
        total = 0
        for s in self._shard_list:
            with s.lock:
                total += s.hits
        return total

    @property
    def misses(self) -> int:
        total = 0
        for s in self._shard_list:
            with s.lock:
                total += s.misses
        return total

    @property
    def evictions(self) -> int:
        total = 0
        for s in self._shard_list:
            with s.lock:
                total += s.evictions
        return total

    # -- shard routing ----------------------------------------------------

    @staticmethod
    def _shard_token(key):
        """The (plan kind, signature) portion of a cache key.

        Recognizes the three key layouts this process produces — PlanSpec
        keys ``("plan", kind, m, k, n, operand, signature, fallback, db)``
        (optionally wrapped in a ``("memo", ...)`` namespace), the extended
        11-tuple that nm-sparse specs emit (same prefix, then ``pattern``
        and ``permutation`` before the db key), and the legacy 6-tuple
        ``(m, k, n, operand, (signature, fallback), db)`` — and falls back
        to the whole key for ad-hoc entries.  A spec and its memos
        co-shard, and so do a legacy key and its PlanSpec equivalent for
        one traffic class, which is what makes "different traffic never
        contends" hold.
        """
        body = key
        if isinstance(body, tuple) and body and body[0] == "memo":
            body = body[1:]
        if isinstance(body, tuple):
            if len(body) in (9, 11) and body[0] == "plan":
                return (body[1], body[6])
            if len(body) == 6 and isinstance(body[4], tuple):
                return (None, body[4])
        return key

    def _shard_for(self, key) -> _PlanCacheShard:
        if self.shards == 1:
            return self._shard_list[0]
        token = self._shard_token(key)
        index = zlib.crc32(repr(token).encode("utf-8")) % self.shards
        return self._shard_list[index]

    # -- registry ---------------------------------------------------------

    @classmethod
    def shared(
        cls,
        name: str = "default",
        *,
        capacity: int = 256,
        quantum: float = SIGNATURE_QUANTUM,
        shards: int = DEFAULT_PLAN_CACHE_SHARDS,
    ) -> "PlanCache":
        """The process-wide cache registered under ``name``.

        The serving stack builds engines, compilers and backends per stream
        (and the replica scheduler builds none of its own — it deliberately
        rides its engine's cache); this is the analogue of
        :meth:`~repro.core.tiledb.TileDB.shared` for plan memos, so separate
        engines in one process can warm each other.  ``capacity``,
        ``quantum`` and ``shards`` apply on first construction; a later call
        with different values for the same name raises rather than silently
        handing back a cache with other parameters.  Registry access is
        serialized — concurrent first calls from the front end's workers
        observe exactly one instance.  Fork-aware: a forked child gets a
        fresh registry instead of aliasing its parent's caches.
        """
        _reset_shared_after_fork()
        with _SHARED_PLAN_CACHES_LOCK:
            cache = _SHARED_PLAN_CACHES.get(name)
            if cache is None:
                cache = cls(capacity, quantum=quantum, shards=shards)
                _SHARED_PLAN_CACHES[name] = cache
                return cache
            if (
                cache.capacity != capacity
                or cache.quantum != quantum
                or cache.shards != shards
            ):
                raise ValueError(
                    f"shared plan cache {name!r} exists with capacity="
                    f"{cache.capacity}, quantum={cache.quantum}, "
                    f"shards={cache.shards}; requested capacity={capacity}, "
                    f"quantum={quantum}, shards={shards}"
                )
            return cache

    @staticmethod
    def clear_shared() -> None:
        """Drop the shared instances (tests that vary cache parameters)."""
        _reset_shared_after_fork()
        with _SHARED_PLAN_CACHES_LOCK:
            _SHARED_PLAN_CACHES.clear()

    def make_key(
        self, m: int, k: int, n: int, sparse_operand: str, signature, tiledb_key
    ):
        return (m, k, n, sparse_operand, signature, tiledb_key)

    # -- lookups ----------------------------------------------------------

    def get(self, key):
        """Look up a plan; counts a hit or a miss and refreshes recency."""
        shard = self._shard_for(key)
        with shard.lock:
            try:
                slot = shard.entries[key]
            except KeyError:
                shard.misses += 1
                return None
            shard.entries.move_to_end(key)
            slot[1] = next(self._stamp)
            shard.hits += 1
            return slot[0]

    def put(self, key, value) -> None:
        shard = self._shard_for(key)
        # Snapshot the other shards' sizes *before* taking the target
        # shard's lock: calling `len(self)` while holding it would nest
        # shard locks, and two inserts landing on different shards could
        # then deadlock by nesting in opposite order.  The snapshot may be
        # stale by the time we evict — the cache already tolerates a
        # transient overshoot of up to `shards - 1` entries (class
        # docstring), and single-threaded behavior is unchanged.
        other_entries = 0
        for s in self._shard_list:
            if s is not shard:
                with s.lock:
                    other_entries += len(s.entries)
        with shard.lock:
            shard.entries[key] = [value, next(self._stamp)]
            shard.entries.move_to_end(key)
            while (
                other_entries + len(shard.entries) > self.capacity
                and len(shard.entries) > 1
            ):
                shard.entries.popitem(last=False)
                shard.evictions += 1

    def entries(self):
        """Snapshot of ``(key, value)`` pairs in global LRU order.

        Sequential per-shard locking (never nested), same as ``__len__``:
        the stamps let the per-shard slices merge into one oldest-first
        order without any cross-shard lock.  This is the in-memory analogue
        of :meth:`save` — the cluster layer uses it to seed a new worker
        process with everything the host already knows.
        """
        stamped = []
        for s in self._shard_list:
            with s.lock:
                for key, (value, stamp) in s.entries.items():
                    stamped.append((stamp, key, value))
        stamped.sort(key=lambda item: item[0])
        return [(key, value) for _, key, value in stamped]

    def get_or_compute(self, key, compute):
        """Single-flight lookup-or-search; returns ``(value, hit)``.

        On a hit, behaves exactly like :meth:`get`.  On a miss, the caller
        becomes the *owner* of the search for ``key``: the shard lock is
        released while ``compute()`` runs, so warm lookups — even on the
        same shard — proceed during a cold Algorithm 1 search.  Concurrent
        callers for the same key wait on the owner's result and count a hit
        (the search ran once), so hit/miss totals match the sequential
        schedule.  If the owner's ``compute`` raises, waiters retry —
        exactly one of them becomes the next owner.
        """
        shard = self._shard_for(key)
        while True:
            with shard.lock:
                slot = shard.entries.get(key)
                if slot is not None:
                    shard.entries.move_to_end(key)
                    slot[1] = next(self._stamp)
                    shard.hits += 1
                    return slot[0], True
                waiter = shard.inflight.get(key)
                if waiter is None:
                    shard.inflight[key] = threading.Event()
                    shard.misses += 1
                    break
            # Another thread owns the search for this key; wait and re-check.
            waiter.wait()
        try:
            value = compute()
        except BaseException:
            with shard.lock:
                event = shard.inflight.pop(key, None)
            if event is not None:
                event.set()
            raise
        self.put(key, value)
        with shard.lock:
            event = shard.inflight.pop(key, None)
        if event is not None:
            event.set()
        return value, False

    #: On-disk dump format version; bumped whenever key/value encoding
    #: changes.  Format 2 adds the ``shards`` and multi-class
    #: ``tiledb_keys`` headers; format-1 dumps still load.
    DUMP_FORMAT = 2

    @staticmethod
    def _embedded_tiledb_key(key):
        """The TileDB identity a cache key carries, if any.

        Every plan and memo key ends in a
        :attr:`~repro.core.tiledb.TileDB.cache_key` — a 4-tuple led by a
        :class:`~repro.hw.spec.GPUSpec`.  Ad-hoc keys return ``None``.
        """
        if isinstance(key, tuple) and key:
            last = key[-1]
            if (
                isinstance(last, tuple)
                and len(last) == 4
                and isinstance(last[0], GPUSpec)
            ):
                return last
        return None

    def save(self, path, *, tiledb_key, max_entries: Optional[int] = None) -> dict:
        """Persist the cache to ``path`` as JSON.

        ``tiledb_key`` is the :attr:`~repro.core.tiledb.TileDB.cache_key`
        of the *primary* tile database the cached plans were selected
        against; it is recorded in the dump header so :meth:`load` can
        refuse a dump that was built over different tiles (such plans would
        silently misprice).  Mixed lineups cache plans for several device
        classes in one process-wide cache, so the header additionally
        records ``tiledb_keys`` — every class identity found among the
        saved entries — and :meth:`load` can validate against the full set.

        ``max_entries`` is the spill/age policy: when set, only the
        ``max_entries`` most recently used entries are persisted (global
        LRU order across shards) and the rest age out of the dump.  Replay
        against the dump stays zero-cold-search for every entry under the
        cap.

        Entries whose key or value cannot be serialized (ad-hoc objects a
        caller memoized) are skipped, not fatal.  Returns
        ``{"entries": saved, "skipped": skipped, "aged_out": aged_out}``.
        """
        import json
        import os

        from .plan import encode_value

        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")

        items = []
        for shard in self._shard_list:
            with shard.lock:
                items.extend(
                    (slot[1], key, slot[0])
                    for key, slot in shard.entries.items()
                )
        items.sort(key=lambda item: item[0])  # oldest first
        aged_out = 0
        if max_entries is not None and len(items) > max_entries:
            aged_out = len(items) - max_entries
            items = items[aged_out:]

        primary = tuple(tiledb_key)
        class_keys = {primary: None}  # insertion-ordered set, primary first
        entries = []
        skipped = 0
        for _, key, value in items:
            try:
                entries.append(
                    {"key": encode_value(key), "value": encode_value(value)}
                )
            except TypeError:
                skipped += 1
                continue
            embedded = self._embedded_tiledb_key(key)
            if embedded is not None:
                class_keys.setdefault(embedded, None)
        payload = {
            "format": self.DUMP_FORMAT,
            "capacity": self.capacity,
            "quantum": self.quantum,
            "shards": self.shards,
            "tiledb_key": encode_value(primary),
            "tiledb_keys": [encode_value(k) for k in class_keys],
            "entries": entries,
        }
        # Write-then-rename so a crash (or a json.dump failure) mid-save
        # never leaves a truncated dump where a good one stood: readers see
        # either the old complete file or the new complete file.
        tmp_path = f"{path}.tmp"
        try:
            with open(tmp_path, "w") as f:
                json.dump(payload, f)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        os.replace(tmp_path, path)
        return {"entries": len(entries), "skipped": skipped, "aged_out": aged_out}

    @classmethod
    def load(
        cls,
        path,
        *,
        expected_tiledb_key=None,
        expected_tiledb_keys=None,
        shards: Optional[int] = None,
    ) -> "PlanCache":
        """Revive a cache saved by :meth:`save` (fresh hit/miss counters).

        When ``expected_tiledb_key`` is given, the dump's recorded *primary*
        TileDB identity must match it exactly — a dump built against a
        different device/dtype/tile budget raises ``ValueError`` instead of
        silently serving plans that were selected over other tiles.

        When ``expected_tiledb_keys`` is given (a mixed lineup's full set of
        class identities), *every* class the dump contains must be in the
        expected set; a dump carrying plans for a foreign device class
        raises and names the offending class.

        ``shards`` overrides the revived cache's shard count (defaults to
        the dump header's, or the library default for format-1 dumps).
        """
        import json

        from .plan import decode_value

        try:
            with open(path) as f:
                payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise PlanCacheLoadError(
                f"plan-cache dump {path} is not valid JSON "
                f"(truncated or corrupt dump?): {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise PlanCacheLoadError(
                f"plan-cache dump {path} must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        fmt = payload.get("format")
        if fmt not in (1, cls.DUMP_FORMAT):
            raise ValueError(
                f"unsupported plan-cache dump format {fmt!r} "
                f"(this build reads formats 1 and {cls.DUMP_FORMAT})"
            )
        try:
            dump_key = decode_value(payload["tiledb_key"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanCacheLoadError(
                f"plan-cache dump {path} has a missing or undecodable "
                f"tiledb_key header: {exc!r}"
            ) from exc
        if expected_tiledb_key is not None and dump_key != tuple(expected_tiledb_key):
            raise ValueError(
                f"plan-cache dump was built against TileDB {dump_key!r}, "
                f"which does not match the expected {tuple(expected_tiledb_key)!r}; "
                f"plans selected over different tiles are not transferable"
            )
        try:
            dump_keys = [
                decode_value(k)
                for k in payload.get("tiledb_keys", [payload["tiledb_key"]])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise PlanCacheLoadError(
                f"plan-cache dump {path} has an undecodable tiledb_keys "
                f"header: {exc!r}"
            ) from exc
        if expected_tiledb_keys is not None:
            allowed = {tuple(k) for k in expected_tiledb_keys}
            foreign = [k for k in dump_keys if tuple(k) not in allowed]
            if foreign:
                raise ValueError(
                    f"plan-cache dump contains plans selected against TileDB "
                    f"{foreign[0]!r}, which does not match any expected device "
                    f"class; plans selected over different tiles are not "
                    f"transferable"
                )
        if shards is None:
            shards = payload.get("shards", DEFAULT_PLAN_CACHE_SHARDS)
        try:
            capacity = payload["capacity"]
            quantum = payload["quantum"]
            raw_entries = payload["entries"]
        except KeyError as exc:
            raise PlanCacheLoadError(
                f"plan-cache dump {path} is missing required header "
                f"field {exc}"
            ) from exc
        cache = cls(capacity, quantum=quantum, shards=shards)
        # Entries were dumped oldest-first, so inserting in file order
        # rebuilds the global recency order exactly.
        for position, entry in enumerate(raw_entries):
            try:
                key = decode_value(entry["key"])
                value = decode_value(entry["value"])
            except (KeyError, TypeError, ValueError) as exc:
                raise PlanCacheLoadError(
                    f"plan-cache dump {path} entry {position} is "
                    f"undecodable: {exc!r}"
                ) from exc
            shard = cache._shard_for(key)
            with shard.lock:
                shard.entries[key] = [value, next(cache._stamp)]
        return cache

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self),
            "capacity": self.capacity,
            "shards": self.shards,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        for shard in self._shard_list:
            with shard.lock:
                shard.entries.clear()


def cached_kernel_selection(
    sparsity_samples,
    m: int,
    k: int,
    n: int,
    tiledb: TileDB,
    *,
    sparse_operand: str = "A",
    include_dense_fallback: bool = True,
    cache: PlanCache,
) -> KernelChoice:
    """Algorithm 1 with plan memoization.

    Computes the quantized signature of the samples and returns the cached
    :class:`KernelChoice` when an equivalent problem was already selected for
    (same shape, operand, signature and tile database); otherwise runs the
    full search and stores the result.  A cache hit costs one dict lookup —
    the amortization the serving engine's steady state rests on.
    """
    signature = sparsity_signature(sparsity_samples, quantum=cache.quantum)
    # The fallback flag is part of the plan's identity: the same samples can
    # legitimately yield a dense plan with the fallback and a PIT plan (or a
    # ValueError) without it.
    key = cache.make_key(
        m,
        k,
        n,
        sparse_operand,
        (signature, include_dense_fallback),
        getattr(tiledb, "cache_key", id(tiledb)),
    )
    choice, _ = cache.get_or_compute(
        key,
        lambda: kernel_selection(
            sparsity_samples,
            m,
            k,
            n,
            tiledb,
            sparse_operand=sparse_operand,
            include_dense_fallback=include_dense_fallback,
        ),
    )
    return choice
