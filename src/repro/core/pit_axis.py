"""PIT-axis inference — Theorem 1 of the paper.

    "An axis is called PIT-axis, if and only if all computations on the axis
     are commutative and associative."

Operationally (Section 3.2):

1. axes that *derive new axes* (participate in index arithmetic like ``x+i``
   in convolution) are **not** PIT-axes — shuffling them changes which
   elements meet;
2. among the remaining axes, every **spatial** axis (present in the output)
   is a PIT-axis — permuting it merely relabels output coordinates, and the
   inverse permutation at SWrite restores them;
3. a **reduction** axis (absent from the output) is a PIT-axis iff its
   reduction combinator is commutative and associative (sum/max/min/prod are).

Table 1 of the paper is regenerated from this analysis — see
:data:`OPERATOR_EXPRESSIONS` and :func:`table1_rows`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .expr import ReduceOp, TensorExpr, parse_expr


class AxisKind(Enum):
    """Role of an axis in a tensor expression."""

    SPATIAL = "spatial"      # present in the output
    REDUCTION = "reduction"  # absent from the output, reduced over
    DERIVED = "derived"      # participates in index arithmetic


@dataclass(frozen=True)
class AxisInfo:
    """Classification of one axis plus the Theorem-1 verdict."""

    name: str
    kind: AxisKind
    is_pit: bool
    #: Human-readable justification (useful in error messages and docs).
    reason: str


def classify_axes(expr: TensorExpr) -> dict:
    """Classify every axis of ``expr`` and decide PIT-axis eligibility.

    Returns ``{axis_name: AxisInfo}`` in order of first appearance.
    """
    derived = expr.derived_axes()
    output_axes = expr.output_axes()
    result: dict = {}
    for axis in expr.all_axes():
        if axis in derived:
            info = AxisInfo(
                name=axis,
                kind=AxisKind.DERIVED,
                is_pit=False,
                reason=(
                    f"axis {axis!r} participates in index arithmetic; "
                    f"permuting it changes which elements are combined"
                ),
            )
        elif axis in output_axes:
            info = AxisInfo(
                name=axis,
                kind=AxisKind.SPATIAL,
                is_pit=True,
                reason=(
                    f"axis {axis!r} is spatial; permutation only relabels "
                    f"output coordinates and SWrite restores them"
                ),
            )
        else:
            ok = expr.reduce_op.commutative_associative
            info = AxisInfo(
                name=axis,
                kind=AxisKind.REDUCTION,
                is_pit=ok,
                reason=(
                    f"axis {axis!r} is reduced with {expr.reduce_op.value}, "
                    f"which is commutative and associative"
                    if ok
                    else f"axis {axis!r} uses a non-commutative reduction"
                ),
            )
        result[axis] = info
    return result


def pit_axes(expr: TensorExpr) -> tuple:
    """The PIT-axes of an expression, in order of first appearance."""
    return tuple(name for name, info in classify_axes(expr).items() if info.is_pit)


def is_pit_axis(expr: TensorExpr, axis: str) -> bool:
    """Whether ``axis`` is a PIT-axis of ``expr`` (KeyError if unknown)."""
    return classify_axes(expr)[axis].is_pit


# ----------------------------------------------------------------------
# Table 1: widely-used operators, their expressions and PIT-axes.
# ----------------------------------------------------------------------

#: The operator expressions of Table 1, verbatim.
OPERATOR_EXPRESSIONS = {
    "ReduceSum": "C[p] += A[p, l]",
    "VectorAdd": "C[p] = A[p] + B[p]",
    "MatMul": "C[m, n] += A[m, k] * B[k, n]",
    "BatchMatMul": "C[b, m, n] += A[b, m, k] * B[b, k, n]",
    "Convolution": "C[n, f, x, y] += A[n, m, x+i, y+j] * B[f, m, i, j]",
}

#: The PIT-axes Table 1 reports for each operator (ground truth for tests).
TABLE1_PIT_AXES = {
    "ReduceSum": ("p", "l"),
    "VectorAdd": ("p",),
    "MatMul": ("m", "n", "k"),
    "BatchMatMul": ("b", "m", "n", "k"),
    "Convolution": ("n", "m", "f"),
}


def get_operator_expr(name: str) -> TensorExpr:
    """Parse one of the Table 1 operator expressions by name."""
    try:
        source = OPERATOR_EXPRESSIONS[name]
    except KeyError:
        known = ", ".join(sorted(OPERATOR_EXPRESSIONS))
        raise KeyError(f"unknown operator {name!r}; known: {known}") from None
    return parse_expr(source)


def table1_rows():
    """Regenerate Table 1: (operator, expression, inferred PIT-axes).

    The PIT-axes column is *computed* by :func:`pit_axes`, not copied — the
    unit tests assert it matches :data:`TABLE1_PIT_AXES`.
    """
    rows = []
    for name, source in OPERATOR_EXPRESSIONS.items():
        expr = parse_expr(source)
        inferred = pit_axes(expr)
        # Present in Table 1's order (the paper lists output-order for
        # spatial axes followed by reduction axes, except Convolution which
        # lists n, m, f).
        rows.append((name, source, inferred))
    return rows
