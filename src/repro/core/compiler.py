"""PIT compiler front-end (Figure 5's architecture, end to end).

``PITCompiler`` ties the pieces together the way the runtime in Section 3
does: given sparsity samples of a dynamic operator it runs the transformation
policy (Algorithm 1 kernel selection over the TileDB), JIT-"generates" the
sparse kernel for the winning rule, and returns a :class:`CompiledMatmul`
whose ``run`` detects sparsity online and executes with SRead/SWrite.

Compiled kernels are cached per (shape, dtype, operand) — the *kernel* is
reused across invocations even though every invocation sees a different
sparsity pattern; only the cheap online index is rebuilt.  (Figure 20 shows
why caching per *pattern* would be useless: patterns almost never repeat.)
The policy can be periodically refreshed with new samples, mirroring the
"Sparse Tensor Samples / Periodically" arrow of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hw.spec import GPUSpec
from .kernels import (
    DenseMatmulKernel,
    KernelResult,
    SparseMatmulKernel,
    kernel_from_choice,
)
from .selection import (
    KernelChoice,
    PlanCache,
    cached_kernel_selection,
    kernel_selection,
)
from .tiledb import TileDB


@dataclass
class CompiledMatmul:
    """A JIT-compiled (possibly sparse) matmul bound to one problem shape."""

    m: int
    k: int
    n: int
    choice: KernelChoice
    kernel: object  # SparseMatmulKernel | DenseMatmulKernel
    sparse_operand: str

    def run(self, a: np.ndarray, b: np.ndarray, *, mask=None, seed: int = 0) -> KernelResult:
        """Execute with online sparsity detection on the current input."""
        if isinstance(self.kernel, DenseMatmulKernel):
            return self.kernel.run(a, b)
        return self.kernel.run(a, b, mask=mask, seed=seed)

    def estimate_us(self, mask=None) -> float:
        """Estimated latency for an input with the given mask (or the
        selection-time estimate when no mask is supplied)."""
        if mask is None or isinstance(self.kernel, DenseMatmulKernel):
            return self.choice.est_cost_us
        dense_extent = self.n if self.sparse_operand == "A" else self.m
        return self.kernel.estimate_us(np.asarray(mask, dtype=bool), dense_extent)


class PITCompiler:
    """JIT compiler for dynamically sparse operators on one device."""

    def __init__(
        self,
        spec: GPUSpec,
        dtype: str = "float32",
        *,
        tensor_core: bool = False,
        max_tiles: int = 24,
        plan_cache: Optional[PlanCache] = None,
    ):
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = tensor_core
        self.tiledb = TileDB.shared(
            spec, dtype, tensor_core=tensor_core, max_tiles=max_tiles
        )
        #: Optional shared memo of Algorithm 1 outcomes: when set, selection
        #: is keyed on the quantized sparsity signature so statistically
        #: alike sample sets skip the search entirely.
        self.plan_cache = plan_cache
        self._cache: dict = {}

    def compile_matmul(
        self,
        sparsity_samples,
        m: int,
        k: int,
        n: int,
        *,
        sparse_operand: str = "A",
        use_cache: bool = True,
    ) -> CompiledMatmul:
        """Select a kernel with Algorithm 1 and instantiate it.

        ``sparsity_samples``: recent masks of the sparse operand (the online
        sparsity detector feeds these in the deployed system).
        """
        cache_key = (m, k, n, sparse_operand)
        if use_cache and cache_key in self._cache:
            return self._cache[cache_key]

        if self.plan_cache is not None:
            choice = cached_kernel_selection(
                sparsity_samples, m, k, n, self.tiledb,
                sparse_operand=sparse_operand, cache=self.plan_cache,
            )
        else:
            choice = kernel_selection(
                sparsity_samples, m, k, n, self.tiledb,
                sparse_operand=sparse_operand,
            )
        kernel = kernel_from_choice(
            choice,
            self.spec,
            self.dtype,
            sparse_operand=sparse_operand,
            tensor_core=self.tensor_core,
        )
        compiled = CompiledMatmul(
            m=m, k=k, n=n, choice=choice, kernel=kernel, sparse_operand=sparse_operand
        )
        if use_cache:
            self._cache[cache_key] = compiled
        return compiled

    def refresh(
        self,
        compiled: CompiledMatmul,
        new_samples,
    ) -> CompiledMatmul:
        """Re-run selection with fresh samples (Figure 5's periodic update).

        Returns a new compiled kernel (and replaces the cache entry) — the
        previous one stays valid for in-flight work.
        """
        fresh = self.compile_matmul(
            new_samples,
            compiled.m,
            compiled.k,
            compiled.n,
            sparse_operand=compiled.sparse_operand,
            use_cache=False,
        )
        self._cache[(compiled.m, compiled.k, compiled.n, compiled.sparse_operand)] = fresh
        return fresh

    def cache_size(self) -> int:
        return len(self._cache)
