"""PIT compiler front-end (Figure 5's architecture, end to end).

``PITCompiler`` ties the pieces together the way the runtime in Section 3
does: given a :class:`~repro.core.plan.PlanSpec` (or sparsity samples to
derive one from) it resolves the kernel plan through the shared
:class:`~repro.core.plan.Planner` — Algorithm 1 over the TileDB, memoized on
the spec — JIT-"generates" the sparse kernel for the winning rule, and
returns a :class:`CompiledMatmul` whose ``run`` detects sparsity online and
executes with SRead/SWrite.

Compiled kernels are cached per *spec* — shape, operand **and** quantized
sparsity signature — so two sparsity regimes of one shape each keep their
own kernel (the old shape-only cache silently served whichever compiled
first).  The kernel is still reused across invocations even though every
invocation sees a different exact pattern; only the cheap online index is
rebuilt (Figure 20 shows why caching per *pattern* would be useless).  The
policy can be periodically refreshed with new samples, mirroring the
"Sparse Tensor Samples / Periodically" arrow of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..hw.spec import GPUSpec
from .kernels import (
    DenseMatmulKernel,
    KernelResult,
    SparseMatmulKernel,
    kernel_from_choice,
)
from .plan import Planner, PlanSpec
from .selection import KernelChoice, PlanCache
from .tiledb import TileDB


@dataclass
class CompiledMatmul:
    """A JIT-compiled (possibly sparse) matmul bound to one problem shape."""

    m: int
    k: int
    n: int
    choice: KernelChoice
    kernel: object  # SparseMatmulKernel | DenseMatmulKernel
    sparse_operand: str
    #: The spec this kernel was compiled for (None for hand-built instances).
    spec: Optional[PlanSpec] = None

    def run(self, a: np.ndarray, b: np.ndarray, *, mask=None, seed: int = 0) -> KernelResult:
        """Execute with online sparsity detection on the current input."""
        if isinstance(self.kernel, DenseMatmulKernel):
            return self.kernel.run(a, b)
        return self.kernel.run(a, b, mask=mask, seed=seed)

    def estimate_us(self, mask=None) -> float:
        """Estimated latency for an input with the given mask (or the
        selection-time estimate when no mask is supplied)."""
        if mask is None or isinstance(self.kernel, DenseMatmulKernel):
            return self.choice.est_cost_us
        dense_extent = self.n if self.sparse_operand == "A" else self.m
        return self.kernel.estimate_us(np.asarray(mask, dtype=bool), dense_extent)


class PITCompiler:
    """JIT compiler for dynamically sparse operators on one device."""

    def __init__(
        self,
        spec: GPUSpec,
        dtype: str = "float32",
        *,
        tensor_core: bool = False,
        max_tiles: int = 24,
        plan_cache: Optional[PlanCache] = None,
    ):
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = tensor_core
        self.tiledb = TileDB.shared(
            spec, dtype, tensor_core=tensor_core, max_tiles=max_tiles
        )
        #: The single Algorithm 1 entry point.  When a shared
        #: :class:`PlanCache` is supplied (the serving engine threads one
        #: through compiler, backend and scheduler) selection outcomes are
        #: shared across all of them; otherwise the planner owns a private
        #: cache so statistically alike sample sets still skip the search.
        self.planner = Planner(self.tiledb, plan_cache)
        self.plan_cache = self.planner.cache
        self._cache: dict = {}  # PlanSpec -> CompiledMatmul

    def plan_spec(
        self,
        sparsity_samples,
        m: int,
        k: int,
        n: int,
        *,
        sparse_operand: str = "A",
        kind: str = "proj",
    ) -> PlanSpec:
        """The :class:`PlanSpec` these samples of an ``[m,k,n]`` matmul name."""
        return self.planner.make_spec(
            kind, sparsity_samples, m, k, n, sparse_operand=sparse_operand
        )

    def compile(
        self,
        spec: PlanSpec,
        sparsity_samples=None,
        *,
        use_cache: bool = True,
    ) -> CompiledMatmul:
        """Resolve ``spec`` through the planner and instantiate its kernel.

        ``sparsity_samples`` are only consulted when the plan is not cached
        (Algorithm 1 needs masks to search over); a warm spec compiles
        without touching a mask.
        """
        if use_cache:
            hit = self._cache.get(spec)
            if hit is not None:
                return hit
        make_samples = (
            (lambda: sparsity_samples) if sparsity_samples is not None else None
        )
        resolved = self.planner.resolve(spec, make_samples)
        kernel = kernel_from_choice(
            resolved.choice,
            self.spec,
            self.dtype,
            sparse_operand=spec.sparse_operand,
            tensor_core=self.tensor_core,
        )
        compiled = CompiledMatmul(
            m=spec.m,
            k=spec.k,
            n=spec.n,
            choice=resolved.choice,
            kernel=kernel,
            sparse_operand=spec.sparse_operand,
            spec=spec,
        )
        if use_cache:
            self._cache[spec] = compiled
        return compiled

    def refresh(
        self,
        compiled: CompiledMatmul,
        new_samples,
    ) -> CompiledMatmul:
        """Re-run selection with fresh samples (Figure 5's periodic update).

        Returns the compiled kernel for the new samples' spec and installs
        it in the compile cache — the previous kernel stays valid (and
        cached under its own spec) for in-flight work.  When the fresh
        samples quantize to the same signature the plan is unchanged by
        construction and the cached choice is reused.
        """
        kind = compiled.spec.kind if compiled.spec is not None else "proj"
        spec = self.planner.make_spec(
            kind,
            new_samples,
            compiled.m,
            compiled.k,
            compiled.n,
            sparse_operand=compiled.sparse_operand,
        )
        fresh = self.compile(spec, new_samples, use_cache=False)
        self._cache[spec] = fresh
        return fresh

    def cache_size(self) -> int:
        return len(self._cache)
