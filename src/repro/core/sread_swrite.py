"""SRead / SWrite: the sparse data-rearrangement primitives (Section 3.1).

SRead loads sparsely located micro-tiles from global memory into the dense
tile layout in shared memory; SWrite scatters output micro-tiles back to
their original coordinates.  The rearrangement is piggybacked on the loads
and stores a tensor kernel performs anyway, so the only surcharge is the
difference between streaming and transaction-granular (gather) bandwidth —
zero once a micro-tile fills a 32-byte transaction.

Functionally these are gathers/scatters; this module implements them with
numpy fancy indexing so generated kernels compute real values, and exposes
the latency surcharge model used by the cost layer.
"""

from __future__ import annotations

import numpy as np

from ..hw.memory import gather_efficiency
from ..hw.spec import GPUSpec, dtype_bytes
from .detector import RowIndex, SparseIndex


def sread_rows(data: np.ndarray, row_index: np.ndarray) -> np.ndarray:
    """Gather whole rows (micro-tiles of shape ``(1, width)``).

    Returns the gathered rows *in index order* — which is unordered; the
    caller's SWrite undoes the permutation.  This is the m-axis SRead of the
    Figure 4 example.
    """
    return data[np.asarray(row_index, dtype=np.int64)]


def swrite_rows(
    out_shape: tuple,
    row_index: np.ndarray,
    rows: np.ndarray,
    *,
    dtype=None,
) -> np.ndarray:
    """Scatter computed rows back to their original coordinates.

    The inverse permutation is implicit: row ``i`` of ``rows`` goes to
    ``out[row_index[i]]``, so any SRead order round-trips correctly.
    Unindexed rows stay zero (they correspond to all-zero inputs).
    """
    idx = np.asarray(row_index, dtype=np.int64)
    if idx.size != rows.shape[0]:
        raise ValueError(
            f"row_index has {idx.size} entries but rows has {rows.shape[0]}"
        )
    out = np.zeros(out_shape, dtype=dtype if dtype is not None else rows.dtype)
    out[idx] = rows
    return out


def sread_cols(data: np.ndarray, col_index: np.ndarray) -> np.ndarray:
    """Gather columns (micro-tiles of shape ``(height, 1)``) — k-axis SRead."""
    return data[:, np.asarray(col_index, dtype=np.int64)]


def swrite_cols(
    out_shape: tuple,
    col_index: np.ndarray,
    cols: np.ndarray,
    *,
    dtype=None,
) -> np.ndarray:
    """Scatter computed columns back — n-axis SWrite."""
    idx = np.asarray(col_index, dtype=np.int64)
    if idx.size != cols.shape[1]:
        raise ValueError(
            f"col_index has {idx.size} entries but cols has {cols.shape[1]} columns"
        )
    out = np.zeros(out_shape, dtype=dtype if dtype is not None else cols.dtype)
    out[:, idx] = cols
    return out


def gather_microtiles(data: np.ndarray, index: SparseIndex) -> np.ndarray:
    """Gather full micro-tiles by grid coordinates into a packed block array.

    Returns ``(num_microtiles, mh, mw)``; out-of-range tails (from grid
    padding) are zero-filled, matching a guarded GPU load.
    """
    mh, mw = index.microtile.shape
    num = index.num_microtiles
    out = np.zeros((num, mh, mw), dtype=data.dtype)
    rows, cols = data.shape
    for i, (br, bc) in enumerate(index.positions):
        r0, c0 = br * mh, bc * mw
        r1, c1 = min(r0 + mh, rows), min(c0 + mw, cols)
        out[i, : r1 - r0, : c1 - c0] = data[r0:r1, c0:c1]
    return out


def scatter_microtiles(
    out_shape: tuple,
    index: SparseIndex,
    blocks: np.ndarray,
    *,
    dtype=None,
) -> np.ndarray:
    """Scatter packed micro-tiles back to their grid coordinates."""
    mh, mw = index.microtile.shape
    if blocks.shape[0] != index.num_microtiles:
        raise ValueError(
            f"expected {index.num_microtiles} blocks, got {blocks.shape[0]}"
        )
    out = np.zeros(out_shape, dtype=dtype if dtype is not None else blocks.dtype)
    rows, cols = out_shape
    for i, (br, bc) in enumerate(index.positions):
        r0, c0 = br * mh, bc * mw
        r1, c1 = min(r0 + mh, rows), min(c0 + mw, cols)
        out[r0:r1, c0:c1] = blocks[i, : r1 - r0, : c1 - c0]
    return out


def sread_load_efficiency(
    microtile_contig_bytes: int, spec: GPUSpec
) -> float:
    """Effective load bandwidth fraction of SRead for a given micro-tile.

    Micro-tiles whose contiguous run fills a transaction load at
    ``spec.gather_efficiency`` (near streaming); narrower micro-tiles waste
    transaction bytes proportionally.  This is the entire cost of SRead —
    there is no separate rearrangement pass.
    """
    return gather_efficiency(microtile_contig_bytes, spec)
