"""The unified planning API: one serializable plan surface for Algorithm 1.

PIT's central claim is that the kernel choice for a dynamically sparse
operator is a *pure function* of the op shape plus the observed sparsity
pattern (Algorithm 1, Section 3.2).  Every layer of this repo that wants a
plan — the JIT compiler, the model backend, the serving engine — therefore
asks the same question, and this module gives the question itself a name:

* :class:`PlanSpec` — a frozen, hashable, JSON-round-trippable description
  of "the plan I need": op kind, problem dims, sparse operand, the quantized
  sparsity signature, and the identity of the tile database the plan must be
  valid against.  The spec *is* the cache key.
* :class:`Planner` — the single entry point for Algorithm 1.
  ``Planner.resolve(spec, make_samples)`` returns a :class:`ResolvedPlan`
  (the :class:`~repro.core.selection.KernelChoice` plus provenance: cache
  hit or miss, measured search time, the spec itself).  Samples are only
  materialized on a miss, which is what keeps the steady state at
  dictionary-lookup cost.
* a JSON codec (:func:`encode_value` / :func:`decode_value`) for every
  object that appears in plan-cache keys and values, so a
  :class:`~repro.core.selection.PlanCache` can be persisted with
  ``save(path)`` and revived in a *different process* with ``load(path)`` —
  a warm cache survives restarts and a freshly constructed engine serves
  identical traffic with zero cold searches.

In the spirit of PermLLM's observation that permutation/selection decisions
should be first-class, checkpointable artifacts rather than transient search
state, plans here are data, not side effects.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..hw.costmodel import TileConfig
from ..hw.spec import GPUSpec
from .kernels import (
    choice_from_json,
    choice_to_json,
    microtile_from_json,
    microtile_to_json,
    permuted_choice_from_json,
    permuted_choice_to_json,
    tile_from_json,
    tile_to_json,
)
from .microtile import MicroTile
from .selection import (
    KernelChoice,
    PermutedChoice,
    PlanCache,
    kernel_selection,
    nm_kernel_selection,
    sparsity_signature,
)
from .tiledb import TileDB

#: The op kinds a plan can describe.  ``proj`` is the token gather
#: projection (m-axis over padded rows), ``ffn-act`` the post-ReLU
#: activation-sparse second FFN matmul (k-axis), ``attention`` the dynamic
#: attention-mask cover, and ``moe-grouped`` the grouped expert dispatch of
#: a merged routing table.  The training path adds ``weight-sparse`` (the
#: mask lives on the weight operand B — iterative magnitude pruning's
#: drifting masks) and ``nm-sparse`` (operand-B N:M structured sparsity
#: whose plan includes a channel-permutation choice).
PLAN_KINDS = (
    "proj",
    "ffn-act",
    "attention",
    "moe-grouped",
    "weight-sparse",
    "nm-sparse",
)


# ----------------------------------------------------------------------
# JSON codec for plan keys and plan values
# ----------------------------------------------------------------------
def encode_value(obj):
    """Encode a plan-cache key or value into JSON-compatible data.

    Tuples, :class:`GPUSpec`, :class:`TileConfig`, :class:`MicroTile` and
    :class:`KernelChoice` are tagged so :func:`decode_value` can rebuild
    objects that compare (and hash) equal to the originals — the property
    cache keys need to survive a process boundary.  Raises ``TypeError``
    for anything else non-primitive, so callers can skip entries that were
    never meant to be persisted.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {"__tuple__": [encode_value(x) for x in obj]}
    if isinstance(obj, GPUSpec):
        return {"__gpuspec__": dataclasses.asdict(obj)}
    if isinstance(obj, TileConfig):
        return {"__tile__": tile_to_json(obj)}
    if isinstance(obj, MicroTile):
        return {"__microtile__": microtile_to_json(obj)}
    if isinstance(obj, KernelChoice):
        return {"__choice__": choice_to_json(obj)}
    if isinstance(obj, PermutedChoice):
        return {"__permchoice__": permuted_choice_to_json(obj)}
    if isinstance(obj, PlanSpec):
        return {"__planspec__": obj.to_json()}
    raise TypeError(f"cannot serialize {type(obj).__name__} into a plan dump")


def decode_value(data):
    """Inverse of :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):  # JSON has no tuples; bare lists stay lists
        return [decode_value(x) for x in data]
    if isinstance(data, dict):
        if "__tuple__" in data:
            return tuple(decode_value(x) for x in data["__tuple__"])
        if "__gpuspec__" in data:
            return GPUSpec(**data["__gpuspec__"])
        if "__tile__" in data:
            return tile_from_json(data["__tile__"])
        if "__microtile__" in data:
            return microtile_from_json(data["__microtile__"])
        if "__choice__" in data:
            return choice_from_json(data["__choice__"])
        if "__permchoice__" in data:
            return permuted_choice_from_json(data["__permchoice__"])
        if "__planspec__" in data:
            return PlanSpec.from_json(data["__planspec__"])
    raise TypeError(f"cannot decode {data!r} from a plan dump")


def _freeze(obj):
    """Recursively convert lists to tuples so signatures stay hashable."""
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(x) for x in obj)
    return obj


# ----------------------------------------------------------------------
# PlanSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanSpec:
    """A declarative, serializable description of one needed kernel plan.

    Two specs are interchangeable exactly when they compare equal: same op
    kind, same problem shape, same sparse operand, same quantized sparsity
    signature, and same tile-database identity.  The spec is hashable, so
    it keys caches directly, and JSON-round-trippable
    (:meth:`to_json`/:meth:`from_json` is an identity), so plans survive
    process boundaries.
    """

    kind: str
    m: int
    k: int
    n: int
    sparse_operand: str = "A"
    #: Quantized sparsity signature — the statistics Algorithm 1's outcome
    #: actually depends on, bucketed so invocation noise maps to one spec.
    signature: tuple = ()
    #: :attr:`TileDB.cache_key` of the database the plan must be selected
    #: against; plans are only valid for equal keys.
    tiledb_key: tuple = ()
    include_dense_fallback: bool = True
    #: ``nm-sparse`` only: the (n, m) structured pattern — keep ``n`` of
    #: every aligned ``m``-group along the weight's k-axis.  Empty for
    #: every other kind.
    pattern: tuple = ()
    #: ``nm-sparse`` only: the channel-permutation search *policy* — ``()``
    #: for the deterministic candidates (identity / density-sort / striped)
    #: or ``("learned", count, seed)`` to add seeded learned-shuffle
    #: candidates.  The winning *concrete* permutation lives in the cached
    #: :class:`~repro.core.selection.PermutedChoice`, not here: the spec
    #: names the search, the plan records its outcome.
    permutation: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ValueError(
                f"kind must be one of {PLAN_KINDS}, got {self.kind!r}"
            )
        if min(self.m, self.k, self.n) < 1:
            raise ValueError(
                f"plan dims must be >= 1, got m={self.m} k={self.k} n={self.n}"
            )
        if self.sparse_operand not in ("A", "B"):
            raise ValueError(
                f"sparse_operand must be A or B, got {self.sparse_operand!r}"
            )
        # Normalize sequences so equality/hashing don't depend on whether a
        # caller passed a list or a tuple.
        object.__setattr__(self, "signature", _freeze(self.signature))
        object.__setattr__(self, "tiledb_key", _freeze(self.tiledb_key))
        object.__setattr__(self, "pattern", _freeze(self.pattern))
        object.__setattr__(self, "permutation", _freeze(self.permutation))
        if self.kind in ("weight-sparse", "nm-sparse"):
            if self.sparse_operand != "B":
                raise ValueError(
                    f"{self.kind} plans put the mask on the weight: "
                    f"sparse_operand must be 'B', got {self.sparse_operand!r}"
                )
        if self.kind == "nm-sparse":
            if len(self.pattern) != 2:
                raise ValueError(
                    f"nm-sparse needs an (n, m) pattern, got {self.pattern!r}"
                )
            nn, mm = self.pattern
            if not 1 <= nn <= mm:
                raise ValueError(f"invalid N:M pattern {self.pattern!r}")
            if self.k % mm:
                raise ValueError(
                    f"k={self.k} not divisible by N:M group size {mm}"
                )
            if self.permutation and (
                len(self.permutation) != 3
                or self.permutation[0] != "learned"
            ):
                raise ValueError(
                    f"nm-sparse permutation policy must be () or "
                    f"('learned', count, seed), got {self.permutation!r}"
                )
        else:
            if self.pattern or self.permutation:
                raise ValueError(
                    f"pattern/permutation are nm-sparse-only fields, "
                    f"got them on kind {self.kind!r}"
                )

    @property
    def sample_shape(self) -> tuple:
        """Shape the sparsity samples of this spec must have."""
        return (self.m, self.k) if self.sparse_operand == "A" else (self.k, self.n)

    def cache_key(self) -> tuple:
        """The :class:`~repro.core.selection.PlanCache` key this spec names.

        Stable across processes: every component is a primitive, a tuple, or
        a frozen value-compared dataclass (:class:`GPUSpec`).

        Kinds without pattern/permutation keep the original 9-tuple layout
        (pre-existing dumps and shard routing stay valid); nm-sparse emits
        an 11-tuple with the two extra fields ahead of the tiledb key — the
        key stays *last* so :meth:`PlanCache._embedded_tiledb_key` finds it
        in either layout.
        """
        head = (
            "plan",
            self.kind,
            self.m,
            self.k,
            self.n,
            self.sparse_operand,
            self.signature,
            self.include_dense_fallback,
        )
        if self.pattern or self.permutation:
            head = head + (self.pattern, self.permutation)
        return head + (self.tiledb_key,)

    def to_json(self) -> dict:
        data = {
            "kind": self.kind,
            "m": self.m,
            "k": self.k,
            "n": self.n,
            "sparse_operand": self.sparse_operand,
            "signature": encode_value(self.signature),
            "tiledb_key": encode_value(self.tiledb_key),
            "include_dense_fallback": self.include_dense_fallback,
        }
        if self.pattern or self.permutation:
            data["pattern"] = encode_value(self.pattern)
            data["permutation"] = encode_value(self.permutation)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "PlanSpec":
        return cls(
            kind=data["kind"],
            m=data["m"],
            k=data["k"],
            n=data["n"],
            sparse_operand=data["sparse_operand"],
            signature=decode_value(data["signature"]),
            tiledb_key=decode_value(data["tiledb_key"]),
            include_dense_fallback=data["include_dense_fallback"],
            # Absent in dumps written before the nm-sparse kind existed.
            pattern=decode_value(data.get("pattern", [])),
            permutation=decode_value(data.get("permutation", [])),
        )

    def describe(self) -> str:
        return (
            f"{self.kind}[{self.m}x{self.k}x{self.n}/{self.sparse_operand}] "
            f"sig={self.signature}"
        )


@dataclass(frozen=True)
class ResolvedPlan:
    """A plan plus its provenance: how the Planner arrived at it."""

    spec: PlanSpec
    choice: KernelChoice
    #: Whether the plan came out of the cache (False = Algorithm 1 ran).
    cache_hit: bool
    #: Measured wall time of this resolve call in microseconds — a lookup
    #: when warm, the full search when cold (Section 5.5's quantity).
    search_us: float
    #: Name of the device whose tile database the plan was resolved against
    #: — plans are device-specific (an A100 and a V100 pick different tiles
    #: for the same sparsity), and a heterogeneous serving fleet resolves
    #: one plan per device class, so provenance names the class.
    device: str = ""
    #: True when Algorithm 1's search failed and the plan is the serving
    #: engine's conservative dense fallback (graceful degradation).
    #: Degraded plans are never cached, so a later resolve retries the
    #: search instead of pinning the fallback.
    degraded: bool = False

    @property
    def cold(self) -> bool:
        return not self.cache_hit


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class Planner:
    """The single entry point for Algorithm 1 over one tile database.

    Every caller that needs a kernel plan — compiler, backend, serving
    engine — describes it as a :class:`PlanSpec` and resolves it here.  The
    planner owns the memoization discipline: the spec is the cache key, the
    samples are only built on a miss, and the outcome carries provenance.
    """

    def __init__(self, tiledb: TileDB, cache: Optional[PlanCache] = None):
        self.tiledb = tiledb
        self.cache = cache if cache is not None else PlanCache()

    def make_spec(
        self,
        kind: str,
        sparsity_samples,
        m: int,
        k: int,
        n: int,
        *,
        sparse_operand: str = "A",
        include_dense_fallback: bool = True,
        extra_signature: tuple = (),
        pattern: tuple = (),
        permutation: tuple = (),
    ) -> PlanSpec:
        """Build the spec for ``sparsity_samples`` of an ``[m,k,n]`` matmul.

        The signature is the quantized sparsity signature of the samples
        (quantized with the cache's quantum, so specs and cache agree),
        optionally prefixed with caller-provided discriminators.
        ``pattern``/``permutation`` only apply to nm-sparse specs.
        """
        sig = sparsity_signature(sparsity_samples, quantum=self.cache.quantum)
        return PlanSpec(
            kind=kind,
            m=m,
            k=k,
            n=n,
            sparse_operand=sparse_operand,
            signature=tuple(extra_signature) + sig,
            tiledb_key=self.tiledb.cache_key,
            include_dense_fallback=include_dense_fallback,
            pattern=pattern,
            permutation=permutation,
        )

    def resolve(
        self, spec: PlanSpec, make_samples: Optional[Callable] = None
    ) -> ResolvedPlan:
        """Resolve ``spec`` to a plan: cache lookup, else Algorithm 1.

        ``make_samples`` is a zero-argument callable returning the sparsity
        samples; it is invoked only on a miss (the steady-state path never
        touches a mask).  Raises ``ValueError`` when the spec was built
        against a different tile database — a plan selected over other
        tiles would silently be wrong here.

        Resolution is single-flight: concurrent resolves of the same spec
        (the front end's replica workers racing on one traffic class) run
        Algorithm 1 exactly once — one caller searches while the rest wait
        on its result and report a hit.
        """
        if _freeze(spec.tiledb_key) != _freeze(self.tiledb.cache_key):
            raise ValueError(
                f"spec was built against tile database {spec.tiledb_key!r}, "
                f"but this planner serves {self.tiledb.cache_key!r}"
            )
        start = time.perf_counter()
        key = spec.cache_key()

        def search():
            if make_samples is None:
                raise ValueError(
                    f"cold resolve of {spec.describe()} needs make_samples "
                    f"(the plan is not cached and Algorithm 1 has nothing "
                    f"to search over)"
                )
            if spec.kind == "nm-sparse":
                return nm_kernel_selection(
                    make_samples(),
                    spec.m,
                    spec.k,
                    spec.n,
                    self.tiledb,
                    pattern=spec.pattern,
                    permutation=spec.permutation,
                    include_dense_fallback=spec.include_dense_fallback,
                )
            return kernel_selection(
                make_samples(),
                spec.m,
                spec.k,
                spec.n,
                self.tiledb,
                sparse_operand=spec.sparse_operand,
                include_dense_fallback=spec.include_dense_fallback,
            )

        choice, hit = self.cache.get_or_compute(key, search)
        return ResolvedPlan(
            spec=spec,
            choice=choice,
            cache_hit=hit,
            search_us=(time.perf_counter() - start) * 1e6,
            device=self.tiledb.spec.name,
        )

    def memo(self, spec: PlanSpec, compute: Callable):
        """Memoize an auxiliary plan artifact under ``spec``.

        Some plan-shaped decisions are not a :class:`KernelChoice` — the
        PIT backend's activation-cover workload is a (covered fraction,
        micro-tiles per row) pair — but they are still pure functions of a
        spec and belong in the same persistent cache.  Entries live under
        a ``("memo",) + spec.cache_key()`` key so they can never collide
        with resolved kernel plans.
        """
        key = ("memo",) + spec.cache_key()
        value, _ = self.cache.get_or_compute(key, compute)
        return value
