"""CoverAlgo: micro-tile coverage of a sparse tensor (Algorithm 1, line 8).

Given a sparsity mask and a micro-tile shape, CoverAlgo computes how many
micro-tiles are needed to cover all non-zero values, and — after merging
micro-tiles along the PIT-axis into dense computation tiles — how much work
the generated sparse kernel performs.  Algorithm 1 estimates a candidate
kernel's cost as ``num_tiles * tile_cost``; this module produces exactly
those tile counts, and also the *coverage waste* statistics plotted in
Figure 3a.

Merging semantics: micro-tiles can merge into one dense computation tile when
they share their block position on every non-PIT axis (they are interchanged
along the PIT-axis only — that is what the permutation-invariance property
licenses).  Hence the workload is computed per non-PIT block position:
``sum_over_positions(ceil(count_position / merge_factor))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hw.costmodel import TileConfig
from .microtile import MicroTile


def cover_grid(mask: np.ndarray, microtile_shape: tuple) -> np.ndarray:
    """Boolean grid marking which grid-aligned micro-tiles contain non-zeros.

    The mask is zero-padded up to a multiple of the micro-tile shape (the
    trailing partial tiles behave like tiles padded with zeros, exactly as a
    GPU kernel would guard out-of-range accesses).
    """
    if mask.ndim != 2:
        raise ValueError(f"cover_grid expects a 2-D mask, got shape {mask.shape}")
    mh, mw = microtile_shape
    if mh < 1 or mw < 1:
        raise ValueError(f"invalid micro-tile shape {microtile_shape}")
    rows, cols = mask.shape
    grid_r, grid_c = math.ceil(rows / mh), math.ceil(cols / mw)
    padded = np.zeros((grid_r * mh, grid_c * mw), dtype=bool)
    padded[:rows, :cols] = mask != 0
    return padded.reshape(grid_r, mh, grid_c, mw).any(axis=(1, 3))


def count_covering_microtiles(mask: np.ndarray, microtile: MicroTile) -> int:
    """Number of micro-tiles needed to cover all non-zeros of ``mask``."""
    return int(cover_grid(mask, microtile.shape).sum())


def coverage_waste(mask: np.ndarray, microtile_shape: tuple) -> float:
    """Fraction of covered elements that are zeros (Figure 3a's 'wasted c.').

    A 32x32 cover of a 99%-sparse fine-grained tensor computes mostly zeros;
    this is the quantity the tile-shape dilemma trades against GPU efficiency.
    """
    grid = cover_grid(mask, microtile_shape)
    covered_elems = int(grid.sum()) * microtile_shape[0] * microtile_shape[1]
    if covered_elems == 0:
        return 0.0
    nnz = int(np.count_nonzero(mask))
    return 1.0 - nnz / covered_elems


def covered_sparsity(mask: np.ndarray, microtile_shape: tuple) -> float:
    """Sparsity ratio *after* covering (Table 3's 'Sparsity Ratio After Cover').

    The fraction of micro-tile grid cells that are entirely zero — i.e. the
    effective sparsity the merged dense computation sees.
    """
    grid = cover_grid(mask, microtile_shape)
    if grid.size == 0:
        return 0.0
    return 1.0 - float(grid.sum()) / grid.size


class CoverCache:
    """Memoized cover grids for one mask.

    Algorithm 1 evaluates dozens of (tile, axis) candidates whose micro-tiles
    collapse to a handful of distinct shapes; caching the grids keeps the
    online search cheap (the paper reports 30-100us searches).
    """

    def __init__(self, mask: np.ndarray):
        self.mask = np.asarray(mask, dtype=bool)
        self.nnz = int(np.count_nonzero(self.mask))
        self._grids: dict = {}

    def grid(self, microtile_shape: tuple, *, transposed: bool = False) -> np.ndarray:
        key = (tuple(microtile_shape), transposed)
        if key not in self._grids:
            mask = self.mask.T if transposed else self.mask
            self._grids[key] = cover_grid(mask, microtile_shape)
        return self._grids[key]


@dataclass(frozen=True)
class MatmulWorkload:
    """Work performed by a sparse matmul kernel after micro-tile merging."""

    #: Total K-steps across all dense computation tiles (the unit Algorithm 1
    #: multiplies by the profiled per-step tile cost).
    total_k_steps: int
    #: Number of distinct output tiles written (each pays the fixed cost).
    num_output_tiles: int
    #: Micro-tiles covering the sparse operand (sparse-index length).
    num_microtiles: int
    #: Fraction of computed elements that are zero padding/waste.
    wasted_fraction: float

    @property
    def is_empty(self) -> bool:
        return self.total_k_steps == 0


def matmul_workload(
    mask,
    tile: TileConfig,
    pit_axis: str,
    n_extent: int,
    *,
    sparse_operand: str = "A",
) -> MatmulWorkload:
    """Workload of ``C[m,n] += A[m,k] * B[k,n]`` with one sparse operand.

    ``mask`` is the sparse operand's non-zero mask (A: [M, K]; B: [K, N]) or
    a :class:`CoverCache` wrapping it.  ``n_extent`` is the dense extent of
    the axis not covered by the mask (N when A is sparse, M when B is
    sparse).

    * PIT-axis ``m`` (A sparse): micro-tile ``(1, tk)``.  Micro-tiles merge
      across rows within the same K-block; every K-block column contributes
      ``ceil(count / tm)`` steps, replicated over ``ceil(N / tn)`` output
      column tiles.
    * PIT-axis ``k`` (A sparse): micro-tile ``(tm, 1)``.  Columns of each
      row-block gather into K-steps of ``tk``; every row-block contributes
      ``ceil(count / tk)`` steps.
    * PIT-axis ``n`` / ``k`` with B sparse: symmetric.
    """
    cache = mask if isinstance(mask, CoverCache) else CoverCache(mask)
    if sparse_operand == "A":
        if pit_axis == "m":
            return _workload_outer_axis(cache, tile, n_extent, transposed=False)
        if pit_axis == "k":
            return _workload_reduce_axis(cache, tile, n_extent, transposed=False)
        raise ValueError(f"sparse A supports PIT-axis m or k, got {pit_axis!r}")
    if sparse_operand == "B":
        if pit_axis == "n":
            return _workload_outer_axis(cache, tile, n_extent, transposed=True)
        if pit_axis == "k":
            return _workload_reduce_axis(cache, tile, n_extent, transposed=True)
        raise ValueError(f"sparse B supports PIT-axis n or k, got {pit_axis!r}")
    raise ValueError(f"sparse_operand must be 'A' or 'B', got {sparse_operand!r}")


def _workload_outer_axis(
    cache: CoverCache,
    tile: TileConfig,
    dense_extent: int,
    *,
    transposed: bool,
) -> MatmulWorkload:
    """Spatial-axis rule: merge (1, tk) micro-tiles across rows.

    The grid is oriented so rows are the PIT-axis (for sparse B, the mask is
    transposed so its n-axis becomes the rows).  For each K-block column,
    ``count`` non-empty row micro-tiles merge into ``ceil(count/merge)``
    dense tiles of one K-step each.
    """
    merge_factor = tile.tn if transposed else tile.tm
    grid = cache.grid((1, tile.tk), transposed=transposed)
    counts = grid.sum(axis=0)  # non-empty micro-tiles per K-block
    steps_per_ncol = int(np.ceil(counts / merge_factor).sum())
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    total_steps = steps_per_ncol * n_tiles_cols

    # Output tiles: rows with any non-zero, packed by merge_factor, times
    # the output column tiles.
    nonzero_rows = int(grid.any(axis=1).sum())
    out_tiles = math.ceil(nonzero_rows / merge_factor) * n_tiles_cols

    num_micro = int(grid.sum())
    # Sparse-operand elements touched per output column tile.
    computed = steps_per_ncol * merge_factor * tile.tk
    waste = 0.0 if computed == 0 else max(0.0, 1.0 - cache.nnz / computed)
    return MatmulWorkload(
        total_k_steps=total_steps,
        num_output_tiles=out_tiles,
        num_microtiles=num_micro,
        wasted_fraction=waste,
    )


def _workload_reduce_axis(
    cache: CoverCache,
    tile: TileConfig,
    dense_extent: int,
    *,
    transposed: bool,
) -> MatmulWorkload:
    """Reduction-axis rule: merge (row_block, 1) micro-tiles along K.

    For each row-block, ``count`` non-empty column micro-tiles merge into
    ``ceil(count/tk)`` K-steps.
    """
    row_block = tile.tn if transposed else tile.tm
    grid = cache.grid((row_block, 1), transposed=transposed)
    counts = grid.sum(axis=1)  # non-empty k-columns per row-block
    steps_per_ncol = int(np.ceil(counts / tile.tk).sum())
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    total_steps = steps_per_ncol * n_tiles_cols

    # Every row-block with any work writes its output tiles densely.
    nonzero_blocks = int((counts > 0).sum())
    out_tiles = nonzero_blocks * n_tiles_cols

    num_micro = int(grid.sum())
    computed = steps_per_ncol * row_block * tile.tk
    waste = 0.0 if computed == 0 else max(0.0, 1.0 - cache.nnz / computed)
    return MatmulWorkload(
        total_k_steps=total_steps,
        num_output_tiles=out_tiles,
        num_microtiles=num_micro,
        wasted_fraction=waste,
    )


def dense_matmul_workload(m: int, k: int, n: int, tile: TileConfig) -> MatmulWorkload:
    """Workload of the dense fallback (all tiles, all K-steps)."""
    tiles_m = math.ceil(m / tile.tm)
    tiles_n = math.ceil(n / tile.tn)
    steps = tiles_m * tiles_n * math.ceil(k / tile.tk)
    return MatmulWorkload(
        total_k_steps=steps,
        num_output_tiles=tiles_m * tiles_n,
        num_microtiles=0,
        wasted_fraction=0.0,
    )
