"""CoverAlgo: micro-tile coverage of a sparse tensor (Algorithm 1, line 8).

Given a sparsity mask and a micro-tile shape, CoverAlgo computes how many
micro-tiles are needed to cover all non-zero values, and — after merging
micro-tiles along the PIT-axis into dense computation tiles — how much work
the generated sparse kernel performs.  Algorithm 1 estimates a candidate
kernel's cost as ``num_tiles * tile_cost``; this module produces exactly
those tile counts, and also the *coverage waste* statistics plotted in
Figure 3a.

Merging semantics: micro-tiles can merge into one dense computation tile when
they share their block position on every non-PIT axis (they are interchanged
along the PIT-axis only — that is what the permutation-invariance property
licenses).  Hence the workload is computed per non-PIT block position:
``sum_over_positions(ceil(count_position / merge_factor))``.

Cover grids are served from a *pyramid*: one base grid per mask at the
finest granularity (the GCD of the requested micro-tile extents, typically
1x1 — the boolean mask itself), with every coarser ``(mh, mw)`` grid derived
by pooled ``.reshape(...).any()`` reductions over the coarsest
already-computed grid whose extents divide it.  Together with the
transposition identity ``cover_grid(mask.T, (a, b)) ==
cover_grid(mask, (b, a)).T`` (served as a numpy view, never materialized)
this makes a cold Algorithm 1 search touch the raw mask O(1) times instead
of once per candidate micro-tile shape — the Section 5.5 budget depends on
it.  :class:`SampleStack` extends the same pyramid across a whole batch of
same-shape sparsity samples so candidate evaluation vectorizes over the
sample axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hw.costmodel import TileConfig
from .microtile import MicroTile, gcd_microtile_shape


def cover_grid(mask: np.ndarray, microtile_shape: tuple) -> np.ndarray:
    """Boolean grid marking which grid-aligned micro-tiles contain non-zeros.

    The mask is zero-padded up to a multiple of the micro-tile shape (the
    trailing partial tiles behave like tiles padded with zeros, exactly as a
    GPU kernel would guard out-of-range accesses).

    This is the naive single-shape reference: one padded pass over the raw
    mask.  The pyramid caches below must agree with it bit-for-bit.
    """
    if mask.ndim != 2:
        raise ValueError(f"cover_grid expects a 2-D mask, got shape {mask.shape}")
    mh, mw = microtile_shape
    if mh < 1 or mw < 1:
        raise ValueError(f"invalid micro-tile shape {microtile_shape}")
    rows, cols = mask.shape
    grid_r, grid_c = math.ceil(rows / mh), math.ceil(cols / mw)
    padded = np.zeros((grid_r * mh, grid_c * mw), dtype=bool)
    padded[:rows, :cols] = mask != 0
    return padded.reshape(grid_r, mh, grid_c, mw).any(axis=(1, 3))


def count_covering_microtiles(mask: np.ndarray, microtile: MicroTile) -> int:
    """Number of micro-tiles needed to cover all non-zeros of ``mask``."""
    return int(cover_grid(mask, microtile.shape).sum())


def coverage_waste(mask: np.ndarray, microtile_shape: tuple) -> float:
    """Fraction of covered elements that are zeros (Figure 3a's 'wasted c.').

    A 32x32 cover of a 99%-sparse fine-grained tensor computes mostly zeros;
    this is the quantity the tile-shape dilemma trades against GPU efficiency.
    """
    grid = cover_grid(mask, microtile_shape)
    covered_elems = int(grid.sum()) * microtile_shape[0] * microtile_shape[1]
    if covered_elems == 0:
        return 0.0
    nnz = int(np.count_nonzero(mask))
    return 1.0 - nnz / covered_elems


def covered_sparsity(mask: np.ndarray, microtile_shape: tuple) -> float:
    """Sparsity ratio *after* covering (Table 3's 'Sparsity Ratio After Cover').

    The fraction of micro-tile grid cells that are entirely zero — i.e. the
    effective sparsity the merged dense computation sees.
    """
    grid = cover_grid(mask, microtile_shape)
    if grid.size == 0:
        return 0.0
    return 1.0 - float(grid.sum()) / grid.size


class _CoverPyramid:
    """Pooled cover grids over a ``[S, R, C]`` boolean stack.

    The ``(1, 1)`` level is the stack itself; a ``(mh, mw)`` grid derives
    from the coarsest cached level ``(dh, dw)`` with ``dh | mh`` and
    ``dw | mw`` by an any-pooled reshape, touching ``R*C / (dh*dw)`` cells
    instead of the raw masks.  Exactness rests on
    ``ceil(ceil(x/a)/b) == ceil(x/(a*b))``: pooling a zero-padded coarse
    grid marks exactly the cells the naive zero-padded scan marks, partial
    trailing tiles included.
    """

    __slots__ = ("_grids",)

    def __init__(self, stack: np.ndarray):
        self._grids = {(1, 1): stack}

    def grid(self, shape: tuple) -> np.ndarray:
        mh, mw = int(shape[0]), int(shape[1])
        if mh < 1 or mw < 1:
            raise ValueError(f"invalid micro-tile shape {shape}")
        key = (mh, mw)
        got = self._grids.get(key)
        if got is None:
            got = self._derive(key)
            self._grids[key] = got
        return got

    def _derive(self, key: tuple) -> np.ndarray:
        mh, mw = key
        dh, dw = 1, 1
        for h, w in self._grids:
            if mh % h == 0 and mw % w == 0 and h * w > dh * dw:
                dh, dw = h, w
        src = self._grids[(dh, dw)]
        fh, fw = mh // dh, mw // dw
        if fh == 1 and fw == 1:
            return src
        s, rows, cols = src.shape
        grid_r, grid_c = -(-rows // fh), -(-cols // fw)
        if grid_r * fh != rows or grid_c * fw != cols:
            padded = np.zeros((s, grid_r * fh, grid_c * fw), dtype=bool)
            padded[:, :rows, :cols] = src
            src = padded
        return _pool_rows(_pool_cols(src, fw), fh)


#: Word dtypes for column pooling: ``f`` consecutive mask bytes are one
#: non-zero test on an ``f``-byte integer view — numpy reduces a short
#: contiguous bool axis element-by-element, while the integer compare runs
#: at streaming bandwidth (~25x faster at pool width 8).
_POOL_WORDS = {2: np.uint16, 4: np.uint32, 8: np.uint64}


def _pool_cols(arr: np.ndarray, fw: int) -> np.ndarray:
    """Any-pool ``fw`` adjacent columns of a ``[S, R, C]`` bool array."""
    while fw > 1:
        word = None
        if arr.flags.c_contiguous:
            for f in (8, 4, 2):
                if fw % f == 0:
                    word = f
                    break
        if word is None:
            s, r, c = arr.shape
            return arr.reshape(s, r, c // fw, fw).any(axis=3)
        arr = arr.view(_POOL_WORDS[word]) != 0
        fw //= word
    return arr


def _pool_rows(arr: np.ndarray, fh: int) -> np.ndarray:
    """Any-pool ``fh`` adjacent rows of a ``[S, R, C]`` bool array.

    Row pooling reduces over a long contiguous inner axis, which numpy
    already streams well — no integer trick needed.
    """
    if fh == 1:
        return arr
    s, r, c = arr.shape
    return arr.reshape(s, r // fh, fh, c).any(axis=2)


class CoverCache:
    """Memoized cover grids (and their marginals) for one mask.

    Algorithm 1 evaluates dozens of (tile, axis) candidates whose micro-tiles
    collapse to a handful of distinct shapes; the pyramid keeps the online
    search cheap (the paper reports 30-100us searches) by deriving every
    coarser grid from a finer one instead of re-scanning the raw mask, and
    per-grid row/column counts are computed once and shared across all rules
    that reuse a micro-tile shape.  ``pyramid=False`` falls back to naive
    per-shape :func:`cover_grid` scans — the pre-pyramid behaviour, kept as
    the benchmark baseline and correctness oracle.
    """

    def __init__(self, mask: np.ndarray, *, pyramid: bool = True):
        self.mask = np.asarray(mask, dtype=bool)
        self.nnz = int(np.count_nonzero(self.mask))
        self._pyr = None
        if pyramid and self.mask.ndim == 2:
            self._pyr = _CoverPyramid(self.mask[np.newaxis])
        self._grids: dict = {}
        self._stats: dict = {}

    @property
    def shape(self) -> tuple:
        """Shape of the wrapped mask — a cache substitutes for its mask
        anywhere only the shape and the cover grids are consulted (e.g.
        :meth:`SparseMatmulKernel.estimate_us`), so one pyramid can price
        the same mask through several backends without rebuilding."""
        return self.mask.shape

    def grid(self, microtile_shape: tuple, *, transposed: bool = False) -> np.ndarray:
        key = (tuple(microtile_shape), transposed)
        got = self._grids.get(key)
        if got is None:
            if self._pyr is not None:
                if transposed:
                    # cover_grid(mask.T, (a, b)) == cover_grid(mask, (b, a)).T:
                    # serve the other orientation as a view instead of
                    # materializing a second grid.
                    got = self._pyr.grid(
                        (microtile_shape[1], microtile_shape[0])
                    )[0].T
                else:
                    got = self._pyr.grid(tuple(microtile_shape))[0]
            else:
                mask = self.mask.T if transposed else self.mask
                got = cover_grid(mask, microtile_shape)
            self._grids[key] = got
        return got

    def _stat(self, name: str, shape: tuple, transposed: bool, fn):
        key = (name, tuple(shape), transposed)
        got = self._stats.get(key)
        if got is None:
            got = fn(self.grid(shape, transposed=transposed))
            self._stats[key] = got
        return got

    def col_counts(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """Non-empty micro-tiles per grid column (``grid.sum(axis=0)``)."""
        return self._stat("col", shape, transposed, lambda g: g.sum(axis=0))

    def row_counts(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """Non-empty micro-tiles per grid row (``grid.sum(axis=1)``)."""
        return self._stat("row", shape, transposed, lambda g: g.sum(axis=1))

    def live_rows(self, shape: tuple, *, transposed: bool = False) -> int:
        """Number of grid rows containing any non-empty micro-tile."""
        return self._stat(
            "live", shape, transposed, lambda g: int(g.any(axis=1).sum())
        )

    def num_microtiles(self, shape: tuple, *, transposed: bool = False) -> int:
        """Total non-empty micro-tiles of this grid."""
        return self._stat("nnz", shape, transposed, lambda g: int(g.sum()))


class SampleStack:
    """A batch of same-shape sparsity samples sharing one cover pyramid.

    Algorithm 1 averages each candidate's cost over several recent sparsity
    samples; stacking them into one ``[S, R, C]`` boolean array lets every
    (tile, axis) rule's workload evaluate across all samples in a single
    vectorized pass (counts of shape ``[S, G]``, ``ceil``/``sum`` over the
    grid axis per sample) instead of a per-sample Python loop.
    """

    def __init__(self, samples):
        arrays = [np.asarray(s, dtype=bool) for s in samples]
        if not arrays:
            raise ValueError("SampleStack needs at least one sample")
        shape = arrays[0].shape
        if len(shape) != 2:
            raise ValueError(f"samples must be 2-D, got shape {shape}")
        for a in arrays:
            if a.shape != shape:
                raise ValueError(
                    f"samples must share one shape, got {a.shape} != {shape}"
                )
        # A lone sample (the serving path's common case) rides as a view;
        # stacking copies only when there is a batch to fuse.
        self.stack = (
            arrays[0][np.newaxis]
            if len(arrays) == 1
            else np.stack(arrays)
        )
        #: Per-sample non-zero counts, shape ``[S]``.
        self.nnz = self.stack.sum(axis=(1, 2), dtype=np.int64)
        self._pyr = _CoverPyramid(self.stack)
        self._stats: dict = {}

    @property
    def num_samples(self) -> int:
        return int(self.stack.shape[0])

    @property
    def sample_shape(self) -> tuple:
        return tuple(self.stack.shape[1:])

    def _canonical(self, shape: tuple, transposed: bool) -> tuple:
        return (shape[1], shape[0]) if transposed else tuple(shape)

    def prime(self, shapes, *, transposed: bool = False) -> None:
        """Seed the pyramid for a known set of micro-tile shapes.

        Computes the GCD base grid first, then requests each shape
        fine-to-coarse, so every grid derives from the coarsest compatible
        ancestor already present rather than from the raw masks.
        """
        canon = sorted(
            {self._canonical(s, transposed) for s in shapes},
            key=lambda s: s[0] * s[1],
        )
        if not canon:
            return
        base = gcd_microtile_shape(canon)
        if base != (1, 1):
            self._pyr.grid(base)
        for shape in canon:
            self._pyr.grid(shape)

    def grids(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """``[S, Gr, Gc]`` cover grids (transposed served as a view)."""
        got = self._pyr.grid(self._canonical(shape, transposed))
        return got.transpose(0, 2, 1) if transposed else got

    def _stat(self, name: str, shape: tuple, transposed: bool, fn):
        key = (name, tuple(shape), transposed)
        got = self._stats.get(key)
        if got is None:
            got = fn(self.grids(shape, transposed=transposed))
            self._stats[key] = got
        return got

    def col_counts(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """``[S, Gc]`` non-empty micro-tiles per grid column, per sample."""
        return self._stat("col", shape, transposed, lambda g: g.sum(axis=1))

    def row_counts(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """``[S, Gr]`` non-empty micro-tiles per grid row, per sample."""
        return self._stat("row", shape, transposed, lambda g: g.sum(axis=2))

    def live_rows(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """``[S]`` grid rows containing any non-empty micro-tile."""
        return self._stat(
            "live", shape, transposed, lambda g: g.any(axis=2).sum(axis=1)
        )

    def num_microtiles(self, shape: tuple, *, transposed: bool = False) -> np.ndarray:
        """``[S]`` total non-empty micro-tiles, per sample."""
        return self._stat(
            "nnz", shape, transposed, lambda g: g.sum(axis=(1, 2), dtype=np.int64)
        )

    def grid_cells(self, shape: tuple, *, transposed: bool = False) -> int:
        """Cells of one sample's 2-D grid (``Gr * Gc``)."""
        g = self.grids(shape, transposed=transposed)
        return int(g.shape[1] * g.shape[2])


@dataclass(frozen=True)
class MatmulWorkload:
    """Work performed by a sparse matmul kernel after micro-tile merging."""

    #: Total K-steps across all dense computation tiles (the unit Algorithm 1
    #: multiplies by the profiled per-step tile cost).
    total_k_steps: int
    #: Number of distinct output tiles written (each pays the fixed cost).
    num_output_tiles: int
    #: Micro-tiles covering the sparse operand (sparse-index length).
    num_microtiles: int
    #: Fraction of computed elements that are zero padding/waste.
    wasted_fraction: float

    @property
    def is_empty(self) -> bool:
        return self.total_k_steps == 0


def matmul_workload(
    mask,
    tile: TileConfig,
    pit_axis: str,
    n_extent: int,
    *,
    sparse_operand: str = "A",
) -> MatmulWorkload:
    """Workload of ``C[m,n] += A[m,k] * B[k,n]`` with one sparse operand.

    ``mask`` is the sparse operand's non-zero mask (A: [M, K]; B: [K, N]) or
    a :class:`CoverCache` wrapping it.  ``n_extent`` is the dense extent of
    the axis not covered by the mask (N when A is sparse, M when B is
    sparse).

    * PIT-axis ``m`` (A sparse): micro-tile ``(1, tk)``.  Micro-tiles merge
      across rows within the same K-block; every K-block column contributes
      ``ceil(count / tm)`` steps, replicated over ``ceil(N / tn)`` output
      column tiles.
    * PIT-axis ``k`` (A sparse): micro-tile ``(tm, 1)``.  Columns of each
      row-block gather into K-steps of ``tk``; every row-block contributes
      ``ceil(count / tk)`` steps.
    * PIT-axis ``n`` / ``k`` with B sparse: symmetric.
    """
    cache = mask if isinstance(mask, CoverCache) else CoverCache(mask)
    if sparse_operand == "A":
        if pit_axis == "m":
            return _workload_outer_axis(cache, tile, n_extent, transposed=False)
        if pit_axis == "k":
            return _workload_reduce_axis(cache, tile, n_extent, transposed=False)
        raise ValueError(f"sparse A supports PIT-axis m or k, got {pit_axis!r}")
    if sparse_operand == "B":
        if pit_axis == "n":
            return _workload_outer_axis(cache, tile, n_extent, transposed=True)
        if pit_axis == "k":
            return _workload_reduce_axis(cache, tile, n_extent, transposed=True)
        raise ValueError(f"sparse B supports PIT-axis n or k, got {pit_axis!r}")
    raise ValueError(f"sparse_operand must be 'A' or 'B', got {sparse_operand!r}")


def _workload_outer_axis(
    cache: CoverCache,
    tile: TileConfig,
    dense_extent: int,
    *,
    transposed: bool,
) -> MatmulWorkload:
    """Spatial-axis rule: merge (1, tk) micro-tiles across rows.

    The grid is oriented so rows are the PIT-axis (for sparse B, the mask is
    transposed so its n-axis becomes the rows).  For each K-block column,
    ``count`` non-empty row micro-tiles merge into ``ceil(count/merge)``
    dense tiles of one K-step each.
    """
    merge_factor = tile.tn if transposed else tile.tm
    shape = (1, tile.tk)
    counts = cache.col_counts(shape, transposed=transposed)
    steps_per_ncol = int(np.ceil(counts / merge_factor).sum())
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    total_steps = steps_per_ncol * n_tiles_cols

    # Output tiles: rows with any non-zero, packed by merge_factor, times
    # the output column tiles.
    nonzero_rows = cache.live_rows(shape, transposed=transposed)
    out_tiles = math.ceil(nonzero_rows / merge_factor) * n_tiles_cols

    num_micro = cache.num_microtiles(shape, transposed=transposed)
    # Sparse-operand elements touched per output column tile.
    computed = steps_per_ncol * merge_factor * tile.tk
    waste = 0.0 if computed == 0 else max(0.0, 1.0 - cache.nnz / computed)
    return MatmulWorkload(
        total_k_steps=total_steps,
        num_output_tiles=out_tiles,
        num_microtiles=num_micro,
        wasted_fraction=waste,
    )


def _workload_reduce_axis(
    cache: CoverCache,
    tile: TileConfig,
    dense_extent: int,
    *,
    transposed: bool,
) -> MatmulWorkload:
    """Reduction-axis rule: merge (row_block, 1) micro-tiles along K.

    For each row-block, ``count`` non-empty column micro-tiles merge into
    ``ceil(count/tk)`` K-steps.
    """
    row_block = tile.tn if transposed else tile.tm
    shape = (row_block, 1)
    counts = cache.row_counts(shape, transposed=transposed)
    steps_per_ncol = int(np.ceil(counts / tile.tk).sum())
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    total_steps = steps_per_ncol * n_tiles_cols

    # Every row-block with any work writes its output tiles densely.
    nonzero_blocks = int((counts > 0).sum())
    out_tiles = nonzero_blocks * n_tiles_cols

    num_micro = cache.num_microtiles(shape, transposed=transposed)
    computed = steps_per_ncol * row_block * tile.tk
    waste = 0.0 if computed == 0 else max(0.0, 1.0 - cache.nnz / computed)
    return MatmulWorkload(
        total_k_steps=total_steps,
        num_output_tiles=out_tiles,
        num_microtiles=num_micro,
        wasted_fraction=waste,
    )


def batched_matmul_workload(
    stack: SampleStack,
    tile: TileConfig,
    pit_axis: str,
    n_extent: int,
    *,
    sparse_operand: str = "A",
) -> list:
    """Vectorized :func:`matmul_workload` across a :class:`SampleStack`.

    One pooled-counts pass evaluates every sample; returns one
    :class:`MatmulWorkload` per sample, exactly equal to the per-sample
    scalar results (the integer tile counts are identical; the float waste
    fraction is computed from the same integers).
    """
    if sparse_operand == "A":
        if pit_axis == "m":
            return _batched_outer_axis(stack, tile, n_extent, transposed=False)
        if pit_axis == "k":
            return _batched_reduce_axis(stack, tile, n_extent, transposed=False)
        raise ValueError(f"sparse A supports PIT-axis m or k, got {pit_axis!r}")
    if sparse_operand == "B":
        if pit_axis == "n":
            return _batched_outer_axis(stack, tile, n_extent, transposed=True)
        if pit_axis == "k":
            return _batched_reduce_axis(stack, tile, n_extent, transposed=True)
        raise ValueError(f"sparse B supports PIT-axis n or k, got {pit_axis!r}")
    raise ValueError(f"sparse_operand must be 'A' or 'B', got {sparse_operand!r}")


def _assemble_workloads(stack, steps_per_ncol, n_tiles_cols, out_tiles, micro,
                        elems_per_step) -> list:
    computed = steps_per_ncol * elems_per_step
    out = []
    for s in range(stack.num_samples):
        waste = (
            0.0
            if computed[s] == 0
            else max(0.0, 1.0 - stack.nnz[s] / computed[s])
        )
        out.append(
            MatmulWorkload(
                total_k_steps=int(steps_per_ncol[s]) * n_tiles_cols,
                num_output_tiles=int(out_tiles[s]),
                num_microtiles=int(micro[s]),
                wasted_fraction=waste,
            )
        )
    return out


def _batched_outer_axis(stack, tile, dense_extent, *, transposed) -> list:
    merge_factor = tile.tn if transposed else tile.tm
    shape = (1, tile.tk)
    counts = stack.col_counts(shape, transposed=transposed)  # [S, Gc]
    steps_per_ncol = np.ceil(counts / merge_factor).sum(axis=1).astype(np.int64)
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    live = stack.live_rows(shape, transposed=transposed)  # [S]
    out_tiles = np.ceil(live / merge_factor).astype(np.int64) * n_tiles_cols
    micro = stack.num_microtiles(shape, transposed=transposed)
    return _assemble_workloads(
        stack, steps_per_ncol, n_tiles_cols, out_tiles, micro,
        merge_factor * tile.tk,
    )


def _batched_reduce_axis(stack, tile, dense_extent, *, transposed) -> list:
    row_block = tile.tn if transposed else tile.tm
    shape = (row_block, 1)
    counts = stack.row_counts(shape, transposed=transposed)  # [S, Gr]
    steps_per_ncol = np.ceil(counts / tile.tk).sum(axis=1).astype(np.int64)
    n_tiles_cols = math.ceil(dense_extent / (tile.tm if transposed else tile.tn))
    nonzero_blocks = (counts > 0).sum(axis=1)
    out_tiles = nonzero_blocks * n_tiles_cols
    micro = stack.num_microtiles(shape, transposed=transposed)
    return _assemble_workloads(
        stack, steps_per_ncol, n_tiles_cols, out_tiles, micro,
        row_block * tile.tk,
    )


def dense_matmul_workload(m: int, k: int, n: int, tile: TileConfig) -> MatmulWorkload:
    """Workload of the dense fallback (all tiles, all K-steps)."""
    tiles_m = math.ceil(m / tile.tm)
    tiles_n = math.ceil(n / tile.tn)
    steps = tiles_m * tiles_n * math.ceil(k / tile.tk)
    return MatmulWorkload(
        total_k_steps=steps,
        num_output_tiles=tiles_m * tiles_n,
        num_microtiles=0,
        wasted_fraction=0.0,
    )
