"""Micro-tile abstraction (Section 3.1, Figure 6).

A *micro-tile* is the smallest data unit PIT reads or writes sparsely: its
shape is 1 on the PIT-axis and matches the dense computation tile on every
other axis, so that each micro-tile still saturates a global-memory
transaction.  SRead gathers many sparsely located micro-tiles into one dense
computation tile; SWrite scatters output micro-tiles back.

:class:`MicroTiledOp` is the record of Figure 6: the micro-tile sizes of a
sparse operator's inputs/output in global memory, the dense data formats the
computation tile expects in shared memory, and the dense tile implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..hw.costmodel import TileConfig
from ..hw.spec import GPUSpec, dtype_bytes
from ..tensor.layout import Layout, needs_transpose


@dataclass(frozen=True)
class MicroTile:
    """A micro-tile shape over a 2-D operand, e.g. ``(1, 32)`` or ``(16, 1)``."""

    shape: tuple

    def __post_init__(self) -> None:
        if len(self.shape) != 2:
            raise ValueError(f"micro-tiles are 2-D in this build, got {self.shape}")
        if any(s < 1 for s in self.shape):
            raise ValueError(f"micro-tile extents must be >= 1, got {self.shape}")

    @property
    def elems(self) -> int:
        return self.shape[0] * self.shape[1]

    def contig_bytes(self, dtype: str, layout: Layout) -> int:
        """Contiguous run length of this micro-tile in the given layout."""
        inner = self.shape[layout.contiguous_axis]
        return inner * dtype_bytes(dtype)

    def saturates_transaction(self, dtype: str, layout: Layout, spec: GPUSpec) -> bool:
        """Whether one micro-tile fills at least one memory transaction.

        This is PIT's efficiency precondition (Section 3.1): when true,
        SRead/SWrite run at (near) streaming bandwidth.
        """
        return self.contig_bytes(dtype, layout) >= spec.transaction_bytes

    def __str__(self) -> str:
        return f"{self.shape[0]}x{self.shape[1]}"


def derive_microtile(
    tile: TileConfig,
    pit_axis: str,
    *,
    operand: str,
) -> MicroTile:
    """Micro-tile for a matmul operand under a PIT rule (Section 3.2).

    "We set the shape of micro-tiles to 1 on the PIT-axis while keeping the
    shape of other axes the same as the tile shape of the dense kernel."

    ``operand`` is ``"A"`` (shape [m, k]), ``"B"`` ([k, n]) or ``"C"``
    ([m, n]).  Raises ``ValueError`` when the PIT-axis does not touch the
    operand (such an operand is read densely and has no micro-tile).
    """
    operand_axes = {"A": ("m", "k"), "B": ("k", "n"), "C": ("m", "n")}
    try:
        axes = operand_axes[operand]
    except KeyError:
        raise ValueError(f"operand must be A, B or C, got {operand!r}") from None
    if pit_axis not in axes:
        raise ValueError(
            f"PIT-axis {pit_axis!r} does not index operand {operand} {axes}"
        )
    tile_extent = {"m": tile.tm, "k": tile.tk, "n": tile.tn}
    shape = tuple(1 if axis == pit_axis else tile_extent[axis] for axis in axes)
    return MicroTile(shape=shape)


def gcd_microtile_shape(shapes) -> tuple:
    """Per-axis GCD of a set of 2-D micro-tile shapes.

    This is the finest granularity from which every shape's cover grid can
    be derived by pooled reductions (the base of the cover-grid pyramid);
    for the mixed row/column micro-tiles of a matmul search it is typically
    ``(1, 1)`` — the boolean mask itself.
    """
    shapes = [tuple(s) for s in shapes]
    if not shapes:
        raise ValueError("need at least one micro-tile shape")
    h = w = 0
    for a, b in shapes:
        if a < 1 or b < 1:
            raise ValueError(f"micro-tile extents must be >= 1, got {(a, b)}")
        h = math.gcd(h, a)
        w = math.gcd(w, b)
    return (h, w)


def microtile_layout_for(
    pit_axis_position: int, current: Layout
) -> tuple:
    """Decide the storage layout for sparse micro-tile access.

    Returns ``(layout, transposed)`` where ``layout`` keeps the operand
    *non-contiguous on the PIT-axis* (so each micro-tile is one contiguous
    run) and ``transposed`` says whether the producer must flip the layout —
    done in a piggyback manner at negligible cost (Section 3.2).
    """
    if needs_transpose(current, pit_axis_position):
        return current.transposed(), True
    return current, False


@dataclass(frozen=True)
class MicroTiledOp:
    """The Figure 6 record describing one generated sparse operator.

    Attribute names follow the paper's listing.
    """

    #: Micro-tile size per input operand in global memory (None = dense read).
    input_microtile_sizes: tuple
    #: Micro-tile size of the output in global memory (None = dense write).
    output_microtile_size: Optional[MicroTile]
    #: Dense data format (tile shapes) of the inputs in shared memory.
    tile_input_formats: tuple
    #: Dense data format of the output in shared memory.
    tile_output_format: tuple
    #: The dense computation tile.
    dense_tile: TileConfig
    #: The PIT-axis this operator's SRead/SWrite rearrange along.
    pit_axis: str
    #: Callable implementing the dense tile computation on gathered blocks
    #: (numpy in this build; the CUDA template of Figure 7 in the original).
    dense_tile_impl: Optional[Callable] = None

    def describe(self) -> str:
        ins = ", ".join(str(m) if m else "dense" for m in self.input_microtile_sizes)
        out = str(self.output_microtile_size) if self.output_microtile_size else "dense"
        return (
            f"MicroTiledOp(axis={self.pit_axis}, inputs=[{ins}], output={out}, "
            f"tile={self.dense_tile.describe()})"
        )


def matmul_microtiled_op(tile: TileConfig, pit_axis: str) -> MicroTiledOp:
    """Build the Figure 6 record for a sparse matmul under ``pit_axis``.

    * axis ``m``: A is read sparsely by (1, tk) micro-tiles, C written
      sparsely by (1, tn) micro-tiles, B read densely;
    * axis ``k``: A gathered by (tm, 1) and B by (1, tn) micro-tiles along k,
      C written densely;
    * axis ``n``: B read sparsely by (tk, 1), C written by (tm, 1).
    """
    if pit_axis == "m":
        inputs = (derive_microtile(tile, "m", operand="A"), None)
        output = derive_microtile(tile, "m", operand="C")
    elif pit_axis == "k":
        inputs = (
            derive_microtile(tile, "k", operand="A"),
            derive_microtile(tile, "k", operand="B"),
        )
        output = None
    elif pit_axis == "n":
        inputs = (None, derive_microtile(tile, "n", operand="B"))
        output = derive_microtile(tile, "n", operand="C")
    else:
        raise ValueError(f"matmul PIT-axis must be m, k or n, got {pit_axis!r}")
    return MicroTiledOp(
        input_microtile_sizes=inputs,
        output_microtile_size=output,
        tile_input_formats=((tile.tm, tile.tk), (tile.tk, tile.tn)),
        tile_output_format=(tile.tm, tile.tn),
        dense_tile=tile,
        pit_axis=pit_axis,
    )
