"""The tile database (Sections 3.2 and 4).

PIT "creates a database of sparse kernels, each of which applies PIT
transformations on one PIT-axis of an operator", backed by dense computation
tiles whose costs were profiled offline once per operator and GPU.  The
original system stores ~1,500 generated kernels over ~500 dense tiles; this
build enumerates dense matmul tiles on the analytical device model
(:mod:`repro.hw.profiler`) and serves the same three queries Algorithm 1
needs:

* ``GetTilesFromTileDB`` — candidate dense computation tiles (with costs),
* per-tile step/fixed cost lookups (``T.tile_cost`` in Algorithm 1),
* the best dense tile for a given problem shape (the fallback candidate).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from ..analysis.runtime_checks import make_lock
from ..hw.costmodel import TileConfig
from ..hw.profiler import TileProfile, profile_matmul_tiles
from ..hw.spec import GPUSpec


@dataclass(frozen=True)
class TileEntry:
    """One dense computation tile with its profiled cost coefficients."""

    tile: TileConfig
    #: Profiled latency of one K-step (microseconds).
    step_us: float
    #: Profiled fixed per-tile latency (output write + scheduling).
    fixed_us: float
    #: Whether the tile decomposes into wmma fragments (fp16 Tensor Core).
    tensor_core_ok: bool

    def tile_cost_us(self, k_extent: int) -> float:
        """Algorithm 1's ``T.tile_cost`` for a tile walking ``k_extent``."""
        steps = math.ceil(k_extent / self.tile.tk)
        return steps * self.step_us + self.fixed_us


#: Shared TileDB instances per (device, dtype, tensor_core, max_tiles) — see
#: :meth:`TileDB.shared`.
_INSTANCE_CACHE: dict = {}
_INSTANCE_CACHE_LOCK = make_lock("instance_cache", reentrant=False)
_INSTANCE_CACHE_PID = os.getpid()


def _reset_shared_after_fork() -> None:
    """Drop the registry when the pid changes (i.e. after a fork).

    Same contract as ``selection._reset_shared_after_fork``: a forked
    worker must profile and own its *own* tile databases rather than
    silently aliasing the parent's, and the inherited lock may be held by
    a parent thread that does not exist in the child.
    """
    global _INSTANCE_CACHE_PID, _INSTANCE_CACHE, _INSTANCE_CACHE_LOCK
    if os.getpid() == _INSTANCE_CACHE_PID:
        return
    _INSTANCE_CACHE_PID = os.getpid()
    # pit: allow[lock-discipline] - post-fork reset runs before the child
    # spawns any thread; the inherited lock is unusable, so the registry
    # and its lock are rebuilt together.
    _INSTANCE_CACHE = {}
    _INSTANCE_CACHE_LOCK = make_lock("instance_cache", reentrant=False)


class TileDB:
    """Profiled dense-tile database for one (device, dtype) pair."""

    def __init__(
        self,
        spec: GPUSpec,
        dtype: str = "float32",
        *,
        tensor_core: bool = False,
        max_tiles: int = 24,
    ):
        self.spec = spec
        self.dtype = dtype
        self.tensor_core = tensor_core
        self.max_tiles = max_tiles
        profiles = profile_matmul_tiles(spec, dtype, tensor_core=tensor_core)
        self._entries = [self._to_entry(p) for p in profiles[: max(1, max_tiles)]]
        if not self._entries:
            raise RuntimeError(
                f"offline profiling produced no feasible tiles for "
                f"{spec.name}/{dtype} (tensor_core={tensor_core})"
            )

    @property
    def cache_key(self) -> tuple:
        """Hashable identity of this database's contents.

        Two databases with equal keys were built from the same profiles, so
        plans selected against one are valid against the other — this is the
        ``tiledb_key`` component of :class:`~repro.core.selection.PlanCache`
        keys.  The full (frozen, hashable) :class:`GPUSpec` participates, so
        two same-named specs with different parameters never collide.
        """
        return (self.spec, self.dtype, self.tensor_core, self.max_tiles)

    @classmethod
    def shared(
        cls,
        spec: GPUSpec,
        dtype: str = "float32",
        *,
        tensor_core: bool = False,
        max_tiles: int = 24,
    ) -> "TileDB":
        """The process-wide instance for this configuration.

        Offline profiling runs once per (device, dtype, tensor_core) — but
        entry conversion and instance construction used to repeat for every
        backend/compiler; a serving process builds backends per batch, so the
        instances themselves are shared too.  Registry access is serialized:
        the live front end constructs per-worker backends concurrently, and
        all of them must observe one profiled instance.
        """
        _reset_shared_after_fork()
        key = (spec, dtype, tensor_core, max_tiles)
        with _INSTANCE_CACHE_LOCK:
            if key not in _INSTANCE_CACHE:
                _INSTANCE_CACHE[key] = cls(
                    spec, dtype, tensor_core=tensor_core, max_tiles=max_tiles
                )
            return _INSTANCE_CACHE[key]

    @staticmethod
    def clear_shared() -> None:
        """Drop the shared instances (tests that vary spec parameters)."""
        _reset_shared_after_fork()
        with _INSTANCE_CACHE_LOCK:
            _INSTANCE_CACHE.clear()

    def _to_entry(self, profile: TileProfile) -> TileEntry:
        tk = profile.tile.tk
        step_us = profile.time_per_k_us * tk
        return TileEntry(
            tile=profile.tile,
            step_us=step_us,
            fixed_us=profile.fixed_us,
            tensor_core_ok=profile.tensor_core_ok,
        )

    def tiles(self) -> list:
        """``GetTilesFromTileDB``: candidate tiles, best efficiency first."""
        return list(self._entries)

    def entry_for(self, tile: TileConfig) -> TileEntry:
        for entry in self._entries:
            if entry.tile == tile:
                return entry
        raise KeyError(f"tile {tile.describe()} not in the database")

    def best_dense_tile(self, m: int, k: int, n: int) -> TileEntry:
        """The dense tile minimizing full-dense latency for this shape.

        Used both for the dense-fallback candidate of Algorithm 1 and by the
        dense baselines.
        """
        best, best_cost = None, float("inf")
        for entry in self._entries:
            tiles_m = math.ceil(m / entry.tile.tm)
            tiles_n = math.ceil(n / entry.tile.tn)
            waves = math.ceil(tiles_m * tiles_n / self.spec.num_sms)
            cost = waves * entry.tile_cost_us(k)
            if cost < best_cost:
                best, best_cost = entry, cost
        return best

    def __len__(self) -> int:
        return len(self._entries)
