"""Mixture-of-Experts routing (Figure 2b).

A gating function assigns each token to expert(s); each expert computes only
its routed tokens, so every expert's matmul is dynamically sparse.  The key
workload property the Switch Transformer figures depend on is the *imbalance*
of the token distribution: padding-based systems (Tutel, DeepSpeed) must pad
every expert to the max (or a fixed capacity), so their cost follows the
busiest expert while PIT's follows the total token count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor.ops import softmax


@dataclass
class RoutingResult:
    """Token-to-expert assignment for one batch."""

    #: [num_tokens] expert id per token (top-1 routing).
    assignment: np.ndarray
    #: [num_experts] token count per expert.
    counts: np.ndarray
    #: [num_tokens, num_experts] router probabilities (for aux losses).
    probs: np.ndarray

    @property
    def num_tokens(self) -> int:
        return int(self.assignment.size)

    @property
    def num_experts(self) -> int:
        return int(self.counts.size)

    @property
    def max_tokens_per_expert(self) -> int:
        return int(self.counts.max()) if self.counts.size else 0

    def imbalance(self) -> float:
        """Max/mean token load — 1.0 is perfectly even."""
        mean = self.counts.mean() if self.counts.size else 0.0
        return float(self.counts.max() / mean) if mean > 0 else 0.0

    def scaled_to(self, num_tokens: int) -> "RoutingResult":
        """The same routing distribution over a different token count.

        Systems disagree on how many tokens reach the MoE layer: padding
        systems route every padded position, PIT routes only real tokens.
        This rescales the per-expert counts proportionally (largest experts
        absorb rounding) so all backends see the same load *shape*.
        """
        if num_tokens == self.num_tokens:
            return self
        if num_tokens < 0:
            raise ValueError("num_tokens must be non-negative")
        if self.num_tokens == 0:
            counts = np.zeros_like(self.counts)
            counts[0] = num_tokens
        else:
            counts = np.floor(
                self.counts * (num_tokens / self.num_tokens)
            ).astype(int)
            deficit = num_tokens - int(counts.sum())
            order = np.argsort(-self.counts)
            for i in range(deficit):
                counts[order[i % order.size]] += 1
        assignment = np.repeat(np.arange(counts.size), counts)
        return RoutingResult(
            assignment=assignment, counts=counts, probs=self.probs
        )


def merge_routing(results) -> RoutingResult:
    """Merge several batches' routing tables into one grouped dispatch.

    Routing tables drawn for separate batches concatenate meaningfully at
    the *grouped-kernel* level: the merged assignment is the concatenation,
    the per-expert counts add, and the grouped FFN's cost still follows the
    total token count (the property padding systems lack).  This is what
    lets a serving engine co-batch MoE requests instead of refusing them.

    Raises ``ValueError`` on zero inputs or mismatched expert counts —
    tables over different expert populations describe different layers and
    must never be silently combined.
    """
    results = list(results)
    if not results:
        raise ValueError("cannot merge zero routing tables")
    base = results[0]
    if len(results) == 1:
        return base
    num_experts = base.num_experts
    for r in results[1:]:
        if r.num_experts != num_experts:
            raise ValueError(
                f"cannot merge routing tables over {num_experts} and "
                f"{r.num_experts} experts"
            )
    assignment = np.concatenate([r.assignment for r in results])
    counts = np.sum([r.counts for r in results], axis=0)
    probs = np.concatenate([r.probs for r in results], axis=0)
    return RoutingResult(assignment=assignment, counts=counts, probs=probs)


def routing_signature(routings, *, quantum: float = 0.05) -> tuple:
    """Quantized signature of one or more routing tables (hashable).

    Captures the statistics a grouped-dispatch plan depends on: expert
    count, quantized load imbalance (max/mean) and quantized live-expert
    fraction.  Per-batch assignments vary draw to draw, but a trained
    router's load *shape* is stable — the same property the plan cache
    exploits for attention masks.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive")
    routings = list(routings)
    if not routings:
        raise ValueError("routing signature needs at least one routing table")
    counts = np.sum([np.asarray(r.counts) for r in routings], axis=0)
    total = counts.sum()
    mean = counts.mean() if counts.size else 0.0
    imbalance = float(counts.max() / mean) if mean > 0 else 0.0
    live = float((counts > 0).mean()) if total > 0 else 0.0
    q = 1.0 / quantum
    return (
        int(counts.size),
        int(round(imbalance * q)),
        int(round(live * q)),
    )


def routing_sample_mask(counts, rows: int) -> np.ndarray:
    """Representative ``[rows, num_experts]`` assignment mask of a routing.

    Row ``i`` marks the expert it would dispatch to, with rows allocated to
    experts in proportion to the observed per-expert loads (largest experts
    absorb rounding) — the sparse-operand sample Algorithm 1 searches over
    for a ``moe-grouped`` plan.  Deterministic given the counts.
    """
    counts = np.asarray(counts)
    if rows < 1:
        raise ValueError("rows must be >= 1")
    total = int(counts.sum())
    if total == 0:
        share = np.zeros(counts.size, dtype=int)
        share[0] = rows
    else:
        share = np.floor(counts * (rows / total)).astype(int)
        deficit = rows - int(share.sum())
        order = np.argsort(-counts)
        for i in range(deficit):
            share[order[i % order.size]] += 1
    mask = np.zeros((rows, counts.size), dtype=bool)
    row_expert = np.repeat(np.arange(counts.size), share)
    mask[np.arange(rows), row_expert] = True
    return mask


class Router:
    """A Switch-style top-1 router with controllable imbalance.

    ``concentration`` shapes the expert popularity distribution: 1.0 gives a
    uniform Dirichlet (mild natural imbalance); smaller values give the
    heavily skewed loads real routers exhibit before load-balancing losses
    kick in.
    """

    def __init__(self, num_experts: int, *, concentration: float = 0.5, seed: int = 0):
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        self.num_experts = num_experts
        self.concentration = concentration
        self._rng = np.random.default_rng(seed)
        #: Expert popularity prior (fixed per router instance; the paper's
        #: routers are trained, so popularity is stable across batches while
        #: individual token assignments vary).
        self.popularity = self._rng.dirichlet(
            np.full(num_experts, concentration)
        )

    def route(self, num_tokens: int, *, seed: int = 0) -> RoutingResult:
        """Assign ``num_tokens`` tokens to experts (top-1)."""
        rng = np.random.default_rng(seed ^ 0x5EED)
        logits = rng.standard_normal((num_tokens, self.num_experts))
        logits += np.log(self.popularity + 1e-12)  # popularity bias
        probs = softmax(logits, axis=-1)
        assignment = probs.argmax(axis=-1)
        counts = np.bincount(assignment, minlength=self.num_experts)
        return RoutingResult(assignment=assignment, counts=counts, probs=probs)


def capacity_tokens(num_tokens: int, num_experts: int, capacity_factor: float) -> int:
    """Tutel/DeepSpeed-style expert capacity: every expert's buffer is padded
    to ``capacity_factor * num_tokens / num_experts`` tokens."""
    if capacity_factor <= 0:
        raise ValueError("capacity_factor must be positive")
    import math

    return max(1, math.ceil(capacity_factor * num_tokens / num_experts))


def drop_overflow(result: RoutingResult, capacity: int) -> RoutingResult:
    """Apply a hard capacity: tokens over an expert's capacity are dropped
    (assignment -1), as Tutel/DeepSpeed do when buffers fill."""
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    assignment = result.assignment.copy()
    fill = np.zeros(result.num_experts, dtype=int)
    for i, e in enumerate(assignment):
        if fill[e] >= capacity:
            assignment[i] = -1
        else:
            fill[e] += 1
    counts = np.bincount(assignment[assignment >= 0], minlength=result.num_experts)
    return RoutingResult(assignment=assignment, counts=counts, probs=result.probs)
