"""Per-dataset sequence-length distributions (dynamic-sequence-length sparsity).

The paper's BERT, OPT, Switch Transformer and training experiments all
exercise the sparsity caused by *varying sequence lengths in a batch*
(Figure 2c): shorter sequences are padded to the batch maximum and the
padding is wasted work.  The real experiments draw lengths from GLUE, IMDB,
Multi-XScience, Multi-News, MNLI and Alpaca.

Offline substitution: each dataset is modeled as a seeded log-normal length
distribution clipped to the dataset's tokenizer limits, parameterized with
published statistics (mean/median token counts of the standard BERT/OPT
tokenizations).  The figures consume only the length *histograms* — padding
ratios and their batch-to-batch variance — which the log-normal family
captures; EXPERIMENTS.md records this substitution.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LengthDistribution:
    """A seeded sequence-length generator for one dataset."""

    name: str
    #: Mean token count (after tokenization).
    mean: float
    #: Log-space standard deviation (spread of the log-normal).
    log_sigma: float
    #: Tokenizer clip boundaries.
    min_len: int
    max_len: int

    def sample(self, batch_size: int, *, seed: int = 0) -> np.ndarray:
        """Sample one batch of lengths.

        The dataset name is folded into the seed with a *stable* hash
        (crc32) so different datasets draw different streams while results
        stay reproducible across processes.
        """
        rng = np.random.default_rng((zlib.crc32(self.name.encode()) ^ seed) & 0x7FFFFFFF)
        mu = math.log(self.mean) - 0.5 * self.log_sigma**2
        raw = rng.lognormal(mu, self.log_sigma, size=batch_size)
        return np.clip(np.round(raw).astype(int), self.min_len, self.max_len)

    def batches(self, num_batches: int, batch_size: int, *, seed: int = 0):
        """Yield ``num_batches`` independent batches of lengths."""
        for i in range(num_batches):
            yield self.sample(batch_size, seed=seed * 100003 + i)

    def padding_ratio(self, batch_size: int, *, seed: int = 0, num_batches: int = 16) -> float:
        """Expected fraction of padded (wasted) tokens when padding each
        batch to its own maximum — the sparsity this dataset induces."""
        wasted = 0
        total = 0
        for batch in self.batches(num_batches, batch_size, seed=seed):
            padded = int(batch.max()) * batch_size
            wasted += padded - int(batch.sum())
            total += padded
        return wasted / total if total else 0.0


#: Length statistics per dataset.  GLUE statistics follow the standard BERT
#: uncased tokenization; IMDB/Multi-News/Multi-XScience are long-document
#: corpora; Alpaca lengths include the instruction+response pair.
DATASETS = {
    "mnli": LengthDistribution("mnli", mean=39.0, log_sigma=0.45, min_len=4, max_len=128),
    "mrpc": LengthDistribution("mrpc", mean=53.0, log_sigma=0.25, min_len=8, max_len=128),
    "cola": LengthDistribution("cola", mean=11.0, log_sigma=0.40, min_len=3, max_len=64),
    "rte": LengthDistribution("rte", mean=64.0, log_sigma=0.50, min_len=8, max_len=256),
    "qqp": LengthDistribution("qqp", mean=30.0, log_sigma=0.40, min_len=4, max_len=128),
    "sst2": LengthDistribution("sst2", mean=13.0, log_sigma=0.55, min_len=3, max_len=64),
    "wnli": LengthDistribution("wnli", mean=37.0, log_sigma=0.35, min_len=8, max_len=128),
    "qnli": LengthDistribution("qnli", mean=50.0, log_sigma=0.40, min_len=8, max_len=128),
    "stsb": LengthDistribution("stsb", mean=27.0, log_sigma=0.35, min_len=4, max_len=128),
    "imdb": LengthDistribution("imdb", mean=292.0, log_sigma=0.55, min_len=32, max_len=512),
    "xscience": LengthDistribution("xscience", mean=390.0, log_sigma=0.40, min_len=64, max_len=512),
    "news": LengthDistribution("news", mean=450.0, log_sigma=0.45, min_len=64, max_len=512),
    "alpaca": LengthDistribution("alpaca", mean=270.0, log_sigma=0.55, min_len=16, max_len=512),
    "arxiv": LengthDistribution("arxiv", mean=3100.0, log_sigma=0.45, min_len=512, max_len=4096),
    "lmd": LengthDistribution("lmd", mean=12000.0, log_sigma=0.60, min_len=1024, max_len=32768),
}

#: The GLUE subsets evaluated in Figure 11 (paper order).
GLUE_TASKS = ("mnli", "mrpc", "cola", "rte", "qqp", "sst2", "wnli", "qnli", "stsb")

#: The full Figure 11 dataset list (paper order).
BERT_DATASETS = GLUE_TASKS + ("imdb", "xscience", "news")


def get_dataset(name: str) -> LengthDistribution:
    """Look up a dataset's length distribution by name."""
    try:
        return DATASETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None


def pad_to_multiple(lengths: np.ndarray, multiple: int) -> np.ndarray:
    """Round lengths up to a multiple (Triton block-sparse needs multiples of
    32 tokens; Figure 11 discusses the waste this creates on short GLUE
    sequences)."""
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    return ((lengths + multiple - 1) // multiple) * multiple
