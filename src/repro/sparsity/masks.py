"""Weight-sparsity mask generators: granular random masks and magnitude
pruning (Figure 2d, Figure 15, Figure 16, Table 3 workloads).

``granular_mask`` produces the block-granular random masks of the kernel
micro-benchmarks (Figure 16's 32x1 / 1x64 / 32x64 granularities, Table 3's
2x1..32x1).  ``MagnitudePruner`` implements the iterative magnitude pruning
of the sparse-training experiment (Figure 15): at each step the mask keeps
the largest-magnitude weight *blocks*, so the mask changes every step as the
weights move — the dynamic part.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def granular_mask(
    shape: tuple,
    granularity: tuple,
    sparsity: float,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Random boolean mask whose non-zeros come in ``granularity`` blocks.

    ``sparsity`` is the fraction of *blocks* that are zero (equal to the
    element sparsity since blocks are all-or-nothing).  The shape must divide
    evenly by the granularity — kernel benchmarks use power-of-two sizes.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    gh, gw = granularity
    if shape[0] % gh or shape[1] % gw:
        raise ValueError(f"shape {shape} not divisible by granularity {granularity}")
    rng = np.random.default_rng(seed)
    grid = rng.random((shape[0] // gh, shape[1] // gw)) >= sparsity
    return np.kron(grid, np.ones((gh, gw), dtype=bool))


def mask_sparsity(mask: np.ndarray) -> float:
    """Zero fraction of a mask."""
    return 1.0 - float(np.count_nonzero(mask)) / mask.size


@dataclass
class PruningSchedule:
    """Iterative pruning schedule: sparsity ramps from start to end."""

    start_sparsity: float = 0.0
    end_sparsity: float = 0.98
    num_steps: int = 10

    def sparsity_at(self, step: int) -> float:
        """Cubic sparsity ramp (the standard gradual-pruning schedule)."""
        if self.num_steps <= 1:
            return self.end_sparsity
        t = min(1.0, max(0.0, step / (self.num_steps - 1)))
        return self.end_sparsity + (self.start_sparsity - self.end_sparsity) * (
            (1 - t) ** 3
        )


class MagnitudePruner:
    """Block-wise magnitude pruning (Figure 15's mask_calc_func).

    Keeps the blocks with the largest L1 magnitude; everything else is
    masked.  Because weights drift during training, the kept set changes
    step to step — the mask stream is dynamic and nearly never repeats.
    """

    def __init__(self, block: tuple):
        bh, bw = block
        if bh < 1 or bw < 1:
            raise ValueError(f"invalid block {block}")
        self.block = block

    def block_scores(self, weights: np.ndarray) -> np.ndarray:
        bh, bw = self.block
        rows, cols = weights.shape
        if rows % bh or cols % bw:
            raise ValueError(
                f"weight shape {weights.shape} not divisible by block {self.block}"
            )
        return (
            np.abs(weights)
            .reshape(rows // bh, bh, cols // bw, bw)
            .sum(axis=(1, 3))
        )

    def mask(self, weights: np.ndarray, sparsity: float) -> np.ndarray:
        """Boolean keep-mask at the requested sparsity."""
        if not 0.0 <= sparsity <= 1.0:
            raise ValueError("sparsity must be in [0, 1]")
        scores = self.block_scores(weights)
        num_blocks = scores.size
        num_keep = num_blocks - int(round(sparsity * num_blocks))
        grid = np.zeros(scores.shape, dtype=bool)
        if num_keep > 0:
            threshold_idx = np.argpartition(scores.ravel(), -num_keep)[-num_keep:]
            grid.ravel()[threshold_idx] = True
        return np.kron(grid, np.ones(self.block, dtype=bool))

    def mask_stream(
        self,
        weights: np.ndarray,
        schedule: PruningSchedule,
        *,
        drift: float = 0.01,
        seed: int = 0,
    ):
        """Yield (step, sparsity, mask) over a training run.

        Between steps the weights receive a small random update (``drift``),
        so consecutive masks differ even at constant sparsity — matching the
        paper's observation that every layer rebuilds its sparse index every
        batch (Section 5.2).
        """
        rng = np.random.default_rng(seed)
        w = weights.copy()
        for step in range(schedule.num_steps):
            sparsity = schedule.sparsity_at(step)
            yield step, sparsity, self.mask(w, sparsity)
            w += drift * rng.standard_normal(w.shape)


def nm_prune_mask(scores, n: int, m: int, *, axis: int = 0) -> np.ndarray:
    """N:M pruning: keep the ``n`` largest-score entries of every aligned
    ``m``-group along ``axis``.

    ``scores`` is a magnitude matrix (use ``np.abs(weights)``) or a boolean
    keep-mask; zero-score entries are never kept, so projecting an existing
    mask keeps at most ``n`` of its surviving entries per group.  Ties break
    toward the lower index (stable sort), which makes the projection a pure
    function of its inputs — the property the nm-sparse plan kind needs for
    its permutation search to be cacheable.
    """
    if not 1 <= n <= m:
        raise ValueError(f"need 1 <= n <= m, got {n}:{m}")
    arr = np.moveaxis(np.asarray(scores, dtype=float), axis, 0)
    if arr.shape[0] % m:
        raise ValueError(
            f"axis extent {arr.shape[0]} not divisible by group size {m}"
        )
    groups = arr.reshape(arr.shape[0] // m, m, *arr.shape[1:])
    order = np.argsort(-groups, axis=1, kind="stable")
    rank = np.argsort(order, axis=1, kind="stable")
    keep = (rank < n).reshape(arr.shape) & (arr != 0)
    return np.moveaxis(keep, 0, axis)


def two_four_mask(shape: tuple, *, seed: int = 0) -> np.ndarray:
    """A strict 2:4 structured mask (every aligned 1x4 run keeps exactly 2).

    The pattern NVIDIA's Sparse Tensor Core consumes; used by the
    sparse-tensor-core augmentation benches.
    """
    rows, cols = shape
    if cols % 4:
        raise ValueError("2:4 masks need a column count divisible by 4")
    rng = np.random.default_rng(seed)
    runs = rows * (cols // 4)
    # For each 1x4 run choose 2 of 4 positions.
    choices = rng.permuted(
        np.tile(np.array([True, True, False, False]), (runs, 1)), axis=1
    )
    return choices.reshape(rows, cols)
