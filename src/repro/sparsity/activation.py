"""Activation sparsity generators (ReLU FFN sparsity, Figure 2d / OPT eval).

Section 5.1: the activation outputs of OPT / Switch Transformer / T5 have a
sparsity ratio of 95-99.9% — after ReLU, almost every element of the FFN's
intermediate activation is exactly zero, and the second FFN matmul can skip
the zero columns.

The generators here produce masks with the *structure* such activations have:
per-row (token) sparsity levels drawn around a target ratio, with a set of
"hot" neurons that fire across many tokens (the head of the empirical neuron
firing distribution) and a long random tail.
"""

from __future__ import annotations

import numpy as np


def relu_activation_mask(
    num_tokens: int,
    hidden: int,
    sparsity: float,
    *,
    hot_fraction: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """A [num_tokens, hidden] boolean mask of non-zero post-ReLU activations.

    ``sparsity`` is the target zero fraction (e.g. 0.99 for OPT).  A
    ``hot_fraction`` of neurons fire with high probability for every token
    (shared features), the rest fire independently so that each token's
    non-zero set differs — which is what makes the pattern *dynamic*.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    density = 1.0 - sparsity
    num_hot = int(hidden * hot_fraction)
    # Hot neurons fire for most tokens but must not exceed the density
    # budget; they take at most half of it.
    hot_budget = min(0.9, (density * hidden) / (2 * max(1, num_hot)))
    mask = np.zeros((num_tokens, hidden), dtype=bool)
    if num_hot:
        hot_ids = rng.choice(hidden, size=num_hot, replace=False)
        mask[:, hot_ids] = rng.random((num_tokens, num_hot)) < hot_budget
    # Remaining budget spread uniformly over all neurons.
    used = mask.mean()
    remaining = max(0.0, density - used)
    mask |= rng.random((num_tokens, hidden)) < remaining
    return mask


def relu_mask_stream(
    num_batches: int,
    num_tokens: int,
    hidden: int,
    sparsity: float,
    *,
    seed: int = 0,
):
    """Yield per-batch activation masks — every batch's pattern is fresh,
    which is why memoizing compiled kernels per pattern fails (Figure 20)."""
    for i in range(num_batches):
        yield relu_activation_mask(
            num_tokens, hidden, sparsity, seed=seed * 99991 + i
        )


def measured_sparsity(mask: np.ndarray) -> float:
    """Zero fraction of a mask (sanity-check helper used by benches)."""
    return 1.0 - float(np.count_nonzero(mask)) / mask.size
