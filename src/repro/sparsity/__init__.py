"""Dynamic-sparsity workload generators: the paper's four sparsity families
(dynamic attention, MoE routing, varying sequence lengths, sparse training)
plus activation sparsity and the pattern-repetition study."""

from .activation import measured_sparsity, relu_activation_mask, relu_mask_stream
from .attention import (
    MaskStats,
    as_mask_stats,
    dynamic_token_mask,
    global_token_positions,
    longformer_mask,
    longformer_mask_rows,
    longformer_mask_stats,
    mask_sparsity,
    museformer_mask,
    museformer_mask_rows,
    museformer_mask_stats,
    museformer_summary_positions,
    sliding_window_mask,
)
from .generators import (
    PatternHitCounter,
    pattern_fingerprint,
    relu_pattern_stream,
    seqlen_pattern_stream,
)
from .masks import (
    MagnitudePruner,
    PruningSchedule,
    granular_mask,
    nm_prune_mask,
    two_four_mask,
)
from .moe import Router, RoutingResult, capacity_tokens, drop_overflow
from .seqlen import (
    BERT_DATASETS,
    DATASETS,
    GLUE_TASKS,
    LengthDistribution,
    get_dataset,
    pad_to_multiple,
)

__all__ = [
    "BERT_DATASETS",
    "DATASETS",
    "GLUE_TASKS",
    "LengthDistribution",
    "MagnitudePruner",
    "MaskStats",
    "PatternHitCounter",
    "PruningSchedule",
    "Router",
    "RoutingResult",
    "as_mask_stats",
    "capacity_tokens",
    "drop_overflow",
    "dynamic_token_mask",
    "get_dataset",
    "global_token_positions",
    "granular_mask",
    "longformer_mask",
    "longformer_mask_rows",
    "longformer_mask_stats",
    "mask_sparsity",
    "measured_sparsity",
    "museformer_mask",
    "museformer_mask_rows",
    "museformer_mask_stats",
    "museformer_summary_positions",
    "nm_prune_mask",
    "pad_to_multiple",
    "pattern_fingerprint",
    "relu_activation_mask",
    "relu_mask_stream",
    "relu_pattern_stream",
    "seqlen_pattern_stream",
    "sliding_window_mask",
    "two_four_mask",
]
