"""Sparsity-pattern streams and the repetition (hit-ratio) study of Figure 20.

Section 5.6 invalidates the "memoize compiled kernels per sparsity pattern"
alternative by measuring how often a batch's sparsity pattern has been seen
before: ~0.4% for sequence-length patterns and ~0.1% for ReLU patterns.
:class:`PatternHitCounter` reproduces that measurement over the workload
streams defined in this package.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .activation import relu_activation_mask
from .seqlen import LengthDistribution, get_dataset


def pattern_fingerprint(pattern: np.ndarray) -> str:
    """A stable content hash identifying one sparsity pattern exactly."""
    arr = np.ascontiguousarray(np.asarray(pattern))
    digest = hashlib.sha256()
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    return digest.hexdigest()


@dataclass
class PatternHitCounter:
    """Counts how often a pattern recurs across a stream (Figure 20)."""

    seen: set = field(default_factory=set)
    hits: int = 0
    total: int = 0

    def observe(self, pattern: np.ndarray) -> bool:
        """Record a pattern; returns True when it was seen before."""
        fp = pattern_fingerprint(pattern)
        self.total += 1
        if fp in self.seen:
            self.hits += 1
            return True
        self.seen.add(fp)
        return False

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def cumulative_ratios(self) -> list:
        """Not retroactive — callers should sample :attr:`hit_ratio` as they
        stream; helper retained for API symmetry."""
        raise NotImplementedError(
            "sample hit_ratio while streaming; ratios are not stored"
        )


def seqlen_pattern_stream(
    dataset: str,
    batch_size: int,
    num_batches: int,
    *,
    seed: int = 0,
):
    """Yield the batch sequence-length tuples (sorted) — the pattern a
    length-specialized kernel would be compiled for.

    Sorting models the most generous memoization: two batches with the same
    multiset of lengths count as the same pattern.
    """
    dist: LengthDistribution = get_dataset(dataset)
    for i in range(num_batches):
        lengths = dist.sample(batch_size, seed=seed * 7919 + i)
        yield np.sort(lengths)


def relu_pattern_stream(
    batch_tokens: int,
    hidden: int,
    sparsity: float,
    num_batches: int,
    *,
    seed: int = 0,
    fingerprint_cols: int = 512,
):
    """Yield ReLU activation patterns batch by batch.

    ``fingerprint_cols`` truncates the mask columns for memory economy; the
    truncation only *raises* the measured hit ratio, so the Figure 20
    conclusion (ratios near zero) is conservative.
    """
    for i in range(num_batches):
        mask = relu_activation_mask(
            batch_tokens, min(hidden, fingerprint_cols), sparsity,
            seed=seed * 104729 + i,
        )
        yield mask
