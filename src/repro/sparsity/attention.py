"""Dynamic sparse-attention mask generators (Longformer, Museformer, Fig. 2a).

Longformer attends through a sliding window plus a small, *input-dependent*
set of global tokens; Museformer attends to fine-grained recent bars plus
coarse-grained summary positions chosen by the music's structure.  Both
yield attention masks known only at runtime — the dynamic sparsity PIT's
attention policy covers with micro-tiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MaskStats:
    """Coverage statistics of one [seq, seq] attention mask.

    Backends price sparse attention from these statistics instead of the raw
    mask, which lets 32k-token Museformer masks (1G+ elements) be processed
    in row chunks without ever materializing the full matrix.
    """

    seq: int
    nnz: int
    #: Width of the PIT micro-tile and count of non-empty (1, micro_w) cells.
    micro_w: int
    covered_micro: int
    #: Block-sparse block size and count of non-empty (block, block) cells.
    block: int
    covered_blocks: int
    #: Number of 32-row bands containing any non-zero (output-tile count).
    row_blocks_nonzero: int
    #: The finest useful micro-tile (one 32B fp32 transaction, Section 3.1)
    #: and its cover — scattered single columns (global tokens, summary
    #: tokens) cover far tighter at width 8 than at width 32.
    micro_fine_w: int = 8
    covered_micro_fine: int = 0

    @property
    def shape(self) -> tuple:
        return (self.seq, self.seq)

    @property
    def density(self) -> float:
        return self.nnz / float(self.seq * self.seq) if self.seq else 0.0

    def covered_micro_elems(self) -> int:
        return self.covered_micro * self.micro_w

    def best_micro_cover_elems(self) -> int:
        """Covered elements under the better of the two micro-tile widths —
        the quantity PIT's micro-tile selection minimizes."""
        fine = self.covered_micro_fine * self.micro_fine_w
        if self.covered_micro_fine == 0:
            return self.covered_micro_elems()
        return min(self.covered_micro_elems(), fine)

    def covered_block_elems(self) -> int:
        return self.covered_blocks * self.block * self.block

    def plan_signature(self, quantum: float = 0.05) -> tuple:
        """Quantized signature of this mask for plan-cache keying (hashable).

        Captures what an attention plan depends on: the sequence extent,
        the quantized overall density, the quantized micro-cover fraction
        (how much of the mask the winning micro-tile actually touches) and
        the cover granularities.  Seed-to-seed mask jitter of one workload
        maps to the same signature; structural changes (wider windows, more
        global tokens) move a bucket and genuinely re-plan.
        """
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        q = 1.0 / quantum
        cells = max(1, self.seq * ((self.seq + self.micro_w - 1) // self.micro_w))
        cover = self.covered_micro / cells
        return (
            self.seq,
            int(round(self.density * q)),
            int(round(cover * q)),
            self.micro_w,
            self.block,
        )

    @classmethod
    def merged(cls, stats_list, weights=None) -> "MaskStats":
        """Weighted-average statistics of several same-shape masks.

        A merged serving batch carries one :class:`MaskStats` that prices
        *per sequence*; averaging the member masks' statistics (weighted by
        each member's sequence count) keeps the merged batch priced like
        its population instead of like its first member.  Raises
        ``ValueError`` on zero inputs or mismatched shapes/granularities —
        those masks were never batch-compatible.
        """
        stats_list = list(stats_list)
        if not stats_list:
            raise ValueError("cannot merge zero mask statistics")
        base = stats_list[0]
        for s in stats_list[1:]:
            if (s.seq, s.micro_w, s.block, s.micro_fine_w) != (
                base.seq, base.micro_w, base.block, base.micro_fine_w
            ):
                raise ValueError(
                    f"cannot merge mask stats over different shapes/"
                    f"granularities: {(s.seq, s.micro_w, s.block)} vs "
                    f"{(base.seq, base.micro_w, base.block)}"
                )
        if len(stats_list) == 1:
            return base
        w = np.asarray(
            [1.0] * len(stats_list) if weights is None else list(weights),
            dtype=float,
        )
        if w.size != len(stats_list) or w.sum() <= 0:
            raise ValueError("weights must match stats and sum to > 0")
        w = w / w.sum()

        def avg(attr):
            return int(round(float(np.dot(w, [getattr(s, attr) for s in stats_list]))))

        return cls(
            seq=base.seq,
            nnz=avg("nnz"),
            micro_w=base.micro_w,
            covered_micro=avg("covered_micro"),
            block=base.block,
            covered_blocks=avg("covered_blocks"),
            row_blocks_nonzero=avg("row_blocks_nonzero"),
            micro_fine_w=base.micro_fine_w,
            covered_micro_fine=avg("covered_micro_fine"),
        )

    @classmethod
    def from_mask(cls, mask: np.ndarray, *, micro_w: int = 32, block: int = 32):
        """Compute statistics from a materialized mask."""
        if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
            raise ValueError(f"expected a square 2-D mask, got {mask.shape}")
        seq = mask.shape[0]
        return cls.from_row_chunks(
            lambda lo, hi: mask[lo:hi], seq, micro_w=micro_w, block=block
        )

    @classmethod
    def from_row_chunks(
        cls, row_fn, seq: int, *, micro_w: int = 32, block: int = 32,
        chunk_rows: int = 2048,
    ):
        """Compute statistics by streaming row chunks.

        ``row_fn(lo, hi)`` returns the boolean mask rows ``[lo:hi]`` of shape
        ``(hi-lo, seq)``.  ``chunk_rows`` is rounded to a multiple of
        ``block`` so block covers never straddle chunks.
        """
        from ..core.cover import cover_grid

        chunk_rows = max(block, (chunk_rows // block) * block)
        fine_w = 8
        nnz = 0
        covered_micro = 0
        covered_fine = 0
        covered_blocks = 0
        row_blocks_nonzero = 0
        for lo in range(0, seq, chunk_rows):
            hi = min(seq, lo + chunk_rows)
            rows = np.asarray(row_fn(lo, hi), dtype=bool)
            if rows.shape != (hi - lo, seq):
                raise ValueError(
                    f"row_fn({lo}, {hi}) returned shape {rows.shape}, "
                    f"expected {(hi - lo, seq)}"
                )
            nnz += int(rows.sum())
            covered_micro += int(cover_grid(rows, (1, micro_w)).sum())
            covered_fine += int(cover_grid(rows, (1, fine_w)).sum())
            bgrid = cover_grid(rows, (block, block))
            covered_blocks += int(bgrid.sum())
            row_blocks_nonzero += int(bgrid.any(axis=1).sum())
        return cls(
            seq=seq, nnz=nnz, micro_w=micro_w, covered_micro=covered_micro,
            block=block, covered_blocks=covered_blocks,
            row_blocks_nonzero=row_blocks_nonzero,
            micro_fine_w=fine_w, covered_micro_fine=covered_fine,
        )


def as_mask_stats(attn_mask, *, micro_w: int = 32, block: int = 32) -> MaskStats:
    """Accept either a raw mask or precomputed :class:`MaskStats`."""
    if isinstance(attn_mask, MaskStats):
        return attn_mask
    return MaskStats.from_mask(
        np.asarray(attn_mask, dtype=bool), micro_w=micro_w, block=block
    )


def representative_attention_mask(
    stats: MaskStats, rows: int, cols: int
) -> np.ndarray:
    """A ``[rows, cols]`` sample mask with the density of ``stats``.

    The serving path plans from summary statistics, never from a raw
    ``[seq, seq]`` mask; when Algorithm 1 does need something to search
    over (a cold attention plan), this builds a banded stand-in: each row
    carries one contiguous run of width ``density * cols`` centred on the
    scaled diagonal — the dominant structure of windowed/banded dynamic
    attention.  Deterministic given the stats and sample shape.
    """
    if rows < 1 or cols < 1:
        raise ValueError("sample shape extents must be >= 1")
    width = max(1, min(cols, int(round(stats.density * cols))))
    mask = np.zeros((rows, cols), dtype=bool)
    for i in range(rows):
        center = int(round(i * (cols - 1) / max(1, rows - 1)))
        lo = max(0, min(center - width // 2, cols - width))
        mask[i, lo:lo + width] = True
    return mask


def sliding_window_mask(seq_len: int, window: int) -> np.ndarray:
    """Symmetric sliding-window attention mask ([seq, seq] boolean)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    idx = np.arange(seq_len)
    return np.abs(idx[:, None] - idx[None, :]) <= window // 2


def global_token_positions(seq_len: int, num_global: int, seed: int) -> np.ndarray:
    """The input-dependent global token positions of a Longformer input."""
    rng = np.random.default_rng(seed)
    return rng.choice(seq_len, size=min(num_global, seq_len), replace=False)


def longformer_mask_rows(
    row_lo: int,
    row_hi: int,
    seq_len: int,
    window: int,
    global_positions: np.ndarray,
) -> np.ndarray:
    """Rows [row_lo:row_hi] of a Longformer mask (chunked generation)."""
    rows = np.arange(row_lo, row_hi)
    cols = np.arange(seq_len)
    mask = np.abs(rows[:, None] - cols[None, :]) <= window // 2
    in_global_rows = np.isin(rows, global_positions)
    mask[in_global_rows, :] = True
    mask[:, global_positions] = True
    return mask


def longformer_mask(
    seq_len: int,
    window: int = 512,
    *,
    num_global: int = 16,
    seed: int = 0,
) -> np.ndarray:
    """Longformer attention: sliding window + dynamic global tokens.

    Global token positions are input-dependent (e.g. question tokens); they
    attend to and are attended by every position — the rows/column stripes
    that break block-sparse tilings (Section 5.1's Longformer discussion).
    """
    globals_ = global_token_positions(seq_len, num_global, seed)
    return longformer_mask_rows(0, seq_len, seq_len, window, globals_)


def longformer_mask_stats(
    seq_len: int,
    window: int = 512,
    *,
    num_global: int = 16,
    seed: int = 0,
    micro_w: int = 32,
    block: int = 32,
) -> MaskStats:
    """Longformer mask statistics without materializing the full matrix."""
    globals_ = global_token_positions(seq_len, num_global, seed)
    return MaskStats.from_row_chunks(
        lambda lo, hi: longformer_mask_rows(lo, hi, seq_len, window, globals_),
        seq_len, micro_w=micro_w, block=block,
    )


def museformer_summary_positions(
    seq_len: int, bar_len: int, summary_stride: int, seed: int
) -> np.ndarray:
    """The (input-dependent) summary token of each summarized bar."""
    rng = np.random.default_rng(seed)
    num_bars = (seq_len + bar_len - 1) // bar_len
    positions = []
    for b in range(0, num_bars, summary_stride):
        offset = int(rng.integers(0, min(bar_len, seq_len - b * bar_len)))
        positions.append(b * bar_len + offset)
    return np.asarray(positions, dtype=np.int64)


def museformer_mask_rows(
    row_lo: int,
    row_hi: int,
    seq_len: int,
    bar_len: int,
    fine_bars: int,
    summary_positions: np.ndarray,
) -> np.ndarray:
    """Rows [row_lo:row_hi] of a Museformer mask (chunked generation)."""
    rows = np.arange(row_lo, row_hi)
    cols = np.arange(seq_len)
    row_bar = rows // bar_len
    col_bar = cols // bar_len
    # Fine-grained: own bar and the previous fine_bars bars.
    fine = (col_bar[None, :] <= row_bar[:, None]) & (
        col_bar[None, :] >= row_bar[:, None] - fine_bars
    )
    # Coarse-grained: earlier bars' summary tokens.
    coarse = np.zeros((rows.size, seq_len), dtype=bool)
    coarse[:, summary_positions] = True
    mask = fine | coarse
    causal = cols[None, :] <= rows[:, None]
    return mask & causal


def museformer_mask(
    seq_len: int,
    *,
    bar_len: int = 256,
    fine_bars: int = 2,
    summary_stride: int = 4,
    seed: int = 0,
) -> np.ndarray:
    """Museformer's fine- and coarse-grained attention.

    Tokens attend finely to their own and the previous ``fine_bars`` bars
    (music repeats locally) and coarsely to one summary token per
    ``summary_stride``-th earlier bar; which bars are summarized varies with
    the piece (seeded here).  Causal.
    """
    if bar_len < 1:
        raise ValueError("bar_len must be >= 1")
    summaries = museformer_summary_positions(seq_len, bar_len, summary_stride, seed)
    return museformer_mask_rows(0, seq_len, seq_len, bar_len, fine_bars, summaries)


def museformer_mask_stats(
    seq_len: int,
    *,
    bar_len: int = 256,
    fine_bars: int = 2,
    summary_stride: int = 4,
    seed: int = 0,
    micro_w: int = 32,
    block: int = 32,
) -> MaskStats:
    """Museformer mask statistics via row-chunked streaming (32k-ready)."""
    summaries = museformer_summary_positions(seq_len, bar_len, summary_stride, seed)
    return MaskStats.from_row_chunks(
        lambda lo, hi: museformer_mask_rows(
            lo, hi, seq_len, bar_len, fine_bars, summaries
        ),
        seq_len, micro_w=micro_w, block=block,
    )


def dynamic_token_mask(
    seq_len: int,
    keep_ratio: float,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Dynamic token pruning (DynamicViT/SpAtten-style): a per-input subset
    of tokens stays active; attention is restricted to active x active."""
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(seq_len) < keep_ratio
    return np.outer(keep, keep)


def mask_sparsity(mask: np.ndarray) -> float:
    """Zero fraction of an attention mask."""
    return 1.0 - float(np.count_nonzero(mask)) / mask.size
