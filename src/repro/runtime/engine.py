"""The execution engine: walk a transformer workload against one backend.

For every layer the engine prices the standard pre-LN transformer op
sequence (LN, QKV projections, attention, output projection, residual, LN,
FFN-or-MoE, residual) through the backend's primitives, books memory into a
:class:`~repro.hw.MemoryTracker`, and collects a
:class:`~repro.hw.Timeline`.  OOM and unsupported-model events become
structured results instead of exceptions, matching how the paper reports
baseline crashes ("OOM" bars, missing lines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..baselines.backends import ModelBackend, UnsupportedModelError
from ..hw.memtracker import MemoryTracker, OutOfMemoryError
from ..hw.spec import dtype_bytes
from ..hw.timeline import ExecReport, Timeline
from ..models.workloads import Workload


@dataclass
class RunReport:
    """Outcome of one simulated end-to-end run."""

    model: str
    backend: str
    mode: str  # "inference" | "training"
    latency_ms: float = 0.0
    convert_ms: float = 0.0
    peak_mem_gib: float = 0.0
    oom: bool = False
    unsupported: bool = False
    error: Optional[str] = None
    timeline: Timeline = field(default_factory=Timeline)

    @property
    def ok(self) -> bool:
        return not (self.oom or self.unsupported)

    def describe(self) -> str:
        if self.oom:
            return f"{self.backend:18s} OOM ({self.error})"
        if self.unsupported:
            return f"{self.backend:18s} unsupported ({self.error})"
        return (
            f"{self.backend:18s} {self.latency_ms:10.2f} ms "
            f"(convert {self.convert_ms:8.2f} ms)  mem {self.peak_mem_gib:6.2f} GiB"
        )


#: Optimizer-state multiplier for training: gradients + Adam m/v, all at the
#: weight dtype (the paper fine-tunes without ZeRO sharding on one GPU).
TRAINING_STATE_MULTIPLIER = 3


#: Effective per-direction NVLink bandwidth for tensor-parallel allreduce.
NVLINK_GBS = 130.0


def run_transformer(
    workload: Workload,
    backend: ModelBackend,
    *,
    mode: str = "inference",
    enforce_memory: bool = True,
    model_family_check: bool = True,
    devices: int = 1,
) -> RunReport:
    """Price one forward (or forward+backward) pass of ``workload``.

    ``devices > 1`` models tensor parallelism the way the paper runs
    OPT-13B/30B on eight V100s: weights and optimizer state shard evenly,
    the weight-bearing matmuls (projections, attention, FFN / MoE experts)
    divide by the device count while layernorm and pointwise ops — and the
    token activations they produce — stay replicated at full size, and
    every layer pays two ring-allreduces over the token activations.
    """
    if mode not in ("inference", "training"):
        raise ValueError(f"mode must be inference|training, got {mode!r}")
    if devices < 1:
        raise ValueError("devices must be >= 1")
    cfg = workload.config
    report = RunReport(model=cfg.name, backend=backend.name, mode=mode)
    mem = MemoryTracker(backend.spec, enforce_capacity=enforce_memory)
    timeline = Timeline()
    backend.set_fusion(mode == "inference")

    try:
        if model_family_check and hasattr(backend, "check_model"):
            backend.check_model(cfg.family, workload.max_len)

        dsize = dtype_bytes(backend.dtype)
        weight_bytes = cfg.param_count() * dsize // devices
        mem.alloc(weight_bytes, "weights", category="weights")
        if mode == "training":
            mem.alloc(
                weight_bytes * TRAINING_STATE_MULTIPLIER,
                "optimizer",
                category="optimizer",
            )

        lengths = workload.lengths
        d, heads, d_ff = cfg.d_model, cfg.heads, cfg.d_ff
        total_layers = cfg.n_layers + cfg.decoder_layers

        # Embedding lookup (bandwidth-bound; identical across backends).
        from ..hw.costmodel import elementwise_time_us

        tokens = backend.padded_tokens(lengths)
        timeline.record(
            "embedding",
            elementwise_time_us(tokens * d, backend.dtype, backend.spec),
        )
        mem.alloc(tokens * d * dsize, "embedding.out", category="activations")

        for layer in range(total_layers):
            # Megatron-style TP shards only the weight-bearing matmuls
            # (column/row-parallel projections, per-head attention, the FFN
            # or MoE experts); layernorm, residual adds and other pointwise
            # ops run replicated at full size on every rank.
            reports = []  # (ExecReport, sharded) in op order

            def _add(execs, *, sharded):
                reports.extend((r, sharded) for r in execs)

            _add(backend.layernorm(lengths, d), sharded=False)
            for name in ("attn.q", "attn.k", "attn.v"):
                _add(backend.linear(lengths, d, d, label=name, mem=mem),
                     sharded=True)
            _add(
                backend.attention(
                    lengths,
                    heads,
                    cfg.head_dim,
                    attn_mask=workload.attn_stats,
                    causal=cfg.causal,
                    mem=mem,
                ),
                sharded=True,
            )
            _add(backend.linear(lengths, d, d, label="attn.proj", mem=mem),
                 sharded=True)
            _add(backend.pointwise(lengths, d), sharded=False)
            _add(backend.layernorm(lengths, d), sharded=False)
            routing = workload.routing_for(layer)
            if routing is not None:
                # Padding systems route every padded position; PIT routes
                # only real tokens.  Rescale the canonical routing to this
                # backend's effective token count.
                routing = routing.scaled_to(backend.padded_tokens(lengths))
                _add(backend.moe_ffn(routing, d, d_ff, mem=mem), sharded=True)
            else:
                _add(
                    backend.ffn(
                        lengths,
                        d,
                        d_ff,
                        activation=cfg.activation,
                        act_sparsity=workload.act_sparsity,
                        seed=workload.seed * 31 + layer,
                        mem=mem,
                    ),
                    sharded=True,
                )
            _add(backend.pointwise(lengths, d), sharded=False)
            if devices > 1:
                # Tensor parallelism: sharded compute divides across devices;
                # two allreduces per layer move the token activations around
                # the ring.  A ring allreduce sends 2*(devices-1)/devices of
                # the payload per link (reduce-scatter + all-gather), so
                # wider rings cost strictly more per allreduce.
                for r, sharded in reports:
                    if sharded:
                        r.latency_us /= devices
                        r.convert_us /= devices
                comm_bytes = tokens * d * dsize
                ring_factor = 2.0 * (devices - 1) / devices
                comm_us = 2 * (ring_factor * comm_bytes / (NVLINK_GBS * 1e3))
                reports.append(
                    (ExecReport(op="tp.allreduce", latency_us=comm_us), False)
                )
            for r, _ in reports:
                timeline.add(r)

            if mode == "inference":
                # Intra-layer activations die once the layer output exists.
                mem.free_category("activations")
                mem.free_category("conversion")
                mem.free_category("padding")
                mem.alloc(tokens * d * dsize, f"layer{layer}.out", "activations")

        if mode == "training":
            # Backward costs ~2x forward compute (two matmuls per forward
            # matmul) and rebuilds sparse indexes for the gradient masks.
            backward = timeline.scaled(2.0)
            timeline.extend(backward)

        report.latency_ms = timeline.total_ms
        report.convert_ms = timeline.convert_ms
        report.peak_mem_gib = mem.peak_gib
        report.timeline = timeline
    except OutOfMemoryError as exc:
        report.oom = True
        report.error = str(exc)
        report.peak_mem_gib = mem.spec.mem_capacity_gib
    except UnsupportedModelError as exc:
        report.unsupported = True
        report.error = str(exc)
    finally:
        backend.set_fusion(False)
    return report


def speedup_table(reports: list, *, reference: str = "PIT") -> dict:
    """Speedups of ``reference`` over every other (successful) backend."""
    by_name = {r.backend: r for r in reports}
    if reference not in by_name or not by_name[reference].ok:
        raise KeyError(f"no successful {reference!r} run among the reports")
    ref_latency = by_name[reference].latency_ms
    table = {}
    for name, rep in by_name.items():
        if name == reference or not rep.ok:
            continue
        table[name] = rep.latency_ms / ref_latency
    return table
