"""High-level sessions: run one model across the paper's backend lineup.

These are the entry points the benchmarks and examples call: build the
workload, instantiate the backends that apply (respecting dtype support and
model-family restrictions), run them all, and return comparable reports.
"""

from __future__ import annotations

from typing import Optional

from ..baselines import (
    DeepSpeedBackend,
    LongformerSBackend,
    MegaBlocksBackend,
    ModelBackend,
    PITBackend,
    PyTorchBackend,
    PyTorchSBackend,
    TurboTransformerBackend,
    TutelBackend,
    TVMBackend,
    UnsupportedModelError,
)
from ..hw.spec import GPUSpec
from ..models.workloads import Workload
from .engine import RunReport, run_transformer

#: The standard lineup per figure (paper order).
BACKENDS_BY_NAME = {
    "PyTorch": PyTorchBackend,
    "PyTorch-S": PyTorchSBackend,
    "Tutel": TutelBackend,
    "DeepSpeed": DeepSpeedBackend,
    "MegaBlocks": MegaBlocksBackend,
    "TurboTransformer": TurboTransformerBackend,
    "Longformer-S": LongformerSBackend,
    "TVM": TVMBackend,
    "PIT": PITBackend,
}


def make_backend(
    name: str, spec: GPUSpec, dtype: str = "float32", **kwargs
) -> ModelBackend:
    try:
        cls = BACKENDS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS_BY_NAME))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None
    return cls(spec, dtype, **kwargs)


def run_lineup(
    workload: Workload,
    backend_names,
    spec: GPUSpec,
    dtype: str = "float32",
    *,
    mode: str = "inference",
    enforce_memory: bool = True,
    backend_kwargs: Optional[dict] = None,
    devices: int = 1,
) -> list:
    """Run one workload across several backends; failures become reports.

    Backends that do not ship kernels for the requested dtype (MegaBlocks in
    fp32) are reported as unsupported rather than raised, matching how the
    paper's figures simply omit them.
    """
    backend_kwargs = backend_kwargs or {}
    reports = []
    for name in backend_names:
        try:
            backend = make_backend(name, spec, dtype, **backend_kwargs.get(name, {}))
        except UnsupportedModelError as exc:
            reports.append(
                RunReport(
                    model=workload.config.name,
                    backend=name,
                    mode=mode,
                    unsupported=True,
                    error=str(exc),
                )
            )
            continue
        reports.append(
            run_transformer(
                workload,
                backend,
                mode=mode,
                enforce_memory=enforce_memory,
                devices=devices,
            )
        )
    return reports
