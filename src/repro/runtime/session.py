"""High-level sessions: run one model across the paper's backend lineup.

These are the entry points the benchmarks and examples call: build the
workload, instantiate the backends that apply (respecting dtype support and
model-family restrictions), run them all, and return comparable reports.
"""

from __future__ import annotations

import inspect
from typing import Optional

from ..baselines import (
    DeepSpeedBackend,
    LongformerSBackend,
    MegaBlocksBackend,
    ModelBackend,
    PITBackend,
    PyTorchBackend,
    PyTorchSBackend,
    TurboTransformerBackend,
    TutelBackend,
    TVMBackend,
    UnsupportedModelError,
)
from ..hw.spec import GPUSpec
from ..models.workloads import Workload
from .engine import RunReport, run_transformer

#: The standard lineup per figure (paper order).
BACKENDS_BY_NAME = {
    "PyTorch": PyTorchBackend,
    "PyTorch-S": PyTorchSBackend,
    "Tutel": TutelBackend,
    "DeepSpeed": DeepSpeedBackend,
    "MegaBlocks": MegaBlocksBackend,
    "TurboTransformer": TurboTransformerBackend,
    "Longformer-S": LongformerSBackend,
    "TVM": TVMBackend,
    "PIT": PITBackend,
}


def _resolve_backend(name: str):
    try:
        return BACKENDS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS_BY_NAME))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None


def make_backend(
    name: str, spec: GPUSpec, dtype: str = "float32", **kwargs
) -> ModelBackend:
    return _resolve_backend(name)(spec, dtype, **kwargs)


def make_replica_backends(
    name: str, specs, dtype: str = "float32", **kwargs
) -> dict:
    """One backend per *distinct* device spec of a replica lineup.

    A heterogeneous fleet (mixed A100/V100 replicas) needs one backend —
    and therefore one TileDB — per device class, not per replica: two A100
    replicas share profiles, plans and kernels.  Returns an insertion-ordered
    ``{GPUSpec: ModelBackend}`` dict keyed by the frozen spec, in first-seen
    lineup order.
    """
    backends: dict = {}
    for spec in specs:
        if spec not in backends:
            backends[spec] = make_backend(name, spec, dtype, **kwargs)
    return backends


def make_live_frontend(
    spec: GPUSpec,
    *,
    max_queue_depth: Optional[int] = None,
    overload: str = "shed",
    **engine_kwargs,
):
    """Build a :class:`~repro.runtime.serving.ServingEngine` plus the
    asyncio front end serving it — the live analogue of constructing an
    engine and calling ``run(policy="continuous")``.

    ``engine_kwargs`` forward to the engine constructor (``replicas``,
    ``replica_specs``, ``batch_window_us``, ``plan_cache``, ...);
    ``max_queue_depth``/``overload`` configure the front end's
    backpressure (see
    :class:`~repro.runtime.frontend.AsyncServingFrontend`).  Returns
    ``(engine, frontend)`` so callers keep the engine handle for plan-cache
    persistence and replay.
    """
    from .frontend import AsyncServingFrontend
    from .serving import ServingEngine

    engine = ServingEngine(spec, **engine_kwargs)
    frontend = AsyncServingFrontend(
        engine, max_queue_depth=max_queue_depth, overload=overload
    )
    return engine, frontend


def validate_backend_kwargs(name: str, kwargs: dict) -> Optional[str]:
    """Check that ``kwargs`` bind to the backend's constructor signature.

    Returns an error string (or None) instead of raising, so a lineup can
    report one backend's stale kwargs without aborting the others.
    """
    try:
        cls = _resolve_backend(name)
    except KeyError as exc:
        return str(exc)
    try:
        inspect.signature(cls).bind(None, "float32", **kwargs)
    except TypeError as exc:
        return f"bad backend_kwargs for {name}: {exc}"
    return None


def run_lineup(
    workload: Workload,
    backend_names,
    spec: GPUSpec,
    dtype: str = "float32",
    *,
    mode: str = "inference",
    enforce_memory: bool = True,
    backend_kwargs: Optional[dict] = None,
    devices: int = 1,
    plan_cache=None,
) -> list:
    """Run one workload across several backends; failures become reports.

    Backends that do not ship kernels for the requested dtype (MegaBlocks in
    fp32) are reported as unsupported rather than raised, matching how the
    paper's figures simply omit them.

    ``plan_cache`` (a :class:`~repro.core.selection.PlanCache`, e.g.
    ``PlanCache.shared()``) is threaded to every backend whose constructor
    accepts one, so repeated lineups — and the serving engines running in
    the same process — reuse each other's Algorithm 1 outcomes.  An explicit
    ``backend_kwargs`` entry wins over the threaded cache.
    """
    backend_kwargs = backend_kwargs or {}
    reports = []
    for name in backend_names:
        def _failure(msg: str) -> RunReport:
            return RunReport(
                model=workload.config.name,
                backend=name,
                mode=mode,
                unsupported=True,
                error=msg,
            )

        kwargs = dict(backend_kwargs.get(name, {}))
        if plan_cache is not None and "plan_cache" not in kwargs:
            try:
                cls = _resolve_backend(name)
            except KeyError:
                cls = None
            if cls is not None and "plan_cache" in inspect.signature(cls).parameters:
                kwargs["plan_cache"] = plan_cache
        # Validate kwargs up front: stale kwargs (a renamed or removed
        # constructor argument) must cost one report, not the whole lineup.
        kwargs_error = validate_backend_kwargs(name, kwargs)
        if kwargs_error is not None:
            reports.append(_failure(kwargs_error))
            continue
        # Kwargs were validated above, so a TypeError here would be a real
        # constructor bug — let it propagate rather than masking it as an
        # unsupported-backend report.
        try:
            backend = make_backend(name, spec, dtype, **kwargs)
        except UnsupportedModelError as exc:
            reports.append(_failure(str(exc)))
            continue
        reports.append(
            run_transformer(
                workload,
                backend,
                mode=mode,
                enforce_memory=enforce_memory,
                devices=devices,
            )
        )
    return reports
