"""The worker side of the cluster: one process, one replica, one engine.

A worker process owns a full single-replica :class:`ServingEngine` — its
own backend, profiled TileDB and planner for its device class — and runs a
small message loop over the transport: execute dispatches, absorb plan
cache deltas, answer pings, send heartbeats, exit on shutdown.  The policy
never runs here; the host decides, the worker executes (the
``SchedulingPolicy`` seam from PR 6, with only ``_execute`` moved).

Configuration crosses the fork as a frozen, data-only
:class:`WorkerConfig`; the fork start method means nothing is pickled and
the child's fork-aware shared registries re-profile their own tile
databases instead of aliasing the parent's.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ...core.selection import SIGNATURE_QUANTUM, PlanCache
from ...hw.spec import GPUSpec
from ..resilience import ResilienceConfig
from ..serving import ServingEngine
from .codec import (
    decode_delta_entries,
    decode_wire,
    encode_delta_entries,
    error_message,
    heartbeat_message,
    pong_message,
    result_message,
)
from .transport import Channel, WorkerLostError, channel_pair


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to build its engine — data only.

    Mirrors the :class:`ServingEngine` constructor arguments of the host
    (minus the fleet shape: a worker is always one replica of one device),
    plus the transport knobs.  ``heartbeat_interval_s`` comes from the
    cluster config, never a literal — the ``transport-hygiene`` rule's
    contract.  ``exec_delay_s`` is a chaos-test knob: a wall-clock sleep
    before each execution, giving a test a window to SIGKILL the worker
    mid-batch.
    """

    replica_id: int
    spec: GPUSpec
    backend: str = "PIT"
    dtype: str = "float32"
    mode: str = "inference"
    max_batch_tokens: int = 16384
    max_batch_size: int = 32
    enforce_memory: bool = False
    charge_selection: bool = True
    resilience: Optional[ResilienceConfig] = None
    cache_capacity: int = 256
    cache_shards: int = 8
    quantum: float = SIGNATURE_QUANTUM
    heartbeat_interval_s: float = 0.05
    exec_delay_s: float = 0.0


class RecordingPlanCache(PlanCache):
    """A :class:`PlanCache` that records what it learned.

    Every :meth:`put` — including the one :meth:`PlanCache.get_or_compute`
    issues when a cold search resolves — lands in a delta list the worker
    ships back with each result, so the host can broadcast fresh plans to
    the rest of the fleet.  :meth:`absorb` applies a received delta
    *without* recording it (the fleet already knows those entries), and
    ``known`` tracks every key ever seen regardless of later LRU eviction —
    the await protocol needs set membership, not residency.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.known: set = set()
        self._delta: list = []

    def put(self, key, value) -> None:
        super().put(key, value)
        self.known.add(key)
        self._delta.append((key, value))

    def absorb(self, pairs) -> None:
        for key, value in pairs:
            PlanCache.put(self, key, value)
            self.known.add(key)

    def drain_delta(self) -> list:
        delta, self._delta = self._delta, []
        return delta


def make_worker_engine(config: WorkerConfig) -> ServingEngine:
    """The worker's single-replica engine, per the host's
    :meth:`ServingEngine.make_worker_backend` semantics — same backend
    kind, same device class, same resilience config (so the deterministic
    fault injector reaches identical decisions at identical coordinates),
    but a process-private :class:`RecordingPlanCache`."""
    cache = RecordingPlanCache(
        config.cache_capacity,
        quantum=config.quantum,
        shards=config.cache_shards,
    )
    return ServingEngine(
        config.spec,
        backend=config.backend,
        dtype=config.dtype,
        mode=config.mode,
        max_batch_tokens=config.max_batch_tokens,
        max_batch_size=config.max_batch_size,
        replicas=1,
        overlap_selection=False,
        enforce_memory=config.enforce_memory,
        plan_cache=cache,
        charge_selection=config.charge_selection,
        resilience=config.resilience,
    )


class _ShutdownSignal(Exception):
    """Internal: a shutdown message arrived mid-protocol."""


def _heartbeat_loop(
    control_channel: Channel, config: WorkerConfig, stop: threading.Event
) -> None:
    seq = 0
    while not stop.wait(config.heartbeat_interval_s):
        try:
            control_channel.send(heartbeat_message(config.replica_id, seq))
        except WorkerLostError:
            return
        seq += 1


def _absorb_delta(cache: RecordingPlanCache, released: set, message) -> None:
    cache.absorb(decode_delta_entries(message["entries"]))
    for key in message["released"]:
        released.add(decode_wire(key))


def _await_keys(
    cache: RecordingPlanCache,
    released: set,
    data_channel: Channel,
    pending: deque,
    keys,
) -> None:
    """Block until every awaited plan key was delivered or released.

    The host only names keys whose search is owned by a dispatch on
    *another* replica, so the matching delta (or, if the owner failed or
    degraded, the release) is guaranteed to arrive; an awaiting worker
    holds its dispatch rather than duplicating a cold search.
    """
    while True:
        outstanding = [
            k for k in keys if k not in cache.known and k not in released
        ]
        if not outstanding:
            return
        message = data_channel.recv()
        if message["type"] == "cache-delta":
            _absorb_delta(cache, released, message)
        elif message["type"] == "shutdown":
            raise _ShutdownSignal()
        else:
            pending.append(message)


def _run_dispatch(
    engine: ServingEngine,
    cache: RecordingPlanCache,
    released: set,
    data_channel: Channel,
    pending: deque,
    config: WorkerConfig,
    message,
) -> dict:
    batch_id = message["batch_id"]
    attempt = message["attempt"]
    requests = [decode_wire(r) for r in message["requests"]]
    workload = decode_wire(message["workload"])
    keys = [decode_wire(k) for k in message["await_keys"]]
    _await_keys(cache, released, data_channel, pending, keys)
    if config.exec_delay_s > 0:
        time.sleep(config.exec_delay_s)
    cache.drain_delta()
    try:
        batch_report, request_reports = engine.execute_batch(
            requests,
            batch_id=batch_id,
            start_us=message["start_us"],
            replica_id=message["replica_id"],
            workload=workload,
            attempt=attempt,
        )
    except Exception as exc:
        cache.drain_delta()
        return error_message(batch_id, attempt, exc)
    delta = encode_delta_entries(cache.drain_delta())
    return result_message(
        batch_id, attempt, batch_report, request_reports, delta
    )


def worker_main(
    config: WorkerConfig, data_channel: Channel, control_channel: Channel
) -> None:
    """Entry point of one worker process.

    Heartbeats start before engine construction so the host's liveness
    monitor never mistakes a slow TileDB profile for a dead worker.
    """
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(control_channel, config, stop),
        daemon=True,
    )
    beat.start()
    engine = make_worker_engine(config)
    cache = engine.plan_cache
    released: set = set()
    pending: deque = deque()
    try:
        while True:
            message = pending.popleft() if pending else data_channel.recv()
            kind = message["type"]
            if kind == "shutdown":
                break
            if kind == "ping":
                data_channel.send(pong_message())
            elif kind == "cache-delta":
                _absorb_delta(cache, released, message)
            elif kind == "dispatch":
                reply = _run_dispatch(
                    engine,
                    cache,
                    released,
                    data_channel,
                    pending,
                    config,
                    message,
                )
                data_channel.send(reply)
            # Unknown kinds are ignored: a newer host may speak a richer
            # protocol; everything a worker must act on is covered above.
    except (WorkerLostError, _ShutdownSignal):
        pass
    finally:
        stop.set()
        data_channel.close()
        control_channel.close()


class WorkerProcess:
    """Host-side handle of one worker process.

    Owns the host ends of the worker's two channels — ``data_channel``
    (dispatch/result, cache deltas, ping/pong, shutdown) and
    ``control_channel`` (heartbeats) — and the ``multiprocessing.Process``
    itself.  Spawned with the fork start method: the frozen
    :class:`WorkerConfig` and the channel objects are inherited by memory,
    never pickled.
    """

    def __init__(self, config: WorkerConfig, *, context=None):
        import multiprocessing

        ctx = context if context is not None else (
            multiprocessing.get_context("fork")
        )
        self.config = config
        self.replica_id = config.replica_id
        host_data, worker_data = channel_pair()
        host_control, worker_control = channel_pair()
        self.data_channel = host_data
        self.control_channel = host_control
        self._worker_data = worker_data
        self._worker_control = worker_control
        self.process = ctx.Process(
            target=worker_main,
            args=(config, worker_data, worker_control),
            daemon=True,
        )
        self.alive = False

    def start(self) -> None:
        self.process.start()
        # Drop the parent's copies of the child's channel ends, or the
        # child's death would never surface as EOF on the host side.
        self._worker_data.detach_close()
        self._worker_control.detach_close()
        self.alive = True

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def ping(self, timeout: Optional[float] = None) -> bool:
        """Round-trip readiness probe — blocks until the worker's engine is
        built and its message loop is serving."""
        from .codec import ping_message

        self.data_channel.settimeout(timeout)
        try:
            self.data_channel.send(ping_message())
            reply = self.data_channel.recv()
            return reply.get("type") == "pong"
        finally:
            self.data_channel.settimeout(None)

    def request(self, message: dict) -> dict:
        """Send one message and block for its reply (dispatch -> result or
        error).  Single-consumer: only the replica's worker thread calls
        this, so frames never interleave."""
        self.data_channel.send(message)
        return self.data_channel.recv()

    def kill(self) -> None:
        """Hard-kill (SIGKILL) — the chaos path; never graceful."""
        if self.process.pid is not None and self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)
        self.alive = False
        self.data_channel.close()
        self.control_channel.close()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Graceful stop: send shutdown, join, escalate to kill on a hang."""
        from .codec import shutdown_message

        if self.alive and self.process.is_alive():
            try:
                self.data_channel.send(shutdown_message())
            except WorkerLostError:
                pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
        self.alive = False
        self.data_channel.close()
        self.control_channel.close()
