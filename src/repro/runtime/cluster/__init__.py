"""Process-level worker pool behind the ``SchedulingPolicy`` seam.

The cluster subsystem runs each serving replica as a real OS process with
its own engine (backend, profiled TileDB, planner), connected to the
admission host by a length-prefixed socket transport.  The host keeps the
policy — admission, batching, placement, retries — and ships only the
execution across the boundary, so the decision trace of a virtual-time
replay stays bit-identical to the simulated scheduler's.

Layers:

* :mod:`.transport` — framed JSON channels over ``socketpair`` and
  :class:`WorkerLostError`;
* :mod:`.codec` — the wire codec over the plan codec: requests,
  workloads, reports, faults, cache deltas;
* :mod:`.worker` — the worker process (engine, message loop, heartbeats)
  and the host-side :class:`WorkerProcess` handle;
* :mod:`.frontend` — :class:`ClusterFrontend` (the async frontend over
  the pool), heartbeat monitoring into the health tracker, plan-cache
  delta sync, and the replay/serve entry points.
"""

from .codec import decode_wire, encode_wire
from .frontend import (
    ClusterConfig,
    ClusterFrontend,
    cluster_replay_trace,
    serve_cluster,
    serve_cluster_async,
)
from .transport import Channel, WorkerLostError, channel_pair
from .worker import WorkerConfig, WorkerProcess, worker_main

__all__ = [
    "Channel",
    "ClusterConfig",
    "ClusterFrontend",
    "WorkerConfig",
    "WorkerLostError",
    "WorkerProcess",
    "channel_pair",
    "cluster_replay_trace",
    "decode_wire",
    "encode_wire",
    "serve_cluster",
    "serve_cluster_async",
    "worker_main",
]
