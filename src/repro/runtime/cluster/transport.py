"""Length-prefixed socket transport between the host and worker processes.

One :class:`Channel` wraps one end of a ``socket.socketpair()``: each
message is a 4-byte big-endian length prefix followed by a canonical JSON
body (sorted keys, no whitespace — two processes encoding the same message
produce identical bytes, which keeps the wire format diffable and the
determinism tests honest).  Sends are serialized by a per-channel lock
because the host broadcasts cache deltas from whichever replica worker
thread finished a batch; receives are single-consumer by construction
(the owning replica thread on the host, the main loop in the worker).

A peer that vanishes — closed socket, dead process — surfaces as
:class:`WorkerLostError` from either direction, which the cluster frontend
converts into the resilience layer's failure path.
"""

from __future__ import annotations

import json
import socket
import struct

from ...analysis.runtime_checks import make_lock

_LENGTH = struct.Struct(">I")

#: Refuse absurd frames instead of allocating them: a corrupted or
#: misaligned length prefix must not look like a 4 GiB message.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class WorkerLostError(RuntimeError):
    """The transport peer is gone (socket closed, process dead)."""


class Channel:
    """One framed, full-duplex message channel over a connected socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = make_lock("transport", reentrant=False)

    def fileno(self) -> int:
        return self._sock.fileno()

    def settimeout(self, timeout) -> None:
        """Receive timeout in seconds (``None`` blocks forever)."""
        self._sock.settimeout(timeout)

    def send(self, message: dict) -> None:
        """Frame and send one message; raises :class:`WorkerLostError` if
        the peer is gone.  Thread-safe: frames never interleave."""
        body = json.dumps(
            message, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        frame = _LENGTH.pack(len(body)) + body
        with self._send_lock:
            try:
                self._sock.sendall(frame)
            except (OSError, ValueError) as exc:
                raise WorkerLostError(f"send failed: {exc}") from exc

    def recv(self) -> dict:
        """Receive one message; raises :class:`WorkerLostError` on EOF or
        a dead peer, ``socket.timeout`` past a configured timeout."""
        header = self._recv_exact(_LENGTH.size)
        (length,) = _LENGTH.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise WorkerLostError(
                f"frame of {length} bytes exceeds the "
                f"{MAX_MESSAGE_BYTES}-byte limit (corrupt stream?)"
            )
        body = self._recv_exact(length)
        try:
            return json.loads(body.decode("utf-8"))
        except ValueError as exc:
            raise WorkerLostError(f"undecodable frame: {exc}") from exc

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining > 0:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout:
                raise
            except (OSError, ValueError) as exc:
                raise WorkerLostError(f"recv failed: {exc}") from exc
            if not chunk:
                raise WorkerLostError("peer closed the channel")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        """Close both directions; safe to call twice.  Closing unblocks a
        peer (or a local thread) parked in :meth:`recv`."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def detach_close(self) -> None:
        """Drop this process's fd only — no shutdown.

        ``shutdown`` acts on the socket (shared by every fd copy across a
        fork); a parent dropping its copy of a child's channel end must use
        a plain close, or it would sever the child's connection too.
        """
        try:
            self._sock.close()
        except OSError:
            pass


def channel_pair() -> tuple:
    """A connected ``(host_channel, worker_channel)`` pair."""
    host_sock, worker_sock = socket.socketpair()
    return Channel(host_sock), Channel(worker_sock)
