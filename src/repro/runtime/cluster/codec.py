"""Wire codec for the cluster transport: the plan codec, extended.

The plan dump codec (:mod:`repro.core.plan`) already solves the hard half
of cross-process messaging — cache keys and plan values that compare equal
after a process boundary.  The transport needs the rest of the dispatch
surface on the wire too: workloads (with their numpy-backed sparsity
statistics), requests, reports, and the resilience configuration a worker
engine must replay deterministically.  This module layers those on top of
:func:`repro.core.plan.encode_value` without changing the dump format —
a cache-delta entry on the wire *is* a :meth:`PlanCache.save` entry.

Everything here is data-only by construction: :func:`encode_wire` raises
``TypeError`` for anything it does not recognize, so lambdas, locks,
backends and other process-bound objects can never ride a message — the
``transport-hygiene`` pitlint rule enforces the same property statically
at every send site.
"""

from __future__ import annotations

import base64
import dataclasses

import numpy as np

from ...core.plan import decode_value, encode_value
from ...models.config import AttentionSpec, ModelConfig, MoESpec
from ...models.workloads import Workload
from ...sparsity.attention import MaskStats
from ...sparsity.moe import RoutingResult
from ..engine import RunReport
from ..resilience import (
    FaultSpec,
    InjectedFault,
    ReplicaDownFault,
    ResilienceConfig,
    TransientExecFault,
    WorkerCrashFault,
)
from ..serving import BatchReport, InferenceRequest, RequestReport


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------
def _encode_ndarray(arr: np.ndarray) -> dict:
    contiguous = np.ascontiguousarray(arr)
    return {
        "dtype": contiguous.dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def _decode_ndarray(data: dict) -> np.ndarray:
    raw = base64.b64decode(data["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
    return arr.reshape(tuple(data["shape"])).copy()


def encode_wire(obj):
    """Encode one message payload value into JSON-compatible data.

    Superset of the plan codec: everything :func:`encode_value` accepts
    plus ndarrays, workloads, requests, reports and resilience configs.
    Raises ``TypeError`` for anything else — a transport message must
    never smuggle live process state across the boundary.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": _encode_ndarray(obj)}
    if isinstance(obj, list):
        return [encode_wire(x) for x in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str) or key.startswith("__"):
                raise TypeError(
                    f"wire dicts need plain string keys, got {key!r}"
                )
            out[key] = encode_wire(value)
        return out
    if isinstance(obj, MaskStats):
        return {"__maskstats__": dataclasses.asdict(obj)}
    if isinstance(obj, RoutingResult):
        return {
            "__routing__": {
                "assignment": _encode_ndarray(np.asarray(obj.assignment)),
                "counts": _encode_ndarray(np.asarray(obj.counts)),
                "probs": _encode_ndarray(np.asarray(obj.probs)),
            }
        }
    if isinstance(obj, MoESpec):
        return {"__moespec__": dataclasses.asdict(obj)}
    if isinstance(obj, AttentionSpec):
        return {"__attnspec__": dataclasses.asdict(obj)}
    if isinstance(obj, ModelConfig):
        fields = {
            f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
        }
        fields["moe"] = encode_wire(fields["moe"])
        fields["attention"] = encode_wire(fields["attention"])
        return {"__modelconfig__": fields}
    if isinstance(obj, Workload):
        return {
            "__workload__": {
                "config": encode_wire(obj.config),
                "lengths": _encode_ndarray(np.asarray(obj.lengths)),
                "act_sparsity": obj.act_sparsity,
                "attn_stats": encode_wire(obj.attn_stats),
                # JSON keys are strings; layer indices are ints — carry the
                # routing table as explicit (layer, routing) pairs.
                "routing_by_layer": [
                    [int(layer), encode_wire(routing)]
                    for layer, routing in sorted(obj.routing_by_layer.items())
                ],
                "seed": obj.seed,
            }
        }
    if isinstance(obj, InferenceRequest):
        return {
            "__request__": {
                "request_id": obj.request_id,
                "workload": encode_wire(obj.workload),
                "arrival_us": obj.arrival_us,
                "deadline_us": obj.deadline_us,
            }
        }
    if isinstance(obj, FaultSpec):
        fields = dataclasses.asdict(obj)
        fields["outages"] = [list(o) for o in obj.outages]
        return {"__faultspec__": fields}
    if isinstance(obj, ResilienceConfig):
        fields = {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
            if f.name != "fault"
        }
        fields["fault"] = encode_wire(obj.fault)
        return {"__resilience__": fields}
    if isinstance(obj, RequestReport):
        return {"__reqreport__": dataclasses.asdict(obj)}
    if isinstance(obj, RunReport):
        # The timeline is per-process profiling state, not a decision;
        # decode rebuilds a fresh default.
        fields = {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
            if f.name != "timeline"
        }
        return {"__runreport__": fields}
    if isinstance(obj, BatchReport):
        fields = {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
            if f.name != "run"
        }
        fields = {k: encode_wire(v) for k, v in fields.items()}
        fields["run"] = encode_wire(obj.run)
        return {"__batchreport__": fields}
    # Everything the plan dump codec covers: tuples, GPUSpec, TileConfig,
    # MicroTile, KernelChoice, PlanSpec.  Recursion re-enters encode_wire
    # only for tuples, which encode_value handles itself (tuple members in
    # plan keys/values are always plan-codec types).
    return encode_value(obj)


def decode_wire(data):
    """Inverse of :func:`encode_wire`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode_wire(x) for x in data]
    if isinstance(data, dict):
        if "__ndarray__" in data:
            return _decode_ndarray(data["__ndarray__"])
        if "__maskstats__" in data:
            return MaskStats(**data["__maskstats__"])
        if "__routing__" in data:
            body = data["__routing__"]
            return RoutingResult(
                assignment=_decode_ndarray(body["assignment"]),
                counts=_decode_ndarray(body["counts"]),
                probs=_decode_ndarray(body["probs"]),
            )
        if "__moespec__" in data:
            return MoESpec(**data["__moespec__"])
        if "__attnspec__" in data:
            return AttentionSpec(**data["__attnspec__"])
        if "__modelconfig__" in data:
            fields = dict(data["__modelconfig__"])
            fields["moe"] = decode_wire(fields["moe"])
            fields["attention"] = decode_wire(fields["attention"])
            return ModelConfig(**fields)
        if "__workload__" in data:
            body = data["__workload__"]
            return Workload(
                config=decode_wire(body["config"]),
                lengths=_decode_ndarray(body["lengths"]),
                act_sparsity=body["act_sparsity"],
                attn_stats=decode_wire(body["attn_stats"]),
                routing_by_layer={
                    int(layer): decode_wire(routing)
                    for layer, routing in body["routing_by_layer"]
                },
                seed=body["seed"],
            )
        if "__request__" in data:
            body = data["__request__"]
            return InferenceRequest(
                request_id=body["request_id"],
                workload=decode_wire(body["workload"]),
                arrival_us=body["arrival_us"],
                deadline_us=body["deadline_us"],
            )
        if "__faultspec__" in data:
            fields = dict(data["__faultspec__"])
            fields["outages"] = tuple(tuple(o) for o in fields["outages"])
            return FaultSpec(**fields)
        if "__resilience__" in data:
            fields = dict(data["__resilience__"])
            fields["fault"] = decode_wire(fields["fault"])
            return ResilienceConfig(**fields)
        if "__reqreport__" in data:
            return RequestReport(**data["__reqreport__"])
        if "__runreport__" in data:
            return RunReport(**data["__runreport__"])
        if "__batchreport__" in data:
            fields = {
                k: decode_wire(v)
                for k, v in data["__batchreport__"].items()
                if k != "run"
            }
            fields["run"] = decode_wire(data["__batchreport__"]["run"])
            return BatchReport(**fields)
        if any(key.startswith("__") for key in data):
            return decode_value(data)
        return {key: decode_wire(value) for key, value in data.items()}
    raise TypeError(f"cannot decode {data!r} from a wire message")


# ----------------------------------------------------------------------
# Message constructors (one per wire message kind)
# ----------------------------------------------------------------------
def dispatch_message(
    requests,
    *,
    batch_id: int,
    attempt: int,
    start_us: float,
    replica_id: int,
    workload=None,
    await_keys=(),
) -> dict:
    """Execute one closed batch.  ``await_keys`` are plan-cache keys the
    worker must observe (via a cache delta, or their release) before it may
    start planning — the cross-process single-flight protocol."""
    return {
        "type": "dispatch",
        "batch_id": batch_id,
        "attempt": attempt,
        "start_us": start_us,
        "replica_id": replica_id,
        "requests": [encode_wire(r) for r in requests],
        "workload": encode_wire(workload),
        "await_keys": [encode_wire(k) for k in await_keys],
    }


def result_message(
    batch_id: int, attempt: int, batch_report, request_reports, delta
) -> dict:
    """A completed dispatch: the reports plus the plan-cache entries this
    batch resolved cold (``PlanCache.save`` entry format)."""
    return {
        "type": "result",
        "batch_id": batch_id,
        "attempt": attempt,
        "batch_report": encode_wire(batch_report),
        "request_reports": [encode_wire(r) for r in request_reports],
        "delta": delta,
    }


def error_message(batch_id: int, attempt: int, exc: BaseException) -> dict:
    """A failed dispatch: the exception class name travels so the host can
    rebuild the matching :class:`InjectedFault` subclass."""
    return {
        "type": "error",
        "batch_id": batch_id,
        "attempt": attempt,
        "kind": type(exc).__name__,
        "message": str(exc),
    }


def heartbeat_message(replica_id: int, seq: int) -> dict:
    return {"type": "heartbeat", "replica_id": replica_id, "seq": seq}


def cache_delta_message(entries, released=()) -> dict:
    """Broadcast resolved plans (and/or release keys whose pending search
    died or degraded, so awaiting workers search for themselves).

    ``entries`` must already be in the dump entry format
    (``{"key": ..., "value": ...}`` with plan-codec-encoded members), i.e.
    exactly what :func:`encode_delta_entries` produces.
    """
    return {
        "type": "cache-delta",
        "entries": list(entries),
        "released": [encode_wire(k) for k in released],
    }


def ping_message() -> dict:
    return {"type": "ping"}


def pong_message() -> dict:
    return {"type": "pong"}


def shutdown_message() -> dict:
    return {"type": "shutdown"}


def encode_delta_entries(pairs) -> list:
    """``(key, value)`` pairs -> dump-format delta entries.

    Entries whose key or value the plan codec cannot serialize are skipped,
    mirroring :meth:`PlanCache.save` — such entries were never meant to
    cross a process boundary, and every serving-path plan kind is covered.
    """
    entries = []
    for key, value in pairs:
        try:
            entries.append(
                {"key": encode_value(key), "value": encode_value(value)}
            )
        except TypeError:
            continue
    return entries


def decode_delta_entries(entries) -> list:
    """Dump-format delta entries -> ``(key, value)`` pairs."""
    return [
        (decode_value(entry["key"]), decode_value(entry["value"]))
        for entry in entries
    ]


_FAULT_CLASSES = {
    cls.__name__: cls
    for cls in (
        InjectedFault,
        WorkerCrashFault,
        TransientExecFault,
        ReplicaDownFault,
    )
}


def decode_exception(kind: str, message: str) -> Exception:
    """Rebuild a worker-side exception on the host.

    Injected-fault classes round-trip exactly, so the host's failure path
    (``resolve_failure`` + retry/failover) treats a fault raised in a worker
    process identically to one raised in-process.  Unknown classes come
    back as a plain ``RuntimeError`` carrying the original class name.
    """
    cls = _FAULT_CLASSES.get(kind)
    if cls is not None:
        return cls(message)
    return RuntimeError(f"{kind}: {message}")
