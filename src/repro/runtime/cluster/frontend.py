"""The cluster frontend: the async serving frontend over worker processes.

:class:`ClusterFrontend` subclasses :class:`AsyncServingFrontend` and moves
exactly one method across the process boundary — ``_execute``.  Admission,
batching, placement, retry/failover and accounting all stay on the host in
the shared :class:`~repro.runtime.scheduler.SchedulingPolicy`; a dispatch
becomes one request/reply round trip on the replica's transport channel,
and the reply carries the reports plus a plan-cache delta the host applies
and broadcasts, so N worker processes pay the cold-search bill of one.

Failure semantics are PR 8's, unchanged: a dead worker process surfaces as
:class:`WorkerLostError` from the transport — on the dispatch path it
routes through :func:`~repro.runtime.resilience.resolve_failure` exactly
like an injected :class:`WorkerCrashFault`; on an idle replica the
heartbeat monitor records the failure with the
:class:`~repro.runtime.resilience.HealthTracker` directly and (by default)
respawns the worker, which re-enters placement through the breaker's
quarantine -> half-open -> healthy ladder.

Virtual-time replay (:func:`cluster_replay_trace`) drives the same
pipeline synchronously: every dispatch is a blocking round trip, so plan
deltas land before the next decision and the decision trace — including
timings under ``charge_selection=False`` — is bit-identical to the
simulated :class:`~repro.runtime.scheduler.ContinuousScheduler`.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from dataclasses import dataclass
from typing import Optional

from ...analysis.runtime_checks import make_lock
from ...hw.costmodel import transport_adjusted_finish_us
from ..frontend import AsyncServingFrontend, VirtualClock
from ..resilience import InjectedFault
from ..serving import ServingReport
from .codec import (
    cache_delta_message,
    decode_delta_entries,
    decode_exception,
    decode_wire,
    dispatch_message,
    encode_delta_entries,
)
from .transport import WorkerLostError
from .worker import WorkerConfig, WorkerProcess


@dataclass(frozen=True)
class ClusterConfig:
    """Transport and liveness knobs of one cluster frontend."""

    #: Worker heartbeat period.  Every heartbeat literal in the tree flows
    #: from here (or a test's explicit config) — the ``transport-hygiene``
    #: rule flags numeric heartbeat literals at call sites.
    heartbeat_interval_s: float = 0.05
    #: Silence on the control channel past this marks the worker lost.
    heartbeat_timeout_s: float = 1.0
    #: Per-dispatch serialize/send/receive overhead charged into the
    #: replica's ``free_at`` reservation
    #: (:func:`~repro.hw.costmodel.transport_adjusted_finish_us`).  Zero —
    #: the default — reduces reservations exactly to the threaded
    #: frontend's, which the replay-equivalence property requires.
    transport_overhead_us: float = 0.0
    #: Respawn a lost worker (fresh process, full cache snapshot); the
    #: replica then re-admits through the health tracker's half-open probe.
    restart_workers: bool = True
    #: Chaos-test knob: each worker sleeps this long before executing a
    #: dispatch, widening the window to SIGKILL it mid-batch.
    exec_delay_s: float = 0.0
    #: How long to wait for a worker's readiness ping (engine construction
    #: profiles a tile database, which takes real time).
    ready_timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        if self.transport_overhead_us < 0:
            raise ValueError("transport_overhead_us must be >= 0")


class ClusterFrontend(AsyncServingFrontend):
    """An :class:`AsyncServingFrontend` whose replicas are processes.

    The policy runs on the admission host; ``_execute`` runs in the
    replica's worker process via the transport.  Everything else — the
    4-tuple dispatch items, retry scheduling, accounting, the report —
    is inherited unchanged.
    """

    def __init__(self, engine, *, cluster: Optional[ClusterConfig] = None,
                 **kwargs):
        if engine.overlap_selection:
            raise ValueError(
                "ClusterFrontend requires overlap_selection=False: "
                "speculative batch-open searches would run host-side and "
                "fork the plan traffic from the worker processes"
            )
        super().__init__(engine, **kwargs)
        self.cluster = cluster if cluster is not None else ClusterConfig()
        #: replica_id -> live WorkerProcess handle.
        self._procs: dict = {}
        #: Plan keys with a cold search in flight: key -> owning replica.
        self._plan_state: dict = {}
        self._plan_lock = make_lock("plan_state", reentrant=False)
        #: (batch_id, attempt) -> (await_keys, owned_keys) staged by _route.
        self._dispatch_keys: dict = {}
        #: replica_id -> batch_id of the dispatch currently on the wire
        #: (None when idle) — the monitor's double-count guard.
        self._inflight_dispatch: dict = {}
        self._monitors: list = []
        self._monitor_stop = threading.Event()
        self._loop = None
        self._workers_started = False

    # ------------------------------------------------------------------
    # Worker pool lifecycle (sync — shared by live start and replay)
    # ------------------------------------------------------------------
    def start_workers(self) -> None:
        """Spawn one worker process per policy replica and wait for
        readiness.  Idempotent."""
        if self._workers_started:
            return
        self._workers_started = True
        for replica in self.policy.replicas:
            self._procs[replica.replica_id] = self._spawn(replica)
            self._inflight_dispatch[replica.replica_id] = None
        for replica_id, proc in self._procs.items():
            if not proc.ping(timeout=self.cluster.ready_timeout_s):
                raise WorkerLostError(
                    f"worker {replica_id} failed its readiness ping"
                )

    def shutdown_workers(self) -> None:
        """Stop the monitors and gracefully shut every worker down."""
        self._monitor_stop.set()
        for proc in list(self._procs.values()):
            proc.shutdown()
        for monitor in self._monitors:
            monitor.join(timeout=10.0)
        self._monitors.clear()
        self._procs.clear()
        self._workers_started = False

    def _spawn(self, replica) -> WorkerProcess:
        plan_cache = self.engine.plan_cache
        config = WorkerConfig(
            replica_id=replica.replica_id,
            spec=replica.device.spec,
            backend=self.engine.backend_name,
            dtype=self.engine.dtype,
            mode=self.engine.mode,
            max_batch_tokens=self.engine.max_batch_tokens,
            max_batch_size=self.engine.max_batch_size,
            enforce_memory=self.engine.enforce_memory,
            charge_selection=self.engine.charge_selection,
            resilience=self.engine.resilience,
            cache_capacity=plan_cache.capacity,
            cache_shards=plan_cache.shards,
            quantum=plan_cache.quantum,
            heartbeat_interval_s=self.cluster.heartbeat_interval_s,
            exec_delay_s=self.cluster.exec_delay_s,
        )
        proc = WorkerProcess(config)
        proc.start()
        # Seed the fresh process with everything the host already knows —
        # a respawned (or late-joining) worker never re-pays warm plans.
        snapshot = encode_delta_entries(plan_cache.entries())
        if snapshot:
            proc.data_channel.send(cache_delta_message(snapshot))
        return proc

    # -- introspection (tests and benchmarks) ---------------------------
    def worker_pid(self, replica_id: int) -> Optional[int]:
        proc = self._procs.get(replica_id)
        return proc.pid if proc is not None else None

    def dispatch_inflight(self, replica_id: int) -> Optional[int]:
        """Batch id currently on the wire to this replica, if any."""
        return self._inflight_dispatch.get(replica_id)

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self.start_workers()
        await super().start()
        if self.inline_execution:
            return
        self._loop = asyncio.get_running_loop()
        for replica in self.policy.replicas:
            monitor = threading.Thread(
                target=self._monitor_loop,
                args=(replica.replica_id,),
                name=f"cluster-monitor-{replica.replica_id}",
                daemon=True,
            )
            monitor.start()
            self._monitors.append(monitor)

    async def stop(self) -> None:
        await super().stop()
        self.shutdown_workers()

    # ------------------------------------------------------------------
    # Dispatch path
    # ------------------------------------------------------------------
    def _route(self, item) -> None:
        batch, placement, batch_id, attempt = item
        self._assign_plan_keys(batch, placement, batch_id, attempt)
        if self.inline_execution:
            try:
                self._account(item, *self._execute(item))
            except (InjectedFault, WorkerLostError) as exc:
                if self.engine.resilience is not None:
                    self._on_failure(item, exc)
                else:
                    self._fail(item, exc)
            return
        estimate = self.engine.estimate_exec_us(
            batch.signature, placement.workload, placement.replica.device
        )
        if estimate != float("inf"):
            # The threaded frontend's queue-burst reservation, plus the
            # transport's per-dispatch overhead (zero by default, in which
            # case this is bit-identical to the base class).
            placement.replica.free_at_us = max(
                placement.replica.free_at_us,
                transport_adjusted_finish_us(
                    placement.start_us,
                    placement.replica.free_at_us,
                    estimate,
                    self.cluster.transport_overhead_us,
                ),
            )
        self._queues[placement.replica.replica_id].put_nowait(item)

    def _assign_plan_keys(
        self, batch, placement, batch_id: int, attempt: int
    ) -> None:
        """Stage the cross-process single-flight bookkeeping for one
        dispatch: which plan keys this dispatch must await (a search owned
        by a dispatch on another replica) and which it owns (first to need
        them fleet-wide).  Runs on the event-loop thread."""
        replica_id = placement.replica.replica_id
        device = placement.replica.device
        keys = [
            spec.cache_key()
            for spec, _ in self.engine._plan_requests(
                placement.workload, device.tiledb.cache_key
            )
        ]
        # Membership first, state second — never nest the plan-state lock
        # with the cache's shard locks.
        warm = {key for key in keys if key in self.engine.plan_cache}
        awaits, owned = [], []
        with self._plan_lock:
            for key in keys:
                if key in warm:
                    continue
                owner = self._plan_state.get(key)
                if owner is None:
                    self._plan_state[key] = replica_id
                    owned.append(key)
                elif owner != replica_id:
                    awaits.append(key)
                # owner == replica_id: FIFO on one channel — the owning
                # dispatch resolves the key before this one executes.
        self._dispatch_keys[(batch_id, attempt)] = (awaits, owned)

    def _execute(self, item) -> tuple:
        """One dispatch round trip to the replica's worker process."""
        batch, placement, batch_id, attempt = item
        replica_id = placement.replica.replica_id
        awaits, owned = self._dispatch_keys.pop((batch_id, attempt), ([], []))
        proc = self._procs.get(replica_id)
        if proc is None or not proc.alive:
            self._release_owned(owned)
            raise WorkerLostError(f"worker {replica_id} is not alive")
        message = dispatch_message(
            batch.requests,
            batch_id=batch_id,
            attempt=attempt,
            start_us=placement.start_us,
            replica_id=replica_id,
            workload=placement.workload,
            await_keys=awaits,
        )
        self._inflight_dispatch[replica_id] = batch_id
        try:
            reply = proc.request(message)
        except WorkerLostError:
            # Leave the in-flight marker set: the monitor will observe this
            # worker's death and must not double-record the failure the
            # resolve_failure path is about to account.
            self._release_owned(owned)
            raise
        if reply["type"] == "error":
            self._inflight_dispatch[replica_id] = None
            self._release_owned(owned)
            raise decode_exception(reply["kind"], reply["message"])
        self._inflight_dispatch[replica_id] = None
        entries = reply["delta"]
        pairs = decode_delta_entries(entries)
        for key, value in pairs:
            self.engine.plan_cache.put(key, value)
        resolved = {key for key, _ in pairs}
        released = [key for key in owned if key not in resolved]
        self._broadcast_delta(entries, released, exclude=replica_id)
        with self._plan_lock:
            for key in owned:
                self._plan_state.pop(key, None)
        batch_report = decode_wire(reply["batch_report"])
        request_reports = [decode_wire(r) for r in reply["request_reports"]]
        return batch_report, request_reports

    def _release_owned(self, owned) -> None:
        """A failed dispatch's pending searches will never resolve — free
        the keys and tell awaiting workers to search for themselves."""
        if not owned:
            return
        with self._plan_lock:
            for key in owned:
                self._plan_state.pop(key, None)
        self._broadcast_delta([], owned)

    def _broadcast_delta(self, entries, released, *, exclude: int = -1) -> None:
        if not entries and not released:
            return
        message = cache_delta_message(entries, released=released)
        for replica_id, proc in list(self._procs.items()):
            if replica_id == exclude or not proc.alive:
                continue
            try:
                proc.data_channel.send(message)
            except WorkerLostError:
                continue

    # ------------------------------------------------------------------
    # Heartbeat monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self, replica_id: int) -> None:
        """One thread per replica: watch the control channel for
        heartbeats; a timeout or EOF marks the worker lost."""
        while not self._monitor_stop.is_set():
            proc = self._procs.get(replica_id)
            if proc is None or not proc.alive:
                if self._monitor_stop.wait(self.cluster.heartbeat_interval_s):
                    return
                continue
            proc.control_channel.settimeout(self.cluster.heartbeat_timeout_s)
            try:
                proc.control_channel.recv()
            except socket.timeout:
                self._on_worker_lost(replica_id, proc, "missed heartbeat")
            except WorkerLostError:
                if self._monitor_stop.is_set() or self._closing:
                    return
                self._on_worker_lost(
                    replica_id, proc, "control channel closed"
                )

    def _on_worker_lost(self, replica_id: int, proc, reason: str) -> None:
        """Handle one observed worker death (monitor thread).

        Closing the data channel unblocks a replica thread parked in
        ``proc.request`` — its :class:`WorkerLostError` then rides the
        normal ``resolve_failure`` retry/failover path.  Only an *idle*
        loss (no dispatch on the wire) is recorded with the health tracker
        here; a mid-dispatch loss is accounted exactly once, by
        ``resolve_failure``.
        """
        if self._closing or self._monitor_stop.is_set():
            return
        if self._procs.get(replica_id) is not proc or not proc.alive:
            return
        proc.alive = False
        proc.data_channel.close()
        proc.control_channel.close()
        idle = self._inflight_dispatch.get(replica_id) is None
        self._inflight_dispatch[replica_id] = None
        if idle and self.policy.health is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(
                self._record_idle_failure, replica_id, reason
            )
        if self.cluster.restart_workers and not self._closing:
            replica = self.policy.replicas[replica_id]
            fresh = self._spawn(replica)
            fresh.ping(timeout=self.cluster.ready_timeout_s)
            self._procs[replica_id] = fresh

    def _record_idle_failure(self, replica_id: int, reason: str) -> None:
        """Event-loop thread: an idle worker died — no dispatch will carry
        the failure to ``resolve_failure``, so the breaker learns here."""
        if self._closing:
            return
        self.policy.health.on_failure(replica_id, self.clock.now_us())


# ----------------------------------------------------------------------
# Virtual-time replay and live-serving conveniences
# ----------------------------------------------------------------------
def cluster_replay_trace(
    engine,
    requests=None,
    *,
    cluster: Optional[ClusterConfig] = None,
    max_queue_depth: Optional[int] = None,
) -> ServingReport:
    """Serve a trace through the cluster frontend in virtual time.

    The process-pool analogue of
    :func:`~repro.runtime.frontend.replay_trace`: same virtual clock, same
    admission pipeline, but every execution is a real round trip into a
    worker process.  Dispatches are synchronous in virtual time, so each
    batch's plan delta reaches the whole fleet before the next decision —
    which is why the decision trace (timings included under
    ``charge_selection=False``) is bit-identical to the simulated
    scheduler's on the same trace.
    """
    if requests is None:
        requests, engine._queue = engine._queue, []
    clock = VirtualClock()
    frontend = ClusterFrontend(
        engine,
        cluster=cluster,
        max_queue_depth=max_queue_depth,
        overload="shed",
        clock=clock,
        inline_execution=True,
    )
    frontend.start_workers()
    try:
        ordered = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        for request in ordered:
            clock.call_at(request.arrival_us, frontend.ingest, request)
        last_event_us = 0.0
        while clock.pending():
            last_event_us = max(last_event_us, clock.fire_next())
        frontend.finish(last_event_us)
        while clock.pending():
            clock.fire_next()
        return frontend.report()
    finally:
        frontend.shutdown_workers()


async def serve_cluster_async(
    engine,
    workloads,
    *,
    cluster: Optional[ClusterConfig] = None,
    max_queue_depth: Optional[int] = None,
    overload: str = "shed",
) -> ServingReport:
    """Serve ``workloads`` through a process-pool frontend on the running
    loop."""
    frontend = ClusterFrontend(
        engine,
        cluster=cluster,
        max_queue_depth=max_queue_depth,
        overload=overload,
    )
    await frontend.start()
    futures = [await frontend.submit(w) for w in workloads]
    await frontend.drain()
    if futures:
        await asyncio.gather(*futures)
    await frontend.stop()
    return frontend.report()


def serve_cluster(
    engine,
    workloads,
    *,
    cluster: Optional[ClusterConfig] = None,
    max_queue_depth: Optional[int] = None,
    overload: str = "shed",
) -> ServingReport:
    """Synchronous wrapper: run :func:`serve_cluster_async` on a private
    loop."""
    return asyncio.run(
        serve_cluster_async(
            engine,
            workloads,
            cluster=cluster,
            max_queue_depth=max_queue_depth,
            overload=overload,
        )
    )
