"""Runtime: the execution engine, sessions, serving, training, reporting."""

from .engine import (
    TRAINING_STATE_MULTIPLIER,
    RunReport,
    run_transformer,
    speedup_table,
)
from .frontend import (
    AsyncServingFrontend,
    RealClock,
    VirtualClock,
    decision_trace,
    replay_trace,
    serve_async,
    serve_workloads,
)
from .report import format_speedups, format_table
from .resilience import (
    FaultInjector,
    FaultSpec,
    HealthTracker,
    InjectedFault,
    ReplicaDownFault,
    ResilienceConfig,
    TransientExecFault,
    WorkerCrashFault,
)
from .scheduler import ContinuousScheduler, SchedulingPolicy
from .serving import (
    BatchReport,
    DeviceClass,
    InferenceRequest,
    ReplicaStats,
    RequestReport,
    ServingEngine,
    ServingReport,
    SpeculativeSelection,
    merge_workloads,
)
from .session import (
    BACKENDS_BY_NAME,
    make_backend,
    make_live_frontend,
    make_replica_backends,
    run_lineup,
    validate_backend_kwargs,
)
from .training import SparseTrainingReport, sparse_training_step

__all__ = [
    "BACKENDS_BY_NAME",
    "AsyncServingFrontend",
    "BatchReport",
    "ContinuousScheduler",
    "DeviceClass",
    "FaultInjector",
    "FaultSpec",
    "HealthTracker",
    "InferenceRequest",
    "InjectedFault",
    "RealClock",
    "ReplicaDownFault",
    "ReplicaStats",
    "RequestReport",
    "ResilienceConfig",
    "RunReport",
    "SchedulingPolicy",
    "ServingEngine",
    "ServingReport",
    "SparseTrainingReport",
    "SpeculativeSelection",
    "TransientExecFault",
    "WorkerCrashFault",
    "TRAINING_STATE_MULTIPLIER",
    "VirtualClock",
    "decision_trace",
    "format_speedups",
    "format_table",
    "make_backend",
    "make_live_frontend",
    "make_replica_backends",
    "merge_workloads",
    "replay_trace",
    "run_lineup",
    "run_transformer",
    "serve_async",
    "serve_workloads",
    "sparse_training_step",
    "speedup_table",
    "validate_backend_kwargs",
]
