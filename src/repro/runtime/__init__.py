"""Runtime: the execution engine, sessions, training, and reporting."""

from .engine import (
    TRAINING_STATE_MULTIPLIER,
    RunReport,
    run_transformer,
    speedup_table,
)
from .report import format_speedups, format_table
from .session import BACKENDS_BY_NAME, make_backend, run_lineup
from .training import SparseTrainingReport, sparse_training_step

__all__ = [
    "BACKENDS_BY_NAME",
    "RunReport",
    "SparseTrainingReport",
    "TRAINING_STATE_MULTIPLIER",
    "format_speedups",
    "format_table",
    "make_backend",
    "run_lineup",
    "run_transformer",
    "sparse_training_step",
    "speedup_table",
]
