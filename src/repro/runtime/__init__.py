"""Runtime: the execution engine, sessions, serving, training, reporting."""

from .engine import (
    TRAINING_STATE_MULTIPLIER,
    RunReport,
    run_transformer,
    speedup_table,
)
from .report import format_speedups, format_table
from .scheduler import ContinuousScheduler
from .serving import (
    BatchReport,
    DeviceClass,
    InferenceRequest,
    ReplicaStats,
    RequestReport,
    ServingEngine,
    ServingReport,
    SpeculativeSelection,
    merge_workloads,
)
from .session import (
    BACKENDS_BY_NAME,
    make_backend,
    make_replica_backends,
    run_lineup,
    validate_backend_kwargs,
)
from .training import SparseTrainingReport, sparse_training_step

__all__ = [
    "BACKENDS_BY_NAME",
    "BatchReport",
    "ContinuousScheduler",
    "DeviceClass",
    "InferenceRequest",
    "ReplicaStats",
    "RequestReport",
    "RunReport",
    "ServingEngine",
    "ServingReport",
    "SparseTrainingReport",
    "SpeculativeSelection",
    "TRAINING_STATE_MULTIPLIER",
    "format_speedups",
    "format_table",
    "make_backend",
    "make_replica_backends",
    "merge_workloads",
    "run_lineup",
    "run_transformer",
    "sparse_training_step",
    "speedup_table",
    "validate_backend_kwargs",
]
