"""Continuous batching + multi-replica placement over a simulated clock.

The drain path (PR 1) batches the whole queue in one FCFS pass: an open
batch can never admit a request that arrives after ``run()`` starts, and
every batch serializes onto one device.  This module replaces that with the
two mechanisms a serving system actually runs:

* **Continuous batching** (the vLLM admission discipline): requests are
  processed as *events* on a simulated clock.  An arrival joins the open
  batch for its signature when the token budget and size cap allow;
  otherwise it closes that batch and opens a new one.  An open batch also
  closes when its **batching window** expires — a configurable deadline
  measured from the moment the batch opened, bounding how long an early
  arrival can wait for co-batching partners.  A batch that hits the size
  cap closes immediately (no later arrival could ever join it, so waiting
  out the window would only add queueing delay).

* **Multi-replica placement** across a possibly *heterogeneous* fleet
  (per-replica :class:`~repro.hw.spec.GPUSpec`): a closed batch is priced
  on every replica's analytical device model — memoized per
  ``(batch signature, device class)``, so the hot path is a dictionary
  lookup — and placed to minimize predicted finish time
  ``max(close_us, free_at_us) + est_exec_us``
  (:func:`~repro.hw.costmodel.predicted_finish_us`; ties break toward the
  replica that frees earliest, then the lowest id, making placement
  deterministic — an all-identical lineup therefore reproduces the legacy
  least-loaded placement exactly, and ``placement="least-loaded"`` forces
  it outright).  Every replica executes through its device class's
  backend, and all classes share one
  :class:`~repro.core.selection.PlanCache`: the first cold Algorithm 1
  search for a (traffic signature, device class) pair warms every replica
  of that class, so adding replicas of an already-seen class adds zero
  cold searches (the PIT-specific twist on standard continuous batching).

* **Selection/compute overlap**: the Algorithm 1 search for a batch is
  issued *when the batch opens* (speculatively, from the first admitted
  request's signature), not when it closes.  A cold search therefore runs
  while the batch is still collecting partners and while the target
  replica finishes its previous batch: the simulated clock charges
  ``max(search_tail, prior_compute_remaining)`` instead of their sum, and
  the difference is reported as ``overlap_saved_us`` on the batch, the
  replica stats and the serving report.  Warm lookups stay serial (they
  cost a dictionary access), so a fully-warm run reports exactly zero.
  Every speculative and close-time resolve goes through the engine's
  :class:`~repro.core.plan.Planner` as a declarative
  :class:`~repro.core.plan.PlanSpec` — token-projection, activation-FFN,
  attention and merged-routing MoE plans alike — so the speculation's
  per-kind cold/warm provenance (``SpeculativeSelection.plan_kinds``)
  folds into the batch report, and a cache revived with
  ``PlanCache.load`` keeps the whole loop warm across process restarts.

Execution time stays the analytical device model's simulated latency and
selection overhead stays measured wall time, exactly as in
:mod:`~repro.runtime.serving`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..hw.costmodel import predicted_finish_us
from .serving import (
    ReplicaStats,
    ServingReport,
    SpeculativeSelection,
    merge_workloads,
)

#: Event kinds, ordered so that an arrival at time ``t`` is processed before
#: a window deadline at the same ``t`` — a request arriving exactly on the
#: deadline still rides the batch it was aimed at.
_ARRIVE = 0
_DEADLINE = 1


@dataclass
class _OpenBatch:
    """A batch still admitting arrivals."""

    signature: tuple
    opened_us: float
    #: Monotone token distinguishing this batch from a later batch that
    #: reuses the signature slot; a stale deadline event must not close it.
    token: int
    requests: list = field(default_factory=list)
    #: The plan search issued when this batch opened (overlap mode only).
    speculation: Optional[SpeculativeSelection] = None


@dataclass
class _Replica:
    """One simulated device replica's schedule."""

    replica_id: int
    #: The replica's :class:`~repro.runtime.serving.DeviceClass` — its
    #: backend, tile database, planner and pricing model.
    device: object = None
    free_at_us: float = 0.0
    busy_us: float = 0.0
    batches: int = 0
    tokens: int = 0
    overlap_saved_us: float = 0.0


class ContinuousScheduler:
    """Event-driven continuous batching across N device replicas.

    Drives an engine's queue through a simulated-clock event loop.  The
    scheduler owns batching (admission + closure) and placement; planning
    and execution stay on the engine (:meth:`ServingEngine.execute_batch`),
    so every replica resolves kernel plans through the engine's one
    :class:`~repro.core.selection.PlanCache`.  Replica ``i`` executes on
    ``engine.device_for_replica(i)`` — a heterogeneous lineup
    (``ServingEngine(replica_specs=[...])``) places batches cost-aware by
    predicted finish time; ``placement="least-loaded"`` forces the legacy
    earliest-free policy.

    ``batch_window_us=None`` disables the deadline entirely: batches close
    only on budget overflow or end of stream (maximum co-batching, worst
    queueing delay — the drain policy's admission behaviour with continuous
    placement).
    """

    def __init__(
        self,
        engine,
        *,
        replicas: int = 1,
        batch_window_us: Optional[float] = 2000.0,
        overlap_selection: bool = True,
        placement: str = "cost-aware",
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if batch_window_us is not None and batch_window_us < 0:
            raise ValueError("batch_window_us must be >= 0 (or None)")
        if placement not in ("cost-aware", "least-loaded"):
            raise ValueError(
                f"placement must be cost-aware|least-loaded, got {placement!r}"
            )
        self.engine = engine
        self.num_replicas = replicas
        self.batch_window_us = batch_window_us
        self.overlap_selection = overlap_selection
        self.placement = placement

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, requests) -> ServingReport:
        """Serve ``requests`` (arrival-stamped) and return the report."""
        report = ServingReport(policy="continuous")
        replicas = [
            _Replica(i, device=self.engine.device_for_replica(i))
            for i in range(self.num_replicas)
        ]
        open_batches: dict = {}
        tokens = itertools.count()
        seq = itertools.count()
        events: list = []
        for r in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
            heapq.heappush(events, (r.arrival_us, _ARRIVE, next(seq), r))

        last_event_us = 0.0
        while events:
            now, kind, _, payload = heapq.heappop(events)
            last_event_us = max(last_event_us, now)
            if kind == _ARRIVE:
                self._admit(payload, now, open_batches, events, seq, tokens,
                            replicas, report)
            else:
                signature, token = payload
                batch = open_batches.get(signature)
                if batch is not None and batch.token == token:
                    del open_batches[signature]
                    self._dispatch(batch, now, replicas, report)

        # With no window, batches whose budget never overflowed are still
        # open when the stream ends; close them at the last event (there is
        # nothing left to wait for).
        for batch in sorted(open_batches.values(), key=lambda b: b.opened_us):
            self._dispatch(batch, last_event_us, replicas, report)

        report.requests.sort(key=lambda r: r.request_id)
        first_start = min((b.start_us for b in report.batches), default=0.0)
        last_end = max(
            (b.start_us + b.exec_us for b in report.batches), default=0.0
        )
        report.makespan_us = last_end - first_start
        for rep in replicas:
            report.replica_stats.append(
                ReplicaStats(
                    replica_id=rep.replica_id,
                    device=rep.device.name if rep.device is not None else "",
                    batches=rep.batches,
                    tokens=rep.tokens,
                    busy_us=rep.busy_us,
                    utilization=(
                        rep.busy_us / report.makespan_us
                        if report.makespan_us > 0
                        else 0.0
                    ),
                    overlap_saved_us=rep.overlap_saved_us,
                )
            )
        report.plan_cache_stats = self.engine.plan_cache.stats()
        return report

    def _admit(self, request, now, open_batches, events, seq, tokens,
               replicas, report) -> None:
        """Place one arrival into (or around) its signature's open batch."""
        signature = request.batch_signature(self.engine.plan_cache.quantum)
        batch = open_batches.get(signature)
        if batch is not None and not self.engine._fits(batch.requests, request):
            # The arrival does not fit: the open batch closes now and the
            # arrival opens a fresh one (its window starts from `now`).
            del open_batches[signature]
            self._dispatch(batch, now, replicas, report)
            batch = None
        if batch is None:
            batch = _OpenBatch(
                signature=signature, opened_us=now, token=next(tokens)
            )
            if self.overlap_selection:
                # Issue the Algorithm 1 search now, from the first admitted
                # request's signature: a cold search runs while the batch
                # collects partners instead of serializing at close time.
                # Plans are device-specific, so the search resolves against
                # the *predicted* placement target's class (as if the batch
                # closed now); a misprediction leaves the residual search
                # serial at close time, exactly the pre-overlap behaviour.
                # memoize=False: one request's latency must not seed the
                # exec-estimate memo that dispatch prices merged batches by.
                target = self._select_replica(
                    signature, request.workload, now, replicas, memoize=False
                )
                batch.speculation = self.engine.speculate_plans(
                    request.workload, issued_us=now, device=target.device
                )
            open_batches[signature] = batch
            if self.batch_window_us is not None:
                heapq.heappush(
                    events,
                    (
                        now + self.batch_window_us,
                        _DEADLINE,
                        next(seq),
                        (signature, batch.token),
                    ),
                )
        batch.requests.append(request)
        if self._saturated(batch.requests):
            # Full: no future arrival can join, so waiting only adds delay.
            del open_batches[signature]
            self._dispatch(batch, now, replicas, report)

    def _saturated(self, requests) -> bool:
        """True when no conceivable arrival could still join the batch.

        Either the size cap is reached, or the token budget cannot admit
        even the cheapest possible request (one sequence no longer than the
        batch's current max — padded tokens only grow with admissions, e.g.
        a lone request already over budget).
        """
        if len(requests) >= self.engine.max_batch_size:
            return True
        max_len = max(r.max_len for r in requests)
        num_seqs = sum(r.workload.batch_size for r in requests)
        return max_len * (num_seqs + 1) > self.engine.max_batch_tokens

    def _select_replica(self, signature, workload, close_us: float,
                        replicas, memoize: bool = True) -> _Replica:
        """Pick the replica for a ``signature`` batch closing at ``close_us``.

        Cost-aware placement minimizes the predicted finish time
        ``max(close_us, free_at_us) + est_exec_us`` with the batch priced
        on each replica's device class
        (:meth:`~repro.runtime.serving.ServingEngine.estimate_exec_us`,
        memoized per (signature, class) — only from dispatch-time merged
        workloads, so the batch-open prediction passes ``memoize=False``).
        Ties break toward the replica that frees earliest, then the lowest
        id — on an all-identical lineup the estimate is one constant, so
        the ordering collapses to exactly the legacy least-loaded
        ``(free_at_us, replica_id)`` order and placement is bit-identical
        to it.
        """
        if self.placement == "least-loaded" or len(
            {r.device.spec for r in replicas}
        ) == 1:
            # Least-loaded, or a single device class: with one class the
            # estimate is a constant, the predicted-finish ordering
            # provably collapses to (free_at, id), and pricing could never
            # change the decision — so homogeneous lineups skip the
            # simulated pricing runs entirely.
            return min(replicas, key=lambda r: (r.free_at_us, r.replica_id))
        # Price once per distinct device class, not per replica: a cold
        # (unmemoized) estimate is a full simulated model run, and replicas
        # of one class share it by construction.
        est_by_class = {}
        for r in replicas:
            if r.device.spec not in est_by_class:
                est_by_class[r.device.spec] = self.engine.estimate_exec_us(
                    signature, workload, r.device, memoize=memoize
                )
        return min(
            replicas,
            key=lambda r: (
                predicted_finish_us(
                    close_us, r.free_at_us, est_by_class[r.device.spec]
                ),
                r.free_at_us,
                r.replica_id,
            ),
        )

    def _dispatch(self, batch: _OpenBatch, close_us: float, replicas,
                  report: ServingReport) -> None:
        """Place a closed batch (cost-aware) and execute it there."""
        workload = merge_workloads([r.workload for r in batch.requests])
        replica = self._select_replica(
            batch.signature, workload, close_us, replicas
        )
        ready_us = max(close_us, replica.free_at_us)
        start = ready_us
        saved_us = 0.0
        spec = batch.speculation
        if spec is not None and spec.cold:
            # The cold search was issued at batch open and ran off-device;
            # compute waits only for whatever tail outlives the open window
            # and the replica's prior batch.  Without overlap the batch
            # would have started executing at ready_us + search_us.
            start = max(ready_us, spec.issued_us + spec.search_us)
            saved_us = ready_us + spec.search_us - start
        batch_report, request_reports = self.engine.execute_batch(
            batch.requests,
            batch_id=len(report.batches),
            start_us=start,
            replica_id=replica.replica_id,
            speculation=spec,
            device=replica.device,
            workload=workload,
        )
        batch_report.overlap_saved_us = saved_us
        replica.free_at_us = start + batch_report.exec_us
        replica.busy_us += batch_report.exec_us
        replica.batches += 1
        replica.tokens += batch_report.tokens
        replica.overlap_saved_us += saved_us
        report.batches.append(batch_report)
        report.requests.extend(request_reports)
