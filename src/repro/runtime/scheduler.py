"""Continuous batching + multi-replica placement over a simulated clock.

The drain path (PR 1) batches the whole queue in one FCFS pass: an open
batch can never admit a request that arrives after ``run()`` starts, and
every batch serializes onto one device.  This module replaces that with the
two mechanisms a serving system actually runs:

* **Continuous batching** (the vLLM admission discipline): requests are
  processed as *events* on a simulated clock.  An arrival joins the open
  batch for its signature when the token budget and size cap allow;
  otherwise it closes that batch and opens a new one.  An open batch also
  closes when its **batching window** expires — a configurable deadline
  measured from the moment the batch opened, bounding how long an early
  arrival can wait for co-batching partners.  A batch that hits the size
  cap closes immediately (no later arrival could ever join it, so waiting
  out the window would only add queueing delay).

* **Multi-replica placement** across a possibly *heterogeneous* fleet
  (per-replica :class:`~repro.hw.spec.GPUSpec`): a closed batch is priced
  on every replica's analytical device model — memoized per
  ``(batch signature, device class)``, so the hot path is a dictionary
  lookup — and placed to minimize predicted finish time
  ``max(close_us, free_at_us) + est_exec_us``
  (:func:`~repro.hw.costmodel.predicted_finish_us`; ties break toward the
  replica that frees earliest, then the lowest id, making placement
  deterministic — an all-identical lineup therefore reproduces the legacy
  least-loaded placement exactly, and ``placement="least-loaded"`` forces
  it outright).  Every replica executes through its device class's
  backend, and all classes share one
  :class:`~repro.core.selection.PlanCache`: the first cold Algorithm 1
  search for a (traffic signature, device class) pair warms every replica
  of that class, so adding replicas of an already-seen class adds zero
  cold searches (the PIT-specific twist on standard continuous batching).

* **Selection/compute overlap**: the Algorithm 1 search for a batch is
  issued *when the batch opens* (speculatively, from the first admitted
  request's signature), not when it closes.  A cold search therefore runs
  while the batch is still collecting partners and while the target
  replica finishes its previous batch: the simulated clock charges
  ``max(search_tail, prior_compute_remaining)`` instead of their sum, and
  the difference is reported as ``overlap_saved_us`` on the batch, the
  replica stats and the serving report.  Warm lookups stay serial (they
  cost a dictionary access), so a fully-warm run reports exactly zero.
  Every speculative and close-time resolve goes through the engine's
  :class:`~repro.core.plan.Planner` as a declarative
  :class:`~repro.core.plan.PlanSpec` — token-projection, activation-FFN,
  attention and merged-routing MoE plans alike — so the speculation's
  per-kind cold/warm provenance (``SpeculativeSelection.plan_kinds``)
  folds into the batch report, and a cache revived with
  ``PlanCache.load`` keeps the whole loop warm across process restarts.

Execution time stays the analytical device model's simulated latency and
selection overhead stays measured wall time, exactly as in
:mod:`~repro.runtime.serving`.

**Two drivers, one policy.**  All admission, closure and placement
decisions live in :class:`SchedulingPolicy`, a clock-agnostic core that
never looks at a clock or an event queue: drivers feed it arrivals and
deadline firings and it answers with batch closures and placements.
:class:`ContinuousScheduler` drives the policy from a simulated-clock
event heap; :class:`~repro.runtime.frontend.AsyncServingFrontend` drives
the *same* policy object from an asyncio loop under a real (or virtual)
clock.  Both paths therefore make identical decisions on identical
arrival sequences — the equivalence the deterministic-replay harness
(:func:`~repro.runtime.frontend.replay_trace`) proves decision-for-
decision.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hw.costmodel import health_adjusted_finish_us, predicted_finish_us
from .resilience import HealthTracker, InjectedFault, resolve_failure
from .serving import (
    ReplicaStats,
    ServingReport,
    SpeculativeSelection,
    merge_workloads,
)

#: Event kinds, ordered so that an arrival at time ``t`` is processed before
#: a window deadline at the same ``t`` — a request arriving exactly on the
#: deadline still rides the batch it was aimed at — and both before a
#: backoff'd retry at the same ``t`` (retries are always scheduled after the
#: deadline of any batch open at that time, so kind order equals scheduling
#: order; the virtual clock mirrors this with timer priorities).
_ARRIVE = 0
_DEADLINE = 1
_RETRY = 2


@dataclass
class _OpenBatch:
    """A batch still admitting arrivals."""

    signature: tuple
    opened_us: float
    #: Monotone token distinguishing this batch from a later batch that
    #: reuses the signature slot; a stale deadline event must not close it.
    token: int
    requests: list = field(default_factory=list)
    #: The plan search issued when this batch opened (overlap mode only).
    speculation: Optional[SpeculativeSelection] = None


@dataclass
class _Replica:
    """One device replica's schedule."""

    replica_id: int
    #: The replica's :class:`~repro.runtime.serving.DeviceClass` — its
    #: backend, tile database, planner and pricing model.
    device: object = None
    free_at_us: float = 0.0
    busy_us: float = 0.0
    batches: int = 0
    tokens: int = 0
    overlap_saved_us: float = 0.0


@dataclass
class Placement:
    """A placement decision for one closed batch."""

    replica: _Replica
    #: The batch's merged workload (what execution and pricing run on).
    workload: object
    #: Scheduled execution start (close time, queueing behind the replica's
    #: prior batch, and any residual speculative-search tail).
    start_us: float
    #: Selection latency hidden by speculation (zero when warm or disabled).
    saved_us: float


class SchedulingPolicy:
    """The admission/close/placement core shared by both serving drivers.

    Holds every piece of scheduler state that decisions depend on — open
    batches per signature, the monotone batch tokens, and the replica
    schedules — but owns no clock and no event queue.  Drivers call:

    * :meth:`admit` for each arrival, passing ``dispatch`` (called with
      every batch the arrival closes) and ``schedule_deadline`` (called
      when a fresh batch opens under a batching window);
    * :meth:`close_due` when a previously scheduled deadline fires;
    * :meth:`flush` at end of stream;
    * :meth:`place` / :meth:`account` around executing a closed batch.

    Because the policy is deterministic in its inputs, any two drivers that
    feed it the same arrival/deadline sequence obtain the same batch
    compositions and the same placements — the property the deterministic-
    replay equivalence harness gates on.
    """

    def __init__(
        self,
        engine,
        *,
        replicas: int = 1,
        batch_window_us: Optional[float] = 2000.0,
        overlap_selection: bool = True,
        placement: str = "cost-aware",
    ):
        self.validate(replicas, batch_window_us, placement)
        self.engine = engine
        self.num_replicas = replicas
        self.batch_window_us = batch_window_us
        self.overlap_selection = overlap_selection
        self.placement = placement
        self.replicas = [
            _Replica(i, device=engine.device_for_replica(i))
            for i in range(replicas)
        ]
        self._open: dict = {}
        self._tokens = itertools.count()
        #: Fault-tolerance policy and per-replica breaker state (None when
        #: the engine runs without a resilience config — every placement
        #: decision is then bit-identical to the legacy path).
        self.resilience = getattr(engine, "resilience", None)
        self.health = (
            HealthTracker(
                replicas,
                self.resilience,
                injector=getattr(engine, "fault_injector", None),
            )
            if self.resilience is not None
            else None
        )

    @staticmethod
    def validate(replicas, batch_window_us, placement) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if batch_window_us is not None and batch_window_us < 0:
            raise ValueError("batch_window_us must be >= 0 (or None)")
        if placement not in ("cost-aware", "least-loaded"):
            raise ValueError(
                f"placement must be cost-aware|least-loaded, got {placement!r}"
            )

    # ------------------------------------------------------------------
    # Admission and closure
    # ------------------------------------------------------------------
    def admit(
        self,
        request,
        now: float,
        dispatch: Callable,
        schedule_deadline: Optional[Callable] = None,
    ) -> None:
        """Place one arrival into (or around) its signature's open batch.

        ``dispatch(batch, close_us)`` is invoked *inline* for every batch
        this arrival closes — before any further policy state is touched —
        so dispatch-order side effects (replica ``free_at`` updates, plan
        cache warming) are observed by the very next decision, exactly as
        in the single-threaded simulated loop.  ``schedule_deadline(
        deadline_us, signature, token)`` is invoked when a fresh batch
        opens under a batching window; the driver must eventually call
        :meth:`close_due` with that (signature, token).
        """
        signature = request.batch_signature(self.engine.plan_cache.quantum)
        batch = self._open.get(signature)
        if batch is not None and not self.engine._fits(batch.requests, request):
            # The arrival does not fit: the open batch closes now and the
            # arrival opens a fresh one (its window starts from `now`).
            del self._open[signature]
            dispatch(batch, now)
            batch = None
        if batch is None:
            batch = _OpenBatch(
                signature=signature, opened_us=now, token=next(self._tokens)
            )
            if self.overlap_selection:
                # Issue the Algorithm 1 search now, from the first admitted
                # request's signature: a cold search runs while the batch
                # collects partners instead of serializing at close time.
                # Plans are device-specific, so the search resolves against
                # the *predicted* placement target's class (as if the batch
                # closed now); a misprediction leaves the residual search
                # serial at close time, exactly the pre-overlap behaviour.
                # memoize=False: one request's latency must not seed the
                # exec-estimate memo that dispatch prices merged batches by.
                target = self.select_replica(
                    signature, request.workload, now, memoize=False
                )
                batch.speculation = self.engine.speculate_plans(
                    request.workload, issued_us=now, device=target.device
                )
            self._open[signature] = batch
            if self.batch_window_us is not None and schedule_deadline is not None:
                schedule_deadline(
                    now + self.batch_window_us, signature, batch.token
                )
        batch.requests.append(request)
        if self._saturated(batch.requests):
            # Full: no future arrival can join, so waiting only adds delay.
            del self._open[signature]
            dispatch(batch, now)

    def close_due(self, signature, token) -> Optional[_OpenBatch]:
        """Close the open batch a fired window deadline targets.

        Returns ``None`` when the deadline is stale — the batch already
        closed (saturation, budget overflow) and possibly a *newer* batch
        occupies the signature slot; the monotone token tells them apart.
        """
        batch = self._open.get(signature)
        if batch is not None and batch.token == token:
            del self._open[signature]
            return batch
        return None

    def flush(self) -> list:
        """Close every still-open batch (end of stream), oldest first."""
        batches = sorted(self._open.values(), key=lambda b: b.opened_us)
        self._open.clear()
        return batches

    def open_batches(self) -> int:
        """Number of batches currently admitting arrivals."""
        return len(self._open)

    def _saturated(self, requests) -> bool:
        """True when no conceivable arrival could still join the batch.

        Either the size cap is reached, or the token budget cannot admit
        even the cheapest possible request (one sequence no longer than the
        batch's current max — padded tokens only grow with admissions, e.g.
        a lone request already over budget).
        """
        if len(requests) >= self.engine.max_batch_size:
            return True
        max_len = max(r.max_len for r in requests)
        num_seqs = sum(r.workload.batch_size for r in requests)
        return max_len * (num_seqs + 1) > self.engine.max_batch_tokens

    # ------------------------------------------------------------------
    # Placement and accounting
    # ------------------------------------------------------------------
    def _placeable_replicas(self, now_us: float, exclude: tuple) -> list:
        """Replicas eligible for a placement at ``now_us``.

        Health-aware: dead/quarantined replicas (``inf`` penalty) are out
        while any alternative exists, and a retry prefers replicas other
        than the one that just failed (``exclude``).  The preferences relax
        in order rather than failing: an all-excluded fleet falls back to
        whatever is open, and an all-down fleet places anyway (the attempt
        fails fast and retries — placement must never deadlock).
        """
        if self.health is None:
            if exclude:
                kept = [
                    r for r in self.replicas if r.replica_id not in exclude
                ]
                return kept if kept else list(self.replicas)
            return self.replicas
        open_replicas = [
            r
            for r in self.replicas
            if self.health.placement_penalty_us(r.replica_id, now_us)
            != float("inf")
        ]
        preferred = [
            r for r in open_replicas if r.replica_id not in exclude
        ]
        if preferred:
            return preferred
        if open_replicas:
            return open_replicas
        return list(self.replicas)

    def select_replica(self, signature, workload, close_us: float,
                       memoize: bool = True, exclude: tuple = ()) -> _Replica:
        """Pick the replica for a ``signature`` batch closing at ``close_us``.

        Cost-aware placement minimizes the predicted finish time
        ``max(close_us, free_at_us) + est_exec_us`` with the batch priced
        on each replica's device class
        (:meth:`~repro.runtime.serving.ServingEngine.estimate_exec_us`,
        memoized per (signature, class) — only from dispatch-time merged
        workloads, so the batch-open prediction passes ``memoize=False``).
        Ties break toward the replica that frees earliest, then the lowest
        id — on an all-identical lineup the estimate is one constant, so
        the ordering collapses to exactly the legacy least-loaded
        ``(free_at_us, replica_id)`` order and placement is bit-identical
        to it.
        """
        replicas = self._placeable_replicas(close_us, exclude)
        if self.placement == "least-loaded" or len(
            {r.device.spec for r in replicas}
        ) == 1:
            # Least-loaded, or a single device class: with one class the
            # estimate is a constant, the predicted-finish ordering
            # provably collapses to (free_at, id), and pricing could never
            # change the decision — so homogeneous lineups skip the
            # simulated pricing runs entirely.  A finite health penalty
            # (suspect/probing replicas) still reorders: healthy peers win.
            if self.health is None:
                return min(
                    replicas, key=lambda r: (r.free_at_us, r.replica_id)
                )
            return min(
                replicas,
                key=lambda r: (
                    r.free_at_us
                    + self.health.placement_penalty_us(
                        r.replica_id, close_us
                    ),
                    r.free_at_us,
                    r.replica_id,
                ),
            )
        # Price once per distinct device class, not per replica: a cold
        # (unmemoized) estimate is a full simulated model run, and replicas
        # of one class share it by construction.
        est_by_class = {}
        for r in replicas:
            if r.device.spec not in est_by_class:
                est_by_class[r.device.spec] = self.engine.estimate_exec_us(
                    signature, workload, r.device, memoize=memoize
                )
        if self.health is None:
            return min(
                replicas,
                key=lambda r: (
                    predicted_finish_us(
                        close_us, r.free_at_us, est_by_class[r.device.spec]
                    ),
                    r.free_at_us,
                    r.replica_id,
                ),
            )
        return min(
            replicas,
            key=lambda r: (
                health_adjusted_finish_us(
                    close_us,
                    r.free_at_us,
                    est_by_class[r.device.spec],
                    self.health.placement_penalty_us(r.replica_id, close_us),
                ),
                r.free_at_us,
                r.replica_id,
            ),
        )

    def place(self, batch: _OpenBatch, close_us: float,
              exclude: tuple = ()) -> Placement:
        """Decide where and when a closed batch executes.

        ``exclude`` names replicas a retry should avoid — the one that just
        failed the batch (failover); preferences relax rather than fail when
        nothing else is available.
        """
        workload = merge_workloads([r.workload for r in batch.requests])
        replica = self.select_replica(
            batch.signature, workload, close_us, exclude=exclude
        )
        if self.health is not None:
            self.health.on_dispatch(replica.replica_id, close_us)
        ready_us = max(close_us, replica.free_at_us)
        start = ready_us
        saved_us = 0.0
        spec = batch.speculation
        if (
            spec is not None
            and spec.cold
            and getattr(self.engine, "charge_selection", True)
        ):
            # The cold search was issued at batch open and ran off-device;
            # compute waits only for whatever tail outlives the open window
            # and the replica's prior batch.  Without overlap the batch
            # would have started executing at ready_us + search_us.
            # (With charge_selection off the engine excludes measured
            # selection wall time from the simulated schedule entirely, so
            # there is no search tail to wait for and nothing saved.)
            start = max(ready_us, spec.issued_us + spec.search_us)
            saved_us = ready_us + spec.search_us - start
        return Placement(
            replica=replica, workload=workload, start_us=start, saved_us=saved_us
        )

    def account(self, placement: Placement, batch_report,
                signature=None) -> None:
        """Fold one executed batch back into its replica's schedule.

        ``free_at`` is max-assigned: in the simulated loop the batch's
        finish always exceeds the replica's previous ``free_at`` (a batch
        starts no earlier than the replica frees), so this is exactly the
        legacy assignment there — but the live front end may have *reserved*
        the replica further ahead (cost-model predicted finishes of batches
        still in its worker queue), and accounting one earlier batch must
        not roll those reservations back.

        With health tracking enabled (and ``signature`` provided), the
        batch's observed compute time is compared against its memoized
        placement estimate: far-over-estimate batches mark the replica
        suspect (straggler detection); everything else records a success,
        closing the breaker.
        """
        replica = placement.replica
        replica.free_at_us = max(
            replica.free_at_us, placement.start_us + batch_report.exec_us
        )
        replica.busy_us += batch_report.exec_us
        replica.batches += 1
        replica.tokens += batch_report.tokens
        replica.overlap_saved_us += placement.saved_us
        if self.health is None:
            return
        finish_us = placement.start_us + batch_report.exec_us
        estimate = None
        if signature is not None:
            estimate = self.engine.estimate_exec_us(
                signature, placement.workload, replica.device
            )
        if (
            estimate is not None
            and 0.0 < estimate < float("inf")
            and batch_report.compute_us
            > self.resilience.straggler_threshold * estimate
        ):
            self.health.on_straggler(replica.replica_id, finish_us)
        else:
            self.health.on_success(replica.replica_id, finish_us)

    def account_failure(self, placement: Placement, detect_us: float) -> None:
        """A failed attempt occupies its replica until failure detection.

        The breaker transition itself happens in
        :func:`~repro.runtime.resilience.resolve_failure`; this only keeps
        the replica's schedule honest (failed work is not ``busy_us`` — it
        produced nothing).
        """
        replica = placement.replica
        replica.free_at_us = max(replica.free_at_us, detect_us)

    def replica_stats(self, makespan_us: float) -> list:
        """Per-replica utilization summaries for a finished run."""
        return [
            ReplicaStats(
                replica_id=rep.replica_id,
                device=rep.device.name if rep.device is not None else "",
                batches=rep.batches,
                tokens=rep.tokens,
                busy_us=rep.busy_us,
                utilization=(
                    rep.busy_us / makespan_us if makespan_us > 0 else 0.0
                ),
                overlap_saved_us=rep.overlap_saved_us,
            )
            for rep in self.replicas
        ]


class ContinuousScheduler:
    """Event-driven continuous batching across N device replicas.

    Drives a fresh :class:`SchedulingPolicy` through a simulated-clock
    event heap.  The policy owns batching (admission + closure) and
    placement; planning and execution stay on the engine
    (:meth:`ServingEngine.execute_batch`), so every replica resolves
    kernel plans through the engine's one
    :class:`~repro.core.selection.PlanCache`.  Replica ``i`` executes on
    ``engine.device_for_replica(i)`` — a heterogeneous lineup
    (``ServingEngine(replica_specs=[...])``) places batches cost-aware by
    predicted finish time; ``placement="least-loaded"`` forces the legacy
    earliest-free policy.

    ``batch_window_us=None`` disables the deadline entirely: batches close
    only on budget overflow or end of stream (maximum co-batching, worst
    queueing delay — the drain policy's admission behaviour with continuous
    placement).
    """

    def __init__(
        self,
        engine,
        *,
        replicas: int = 1,
        batch_window_us: Optional[float] = 2000.0,
        overlap_selection: bool = True,
        placement: str = "cost-aware",
    ):
        SchedulingPolicy.validate(replicas, batch_window_us, placement)
        self.engine = engine
        self.num_replicas = replicas
        self.batch_window_us = batch_window_us
        self.overlap_selection = overlap_selection
        self.placement = placement

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, requests) -> ServingReport:
        """Serve ``requests`` (arrival-stamped) and return the report."""
        report = ServingReport(policy="continuous")
        policy = SchedulingPolicy(
            self.engine,
            replicas=self.num_replicas,
            batch_window_us=self.batch_window_us,
            overlap_selection=self.overlap_selection,
            placement=self.placement,
        )
        seq = itertools.count()
        # Batch ids are assigned at first dispatch from an explicit counter
        # (not `len(report.batches)`): a failed attempt appends no batch
        # report, yet its id must stay claimed so retried batches keep the
        # same ids the live front end's dispatch-time counter assigns.
        batch_ids = itertools.count()
        events: list = []
        for r in sorted(requests, key=lambda r: (r.arrival_us, r.request_id)):
            heapq.heappush(events, (r.arrival_us, _ARRIVE, next(seq), r))

        def dispatch(batch, close_us):
            placement = policy.place(batch, close_us)
            self._attempt(
                policy, batch, placement, next(batch_ids), report, 0,
                schedule_retry,
            )

        def schedule_deadline(deadline_us, signature, token):
            heapq.heappush(
                events, (deadline_us, _DEADLINE, next(seq), (signature, token))
            )

        def schedule_retry(retry_at_us, payload):
            heapq.heappush(events, (retry_at_us, _RETRY, next(seq), payload))

        last_event_us = 0.0

        def drain_events():
            nonlocal last_event_us
            while events:
                now, kind, _, payload = heapq.heappop(events)
                last_event_us = max(last_event_us, now)
                if kind == _ARRIVE:
                    policy.admit(payload, now, dispatch, schedule_deadline)
                elif kind == _DEADLINE:
                    batch = policy.close_due(*payload)
                    if batch is not None:
                        dispatch(batch, now)
                else:
                    batch, batch_id, attempt, exclude = payload
                    placement = policy.place(batch, now, exclude=exclude)
                    if placement.replica.replica_id not in exclude:
                        report.failovers += 1
                    self._attempt(
                        policy, batch, placement, batch_id, report, attempt,
                        schedule_retry,
                    )

        drain_events()
        # With no window, batches whose budget never overflowed are still
        # open when the stream ends; close them at the last event (there is
        # nothing left to wait for).
        for batch in policy.flush():
            dispatch(batch, last_event_us)
        # Flush-time dispatches can fail and schedule retries past the last
        # arrival; drain again until the chains settle (each is statically
        # bounded by max_retries).
        drain_events()

        report.requests.sort(key=lambda r: r.request_id)
        first_start = min((b.start_us for b in report.batches), default=0.0)
        last_end = max(
            (b.start_us + b.exec_us for b in report.batches), default=0.0
        )
        report.makespan_us = last_end - first_start
        report.replica_stats.extend(policy.replica_stats(report.makespan_us))
        report.plan_cache_stats = self.engine.plan_cache.stats()
        if policy.health is not None:
            report.health_timeline = policy.health.timeline()
        return report

    def _attempt(self, policy: SchedulingPolicy, batch: _OpenBatch,
                 placement: Placement, batch_id: int, report: ServingReport,
                 attempt: int, schedule_retry: Callable) -> None:
        """Execute one placed attempt of a batch; route failures to retry.

        Injected faults are the only failures the simulated path handles —
        execution here is the analytical model, so any other exception is a
        bug and propagates (the live path, whose workers genuinely crash,
        additionally routes real exceptions through the same logic).
        """
        try:
            batch_report, request_reports = self.engine.execute_batch(
                batch.requests,
                batch_id=batch_id,
                start_us=placement.start_us,
                replica_id=placement.replica.replica_id,
                speculation=batch.speculation,
                device=placement.replica.device,
                workload=placement.workload,
                attempt=attempt,
            )
        except InjectedFault as exc:
            outcome = resolve_failure(
                self.engine.resilience, policy.health, batch.requests,
                placement, batch_id, attempt, exc,
            )
            policy.account_failure(placement, outcome.detect_us)
            report.requests.extend(outcome.failed_reports)
            report.requests.extend(outcome.expired_reports)
            if outcome.retry_requests:
                report.retries += 1
                retry = _OpenBatch(
                    signature=batch.signature,
                    opened_us=batch.opened_us,
                    token=batch.token,
                    requests=outcome.retry_requests,
                )
                schedule_retry(
                    outcome.retry_at_us,
                    (retry, batch_id, attempt + 1, (outcome.failed_replica,)),
                )
            return
        batch_report.overlap_saved_us = placement.saved_us
        policy.account(placement, batch_report, signature=batch.signature)
        report.batches.append(batch_report)
        report.requests.extend(request_reports)
