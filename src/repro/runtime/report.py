"""Report formatting: the paper-style rows the benchmarks print."""

from __future__ import annotations

from typing import Iterable


def format_table(headers: Iterable, rows: Iterable, *, title: str = "") -> str:
    """Fixed-width table rendering for benchmark output."""
    headers = [str(h) for h in headers]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_speedups(table: dict, *, reference: str = "PIT") -> str:
    """Render a speedup dict as 'PIT is N.Nx faster than X' lines."""
    lines = []
    for name, speedup in sorted(table.items(), key=lambda kv: -kv[1]):
        lines.append(f"{reference} is {speedup:.2f}x faster than {name}")
    return "\n".join(lines)
