"""Real-concurrency serving: an asyncio front end over the scheduling core.

Everything before this module serves on a simulated clock inside one
thread.  This is the live path: an asyncio **admission loop** accepts
streaming :meth:`AsyncServingFrontend.submit` calls (each resolved by a
future), applies **backpressure / load-shedding** when the in-flight depth
exceeds the SLO-feasible bound, and **replica workers** pull closed batches
from per-replica queues and execute them concurrently (each worker on its
own model-backend instance, all sharing the engine's one sharded
:class:`~repro.core.selection.PlanCache`).

The front end makes *no scheduling decisions of its own*: every admission,
closure and placement goes through the same
:class:`~repro.runtime.scheduler.SchedulingPolicy` object the simulated
:class:`~repro.runtime.scheduler.ContinuousScheduler` drives.  The only
difference between the two paths is the driver — an event heap on a
simulated clock there, an asyncio loop on a real (or virtual) clock here.

**Deterministic replay.**  :func:`replay_trace` drives the front end's
admission pipeline under a :class:`VirtualClock` with inline execution:
timers fire in deterministic order, every dispatch executes synchronously
(so replica ``free_at`` bookkeeping is exact when the next decision reads
it), and the resulting batch compositions and placements reproduce the
simulated scheduler's decision-for-decision —
:func:`decision_trace` extracts the comparable decision sequence from
either report.  Construct both engines with ``charge_selection=False`` to
also make the simulated timeline (start/exec times) bit-reproducible:
measured selection wall time is then reported but kept off the simulated
schedule.

Two clocks, restated for the live path: *execution* time remains the
analytical device model's simulated latency (a worker "executing" a batch
computes its report; it does not sleep), while *selection* remains real
measured wall time — under real concurrency the cold Algorithm 1 searches
now genuinely overlap with other replicas' work, which is what the
contention benchmark measures.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Optional

from .resilience import InjectedFault, resolve_failure
from .scheduler import SchedulingPolicy, _OpenBatch
from .serving import (
    InferenceRequest,
    RequestReport,
    ServingReport,
)


class VirtualClock:
    """A deterministic microsecond clock driven explicitly by its owner.

    Timers are a heap of ``(when_us, priority, seq, callback, args)``; ties
    fire in priority order, then scheduling order.  Priorities mirror the
    simulated event heap's kinds (arrival=0 < deadline=1 < retry=2), so an
    arrival at time ``t`` beats a window deadline at the same ``t`` and
    both beat a backoff'd retry — regardless of when each timer was
    scheduled.  :meth:`fire_next` advances ``now`` to the timer's due time
    *before* invoking the callback, so code reading :meth:`now_us` inside a
    callback observes exactly the event time.
    """

    def __init__(self, start_us: float = 0.0):
        self._now_us = float(start_us)
        self._timers: list = []
        self._seq = itertools.count()

    def now_us(self) -> float:
        return self._now_us

    def call_at(self, when_us: float, callback, *args,
                priority: int = 0) -> None:
        heapq.heappush(
            self._timers, (when_us, priority, next(self._seq), callback, args)
        )

    def pending(self) -> bool:
        return bool(self._timers)

    def fire_next(self) -> float:
        """Fire the earliest timer; returns the time it fired at."""
        when_us, _, _, callback, args = heapq.heappop(self._timers)
        self._now_us = max(self._now_us, when_us)
        callback(*args)
        return self._now_us


class RealClock:
    """Wall-clock microseconds over the running asyncio event loop.

    Time zero is the first observation, so a fresh front end's arrival
    stamps start near 0 like the simulated traces it mirrors.  Deadlines
    map to ``loop.call_at`` and the handles are kept so the owner can
    cancel stragglers at shutdown.
    """

    def __init__(self):
        self._loop = None
        self._base = None
        self._handles: list = []

    def _ensure_loop(self):
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
            self._base = self._loop.time()
        return self._loop

    def now_us(self) -> float:
        loop = self._ensure_loop()
        return (loop.time() - self._base) * 1e6

    def call_at(self, when_us: float, callback, *args,
                priority: int = 0) -> None:
        # ``priority`` is the virtual clock's deterministic tie-breaker;
        # wall time has no simultaneous timers to break ties between.
        del priority
        loop = self._ensure_loop()
        self._handles.append(
            loop.call_at(self._base + when_us / 1e6, callback, *args)
        )

    def cancel_pending(self) -> None:
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()


#: Sentinel a worker interprets as "finish your queue and exit".
_STOP = object()


class AsyncServingFrontend:
    """Streaming admission + concurrent replica workers over one policy.

    ``max_queue_depth`` bounds the number of admitted-but-unfinished
    requests; past it, ``overload="shed"`` refuses new arrivals immediately
    (the request's future resolves to a ``shed`` :class:`RequestReport` —
    reported, never silently dropped) while ``overload="block"`` applies
    backpressure by making :meth:`submit` await capacity.  ``None`` means
    unbounded.

    ``inline_execution=True`` (the deterministic-replay mode used by
    :func:`replay_trace`) executes each batch synchronously at dispatch
    instead of handing it to a worker: decisions then interleave with
    execution accounting exactly as in the simulated single-threaded loop,
    which is what makes replica ``free_at`` state — and therefore every
    placement — bit-identical.  The default (worker) mode runs each
    replica's batches through ``asyncio.to_thread`` on a per-worker model
    backend, so batches on different replicas genuinely execute
    concurrently and all plan traffic converges on the shared sharded
    :class:`~repro.core.selection.PlanCache`.
    """

    def __init__(
        self,
        engine,
        *,
        max_queue_depth: Optional[int] = None,
        overload: str = "shed",
        clock=None,
        inline_execution: bool = False,
    ):
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if overload not in ("shed", "block"):
            raise ValueError(
                f"overload must be shed|block, got {overload!r}"
            )
        if inline_execution and overload == "block":
            raise ValueError(
                "overload='block' needs workers to drain capacity; "
                "inline execution cannot await — use overload='shed'"
            )
        self.engine = engine
        self.max_queue_depth = max_queue_depth
        self.overload = overload
        self.clock = clock if clock is not None else RealClock()
        self.inline_execution = inline_execution
        self.policy = SchedulingPolicy(
            engine,
            replicas=engine.replicas,
            batch_window_us=engine.batch_window_us,
            overlap_selection=engine.overlap_selection,
            placement=engine.placement,
        )
        self._report = ServingReport(policy="live")
        self._request_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._futures: dict = {}
        self._inflight = 0
        self._queues: list = []
        self._workers: list = []
        self._worker_backends: dict = {}
        self._completion = None  # asyncio.Event, created at start()
        self._started = False
        self._closing = False
        self._pending_retries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the replica workers (no-op in inline-execution mode)."""
        if self._started:
            return
        self._started = True
        self._completion = asyncio.Event()
        if self.inline_execution:
            return
        for replica in self.policy.replicas:
            queue: asyncio.Queue = asyncio.Queue()
            self._queues.append(queue)
            self._worker_backends[replica.replica_id] = (
                self.engine.make_worker_backend(replica.device)
            )
            self._workers.append(
                asyncio.create_task(
                    self._worker(replica.replica_id, queue),
                    name=f"replica-worker-{replica.replica_id}",
                )
            )

    async def drain(self) -> None:
        """Close every open batch and wait for in-flight work to finish.

        A failed batch may have a retry timer pending; draining waits for
        those chains to land too (each chain is statically bounded by
        ``max_retries``, so this terminates).
        """
        self.finish(self.clock.now_us())
        for queue in self._queues:
            await queue.join()
        while self._pending_retries > 0:
            await asyncio.sleep(0.001)
            for queue in self._queues:
                await queue.join()

    async def stop(self) -> None:
        """Drain, then shut the workers down.

        Submitters blocked on backpressure are released first (their
        futures resolve to refused reports) so a shutdown never strands a
        caller awaiting capacity that will no longer free up.
        """
        self._closing = True
        if self._completion is not None:
            self._completion.set()
        await self.drain()
        for queue in self._queues:
            queue.put_nowait(_STOP)
        if self._workers:
            await asyncio.gather(*self._workers)
        self._workers.clear()
        if hasattr(self.clock, "cancel_pending"):
            self.clock.cancel_pending()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def submit(
        self,
        workload,
        *,
        arrival_us: Optional[float] = None,
        deadline_us: Optional[float] = None,
    ):
        """Admit one workload; returns a future of its RequestReport.

        The future resolves when the request's batch completes — or
        immediately with a ``shed`` report when the front end is over its
        queue-depth bound in shed mode.  In block mode the *call* awaits
        capacity instead (backpressure propagates to the submitter).
        ``deadline_us`` is the request's completion budget relative to its
        arrival (see :class:`~repro.runtime.resilience.ResilienceConfig`).
        """
        if not self._started:
            await self.start()
        if self.max_queue_depth is not None and self.overload == "block":
            while (
                not self._closing and self._inflight >= self.max_queue_depth
            ):
                self._completion.clear()
                await self._completion.wait()
        if self._closing:
            return self._refuse(workload, "shutdown: front end is stopping")
        now = arrival_us if arrival_us is not None else self.clock.now_us()
        request = InferenceRequest(
            request_id=next(self._request_ids),
            workload=workload,
            arrival_us=now,
            deadline_us=deadline_us,
        )
        return self.ingest(request)

    def _refuse(self, workload, reason: str):
        """Resolve a never-admitted workload with a shed-style report."""
        now = self.clock.now_us()
        refused = RequestReport(
            request_id=next(self._request_ids),
            batch_id=-1,
            tokens=workload.total_tokens,
            arrival_us=now,
            start_us=now,
            queue_us=0.0,
            exec_us=0.0,
            selection_us=0.0,
            ok=False,
            error=reason,
            shed=True,
        )
        self._report.requests.append(refused)
        future = _new_future()
        future.set_result(refused)
        return future

    def ingest(self, request: InferenceRequest):
        """Synchronous admission core (also the virtual-replay entry).

        Applies the shed bound, registers the request's future, and runs
        the shared policy's admission — dispatching any batches the arrival
        closes.  Returns the request's future (resolved already if shed).
        """
        future = _new_future()
        now = request.arrival_us
        if (
            self.max_queue_depth is not None
            and self.overload == "shed"
            and self._inflight >= self.max_queue_depth
        ):
            shed = RequestReport(
                request_id=request.request_id,
                batch_id=-1,
                tokens=request.tokens,
                arrival_us=now,
                start_us=now,
                queue_us=0.0,
                exec_us=0.0,
                selection_us=0.0,
                ok=False,
                error=(
                    f"shed: {self._inflight} requests in flight >= "
                    f"max_queue_depth={self.max_queue_depth}"
                ),
                shed=True,
            )
            self._report.requests.append(shed)
            future.set_result(shed)
            return future
        self._futures[request.request_id] = future
        self._inflight += 1
        self.policy.admit(request, now, self._dispatch, self._schedule_deadline)
        return future

    def _schedule_deadline(self, deadline_us, signature, token) -> None:
        self.clock.call_at(
            deadline_us, self._on_deadline, signature, token, priority=1
        )

    def _on_deadline(self, signature, token) -> None:
        batch = self.policy.close_due(signature, token)
        if batch is not None:
            self._dispatch(batch, self.clock.now_us())

    def finish(self, now_us: float) -> None:
        """Close every still-open batch at ``now_us`` (end of stream)."""
        for batch in self.policy.flush():
            self._dispatch(batch, now_us)

    # ------------------------------------------------------------------
    # Dispatch and execution
    # ------------------------------------------------------------------
    def _dispatch(self, batch: _OpenBatch, close_us: float) -> None:
        """Place a closed batch and route it to its replica's worker."""
        placement = self.policy.place(batch, close_us)
        self._route((batch, placement, next(self._batch_ids), 0))

    def _route(self, item) -> None:
        """Send one placed attempt to execution (inline or its worker)."""
        batch, placement, batch_id, attempt = item
        if self.inline_execution:
            try:
                self._account(item, *self._execute(item))
            except InjectedFault as exc:
                self._on_failure(item, exc)
        else:
            # Reserve the replica up to the cost model's predicted finish:
            # under a burst, several batches dispatch before any completes,
            # and without a reservation they would all read the same stale
            # free_at and pile onto one replica.  _account replaces the
            # prediction with the actual finish (max-assigned, so an early
            # completion never rolls back a later reservation).
            estimate = self.engine.estimate_exec_us(
                batch.signature, placement.workload, placement.replica.device
            )
            if estimate != float("inf"):
                placement.replica.free_at_us = max(
                    placement.replica.free_at_us,
                    placement.start_us + estimate,
                )
            self._queues[placement.replica.replica_id].put_nowait(item)

    def _execute(self, item) -> tuple:
        """Run one placed batch through the engine (worker-thread safe)."""
        batch, placement, batch_id, attempt = item
        backend = self._worker_backends.get(placement.replica.replica_id)
        return self.engine.execute_batch(
            batch.requests,
            batch_id=batch_id,
            start_us=placement.start_us,
            replica_id=placement.replica.replica_id,
            speculation=batch.speculation,
            device=placement.replica.device,
            workload=placement.workload,
            backend=backend,
            attempt=attempt,
        )

    def _account(self, item, batch_report, request_reports) -> None:
        """Fold one executed batch into policy state, report and futures.

        Always runs on the event-loop thread (inline, or in the worker
        coroutine after ``to_thread`` returns), so policy state needs no
        locking.
        """
        batch, placement, _, _ = item
        batch_report.overlap_saved_us = placement.saved_us
        self.policy.account(placement, batch_report, signature=batch.signature)
        self._report.batches.append(batch_report)
        self._report.requests.extend(request_reports)
        for request_report in request_reports:
            future = self._futures.pop(request_report.request_id, None)
            if future is not None and not future.done():
                future.set_result(request_report)
        self._inflight -= len(batch.requests)
        if self._completion is not None:
            self._completion.set()

    def _fail(self, item, exc: BaseException) -> None:
        """Report a terminal worker failure on every request of the batch.

        The no-resilience path: without a
        :class:`~repro.runtime.resilience.ResilienceConfig` on the engine
        there is no retry budget, so the crash surfaces on every request of
        the batch — reported, never silently dropped.
        """
        batch, placement, batch_id, _ = item
        for request in batch.requests:
            request_report = RequestReport(
                request_id=request.request_id,
                batch_id=batch_id,
                tokens=request.tokens,
                arrival_us=request.arrival_us,
                start_us=placement.start_us,
                queue_us=placement.start_us - request.arrival_us,
                exec_us=0.0,
                selection_us=0.0,
                ok=False,
                error=f"worker failure: {exc!r}",
            )
            self._report.requests.append(request_report)
            future = self._futures.pop(request.request_id, None)
            if future is not None and not future.done():
                future.set_result(request_report)
        self._inflight -= len(batch.requests)
        if self._completion is not None:
            self._completion.set()

    def _on_failure(self, item, exc: BaseException) -> None:
        """Resolve a failed attempt: report, retry or give up.

        Shares :func:`~repro.runtime.resilience.resolve_failure` with the
        simulated scheduler, so the split into terminal reports and a
        backoff'd retry — and the retry's due time — is identical across
        both drivers.  The retry timer carries priority 2, mirroring the
        simulated event heap's retry kind.
        """
        batch, placement, batch_id, attempt = item
        outcome = resolve_failure(
            self.engine.resilience,
            self.policy.health,
            batch.requests,
            placement,
            batch_id,
            attempt,
            exc,
        )
        self.policy.account_failure(placement, outcome.detect_us)
        terminal = outcome.failed_reports + outcome.expired_reports
        self._report.requests.extend(terminal)
        for request_report in terminal:
            future = self._futures.pop(request_report.request_id, None)
            if future is not None and not future.done():
                future.set_result(request_report)
        self._inflight -= len(terminal)
        if terminal and self._completion is not None:
            self._completion.set()
        if outcome.retry_requests:
            self._report.retries += 1
            retry = _OpenBatch(
                signature=batch.signature,
                opened_us=batch.opened_us,
                token=batch.token,
                requests=outcome.retry_requests,
            )
            self._pending_retries += 1
            self.clock.call_at(
                outcome.retry_at_us,
                self._redispatch,
                retry,
                batch_id,
                attempt + 1,
                (outcome.failed_replica,),
                priority=2,
            )

    def _redispatch(self, batch: _OpenBatch, batch_id: int, attempt: int,
                    exclude: tuple) -> None:
        """Re-place a retried batch (keeping its id) on a healthy replica."""
        self._pending_retries -= 1
        placement = self.policy.place(
            batch, self.clock.now_us(), exclude=exclude
        )
        if placement.replica.replica_id not in exclude:
            self._report.failovers += 1
        self._route((batch, placement, batch_id, attempt))

    async def _worker(self, replica_id: int, queue: asyncio.Queue) -> None:
        """One replica's execution loop: pull, execute off-loop, account."""
        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                return
            try:
                batch_report, request_reports = await asyncio.to_thread(
                    self._execute, item
                )
                self._account(item, batch_report, request_reports)
            except Exception as exc:
                if self.engine.resilience is not None:
                    self._on_failure(item, exc)
                else:
                    self._fail(item, exc)
            finally:
                queue.task_done()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Admitted-but-unfinished requests (the backpressure quantity)."""
        return self._inflight

    def report(self) -> ServingReport:
        """The aggregate report over everything served so far."""
        report = self._report
        report.batches.sort(key=lambda b: b.batch_id)
        report.requests.sort(key=lambda r: r.request_id)
        first_start = min((b.start_us for b in report.batches), default=0.0)
        last_end = max(
            (b.start_us + b.exec_us for b in report.batches), default=0.0
        )
        report.makespan_us = last_end - first_start
        report.replica_stats = self.policy.replica_stats(report.makespan_us)
        report.plan_cache_stats = self.engine.plan_cache.stats()
        if self.policy.health is not None:
            report.health_timeline = self.policy.health.timeline()
        return report


def _new_future():
    """A future usable with or without a running asyncio loop.

    The virtual-replay driver runs without a loop; plain
    :class:`concurrent.futures.Future`-style results are enough there, and
    ``asyncio.Future`` without a loop would raise.
    """
    try:
        return asyncio.get_running_loop().create_future()
    except RuntimeError:
        import concurrent.futures

        return concurrent.futures.Future()


# ----------------------------------------------------------------------
# Deterministic replay + equivalence
# ----------------------------------------------------------------------
def replay_trace(
    engine,
    requests=None,
    *,
    max_queue_depth: Optional[int] = None,
) -> ServingReport:
    """Serve a trace through the live front end in virtual time.

    The deterministic-replay equivalence harness: arrivals become virtual
    timers, the front end's own admission/shed/dispatch pipeline runs them
    through the shared :class:`~repro.runtime.scheduler.SchedulingPolicy`,
    and execution is inline so accounting interleaves with decisions
    exactly as in the simulated loop.  ``requests`` defaults to the
    engine's queued submissions (like ``engine.run()``, the queue is
    consumed).  The returned report's batch compositions and placements
    match ``engine.run(policy="continuous")`` on the same trace
    decision-for-decision — compare with :func:`decision_trace`.
    """
    if requests is None:
        requests, engine._queue = engine._queue, []
    clock = VirtualClock()
    frontend = AsyncServingFrontend(
        engine,
        max_queue_depth=max_queue_depth,
        overload="shed",
        clock=clock,
        inline_execution=True,
    )
    ordered = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
    for request in ordered:
        clock.call_at(request.arrival_us, frontend.ingest, request)
    last_event_us = 0.0
    while clock.pending():
        last_event_us = max(last_event_us, clock.fire_next())
    frontend.finish(last_event_us)
    # Flush-time dispatches may fail and schedule backoff'd retries; keep
    # firing until the chains land (statically bounded by max_retries).
    while clock.pending():
        clock.fire_next()
    return frontend.report()


def decision_trace(report: ServingReport, *, include_timing: bool = False) -> list:
    """The scheduler-decision sequence of a report, for equivalence checks.

    One entry per batch in batch-id (dispatch) order: the batch's
    composition (request ids, in admission order), its placement (replica
    id) and its plan-cache traffic.  With ``include_timing`` the simulated
    start/exec times join the trace — only meaningful when both runs were
    made time-deterministic with ``charge_selection=False`` (measured
    selection wall time otherwise perturbs the simulated schedule).
    """
    trace = []
    for batch in sorted(report.batches, key=lambda b: b.batch_id):
        entry = {
            "batch_id": batch.batch_id,
            "requests": list(batch.request_ids),
            "replica": batch.replica_id,
            "attempt": batch.attempt,
            "tokens": batch.tokens,
            "padded_tokens": batch.padded_tokens,
            "cache_hits": batch.cache_hits,
            "cache_misses": batch.cache_misses,
            "plan_kinds": dict(batch.plan_kinds),
        }
        if include_timing:
            entry["start_us"] = batch.start_us
            entry["exec_us"] = batch.exec_us
        trace.append(entry)
    return trace


# ----------------------------------------------------------------------
# Live-serving convenience
# ----------------------------------------------------------------------
async def serve_async(
    engine,
    workloads,
    *,
    max_queue_depth: Optional[int] = None,
    overload: str = "shed",
) -> ServingReport:
    """Serve ``workloads`` through a live front end on the running loop."""
    frontend = AsyncServingFrontend(
        engine, max_queue_depth=max_queue_depth, overload=overload
    )
    await frontend.start()
    futures = [await frontend.submit(w) for w in workloads]
    await frontend.drain()
    if futures:
        await asyncio.gather(*futures)
    await frontend.stop()
    return frontend.report()


def serve_workloads(
    engine,
    workloads,
    *,
    max_queue_depth: Optional[int] = None,
    overload: str = "shed",
) -> ServingReport:
    """Synchronous wrapper: run :func:`serve_async` on a private loop."""
    return asyncio.run(
        serve_async(
            engine,
            workloads,
            max_queue_depth=max_queue_depth,
            overload=overload,
        )
    )
