"""Fault-tolerant serving: deterministic fault injection, replica health,
bounded retry/failover, deadlines, and degraded-mode planning.

The ROADMAP's multiprocess/multi-host direction makes worker failure a
normal event rather than an anomaly, and the PR-6 ``SchedulingPolicy`` /
driver split plus ``VirtualClock`` replay make fault handling
*deterministically testable*: the same injected fault schedule produces the
same decisions in the simulated :class:`~repro.runtime.scheduler.
ContinuousScheduler` and the live :class:`~repro.runtime.frontend.
AsyncServingFrontend`.  Four pieces live here:

* :class:`FaultInjector` — a seeded, clock-driven fault source.  Every
  decision is a **pure function of (seed, fault coordinates)**: each query
  derives a one-shot generator from
  ``np.random.SeedSequence(seed, spawn_key=(stream, batch_id, attempt,
  replica_id))`` instead of consuming a shared draw stream, so the outcome
  is independent of call order, thread interleaving and
  ``PYTHONHASHSEED`` — the property that keeps two drivers (and two runs)
  bit-identical under one seed.  Replica death/recovery is a *schedule*
  (``outages``), evaluated as a pure function of the clock, so neither
  driver needs outage events.

* :class:`HealthTracker` — a per-replica circuit breaker
  (``healthy → suspect → quarantined → half-open``).  Placement asks it for
  a penalty that is added to ``predicted_finish_us``: suspects price worse,
  quarantined/dead replicas price ``inf`` (excluded while any alternative
  exists), and a quarantined replica whose window expired admits exactly
  one half-open *probe* batch — success re-admits it, failure re-quarantines
  with doubled (capped) backoff.

* :class:`ResilienceConfig` — the retry/deadline/breaker policy:
  ``max_retries`` bounds every retry chain statically (the ``bounded-retry``
  pitlint rule enforces the idiom repo-wide), backoff is exponential and
  capped *in clock time* (simulated microseconds, never wall time), and
  per-request deadlines keep retries from resurrecting a request past its
  SLO — such requests report ``deadline_exceeded``, distinct from ``shed``
  and from a plain failure.

* :func:`resolve_failure` — the one shared failure-handling decision both
  drivers call: detect at ``start + failure_detect_us``, trip the breaker,
  split the batch's requests into expired (deadline) and retryable, and
  name the backoff'd retry time and the replica to avoid.  Keeping the
  decision in one place is what keeps the drivers' decision traces equal.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Health states of one replica, in escalation order.
HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"
HALF_OPEN = "half-open"
DEAD = "dead"

#: Stream discriminators for the injector's per-query generators — distinct
#: fault kinds must never share a draw even at equal coordinates.
_STREAM_EXEC = 0
_STREAM_STRAGGLER = 1
_STREAM_SEARCH = 2


class InjectedFault(RuntimeError):
    """Base class of every fault the injector raises."""


class WorkerCrashFault(InjectedFault):
    """An injected hard worker crash (the process/thread died mid-batch)."""


class TransientExecFault(InjectedFault):
    """An injected transient execution failure (recoverable by retry)."""


class ReplicaDownFault(InjectedFault):
    """The batch was dispatched into a replica's scheduled outage window."""


@dataclass(frozen=True)
class FaultSpec:
    """A deterministic fault schedule.  ``seed`` is mandatory: an unseeded
    injector cannot replay, and the ``bounded-retry`` pitlint rule flags
    construction sites that omit it."""

    seed: int
    #: Probability a batch attempt dies with a hard worker crash.
    crash_prob: float = 0.0
    #: Probability a batch attempt fails transiently (retry succeeds).
    transient_prob: float = 0.0
    #: Probability a batch attempt runs slow by ``straggler_factor``.
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    #: Probability a cold Algorithm 1 search fails for a (kind, signature).
    search_fail_prob: float = 0.0
    #: ``(replica_id, down_us, up_us)`` outage windows on the serving clock.
    outages: tuple = ()

    def __post_init__(self) -> None:
        for name in ("crash_prob", "transient_prob", "straggler_prob",
                     "search_fail_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.crash_prob + self.transient_prob > 1.0:
            raise ValueError("crash_prob + transient_prob must be <= 1")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        outages = tuple(tuple(o) for o in self.outages)
        for rid, down_us, up_us in outages:
            if down_us >= up_us:
                raise ValueError(
                    f"outage window for replica {rid} is empty: "
                    f"[{down_us}, {up_us})"
                )
        object.__setattr__(self, "outages", outages)


class FaultInjector:
    """Replay-deterministic fault decisions from a :class:`FaultSpec`.

    Decisions are coordinate-addressed, never stream-drawn: querying the
    same (stream, batch, attempt, replica) twice — or from two different
    drivers, in any order — returns the same answer.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    def _draw(self, stream: int, *coords) -> float:
        key = tuple(int(c) & 0xFFFFFFFF for c in coords)
        rng = np.random.default_rng(
            np.random.SeedSequence(self.spec.seed, spawn_key=(stream,) + key)
        )
        return float(rng.random())

    def replica_down(self, replica_id: int, now_us: float) -> bool:
        """Whether ``replica_id`` is inside an outage window at ``now_us``.

        A pure function of the clock: both drivers observe death and
        recovery at identical simulated times without any outage events.
        """
        for rid, down_us, up_us in self.spec.outages:
            if rid == replica_id and down_us <= now_us < up_us:
                return True
        return False

    def exec_fault(self, replica_id: int, batch_id: int, attempt: int,
                   start_us: float) -> None:
        """Raise this attempt's injected execution fault, if it has one."""
        if self.replica_down(replica_id, start_us):
            raise ReplicaDownFault(
                f"replica {replica_id} is down at {start_us:.0f}us"
            )
        draw = self._draw(_STREAM_EXEC, batch_id, attempt, replica_id)
        if draw < self.spec.crash_prob:
            raise WorkerCrashFault(
                f"injected crash: batch {batch_id} attempt {attempt} "
                f"on replica {replica_id}"
            )
        if draw < self.spec.crash_prob + self.spec.transient_prob:
            raise TransientExecFault(
                f"injected transient failure: batch {batch_id} attempt "
                f"{attempt} on replica {replica_id}"
            )

    def slowdown(self, replica_id: int, batch_id: int, attempt: int) -> float:
        """Execution-time multiplier for this attempt (1.0 = healthy)."""
        if self.spec.straggler_prob <= 0.0:
            return 1.0
        draw = self._draw(_STREAM_STRAGGLER, batch_id, attempt, replica_id)
        if draw < self.spec.straggler_prob:
            return self.spec.straggler_factor
        return 1.0

    def search_fails(self, kind: str, signature) -> bool:
        """Whether the Algorithm 1 search for this plan is injected to fail.

        Coordinates come from a CRC of the spec identity (``repr`` of ints
        and tuples is process-stable), never from ``hash()`` — Python's
        string hashing is randomized per process and would break replay.
        """
        if self.spec.search_fail_prob <= 0.0:
            return False
        token = zlib.crc32(repr((kind, signature)).encode())
        return self._draw(_STREAM_SEARCH, token) < self.spec.search_fail_prob


@dataclass(frozen=True)
class ResilienceConfig:
    """Retry, deadline and circuit-breaker policy for a serving engine."""

    #: Static bound on retries per batch: a batch executes at most
    #: ``1 + max_retries`` times, then its requests fail terminally.
    max_retries: int = 2
    #: First retry backoff (simulated microseconds, never wall time);
    #: doubles per attempt up to the cap.
    retry_backoff_us: float = 500.0
    retry_backoff_cap_us: float = 8000.0
    #: How long after dispatch a failure is detected; the failed attempt
    #: occupies the replica until then.
    failure_detect_us: float = 200.0
    #: Consecutive failures that trip a replica from suspect to quarantined.
    quarantine_after: int = 3
    #: First quarantine window; a failed half-open probe doubles it, capped.
    quarantine_us: float = 20000.0
    quarantine_cap_us: float = 160000.0
    #: Placement penalty of a suspect (or probing) replica.
    suspect_penalty_us: float = 1000.0
    #: A batch whose compute exceeds this multiple of its placement estimate
    #: marks its replica suspect.
    straggler_threshold: float = 2.0
    #: SLO budget (from arrival) for requests that carry no deadline of
    #: their own; ``None`` means no default deadline.
    default_deadline_us: Optional[float] = None
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for name in ("retry_backoff_us", "retry_backoff_cap_us",
                     "failure_detect_us", "quarantine_us",
                     "quarantine_cap_us", "suspect_penalty_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.straggler_threshold < 1.0:
            raise ValueError("straggler_threshold must be >= 1")
        if self.default_deadline_us is not None and self.default_deadline_us <= 0:
            raise ValueError("default_deadline_us must be > 0 (or None)")

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry ``attempt + 1``, exponential and capped."""
        return min(
            self.retry_backoff_us * (2.0 ** attempt),
            self.retry_backoff_cap_us,
        )

    def deadline_for(self, request) -> Optional[float]:
        """Absolute deadline of ``request`` on the serving clock, if any."""
        budget = getattr(request, "deadline_us", None)
        if budget is None:
            budget = self.default_deadline_us
        if budget is None:
            return None
        return request.arrival_us + budget


@dataclass
class _ReplicaHealth:
    """One replica's breaker state."""

    replica_id: int
    state: str = HEALTHY
    consecutive_failures: int = 0
    quarantined_until_us: float = 0.0
    #: Current quarantine window (doubles on failed probes, capped).
    window_us: float = 0.0
    #: Half-open mode admits one probe batch at a time.
    probe_inflight: bool = False


class HealthTracker:
    """Per-replica health with circuit breaking, driven by the serving clock.

    The tracker never looks at a clock itself — every observation carries
    its simulated timestamp, so both drivers (event heap and asyncio loop)
    evolve identical state from identical decision sequences.  State
    transitions are recorded on a timeline for ``ServingReport.describe()``.
    """

    def __init__(self, num_replicas: int, config: ResilienceConfig,
                 injector: Optional[FaultInjector] = None):
        self.config = config
        self.injector = injector
        self._replicas = [_ReplicaHealth(i) for i in range(num_replicas)]
        #: ``(us, replica_id, state)`` per transition, in observation order.
        self.transitions: list = []

    def _set_state(self, health: _ReplicaHealth, state: str,
                   now_us: float) -> None:
        if health.state != state:
            health.state = state
            self.transitions.append((now_us, health.replica_id, state))

    def state(self, replica_id: int, now_us: float) -> str:
        """The replica's state at ``now_us`` (observing outage windows and
        quarantine expiry lazily)."""
        health = self._replicas[replica_id]
        if self.injector is not None and self.injector.replica_down(
            replica_id, now_us
        ):
            self._set_state(health, DEAD, now_us)
            return DEAD
        if health.state == DEAD:
            # The outage window ended: re-admit through a half-open probe
            # rather than trusting the replica with full traffic at once.
            health.probe_inflight = False
            self._set_state(health, HALF_OPEN, now_us)
        if health.state == QUARANTINED and now_us >= health.quarantined_until_us:
            health.probe_inflight = False
            self._set_state(health, HALF_OPEN, now_us)
        return health.state

    def placement_penalty_us(self, replica_id: int, now_us: float) -> float:
        """Additive penalty on the replica's predicted finish time.

        ``inf`` excludes the replica outright (dead, quarantined, or
        half-open with its one probe already in flight); suspects and
        probe-admitting replicas pay ``suspect_penalty_us`` so healthy peers
        win ties but a degraded fleet still serves.
        """
        state = self.state(replica_id, now_us)
        if state in (DEAD, QUARANTINED):
            return float("inf")
        if state == HALF_OPEN:
            if self._replicas[replica_id].probe_inflight:
                return float("inf")
            return self.config.suspect_penalty_us
        if state == SUSPECT:
            return self.config.suspect_penalty_us
        return 0.0

    def on_dispatch(self, replica_id: int, now_us: float) -> None:
        """A batch was placed on the replica; mark half-open probes."""
        if self.state(replica_id, now_us) == HALF_OPEN:
            self._replicas[replica_id].probe_inflight = True

    def on_success(self, replica_id: int, now_us: float) -> None:
        health = self._replicas[replica_id]
        health.consecutive_failures = 0
        health.probe_inflight = False
        health.window_us = 0.0
        if self.state(replica_id, now_us) != DEAD:
            self._set_state(health, HEALTHY, now_us)

    def on_straggler(self, replica_id: int, now_us: float) -> None:
        """A batch ran far over its estimate: demote a healthy replica to
        suspect (does not count toward the breaker's failure threshold)."""
        health = self._replicas[replica_id]
        health.probe_inflight = False
        if self.state(replica_id, now_us) == HEALTHY:
            self._set_state(health, SUSPECT, now_us)

    def on_failure(self, replica_id: int, now_us: float) -> None:
        health = self._replicas[replica_id]
        was_probing = health.state == HALF_OPEN
        health.probe_inflight = False
        health.consecutive_failures += 1
        state = self.state(replica_id, now_us)
        if state == DEAD:
            return
        if was_probing or (
            health.consecutive_failures >= self.config.quarantine_after
        ):
            # Tripped the breaker (or failed the half-open probe): quarantine
            # with a doubled, capped window.
            if health.window_us > 0.0:
                health.window_us = min(
                    health.window_us * 2.0, self.config.quarantine_cap_us
                )
            else:
                health.window_us = self.config.quarantine_us
            health.quarantined_until_us = now_us + health.window_us
            self._set_state(health, QUARANTINED, now_us)
        else:
            self._set_state(health, SUSPECT, now_us)

    def timeline(self) -> list:
        """All transitions so far, ``(us, replica_id, state)``."""
        return list(self.transitions)


@dataclass
class FailureOutcome:
    """What :func:`resolve_failure` decided for one failed batch attempt."""

    #: When the failure was detected (the replica is occupied until then).
    detect_us: float
    #: Terminal failure reports (retry budget exhausted).
    failed_reports: list = field(default_factory=list)
    #: Requests whose deadline the backoff'd retry would already miss.
    expired_reports: list = field(default_factory=list)
    #: Requests to requeue (empty when nothing survives to retry).
    retry_requests: list = field(default_factory=list)
    retry_at_us: float = 0.0
    #: Replica the retry should avoid (the one that just failed).
    failed_replica: int = -1


def resolve_failure(config: ResilienceConfig, health: HealthTracker,
                    batch_requests, placement, batch_id: int, attempt: int,
                    exc: BaseException) -> FailureOutcome:
    """The shared failure-handling decision for one failed batch attempt.

    Trips the breaker at detection time, then either fails the whole batch
    terminally (retry budget spent) or splits it: requests whose deadline
    the backoff'd retry time would already miss report ``deadline_exceeded``
    now, the rest retry at ``detect + backoff`` on a replica other than the
    one that failed.  Both drivers route failures through here, which is
    what keeps their decision traces equal under one injection seed.
    """
    replica_id = placement.replica.replica_id
    detect_us = placement.start_us + config.failure_detect_us
    health.on_failure(replica_id, detect_us)
    outcome = FailureOutcome(detect_us=detect_us, failed_replica=replica_id)
    if attempt >= config.max_retries:
        error = (
            f"worker failure on replica {replica_id}, retries exhausted "
            f"after {attempt + 1} attempts: {exc!r}"
        )
        outcome.failed_reports = [
            _failure_report(r, batch_id, placement.start_us, error,
                            retries=attempt)
            for r in batch_requests
        ]
        return outcome
    outcome.retry_at_us = detect_us + config.backoff_us(attempt)
    for request in batch_requests:
        deadline = config.deadline_for(request)
        if deadline is not None and outcome.retry_at_us > deadline:
            outcome.expired_reports.append(
                _failure_report(
                    request, batch_id, placement.start_us,
                    (
                        f"deadline exceeded: retry at "
                        f"{outcome.retry_at_us:.0f}us is past the "
                        f"{deadline:.0f}us deadline (after {attempt + 1} "
                        f"failed attempts: {exc!r})"
                    ),
                    deadline_exceeded=True,
                    retries=attempt,
                )
            )
        else:
            outcome.retry_requests.append(request)
    return outcome


def _failure_report(request, batch_id: int, start_us: float, error: str,
                    *, deadline_exceeded: bool = False, retries: int = 0):
    # Deferred import: serving imports this module for the config types.
    from .serving import RequestReport

    return RequestReport(
        request_id=request.request_id,
        batch_id=batch_id,
        tokens=request.tokens,
        arrival_us=request.arrival_us,
        start_us=start_us,
        queue_us=start_us - request.arrival_us,
        exec_us=0.0,
        selection_us=0.0,
        ok=False,
        error=error,
        deadline_exceeded=deadline_exceeded,
        retries=retries,
    )
