"""Training-side runtime: iterative-pruning sparse training (Figure 15),
planned through the unified :class:`~repro.core.plan.Planner`.

Sparse training prices a BERT forward+backward where every weight matmul
``C[m, n] = X[m, k] @ W[k, n]`` carries a block mask on ``W`` that changes
every step (magnitude pruning over drifting weights).  Consequences the
figure shows:

* **PyTorch** computes densely and multiplies the mask in — flat latency
  across sparsity;
* **PyTorch-S** covers the mask with Triton's 32x32 blocks and *rebuilds the
  block layout for every layer, every batch*.  At 32x64 granularity the
  cover is tight and the conversion is the gap to PIT; at 32x1 the 32x32
  blocks cover nearly everything and PyTorch-S ends up slower than dense;
* **PIT** resolves a ``weight-sparse`` (or ``nm-sparse``) plan — Algorithm 1
  on operand B over the *full* tile database — through
  :meth:`~repro.baselines.pit_backend.PITBackend.weight_sparse_plan`.  At
  32x1 the (tk, 1) micro-tiles merge scattered weight columns into dense
  tiles, keeping the 32x1 latency equal to the 32x64 latency ("the best of
  both worlds").

This module contains *no* direct TileDB or kernel search: every plan
resolution flows through ``Planner.resolve`` (inside the PIT backend), so
training inherits the serving stack's memoization, quantized-signature
warm-start, and :meth:`~repro.core.selection.PlanCache.save`/``load``
persistence across pruning runs — see ``docs/training.md``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..baselines.backends import ModelBackend
from ..baselines.pit_backend import PITBackend
from ..baselines.triton_block import triton_convert_passes
from ..core.cover import CoverCache
from ..core.detector import index_construction_time_us
from ..core.selection import PlanCache
from ..hw.costmodel import (
    TileConfig,
    matmul_step_time_us,
    matmul_tile_fixed_time_us,
)
from ..hw.memory import stream_time_us
from ..hw.spec import GPUSpec, dtype_bytes
from ..models.config import ModelConfig, bert_base
from ..sparsity.masks import MagnitudePruner


@dataclass
class SparseTrainingReport:
    """One pruning-step measurement for one system."""

    backend: str
    block: tuple
    sparsity: float
    latency_ms: float
    convert_ms: float
    mem_gib: float
    #: Plan-resolution provenance (PIT only; zeros for the baselines):
    #: cache hits / cold Algorithm 1 searches this step, and the wall time
    #: resolution took — Section 5.5's search-budget quantity, now visible
    #: per training step.
    plan_hits: int = 0
    plan_misses: int = 0
    search_us: float = 0.0


# ----------------------------------------------------------------------
# Mask + cover-pyramid memo
# ----------------------------------------------------------------------
#: Per-step mask/cover memo.  One figure point prices the *same* regenerated
#: masks for all three backends, and a warm-start run re-prices them every
#: epoch — so the cover-grid pyramid (PR 3) is built once per mask and
#: reused, instead of `CoverCache(weight_mask)` from scratch at every
#: pricing call.  Bounded LRU: a figure sweep touches dozens of
#: (block, sparsity) points but only a handful at a time.
_COVER_MEMO: OrderedDict = OrderedDict()
_COVER_MEMO_CAP = 24


def _family_masks(config: ModelConfig, block: tuple, sparsity: float,
                  seed: int) -> dict:
    """``{family: (mask, cover, count)}`` for one pruning step, memoized.

    One representative weight mask per matmul family; every layer shares
    the sparsity statistics, so price one layer and scale by depth.  The
    masks are drawn in a fixed family order from one seeded rng, so equal
    (config, block, sparsity, seed) always name bit-identical masks — the
    property both the memo and plan-cache warm-starts rest on.
    """
    key = (config.d_model, config.d_ff, tuple(block), round(sparsity, 6), seed)
    if key in _COVER_MEMO:
        _COVER_MEMO.move_to_end(key)
        return _COVER_MEMO[key]
    d, d_ff = config.d_model, config.d_ff
    rng = np.random.default_rng(seed)
    pruner = MagnitudePruner(block)
    families = {}
    for name, shape, count in (
        ("attn", (d, d), 4),
        ("ffn1", (d, d_ff), 1),
        ("ffn2", (d_ff, d), 1),
    ):
        mask = pruner.mask(rng.standard_normal(shape), sparsity)
        families[name] = (mask, CoverCache(mask), count)
    _COVER_MEMO[key] = families
    while len(_COVER_MEMO) > _COVER_MEMO_CAP:
        _COVER_MEMO.popitem(last=False)
    return families


def _block_cover_matmul_us(
    cover: CoverCache,
    m: int,
    spec: GPUSpec,
    dtype: str,
    *,
    block: int = 32,
) -> float:
    """Triton-style in-place block-sparse matmul: covered W blocks execute
    as dense (block x block) tiles for each output row-block.

    Takes the weight mask's :class:`CoverCache` — the pyramid is shared
    across pruning steps and backends via :func:`_family_masks` instead of
    being rebuilt per call.
    """
    grid = cover.grid((block, block))
    covered = int(grid.sum())
    tile = TileConfig(block, block, block)
    row_tiles = math.ceil(m / block)
    steps = covered * row_tiles
    out_tiles = int(grid.any(axis=0).sum()) * row_tiles
    step = matmul_step_time_us(tile, dtype, spec)
    fixed = matmul_tile_fixed_time_us(tile, dtype, spec)
    return (
        math.ceil(steps / spec.num_sms) * step
        + math.ceil(out_tiles / spec.num_sms) * fixed
        + spec.kernel_launch_us
    )


def sparse_training_step(
    backend: str,
    spec: GPUSpec,
    *,
    config: ModelConfig = None,
    block: tuple = (32, 64),
    sparsity: float = 0.9,
    batch_tokens: int = 32 * 128,
    dtype: str = "float32",
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    pattern: tuple = (),
    permutation: tuple = (),
) -> SparseTrainingReport:
    """Price one forward+backward batch of iterative-pruning BERT training.

    ``backend`` is one of ``pytorch``, ``pytorch-s``, ``pit``.  The weight
    masks are regenerated by magnitude pruning at the requested sparsity,
    modeling the per-step mask churn of Figure 2d.

    The PIT backend resolves one plan per matmul family through
    ``Planner.resolve`` over ``plan_cache`` (a fresh private cache when
    ``None`` — every family then pays a cold full-TileDB search, exactly
    the single-step semantics of Figure 15).  Pass a shared cache — or use
    :func:`sparse_training_run` — and subsequent steps whose drifting masks
    land in the same quantized signature replay cached plans; the report's
    ``plan_hits``/``plan_misses``/``search_us`` make the difference
    visible.  A non-empty ``pattern`` switches PIT to the ``nm-sparse``
    kind (N:M projection composed with a channel-permutation search,
    ``permutation`` being the search policy).
    """
    if config is None:
        config = bert_base()
    if backend not in ("pytorch", "pytorch-s", "pit"):
        raise ValueError(f"unknown sparse-training backend {backend!r}")
    d, d_ff = config.d_model, config.d_ff
    families = _family_masks(config, block, sparsity, seed)
    dsize = dtype_bytes(dtype)
    m = batch_tokens

    if backend == "pit":
        pit = PITBackend(
            spec, dtype,
            plan_cache=plan_cache if plan_cache is not None else PlanCache(),
        )
        pricer = pit
    else:
        pricer = ModelBackend(spec, dtype)

    latency_us = 0.0
    convert_us = 0.0
    plan_hits = 0
    plan_misses = 0
    search_us = 0.0
    weight_elems_per_layer = 0
    for _, (mask, cover, count) in families.items():
        k, n = mask.shape
        weight_elems_per_layer += mask.size

        if backend == "pytorch":
            dense = pricer.dense_matmul_us(m, k, n)
            mask_apply = (
                3 * stream_time_us(mask.size * dsize, spec) + spec.kernel_launch_us
            )
            latency_us += count * (dense + mask_apply)
        elif backend == "pytorch-s":
            compute = _block_cover_matmul_us(cover, m, spec, dtype, block=32)
            passes = triton_convert_passes(32)
            convert = (
                stream_time_us(int(mask.size * dsize * passes), spec)
                + 4 * spec.kernel_launch_us
            )
            latency_us += count * (compute + convert)
            convert_us += count * convert
        else:  # pit: one plan per family, resolved through the Planner
            resolved = pricer.weight_sparse_plan(
                [mask], m, k, n, pattern=pattern, permutation=permutation
            )
            plan_hits += int(resolved.cache_hit)
            plan_misses += int(resolved.cold)
            search_us += resolved.search_us
            compute = pricer.weight_sparse_matmul_us(
                resolved, mask, m, cover=cover
            )
            latency_us += count * compute
            # Detector time is already inside the plan's estimate; report
            # the same quantity as the convert share for the stacked bars.
            micro = (block[0], 1) if block[0] >= block[1] else (1, block[1])
            detector = index_construction_time_us(
                mask.shape, dtype, spec, int(cover.grid(micro).sum())
            )
            convert_us += count * detector

    # Scale one layer to the full stack; backward ~ 2x forward compute and
    # rebuilds the indexes/layouts for the gradient masks too.
    total_layers = config.n_layers
    latency_us *= total_layers * 3.0
    convert_us *= total_layers * 3.0

    # Memory: dense weights + gradients + Adam states for the baselines;
    # PIT stores the masked weights compactly (values + micro-tile index)
    # while grads/optimizer stay dense for the trainable (unpruned) set.
    act_bytes = batch_tokens * (2 * d + d_ff) * dsize * total_layers
    weight_bytes = weight_elems_per_layer * total_layers * dsize
    if backend == "pit":
        density = 1.0 - sparsity
        weights_total = weight_bytes + 3 * weight_bytes * (density + 0.05)
    else:
        weights_total = 4 * weight_bytes
    mem_gib = (act_bytes + weights_total) / (1 << 30)

    return SparseTrainingReport(
        backend=backend,
        block=block,
        sparsity=sparsity,
        latency_ms=latency_us / 1e3,
        convert_ms=convert_us / 1e3,
        mem_gib=mem_gib,
        plan_hits=plan_hits,
        plan_misses=plan_misses,
        search_us=search_us,
    )


def sparse_training_run(
    backend: str,
    spec: GPUSpec,
    *,
    sparsities,
    config: ModelConfig = None,
    block: tuple = (32, 64),
    batch_tokens: int = 32 * 128,
    dtype: str = "float32",
    seed: int = 0,
    seed_stride: int = 0,
    plan_cache: Optional[PlanCache] = None,
) -> list:
    """Price a multi-step pruning run: one report per sparsity step.

    All steps share one :class:`PlanCache` (``plan_cache``, or a fresh one),
    so the PIT backend's plan resolutions warm-start across the run: the
    first step at each traffic class pays Algorithm 1, later steps whose
    masks quantize to the same signature replay the cached plan.  Persist
    the cache with ``PlanCache.save`` after an epoch and ``load`` it before
    the next — a restarted pruning run (or a second epoch) then resolves
    with *zero* cold searches, which is exactly what
    ``benchmarks/bench_training_warmstart.py`` gates in CI.

    ``seed_stride`` regenerates the weights with ``seed + i * seed_stride``
    at step ``i`` — nonzero strides model drifting weights whose masks
    change every step yet (at equal sparsity) still share plans through
    the quantized signature.
    """
    cache = plan_cache if plan_cache is not None else PlanCache()
    return [
        sparse_training_step(
            backend,
            spec,
            config=config,
            block=block,
            sparsity=s,
            batch_tokens=batch_tokens,
            dtype=dtype,
            seed=seed + i * seed_stride,
            plan_cache=cache,
        )
        for i, s in enumerate(sparsities)
    ]
