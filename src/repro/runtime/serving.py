"""The serving layer: concurrent variable-shape requests, batched + cached.

The paper's premise is that dynamic sparsity must be handled *online*: the
deployed PIT keeps kernel selection at 30-100us by reusing cover grids and
pre-profiled tiles (Sections 3.2, 5.5).  A serving process goes one step
further — requests arrive continuously and their dynamic patterns are
statistically alike, so the whole Algorithm 1 outcome is reusable across
requests via the :class:`~repro.core.selection.PlanCache`.

The :class:`ServingEngine` accepts :class:`InferenceRequest`\\ s (a workload
plus an arrival time), groups compatible requests into dynamic batches with
token-budget bucketing over the variable sequence lengths (the Figure 11/12
workloads), executes each batch through :func:`~repro.runtime.engine.
run_transformer`, and reports per-request queueing delay and latency plus
aggregate throughput.  Two clocks coexist deliberately:

* **execution time** is the analytical device model's simulated latency;
* **selection overhead** is *real* wall time spent in (cached) Algorithm 1 —
  the quantity Section 5.5 measures at 30-100us per search.  Steady-state
  requests hit the plan cache and pay a dictionary lookup instead.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.plan import Planner, PlanSpec, ResolvedPlan
from ..core.selection import KernelChoice, PlanCache
from ..core.tiledb import TileDB
from ..hw.spec import GPUSpec
from ..models.workloads import Workload
from ..sparsity.activation import relu_activation_mask
from ..sparsity.attention import MaskStats, representative_attention_mask
from ..sparsity.moe import merge_routing, routing_sample_mask, routing_signature
from .engine import RunReport, run_transformer
from .resilience import FaultInjector, ResilienceConfig
from .session import make_replica_backends


@dataclass(frozen=True)
class InferenceRequest:
    """One queued inference call: a workload and when it arrived."""

    request_id: int
    workload: Workload
    #: Arrival time on the engine's simulated clock (microseconds).
    arrival_us: float = 0.0
    #: SLO budget from arrival (microseconds): a retry may not resurrect
    #: this request past ``arrival_us + deadline_us``.  ``None`` falls back
    #: to the engine's :attr:`ResilienceConfig.default_deadline_us`.
    deadline_us: Optional[float] = None

    @property
    def tokens(self) -> int:
        return self.workload.total_tokens

    @property
    def max_len(self) -> int:
        return self.workload.max_len

    def batch_signature(self, quantum: Optional[float] = None) -> tuple:
        """Requests sharing a signature may execute in one batch.

        Compatible means: same model architecture, same activation-sparsity
        regime, attention masks of the same shape whose density agrees to
        within one quantization bucket, and — for MoE workloads — routing
        tables over the same expert population on the same layers whose
        load statistics agree to within one bucket.  Merged batches price
        with merged statistics (:func:`merge_workloads`), so members must
        be statistically alike — the same tolerance the plan cache uses.
        MoE routing tables concatenate through
        :func:`~repro.sparsity.moe.merge_routing`: the grouped kernel's
        cost follows the total token count, so co-batching is sound.

        ``quantum`` is the bucket width; it must be the *engine's* plan-cache
        quantum (the engine's batching paths thread it through), so that
        requests judged batch-compatible also quantize to one plan
        signature — co-batching at one tolerance while caching plans at
        another would silently defeat speculation.  Defaults to
        :data:`~repro.core.selection.SIGNATURE_QUANTUM` for standalone use.
        """
        from ..core.selection import SIGNATURE_QUANTUM

        if quantum is None:
            quantum = SIGNATURE_QUANTUM
        cfg = self.workload.config
        stats = self.workload.attn_stats
        attn_key = None
        if stats is not None:
            attn_key = (
                stats.seq,
                int(round(stats.density / quantum)),
                stats.micro_w,
                stats.block,
            )
        moe_key = None
        routing = self.workload.routing_by_layer
        if routing:
            moe_key = (
                tuple(sorted(routing)),
                routing_signature(routing.values(), quantum=quantum),
            )
        return (cfg.name, self.workload.act_sparsity, attn_key, moe_key)


def merge_workloads(workloads) -> Workload:
    """Concatenate compatible workloads' sequences into one batch.

    The merged batch is priced with *merged* dynamic-sparsity metadata, not
    the first member's: ``act_sparsity`` is token-weight-averaged,
    ``attn_stats`` are sequence-weight-averaged
    (:meth:`~repro.sparsity.attention.MaskStats.merged`) and MoE routing
    tables concatenate per layer
    (:func:`~repro.sparsity.moe.merge_routing`).  Irreconcilable metadata —
    different architectures, an activation-sparse member next to a dense
    one, mismatched attention shapes, differing MoE layer sets — raises
    ``ValueError`` instead of being silently dropped.
    """
    workloads = list(workloads)
    if not workloads:
        raise ValueError("cannot merge zero workloads")
    base = workloads[0]
    if len(workloads) == 1:
        return base
    for w in workloads[1:]:
        if w.config != base.config:
            raise ValueError(
                f"cannot merge workloads of different models: "
                f"{base.config.name} vs {w.config.name}"
            )
    lengths = np.concatenate([np.asarray(w.lengths) for w in workloads])

    sparsities = [w.act_sparsity for w in workloads]
    if any(s is None for s in sparsities):
        if any(s is not None for s in sparsities):
            raise ValueError(
                "cannot merge workloads where some exploit activation "
                "sparsity and some do not"
            )
        act_sparsity = None
    else:
        tokens = np.asarray([w.total_tokens for w in workloads], dtype=float)
        act_sparsity = float(np.average(sparsities, weights=tokens))

    stats = [w.attn_stats for w in workloads]
    if any(s is None for s in stats):
        if any(s is not None for s in stats):
            raise ValueError(
                "cannot merge workloads where some carry attention-mask "
                "statistics and some do not"
            )
        attn_stats = None
    else:
        attn_stats = MaskStats.merged(
            stats, weights=[w.batch_size for w in workloads]
        )

    layer_sets = [frozenset(w.routing_by_layer) for w in workloads]
    if any(ls != layer_sets[0] for ls in layer_sets[1:]):
        raise ValueError(
            "cannot merge MoE workloads routing different layer sets"
        )
    routing_by_layer = {
        layer: merge_routing([w.routing_by_layer[layer] for w in workloads])
        for layer in base.routing_by_layer
    }

    return Workload(
        config=base.config,
        lengths=lengths,
        act_sparsity=act_sparsity,
        attn_stats=attn_stats,
        routing_by_layer=routing_by_layer,
        seed=base.seed,
    )


@dataclass(frozen=True)
class DeviceClass:
    """One distinct device type of a (possibly heterogeneous) replica fleet.

    Replicas of the same :class:`~repro.hw.spec.GPUSpec` share everything
    device-specific: the backend, the profiled :class:`TileDB`, the
    :class:`~repro.core.plan.Planner` and the analytical pricing model.
    Plans for different classes coexist in the engine's one
    :class:`PlanCache` because the TileDB key — which embeds the full
    ``GPUSpec`` — is part of every plan key, so adding a replica of an
    already-seen class adds zero cold searches.
    """

    #: Dense index in first-seen lineup order (0 = the engine's own spec).
    class_id: int
    spec: GPUSpec
    backend: object
    tiledb: TileDB
    planner: Planner
    #: A second backend of the same device *not* attached to the shared
    #: plan cache: cost-aware placement prices candidate workloads through
    #: it, and pricing must not perturb the serving cache's hit/miss
    #: accounting (placement probes are not traffic).
    pricing_backend: object

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class SpeculativeSelection:
    """A plan search issued at batch-*open* time, from the first admitted
    request's signature.

    The continuous scheduler issues the Algorithm 1 search the moment a
    batch opens instead of when it closes, so a *cold* search runs while the
    batch is still collecting partners and while the target replica finishes
    its previous batch — the selection/compute overlap the paper's online
    compilation model implies.  The search is speculative: the closed
    batch's merged workload can quantize to a different signature, in which
    case the close-time residual search still runs (serially, as before).
    """

    #: Simulated time the search was issued (the batch-open event).
    issued_us: float
    #: Measured wall time of the speculative lookups/search.
    search_us: float
    cache_hits: int
    cache_misses: int
    #: Plan kind -> whether the speculative resolve was cold for that kind.
    plan_kinds: dict = field(default_factory=dict)
    #: Device class the speculation resolved against — the scheduler's
    #: *predicted* placement target at batch-open time.  The close-time
    #: residual re-resolves against the actual target, so a mispredicted
    #: class costs at most one serial search (and only while that class is
    #: still cold).
    device: str = ""

    @property
    def cold(self) -> bool:
        """True when the speculation paid a real Algorithm 1 search."""
        return self.cache_misses > 0


@dataclass
class RequestReport:
    """Per-request outcome: where its time went."""

    request_id: int
    batch_id: int
    tokens: int
    arrival_us: float
    start_us: float
    #: Time spent waiting for the batch to form and the device to free up.
    queue_us: float
    #: Wall time of the batch this request rode in (shared, not divided).
    exec_us: float
    #: This request's amortized share of the batch's plan-selection time.
    selection_us: float
    ok: bool = True
    error: Optional[str] = None
    #: True when the live front end load-shed this request at admission
    #: (queue depth over the SLO-feasible bound).  Shed requests never
    #: execute (``batch_id == -1``) but are always reported, never silently
    #: dropped: they count toward ``failed_requests`` with ``ok=False``.
    shed: bool = False
    #: True when retries could not complete the request within its SLO —
    #: distinct from ``shed`` (refused at admission) and from a plain
    #: ``ok=False`` (execution failed with retry budget spent).
    deadline_exceeded: bool = False
    #: Failed attempts this request's batch(es) went through before this
    #: outcome (0 on the fault-free path).
    retries: int = 0

    @property
    def latency_us(self) -> float:
        """End-to-end: arrival to batch completion."""
        return self.queue_us + self.exec_us


@dataclass
class BatchReport:
    """One executed dynamic batch."""

    batch_id: int
    request_ids: list
    tokens: int
    padded_tokens: int
    start_us: float
    exec_us: float
    selection_us: float
    cache_hits: int
    cache_misses: int
    run: RunReport
    #: Which replica executed the batch (always 0 under the drain policy).
    replica_id: int = 0
    #: Simulated time removed from the critical path by overlapping this
    #: batch's cold plan search with the open window / prior compute
    #: (0 for drain batches and for warm batches).
    overlap_saved_us: float = 0.0
    #: Plan kind (``proj`` | ``ffn-act`` | ``attention`` | ``moe-grouped``)
    #: -> whether this batch's resolve of that kind was cold.
    plan_kinds: dict = field(default_factory=dict)
    #: Which execution attempt this report describes (0 = first dispatch;
    #: a batch that failed over carries the attempt that succeeded).
    attempt: int = 0
    #: Simulated model execution time including any injected straggler
    #: slowdown, *excluding* charged selection wall time — the quantity
    #: health tracking compares against the placement estimate.
    compute_us: float = 0.0
    #: How many of this batch's plans fell back to the conservative dense
    #: default because Algorithm 1's search failed (degraded mode).
    degraded_plans: int = 0

    @property
    def size(self) -> int:
        return len(self.request_ids)


@dataclass
class ReplicaStats:
    """Per-replica accounting of one scheduler run."""

    replica_id: int
    #: Device-class name of the replica (e.g. ``"A100-80GB"``); empty on
    #: reports predating heterogeneous lineups.
    device: str = ""
    batches: int = 0
    tokens: int = 0
    #: Simulated time the replica spent executing batches.
    busy_us: float = 0.0
    #: ``busy_us / makespan_us`` — fraction of the run the replica worked.
    utilization: float = 0.0
    #: Simulated time saved on this replica by selection/compute overlap.
    overlap_saved_us: float = 0.0


@dataclass
class ServingReport:
    """Aggregate outcome of one queue drain (or scheduler run)."""

    requests: list = field(default_factory=list)
    batches: list = field(default_factory=list)
    plan_cache_stats: dict = field(default_factory=dict)
    #: Simulated time from first batch start to last batch completion.
    makespan_us: float = 0.0
    #: Which batching policy produced this report:
    #: "drain" | "continuous" | "live".
    policy: str = "drain"
    #: Per-replica utilization (continuous policy; one entry per replica).
    replica_stats: list = field(default_factory=list)
    #: Batch attempts that were requeued after a failure (resilience mode).
    retries: int = 0
    #: Retries that landed on a different replica than the one that failed.
    failovers: int = 0
    #: ``(us, replica_id, state)`` health transitions, in observation order
    #: (resilience mode; empty otherwise).
    health_timeline: list = field(default_factory=list)

    @property
    def total_tokens(self) -> int:
        return sum(r.tokens for r in self.requests)

    @property
    def shed_requests(self) -> int:
        """Requests the live front end refused at admission (reported,
        never silently dropped)."""
        return sum(1 for r in self.requests if getattr(r, "shed", False))

    @property
    def completed_tokens(self) -> int:
        """Tokens of successfully served requests — failed (OOM/unsupported)
        batches do not count toward throughput."""
        return sum(r.tokens for r in self.requests if r.ok)

    @property
    def failed_requests(self) -> int:
        return sum(1 for r in self.requests if not r.ok)

    @property
    def deadline_exceeded(self) -> int:
        """Requests retries could not complete within their SLO (distinct
        from shed and from plain execution failures)."""
        return sum(
            1 for r in self.requests if getattr(r, "deadline_exceeded", False)
        )

    @property
    def degraded_plans(self) -> int:
        """Plan resolves that fell back to the conservative dense default
        because Algorithm 1's search failed, summed over batches."""
        return sum(getattr(b, "degraded_plans", 0) for b in self.batches)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.completed_tokens / (self.makespan_us / 1e6)

    @property
    def requests_per_s(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return (len(self.requests) - self.failed_requests) / (self.makespan_us / 1e6)

    @property
    def mean_latency_us(self) -> float:
        """Mean end-to-end latency of *successful* requests.

        Failed (OOM/unsupported) requests never produced output; folding
        their timings into the SLO metrics would let a fast-failing batch
        flatter the percentiles.  They are counted in
        :attr:`failed_requests` instead.
        """
        lats = [r.latency_us for r in self.requests if r.ok]
        return float(np.mean(lats)) if lats else 0.0

    @property
    def p95_latency_us(self) -> float:
        lats = [r.latency_us for r in self.requests if r.ok]
        return float(np.percentile(lats, 95)) if lats else 0.0

    @property
    def mean_queue_us(self) -> float:
        qs = [r.queue_us for r in self.requests if r.ok]
        return float(np.mean(qs)) if qs else 0.0

    @property
    def p95_queue_us(self) -> float:
        qs = [r.queue_us for r in self.requests if r.ok]
        return float(np.percentile(qs, 95)) if qs else 0.0

    @property
    def total_selection_us(self) -> float:
        return sum(b.selection_us for b in self.batches)

    @property
    def overlap_saved_us(self) -> float:
        """Simulated time the selection/compute overlap removed from the
        critical path, summed over batches (0 under drain, and 0 when every
        signature hit the plan cache — there was nothing to hide)."""
        return sum(b.overlap_saved_us for b in self.batches)

    def selection_summary(self) -> dict:
        """Cold-vs-steady selection overhead — the PlanCache amortization.

        A batch is *cold* when at least one of its plan lookups missed (it
        paid a full Algorithm 1 search); *warm* when every lookup hit.
        """
        cold = [b.selection_us for b in self.batches if b.cache_misses > 0]
        warm = [b.selection_us for b in self.batches if b.cache_misses == 0
                and b.cache_hits > 0]
        cold_us = float(np.mean(cold)) if cold else 0.0
        warm_us = float(np.mean(warm)) if warm else 0.0
        by_kind: dict = {}
        for b in self.batches:
            for kind, was_cold in b.plan_kinds.items():
                agg = by_kind.setdefault(kind, {"resolved": 0, "cold": 0})
                agg["resolved"] += 1
                agg["cold"] += 1 if was_cold else 0
        return {
            "cold_batches": len(cold),
            "warm_batches": len(warm),
            "cold_selection_us": cold_us,
            "warm_selection_us": warm_us,
            "amortization": (cold_us / warm_us) if warm_us > 0 else float("inf"),
            #: Per plan kind: how many batches resolved such a plan and how
            #: many of those resolves were cold (attention and moe-grouped
            #: plans flow through the same Planner as proj/ffn-act ones).
            "plans_by_kind": by_kind,
        }

    def describe(self) -> str:
        sel = self.selection_summary()
        cache = self.plan_cache_stats
        lines = [
            f"requests: {len(self.requests)}  batches: {len(self.batches)}  "
            f"tokens: {self.total_tokens}  failed: {self.failed_requests}",
            f"throughput: {self.throughput_tokens_per_s:,.0f} tok/s "
            f"({self.requests_per_s:.1f} req/s)",
            f"latency: mean {self.mean_latency_us / 1e3:.2f} ms  "
            f"p95 {self.p95_latency_us / 1e3:.2f} ms  "
            f"queue {self.mean_queue_us / 1e3:.2f} ms",
            f"plan cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(hit rate {cache.get('hit_rate', 0.0) * 100:.1f}%)",
            f"selection: cold {sel['cold_selection_us']:.1f} us/batch, "
            f"steady {sel['warm_selection_us']:.1f} us/batch",
        ]
        if sel["plans_by_kind"]:
            kinds = "  ".join(
                f"{kind}: {agg['resolved']} ({agg['cold']} cold)"
                for kind, agg in sorted(sel["plans_by_kind"].items())
            )
            lines.append(f"plans: {kinds}")
        if self.overlap_saved_us > 0:
            lines.append(
                f"selection/compute overlap: saved "
                f"{self.overlap_saved_us / 1e3:.2f} ms of serial search time"
            )
        if self.replica_stats:
            util = "  ".join(
                f"r{s.replica_id}: {s.utilization * 100:.0f}% "
                f"({s.batches} batches)"
                for s in self.replica_stats
            )
            lines.append(f"replicas: {len(self.replica_stats)}  {util}")
            by_class = self.device_class_stats()
            if by_class:
                classes = "  ".join(
                    f"{name}: {agg['replicas']}x util "
                    f"{agg['utilization'] * 100:.0f}% "
                    f"({agg['batches']} batches)"
                    for name, agg in sorted(by_class.items())
                )
                lines.append(f"device classes: {classes}")
        if (
            self.retries
            or self.failovers
            or self.deadline_exceeded
            or self.degraded_plans
        ):
            lines.append(
                f"resilience: {self.retries} retries "
                f"({self.failovers} failovers)  "
                f"deadline-exceeded: {self.deadline_exceeded}  "
                f"degraded plans: {self.degraded_plans}"
            )
        if self.health_timeline:
            by_replica: dict = {}
            for us, replica_id, state in self.health_timeline:
                by_replica.setdefault(replica_id, []).append(
                    f"{state}@{us / 1e3:.1f}ms"
                )
            timeline = "  ".join(
                f"r{rid}: {' -> '.join(steps)}"
                for rid, steps in sorted(by_replica.items())
            )
            lines.append(f"health: {timeline}")
        return "\n".join(lines)

    def device_class_stats(self) -> dict:
        """Per-device-class aggregates over the replica stats.

        ``{device name: {replicas, batches, tokens, busy_us, utilization}}``
        where utilization is the class's busy time over the time the class's
        replicas collectively had available (``replicas * makespan``).
        Empty when the report predates heterogeneous lineups (no replica
        carries a device name).
        """
        by_class: dict = {}
        for s in self.replica_stats:
            if not s.device:
                continue
            agg = by_class.setdefault(
                s.device,
                {"replicas": 0, "batches": 0, "tokens": 0, "busy_us": 0.0},
            )
            agg["replicas"] += 1
            agg["batches"] += s.batches
            agg["tokens"] += s.tokens
            agg["busy_us"] += s.busy_us
        for agg in by_class.values():
            window = agg["replicas"] * self.makespan_us
            agg["utilization"] = agg["busy_us"] / window if window > 0 else 0.0
        return by_class


class ServingEngine:
    """Dynamic-batching inference engine over a (possibly mixed) device fleet.

    Requests are drained FCFS: compatible requests (same
    :meth:`InferenceRequest.batch_signature`) accumulate into a batch until
    the padded-token budget or the batch-size cap would be exceeded, then
    the batch executes on the simulated device.  Every batch first resolves
    its kernel plans through the shared :class:`PlanCache` — cold batches
    pay the Algorithm 1 search, steady-state batches pay a lookup.

    ``replicas=N`` is the homogeneous shorthand for N copies of ``spec``;
    ``replica_specs=[A100, A100, V100]`` declares a heterogeneous lineup.
    One backend/TileDB/:class:`~repro.core.plan.Planner` is built per
    *distinct* device class (a :class:`DeviceClass`), all sharing the one
    plan cache — plans for different devices coexist because the TileDB key
    is part of every plan key.  The continuous policy places closed batches
    cost-aware by default (minimize predicted finish time on each class's
    analytical model); ``placement="least-loaded"`` keeps the PR-2
    earliest-free policy.
    """

    #: Fixed row/column extents of the representative masks fed to kernel
    #: selection; selection outcomes concentrate long before the full
    #: problem size.  A sample's row count is a *resolution* choice, not a
    #: property of the plan, so it must not vary with batch composition —
    #: otherwise the batch-open speculative spec (first request's tokens)
    #: and the close-time spec (merged tokens) would name different plans,
    #: defeating both the selection/compute overlap and cache reuse across
    #: batch compositions.
    SAMPLE_ROWS = 512
    SAMPLE_COLS = 256
    ACT_SAMPLE_ROWS = 256
    ACT_SAMPLE_COLS = 1024

    def __init__(
        self,
        spec: GPUSpec,
        *,
        backend: str = "PIT",
        dtype: str = "float32",
        mode: str = "inference",
        max_batch_tokens: int = 16384,
        max_batch_size: int = 32,
        devices: int = 1,
        replicas: int = 1,
        replica_specs: Optional[list] = None,
        placement: str = "cost-aware",
        batch_window_us: Optional[float] = 2000.0,
        overlap_selection: bool = True,
        enforce_memory: bool = False,
        plan_cache: Optional[PlanCache] = None,
        charge_selection: bool = True,
        resilience: Optional[ResilienceConfig] = None,
    ):
        if max_batch_tokens < 1 or max_batch_size < 1:
            raise ValueError("batch budgets must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replica_specs is not None:
            replica_specs = list(replica_specs)
            if not replica_specs:
                raise ValueError("replica_specs must name at least one device")
            if replicas != 1 and replicas != len(replica_specs):
                raise ValueError(
                    f"replicas={replicas} contradicts the "
                    f"{len(replica_specs)}-device replica_specs lineup; pass "
                    f"one or the other"
                )
        else:
            # The homogeneous shorthand: N replicas of the engine's spec.
            replica_specs = [spec] * replicas
        if placement not in ("cost-aware", "least-loaded"):
            raise ValueError(
                f"placement must be cost-aware|least-loaded, got {placement!r}"
            )
        if batch_window_us is not None and batch_window_us < 0:
            raise ValueError("batch_window_us must be >= 0 (or None)")
        self.spec = spec
        self.dtype = dtype
        self.mode = mode
        self.max_batch_tokens = max_batch_tokens
        self.max_batch_size = max_batch_size
        self.devices = devices
        self.replica_specs = replica_specs
        self.replicas = len(replica_specs)
        self.placement = placement
        self.batch_window_us = batch_window_us
        #: Continuous policy only: issue Algorithm 1 searches speculatively
        #: at batch-open time and overlap them with prior compute.
        self.overlap_selection = overlap_selection
        self.enforce_memory = enforce_memory
        #: When True (default), the *measured* wall time of plan selection
        #: is charged into each batch's simulated ``exec_us`` exactly as in
        #: every prior PR.  When False, selection stays reported
        #: (``selection_us``) but is excluded from the simulated schedule —
        #: the deterministic accounting the replay-equivalence harness
        #: runs under, since measured wall time differs run to run while
        #: the analytical latency model does not.
        self.charge_selection = charge_selection
        #: Fault-tolerance policy (retries, deadlines, circuit breaking,
        #: degraded-mode planning); ``None`` keeps every legacy behaviour —
        #: a worker exception fails its batch exactly as before.
        self.resilience = resilience
        #: Deterministic fault source, present only when the resilience
        #: config carries a :class:`~repro.runtime.resilience.FaultSpec`.
        self.fault_injector = (
            FaultInjector(resilience.fault)
            if resilience is not None and resilience.fault is not None
            else None
        )
        self.backend_name = backend
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        # One backend per distinct device class — serving backends share
        # the plan cache; pricing backends are cache-detached so placement
        # probes never perturb the serving cache's hit/miss accounting.
        lineup = [spec] + replica_specs
        kwargs = {"plan_cache": self.plan_cache} if backend == "PIT" else {}
        serving_backends = make_replica_backends(
            backend, lineup, dtype, **kwargs
        )
        pricing_backends = make_replica_backends(backend, lineup, dtype)
        #: GPUSpec -> DeviceClass, one per distinct device in the lineup
        #: (insertion-ordered; the engine's own spec is always class 0).
        self._device_classes = {
            dev_spec: DeviceClass(
                class_id=class_id,
                spec=dev_spec,
                backend=dev_backend,
                tiledb=dev_backend.tiledb,
                planner=Planner(dev_backend.tiledb, self.plan_cache),
                pricing_backend=pricing_backends[dev_spec],
            )
            for class_id, (dev_spec, dev_backend) in enumerate(
                serving_backends.items()
            )
        }
        primary = self._device_classes[spec]
        #: DeviceClass serving each replica id, in lineup order.
        self.replica_devices = [
            self._device_classes[s] for s in replica_specs
        ]
        # Compatibility surface: `engine.backend/tiledb/planner` name the
        # engine's own device class.  (Execution always targets a replica's
        # class — the drain policy runs on replica 0's, which differs from
        # this surface only when `spec` is absent from `replica_specs`.)
        self.backend = primary.backend
        self.tiledb = primary.tiledb
        #: The single Algorithm 1 entry point for every serving-path plan —
        #: proj, ffn-act, attention and moe-grouped specs all resolve here
        #: (per device class in a heterogeneous lineup), against the one
        #: shared PlanCache.
        self.planner = primary.planner
        #: Memoized analytical exec-time estimates for cost-aware placement,
        #: keyed by (batch signature, device spec): the first batch of a
        #: traffic shape prices one simulated run per device class, and
        #: every later placement decision is a dictionary lookup.
        self._exec_estimates: dict = {}
        self._queue: list = []
        self._next_id = 0
        #: Latest arrival time ever submitted; `submit_many` continues from
        #: here so a second stream never arrives before an already-queued one.
        self._arrival_clock_us = 0.0

    # ------------------------------------------------------------------
    # Device classes (heterogeneous replica lineups)
    # ------------------------------------------------------------------
    @property
    def device_classes(self) -> list:
        """The distinct device classes of the lineup, by ``class_id``."""
        return list(self._device_classes.values())

    def device_for_replica(self, replica_id: int) -> DeviceClass:
        """The device class serving ``replica_id``; an off-range id falls
        back to the engine's own class."""
        if 0 <= replica_id < len(self.replica_devices):
            return self.replica_devices[replica_id]
        return self._device_classes[self.spec]

    def make_worker_backend(self, device: DeviceClass):
        """A fresh model backend of ``device``'s class for one live worker.

        The per-class serving backend is shared by every replica of the
        class and carries per-run mutable state (``set_fusion`` toggles,
        the online detector's dedup set), so concurrent replica workers
        must not run through it.  Worker instances share the expensive
        state anyway — the profiled :class:`~repro.core.tiledb.TileDB` via
        its shared registry and the engine's one
        :class:`~repro.core.selection.PlanCache` — so construction is
        cheap and plans stay process-wide warm.
        """
        from .session import make_backend

        kwargs = (
            {"plan_cache": self.plan_cache}
            if self.backend_name == "PIT"
            else {}
        )
        return make_backend(self.backend_name, device.spec, self.dtype, **kwargs)

    def estimate_exec_us(
        self,
        signature,
        workload: Workload,
        device: Optional[DeviceClass] = None,
        *,
        memoize: bool = True,
    ) -> float:
        """Predicted execution time of a ``signature`` batch on ``device``.

        The estimate is the analytical device model's simulated latency of
        ``workload`` on the class's pricing backend, memoized per
        ``(batch signature, device spec)`` so the placement hot path stays a
        dictionary lookup.  Within one signature bucket the first-memoized
        batch composition stands in for all later ones — the same
        statistical-likeness bet the plan cache makes.  Only dispatch-time
        pricing memoizes (``memoize=True``, pricing the closed batch's
        *merged* workload); the scheduler's batch-open target prediction
        passes ``memoize=False`` because it only has the first admitted
        request, and a single request's latency must not stand in for full
        batches (nor may enabling the accounting-only overlap flag change
        what the memo holds).  A workload the device cannot serve
        (simulated OOM / unsupported model) prices as ``inf``, steering
        placement toward replicas that can finish.
        """
        device = device if device is not None else self.device_for_replica(0)
        key = (signature, device.spec)
        est = self._exec_estimates.get(key)
        if est is None:
            run = run_transformer(
                workload,
                device.pricing_backend,
                mode=self.mode,
                enforce_memory=self.enforce_memory,
                devices=self.devices,
            )
            est = run.latency_ms * 1e3 if run.ok else float("inf")
            if memoize:
                self._exec_estimates[key] = est
        return est

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        workload: Workload,
        *,
        arrival_us: float = 0.0,
        deadline_us: Optional[float] = None,
    ) -> InferenceRequest:
        """Enqueue one workload; returns its request handle."""
        request = InferenceRequest(
            request_id=self._next_id,
            workload=workload,
            arrival_us=arrival_us,
            deadline_us=deadline_us,
        )
        self._next_id += 1
        self._queue.append(request)
        self._arrival_clock_us = max(self._arrival_clock_us, arrival_us)
        return request

    def submit_many(self, workloads, *, interarrival_us: float = 0.0) -> list:
        """Enqueue a stream with a fixed inter-arrival gap.

        The stream continues the engine's arrival clock: the first arrival
        lands one gap after the latest arrival ever submitted (at 0 on a
        fresh engine), so a second call cannot produce arrivals earlier than
        already-queued requests.
        """
        base = self._arrival_clock_us
        if self._next_id > 0:
            base += interarrival_us
        out = []
        for i, w in enumerate(workloads):
            out.append(self.submit(w, arrival_us=base + i * interarrival_us))
        return out

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Batching: token-budget bucketing over variable-length requests
    # ------------------------------------------------------------------
    def _fits(self, batch: list, request: InferenceRequest) -> bool:
        if not batch:
            return True  # a lone oversized request still gets a batch
        if len(batch) >= self.max_batch_size:
            return False
        max_len = max(r.max_len for r in batch + [request])
        num_seqs = sum(r.workload.batch_size for r in batch + [request])
        return max_len * num_seqs <= self.max_batch_tokens

    def plan_batches(self, requests) -> list:
        """Group arrival-ordered requests into compatible, budgeted batches.

        Buckets are keyed by batch signature; a request opens a new batch
        for its bucket when the padded-token budget (``max(len) x seqs``, the
        quantity a padding-free kernel still schedules tiles over) or the
        size cap would overflow.
        """
        order = sorted(requests, key=lambda r: (r.arrival_us, r.request_id))
        open_batches: dict = {}
        closed: list = []
        for request in order:
            sig = request.batch_signature(self.plan_cache.quantum)
            batch = open_batches.get(sig)
            if batch is not None and not self._fits(batch, request):
                closed.append(batch)
                batch = None
            if batch is None:
                batch = []
                open_batches[sig] = batch
            batch.append(request)
        closed.extend(b for b in open_batches.values() if b)
        closed.sort(key=lambda b: (b[0].arrival_us, b[0].request_id))
        return closed

    # ------------------------------------------------------------------
    # Plan selection (the PlanCache hot path)
    # ------------------------------------------------------------------
    def _token_mask(self, workload: Workload) -> np.ndarray:
        """Representative mask of the token-gather projection (m-axis):
        live rows in proportion to real/padded tokens."""
        padded = workload.max_len * workload.batch_size
        density = workload.total_tokens / max(1, padded)
        rows = self.SAMPLE_ROWS
        cols = min(workload.config.d_model, self.SAMPLE_COLS)
        mask = np.zeros((rows, cols), dtype=bool)
        live = int(round(density * rows))
        if workload.total_tokens > 0:
            # A non-empty workload must never present an all-false mask to
            # Algorithm 1: one real token in a heavily padded batch rounds
            # to zero live rows, which would plan for an empty operator.
            live = max(1, live)
        mask[:live] = True
        return mask

    def _quantize(self, x: float) -> int:
        return int(round(x / self.plan_cache.quantum))

    def _plan_requests(self, workload: Workload, tiledb_key: tuple):
        """Yield ``(PlanSpec, make_samples)`` for every plan a batch of this
        workload needs, against the tile database named by ``tiledb_key``.

        Specs are derived from the workload's *summary statistics*, so the
        steady-state path never touches a mask — that is what keeps a hit
        at dictionary-lookup cost.  ``make_samples`` builds the
        representative masks Algorithm 1 searches over, invoked only on a
        miss.  All four serving plan kinds come from here: the token
        projection, the activation-sparse FFN, the dynamic attention cover
        and the grouped MoE dispatch over the (merged) routing tables.
        ``tiledb_key`` is the target device class's — plans are
        device-specific, so the same workload names different specs on an
        A100 than on a V100.
        """
        cfg = workload.config
        padded = workload.max_len * workload.batch_size
        density = workload.total_tokens / max(1, padded)
        m = self.SAMPLE_ROWS
        k = min(cfg.d_model, self.SAMPLE_COLS)
        yield (
            PlanSpec(
                kind="proj", m=m, k=k, n=k,
                signature=(self._quantize(density),), tiledb_key=tiledb_key,
            ),
            lambda: [self._token_mask(workload)],
        )
        if workload.act_sparsity is not None:
            rows = self.ACT_SAMPLE_ROWS
            cols = min(cfg.d_ff, self.ACT_SAMPLE_COLS)
            sparsity = workload.act_sparsity
            yield (
                PlanSpec(
                    kind="ffn-act", m=rows, k=cols, n=k,
                    signature=(self._quantize(1.0 - sparsity),),
                    tiledb_key=tiledb_key,
                ),
                lambda: [
                    relu_activation_mask(rows, cols, sparsity, seed=workload.seed)
                ],
            )
        if workload.attn_stats is not None:
            stats = workload.attn_stats
            arows = min(stats.seq, self.SAMPLE_ROWS)
            acols = min(stats.seq, self.SAMPLE_ROWS)
            yield (
                PlanSpec(
                    kind="attention", m=arows, k=acols,
                    n=max(1, cfg.head_dim),
                    signature=stats.plan_signature(self.plan_cache.quantum),
                    tiledb_key=tiledb_key,
                ),
                lambda: [representative_attention_mask(stats, arows, acols)],
            )
        if workload.routing_by_layer:
            routings = list(workload.routing_by_layer.values())
            counts = np.sum([np.asarray(r.counts) for r in routings], axis=0)
            mrows = self.SAMPLE_ROWS
            yield (
                PlanSpec(
                    kind="moe-grouped", m=mrows, k=max(1, int(counts.size)),
                    n=min(cfg.d_ff, self.ACT_SAMPLE_COLS),
                    signature=routing_signature(
                        routings, quantum=self.plan_cache.quantum
                    ),
                    tiledb_key=tiledb_key,
                ),
                lambda: [routing_sample_mask(counts, mrows)],
            )

    def _select_plans(
        self, workload: Workload, device: Optional[DeviceClass] = None
    ) -> tuple:
        """Resolve the batch's kernel plans through ``device``'s Planner.

        Returns ``(plans, wall_us, hits, misses)``: ``plans`` maps plan
        kind to its :class:`~repro.core.plan.ResolvedPlan` (choice +
        provenance) and ``wall_us`` is the *measured* time the
        lookups/searches took — the serving-side analogue of Section 5.5's
        online search overhead.
        """
        device = device if device is not None else self.device_for_replica(0)
        plans = {}
        start = time.perf_counter()
        for spec, make_samples in self._plan_requests(
            workload, device.tiledb.cache_key
        ):
            plans[spec.kind] = self._resolve_with_fallback(
                device, spec, make_samples
            )
        wall_us = (time.perf_counter() - start) * 1e6
        # Count hits/misses from each resolve's own provenance rather than
        # global-counter deltas: concurrent replicas resolve through the
        # same cache, and a delta would attribute their traffic to this
        # batch.  Sequentially the two accountings are identical (each
        # resolve is exactly one hit or one miss).  Degraded fallbacks are
        # neither: no search ran and no cached plan served.
        hits = sum(1 for plan in plans.values() if plan.cache_hit)
        misses = sum(
            1 for plan in plans.values()
            if not plan.cache_hit and not plan.degraded
        )
        return plans, wall_us, hits, misses

    def _resolve_with_fallback(self, device, spec, make_samples):
        """Resolve one plan, degrading to a dense default on search failure.

        Without a resilience config this is exactly ``planner.resolve`` —
        failures propagate as before.  With one, an injected or real
        Algorithm 1 failure yields a conservative plan instead of failing
        the batch's requests: the tile database's best *dense* tile for the
        spec's shape, ``degraded=True``, never cached — so a later resolve
        of the same spec retries the search (an injected per-signature
        failure stays deterministically degraded; a real transient one
        recovers).
        """
        injector = self.fault_injector
        if (
            injector is not None
            and injector.search_fails(spec.kind, spec.signature)
            and spec.cache_key() not in self.plan_cache
        ):
            return self._degraded_plan(device, spec)
        try:
            return device.planner.resolve(spec, make_samples)
        except Exception:
            if self.resilience is None:
                raise
            return self._degraded_plan(device, spec)

    def _degraded_plan(self, device, spec) -> ResolvedPlan:
        """The conservative dense fallback for a failed plan search."""
        entry = device.tiledb.best_dense_tile(spec.m, spec.k, spec.n)
        tiles = math.ceil(spec.m / entry.tile.tm) * math.ceil(
            spec.n / entry.tile.tn
        )
        waves = math.ceil(tiles / device.spec.num_sms)
        choice = KernelChoice(
            tile=entry.tile,
            pit_axis=None,
            microtile=None,
            est_cost_us=waves * entry.tile_cost_us(spec.k),
            covered_sparsity=0.0,
            search_time_us=0.0,
        )
        return ResolvedPlan(
            spec=spec,
            choice=choice,
            cache_hit=False,
            search_us=0.0,
            device=device.name,
            degraded=True,
        )

    def plan_cache_keys(self) -> list:
        """Every device class's TileDB key, primary first.

        The full identity set of this engine's plan traffic: pass it to
        ``PlanCache.load(path, expected_tiledb_keys=engine.plan_cache_keys())``
        to validate a mixed-lineup dump against *all* the classes the
        reviving engine can actually serve, not just its primary.
        """
        return [device.tiledb.cache_key for device in self.device_classes]

    def save_plan_cache(self, path, *, max_entries: Optional[int] = None) -> dict:
        """Persist this engine's plan cache for a later process.

        A fresh engine constructed with
        ``PlanCache.load(path, expected_tiledb_key=...)`` serves the same
        traffic with zero cold searches — every serving-path plan kind is
        keyed by a serializable :class:`~repro.core.plan.PlanSpec`.
        ``max_entries`` forwards the dump's LRU age-out cap (see
        :meth:`PlanCache.save`); entries under the cap keep the
        zero-cold-search replay property.

        The dump header records the *primary* device class's TileDB key
        (the coarse transfer guard ``PlanCache.load`` validates) plus the
        full set of class identities found among the entries
        (``tiledb_keys``) — a heterogeneous engine's cache holds entries
        for every class, each carrying its own ``tiledb_key`` inside the
        plan key.  A reviving mixed lineup validates the whole set with
        ``expected_tiledb_keys=engine.plan_cache_keys()``; per-entry keys,
        not the header, remain what planners match at resolve time.
        """
        return self.plan_cache.save(
            path, tiledb_key=self.tiledb.cache_key, max_entries=max_entries
        )

    def speculate_plans(
        self,
        workload: Workload,
        *,
        issued_us: float,
        device: Optional[DeviceClass] = None,
    ) -> SpeculativeSelection:
        """Resolve ``workload``'s plans ahead of batch closure.

        Called by the continuous scheduler the moment a batch opens, with
        the first admitted request's workload: a cold search warms the
        :class:`PlanCache` while the batch is still collecting partners, so
        by close time the merged workload usually resolves with lookups.
        ``device`` is the scheduler's *predicted* placement target — plans
        are device-specific, so speculation resolves against the class the
        batch is expected to execute on.  Returns the accounting record the
        scheduler uses to overlap the search with the target replica's
        prior compute.
        """
        device = device if device is not None else self.device_for_replica(0)
        plans, search_us, hits, misses = self._select_plans(workload, device)
        return SpeculativeSelection(
            issued_us=issued_us,
            search_us=search_us,
            cache_hits=hits,
            cache_misses=misses,
            plan_kinds={kind: plan.cold for kind, plan in plans.items()},
            device=device.name,
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        batch,
        *,
        batch_id: int,
        start_us: float,
        replica_id: int = 0,
        speculation: Optional[SpeculativeSelection] = None,
        device: Optional[DeviceClass] = None,
        workload: Optional[Workload] = None,
        backend=None,
        attempt: int = 0,
    ) -> tuple:
        """Plan, execute and account one closed batch at ``start_us``.

        Shared by the drain path and the continuous scheduler: resolves the
        batch's kernel plans through the engine's :class:`PlanCache` (one
        cache regardless of which replica executes, so a cold search on any
        replica warms every replica *of that device class*), prices the
        merged workload on the target device model, and returns
        ``(BatchReport, [RequestReport])``.  ``device`` is the class of the
        replica executing the batch — plans resolve against its planner and
        execution runs on its backend; it defaults to the class serving
        ``replica_id``.

        ``speculation`` is the batch-open search the scheduler issued.  Its
        hits/misses/wall-time fold into the batch's accounting; a *cold*
        speculative search is excluded from ``exec_us`` because the
        scheduler already charged it against the open window and the
        replica's prior compute (the overlap model) — only the close-time
        residual selection stays serial with execution.

        ``workload`` is the batch's merged workload when the caller (the
        scheduler, which merged it for placement pricing) already has it;
        otherwise it is merged here.

        ``backend`` overrides the model backend execution runs on — the
        live front end's replica workers execute concurrently, and the
        per-class serving backend carries per-run mutable state
        (``set_fusion``, the online detector's dedup set), so each worker
        passes its own instance (see :meth:`make_worker_backend`).  Plans
        still resolve through ``device``'s planner and the shared cache.
        """
        if device is None:
            device = self.device_for_replica(replica_id)
        if workload is None:
            workload = merge_workloads([r.workload for r in batch])
        injector = self.fault_injector
        slowdown = 1.0
        if injector is not None:
            # Injected execution faults raise *before* planning so the plan
            # cache evolves identically whether or not the attempt fails —
            # a prerequisite for decision-trace equality across drivers.
            injector.exec_fault(replica_id, batch_id, attempt, start_us)
            slowdown = injector.slowdown(replica_id, batch_id, attempt)
        plans, residual_us, hits, misses = self._select_plans(workload, device)
        plan_kinds = {kind: plan.cold for kind, plan in plans.items()}
        selection_us = residual_us
        serial_us = residual_us
        if speculation is not None:
            selection_us += speculation.search_us
            hits += speculation.cache_hits
            misses += speculation.cache_misses
            # A plan kind was cold for this batch when either the open-time
            # speculation or the close-time residual paid the search.
            for kind, was_cold in speculation.plan_kinds.items():
                plan_kinds[kind] = plan_kinds.get(kind, False) or was_cold
            if not speculation.cold:
                # Warm speculation is just a pair of lookups; charging it
                # serially keeps warm-path accounting identical to PR 2.
                serial_us += speculation.search_us
        run = run_transformer(
            workload,
            backend if backend is not None else device.backend,
            mode=self.mode,
            enforce_memory=self.enforce_memory,
            devices=self.devices,
        )
        compute_us = run.latency_ms * 1e3 * slowdown
        exec_us = compute_us + (serial_us if self.charge_selection else 0.0)
        batch_report = BatchReport(
            batch_id=batch_id,
            request_ids=[r.request_id for r in batch],
            tokens=workload.total_tokens,
            padded_tokens=workload.max_len * workload.batch_size,
            start_us=start_us,
            exec_us=exec_us,
            selection_us=selection_us,
            cache_hits=hits,
            cache_misses=misses,
            run=run,
            replica_id=replica_id,
            plan_kinds=plan_kinds,
            attempt=attempt,
            compute_us=compute_us,
            degraded_plans=sum(
                1 for plan in plans.values() if plan.degraded
            ),
        )
        share = selection_us / len(batch)
        request_reports = [
            RequestReport(
                request_id=r.request_id,
                batch_id=batch_id,
                tokens=r.tokens,
                arrival_us=r.arrival_us,
                start_us=start_us,
                queue_us=start_us - r.arrival_us,
                exec_us=exec_us,
                selection_us=share,
                ok=run.ok,
                error=run.error,
                retries=attempt,
            )
            for r in batch
        ]
        return batch_report, request_reports

    def run(self, *, policy: str = "drain") -> ServingReport:
        """Serve everything queued and return the aggregate report.

        ``policy="drain"`` is the PR-1 compatibility path: batch the whole
        queue FCFS up front and execute serially on one replica.
        ``policy="continuous"`` delegates batching and placement to the
        event-driven :class:`~repro.runtime.scheduler.ContinuousScheduler`
        (open batches admit arrivals until a budget or the batching window
        closes them; closed batches place across ``self.replicas`` replicas
        — cost-aware by predicted finish time, or least-loaded with
        ``placement="least-loaded"``).
        """
        if policy == "continuous":
            from .scheduler import ContinuousScheduler

            requests, self._queue = self._queue, []
            scheduler = ContinuousScheduler(
                self,
                replicas=self.replicas,
                batch_window_us=self.batch_window_us,
                overlap_selection=self.overlap_selection,
                placement=self.placement,
            )
            return scheduler.run(requests)
        if policy != "drain":
            raise ValueError(
                f"policy must be drain|continuous, got {policy!r}"
            )
        requests, self._queue = self._queue, []
        report = ServingReport(policy="drain")
        now = 0.0
        for batch_id, batch in enumerate(self.plan_batches(requests)):
            start = max(now, max(r.arrival_us for r in batch))
            batch_report, request_reports = self.execute_batch(
                batch, batch_id=batch_id, start_us=start
            )
            now = start + batch_report.exec_us
            report.batches.append(batch_report)
            report.requests.extend(request_reports)
        report.requests.sort(key=lambda r: r.request_id)
        # First batch start to last batch completion: idle time before any
        # work arrives is not held against throughput.
        first_start = report.batches[0].start_us if report.batches else 0.0
        report.makespan_us = now - first_start
        report.plan_cache_stats = self.plan_cache.stats()
        return report
