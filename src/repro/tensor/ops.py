"""Dense reference operators.

These numpy implementations are the *golden references* every sparse path is
tested against: PIT's permutation-invariance claim is exactly that its
rearranged execution equals these results.  They are also the numerical
engines of the model forward passes in :mod:`repro.models`.
"""

from __future__ import annotations

import numpy as np


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[m, n] += A[m, k] * B[k, n]."""
    return a @ b


def batch_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C[b, m, n] += A[b, m, k] * B[b, k, n]."""
    return np.einsum("bmk,bkn->bmn", a, b)


def reduce_sum(a: np.ndarray, axis: int = -1) -> np.ndarray:
    """C[p] += A[p, l] along ``axis``."""
    return a.sum(axis=axis)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in BERT/OPT)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def masked_softmax(x: np.ndarray, mask: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax over positions where ``mask`` is True; 0 elsewhere.

    Fully masked rows produce all-zero outputs (attention to nothing).
    """
    mask = np.asarray(mask, dtype=bool)
    row_has_any = mask.any(axis=axis, keepdims=True)
    raw_max = np.where(mask, x, -np.inf).max(axis=axis, keepdims=True)
    row_max = np.where(row_has_any, raw_max, 0.0)
    exp = np.where(mask, np.exp(np.where(mask, x, 0.0) - row_max), 0.0)
    denom = exp.sum(axis=axis, keepdims=True)
    return np.divide(exp, denom, out=np.zeros_like(exp), where=denom > 0)


def layernorm(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    """Row-wise layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def conv2d(x: np.ndarray, w: np.ndarray, *, stride: int = 1) -> np.ndarray:
    """C[n, f, y, x] += A[n, m, y*s + i, x*s + j] * W[f, m, i, j].

    A direct (slow) convolution used only as a reference for the PIT-axis
    analysis of the convolution expression (Table 1) and its tests.
    """
    n, m, h, wdt = x.shape
    f, m2, kh, kw = w.shape
    if m != m2:
        raise ValueError(f"channel mismatch: input {m} vs weight {m2}")
    oh = (h - kh) // stride + 1
    ow = (wdt - kw) // stride + 1
    out = np.zeros((n, f, oh, ow), dtype=np.result_type(x, w))
    for i in range(kh):
        for j in range(kw):
            patch = x[:, :, i : i + oh * stride : stride, j : j + ow * stride : stride]
            out += np.einsum("nmyx,fm->nfyx", patch, w[:, :, i, j])
    return out


def dropout_mask(shape, rate: float, seed: int) -> np.ndarray:
    """A seeded boolean keep-mask for dropout-style sparsification."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    rng = np.random.default_rng(seed)
    return rng.random(shape) >= rate
