"""A thin shaped/dtyped tensor wrapper over numpy.

The simulator computes real values with numpy while accounting simulated GPU
cost separately.  :class:`SimTensor` carries the metadata the cost and memory
models need (logical dtype — numpy float16 arithmetic is emulated in float32
for speed — layout, and an optional sparsity mask describing which values are
semantically non-zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..hw.spec import dtype_bytes
from .layout import Layout

_NUMPY_DTYPES = {
    "float64": np.float64,
    "float32": np.float32,
    # fp16 values are *stored* as fp32 in the simulator for numerical
    # convenience; the logical dtype still drives byte and FLOP accounting.
    "float16": np.float32,
    "bfloat16": np.float32,
    "int32": np.int32,
    "int8": np.int8,
}


@dataclass
class SimTensor:
    """A tensor in the simulation: real values + device-relevant metadata."""

    data: np.ndarray
    dtype: str = "float32"
    layout: Layout = Layout.ROW_MAJOR
    #: Optional boolean mask of semantically non-zero positions.  When absent,
    #: the data itself defines sparsity (data != 0).
    mask: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.dtype not in _NUMPY_DTYPES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")
        self.data = np.asarray(self.data, dtype=_NUMPY_DTYPES[self.dtype])
        if self.mask is not None:
            self.mask = np.asarray(self.mask, dtype=bool)
            if self.mask.shape != self.data.shape:
                raise ValueError(
                    f"mask shape {self.mask.shape} != data shape {self.data.shape}"
                )

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Device bytes at the *logical* dtype (not numpy's storage dtype)."""
        return self.size * dtype_bytes(self.dtype)

    def nonzero_mask(self) -> np.ndarray:
        """Boolean mask of non-zero positions (explicit mask wins)."""
        if self.mask is not None:
            return self.mask
        return self.data != 0

    def sparsity_ratio(self) -> float:
        """Fraction of zero elements, the paper's 'sparsity ratio'."""
        if self.size == 0:
            return 0.0
        return 1.0 - float(self.nonzero_mask().sum()) / self.size

    def masked_data(self) -> np.ndarray:
        """Values with masked-out positions zeroed (the semantic content)."""
        if self.mask is None:
            return self.data
        return np.where(self.mask, self.data, 0.0)

    def with_layout(self, layout: Layout) -> "SimTensor":
        """Same values, different declared storage order (zero-copy view)."""
        return SimTensor(self.data, dtype=self.dtype, layout=layout, mask=self.mask)


def randn(shape, *, dtype: str = "float32", seed: int = 0, scale: float = 1.0) -> SimTensor:
    """A seeded standard-normal tensor."""
    rng = np.random.default_rng(seed)
    return SimTensor(rng.standard_normal(shape) * scale, dtype=dtype)


def from_mask(mask: np.ndarray, *, dtype: str = "float32", seed: int = 0) -> SimTensor:
    """Random values placed at ``mask``'s True positions, zero elsewhere."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(mask.shape) * mask
    return SimTensor(data, dtype=dtype, mask=np.asarray(mask, dtype=bool))
