"""Mini tensor framework: values, layouts, sparse formats, reference ops."""

from .layout import Layout, needs_transpose
from .sparse import (
    BCSRMatrix,
    COOMatrix,
    CSRMatrix,
    bcsr_spmm,
    csr_spmm,
    dense_to_bcsr,
    dense_to_coo,
    dense_to_csr,
)
from .tensor import SimTensor, from_mask, randn

__all__ = [
    "BCSRMatrix",
    "COOMatrix",
    "CSRMatrix",
    "Layout",
    "SimTensor",
    "bcsr_spmm",
    "csr_spmm",
    "dense_to_bcsr",
    "dense_to_coo",
    "dense_to_csr",
    "from_mask",
    "needs_transpose",
    "randn",
]
