"""Memory layouts for 2-D tensors.

PIT's micro-tile derivation depends on layout (Section 3.2): micro-tiles must
be *non-contiguous on the PIT-axis* so that each micro-tile is a full memory
transaction on the other axes.  When the sparse tensor happens to be
contiguous on the PIT-axis, PIT changes the layout "in a piggyback manner at
the output of the previous operator", which is free; :func:`needs_transpose`
captures that decision.
"""

from __future__ import annotations

from enum import Enum


class Layout(Enum):
    """Storage order of a 2-D tensor."""

    ROW_MAJOR = "row_major"
    COL_MAJOR = "col_major"

    @property
    def contiguous_axis(self) -> int:
        """The axis along which consecutive elements are adjacent in memory.

        Row-major: axis 1 (columns within a row are adjacent).
        Col-major: axis 0.
        """
        return 1 if self is Layout.ROW_MAJOR else 0

    def transposed(self) -> "Layout":
        if self is Layout.ROW_MAJOR:
            return Layout.COL_MAJOR
        return Layout.ROW_MAJOR


def needs_transpose(layout: Layout, pit_axis: int) -> bool:
    """Whether a tensor must flip layout before SRead on ``pit_axis``.

    SRead gathers whole micro-tiles: rows of extent 1 on the PIT-axis and full
    tile extent on the other axis.  Those runs are contiguous exactly when the
    PIT-axis is *not* the contiguous axis.  If it is, the tensor's producer
    re-emits it in the flipped layout (negligible piggyback cost).
    """
    if pit_axis not in (0, 1):
        raise ValueError(f"pit_axis must be 0 or 1 for 2-D layouts, got {pit_axis}")
    return layout.contiguous_axis == pit_axis
