"""Sparse storage formats (COO / CSR / BCSR) with conversion-cost accounting.

Classic sparse libraries pay a *format conversion* before they can compute:
cuSPARSE wants CSR, Sputnik wants CSR with row swizzles, Triton's block-sparse
kernels want a block index (a BCSR-like layout).  The paper's Figure 3b shows
this conversion dominating at runtime, and Figure 18 compares PIT's index
construction against these converters.

Each ``from_dense`` constructor here returns both the real converted structure
(numpy arrays, usable for correct computation) and a simulated conversion
latency derived from the passes a GPU converter makes over the data.  The
pass structure is documented per format; the inefficiency constants are
calibrated so the PIT-vs-converter ratios land in the paper's reported ranges
(3.6-4.7x vs cuSPARSE at 1x1, 11.2-26.5x vs Triton at 16x16/32x32).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hw.memory import stream_time_us, tensor_bytes
from ..hw.spec import GPUSpec, dtype_bytes

#: cuSPARSE's dense->CSR runs an nnz-count pass, a prefix scan, and a fill
#: pass, with poor bandwidth utilization on the scattered index writes and a
#: device synchronization between stages.  Effective slowdown vs one clean
#: streaming pass over the dense input:
CUSPARSE_CONVERT_PASSES = 4.2

#: Triton's block-sparse layout builder reduces the mask per block on the
#: host-visible path, then builds the lookup table; it makes several strided
#: passes and materializes intermediate block maps.
TRITON_CONVERT_PASSES = 14.0

#: Sputnik reuses CSR but adds a row-sorting pass for load balancing.
SPUTNIK_CONVERT_PASSES = 5.0


@dataclass
class COOMatrix:
    """Coordinate-format sparse matrix."""

    shape: tuple
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    convert_us: float

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.values.dtype)
        out[self.rows, self.cols] = self.values
        return out


@dataclass
class CSRMatrix:
    """Compressed-sparse-row matrix, as consumed by cuSPARSE-style SpMM."""

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray
    convert_us: float

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.values.dtype)
        for row in range(self.shape[0]):
            start, end = self.indptr[row], self.indptr[row + 1]
            out[row, self.indices[start:end]] = self.values[start:end]
        return out

    def index_bytes(self) -> int:
        """Device bytes of the index structures (not the values)."""
        return int(self.indptr.size * 4 + self.indices.size * 4)


@dataclass
class BCSRMatrix:
    """Block-compressed sparse matrix (Triton / OpenAI block-sparse layout).

    Blocks are ``block_shape`` dense tiles; a block is stored whenever it
    contains *any* non-zero, which is where block-granular libraries pay the
    coverage waste PIT avoids (a 1x32 non-zero strip forces a full 32x32
    block).
    """

    shape: tuple
    block_shape: tuple
    #: (num_blocks, 2) array of (block_row, block_col) coordinates.
    block_coords: np.ndarray
    #: (num_blocks, *block_shape) dense block values.
    blocks: np.ndarray
    convert_us: float

    @property
    def num_blocks(self) -> int:
        return int(self.block_coords.shape[0])

    @property
    def stored_elems(self) -> int:
        return self.num_blocks * self.block_shape[0] * self.block_shape[1]

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.blocks.dtype)
        bh, bw = self.block_shape
        rows, cols = self.shape
        for (br, bc), block in zip(self.block_coords, self.blocks):
            r0, c0 = br * bh, bc * bw
            r1, c1 = min(r0 + bh, rows), min(c0 + bw, cols)
            out[r0:r1, c0:c1] = block[: r1 - r0, : c1 - c0]
        return out

    def coverage_waste(self, nnz: int) -> float:
        """Fraction of stored elements that are zeros (wasted compute)."""
        if self.stored_elems == 0:
            return 0.0
        return 1.0 - nnz / self.stored_elems


def _conversion_time_us(
    dense_shape: tuple,
    dtype: str,
    spec: GPUSpec,
    passes: float,
    index_bytes: int,
) -> float:
    """Converter latency: ``passes`` streams over the dense input plus index
    writes plus a couple of kernel launches/syncs."""
    dense_bytes = tensor_bytes(dense_shape, dtype)
    stream = stream_time_us(int(dense_bytes * passes), spec)
    index_write = stream_time_us(index_bytes, spec)
    return stream + index_write + 3 * spec.kernel_launch_us


def dense_to_coo(
    dense: np.ndarray, dtype: str, spec: GPUSpec
) -> COOMatrix:
    """Convert to COO with cuSPARSE-like conversion cost."""
    rows, cols = np.nonzero(dense)
    values = dense[rows, cols]
    convert = _conversion_time_us(
        dense.shape, dtype, spec, CUSPARSE_CONVERT_PASSES, int(rows.size * 12)
    )
    return COOMatrix(dense.shape, rows, cols, values, convert)


def dense_to_csr(
    dense: np.ndarray,
    dtype: str,
    spec: GPUSpec,
    *,
    passes: float = CUSPARSE_CONVERT_PASSES,
) -> CSRMatrix:
    """Convert to CSR with a cuSPARSE-style multi-pass conversion cost."""
    if dense.ndim != 2:
        raise ValueError("CSR conversion expects a 2-D matrix")
    nnz_mask = dense != 0
    counts = nnz_mask.sum(axis=1)
    indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    rows, cols = np.nonzero(dense)
    values = dense[rows, cols]
    index_bytes = int(indptr.size * 4 + cols.size * 4 + values.size * dtype_bytes(dtype))
    convert = _conversion_time_us(dense.shape, dtype, spec, passes, index_bytes)
    return CSRMatrix(dense.shape, indptr, cols.astype(np.int64), values, convert)


def dense_to_bcsr(
    dense: np.ndarray,
    block_shape: tuple,
    dtype: str,
    spec: GPUSpec,
    *,
    passes: float = TRITON_CONVERT_PASSES,
) -> BCSRMatrix:
    """Convert to BCSR (block index) with a Triton-style conversion cost."""
    if dense.ndim != 2:
        raise ValueError("BCSR conversion expects a 2-D matrix")
    bh, bw = block_shape
    rows, cols = dense.shape
    grid_r, grid_c = math.ceil(rows / bh), math.ceil(cols / bw)
    padded = np.zeros((grid_r * bh, grid_c * bw), dtype=dense.dtype)
    padded[:rows, :cols] = dense
    blocked = padded.reshape(grid_r, bh, grid_c, bw).transpose(0, 2, 1, 3)
    occupied = (blocked != 0).any(axis=(2, 3))
    block_rows, block_cols = np.nonzero(occupied)
    blocks = blocked[block_rows, block_cols]
    coords = np.stack([block_rows, block_cols], axis=1)
    index_bytes = int(coords.size * 4 + grid_r * grid_c)  # coords + lut bitmap
    convert = _conversion_time_us(dense.shape, dtype, spec, passes, index_bytes)
    return BCSRMatrix(dense.shape, (bh, bw), coords, blocks, convert)


def csr_spmm(csr: CSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Reference CSR x dense SpMM (row-wise gather), used by baselines."""
    if rhs.ndim != 2 or rhs.shape[0] != csr.shape[1]:
        raise ValueError(
            f"rhs shape {rhs.shape} incompatible with CSR shape {csr.shape}"
        )
    out = np.zeros((csr.shape[0], rhs.shape[1]), dtype=np.result_type(csr.values, rhs))
    for row in range(csr.shape[0]):
        start, end = csr.indptr[row], csr.indptr[row + 1]
        if start == end:
            continue
        cols = csr.indices[start:end]
        vals = csr.values[start:end]
        out[row] = vals @ rhs[cols]
    return out


def bcsr_spmm(bcsr: BCSRMatrix, rhs: np.ndarray) -> np.ndarray:
    """Reference BCSR x dense SpMM (block-wise), used by Triton-style kernels."""
    bh, bw = bcsr.block_shape
    out = np.zeros((bcsr.shape[0], rhs.shape[1]), dtype=np.result_type(bcsr.blocks, rhs))
    padded_rhs = rhs
    if rhs.shape[0] % bw != 0:
        pad = bw - rhs.shape[0] % bw
        padded_rhs = np.vstack([rhs, np.zeros((pad, rhs.shape[1]), dtype=rhs.dtype)])
    for (br, bc), block in zip(bcsr.block_coords, bcsr.blocks):
        rhs_slab = padded_rhs[bc * bw : (bc + 1) * bw]
        rows = slice(br * bh, min((br + 1) * bh, bcsr.shape[0]))
        out[rows] += (block @ rhs_slab)[: out[rows].shape[0]]
    return out
