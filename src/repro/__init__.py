"""repro: a full Python reproduction of PIT (SOSP 2023).

PIT optimizes dynamic sparse deep-learning models by merging sparsely located
micro-tiles into GPU-efficient dense computation tiles via Permutation
Invariant Transformation.  See README.md for a tour and DESIGN.md for the
system inventory.

Package map:

* :mod:`repro.core` — the paper's contribution: PIT-axis inference,
  micro-tiles, CoverAlgo, Algorithm 1, the online detector, SRead/SWrite,
  generated kernels and the JIT compiler.
* :mod:`repro.hw` — analytical GPU model (A100/V100): tile costs, memory
  transactions, footprint tracking, Tensor Core constraints.
* :mod:`repro.tensor` — mini tensor framework: layouts, CSR/BCSR/COO with
  conversion costs, dense reference ops.
* :mod:`repro.sparsity` — dynamic-sparsity workload generators.
* :mod:`repro.baselines` — cuSPARSE/Sputnik/Triton/SparTA and the
  end-to-end systems (PyTorch, Tutel, DeepSpeed, MegaBlocks, ...).
* :mod:`repro.models` — the Table 2 model zoo and functional references.
* :mod:`repro.runtime` — the engine, sessions, training, reporting.
"""

__version__ = "1.0.0"

from . import baselines, core, hw, models, runtime, sparsity, tensor  # noqa: E402,F401

__all__ = [
    "baselines",
    "core",
    "hw",
    "models",
    "runtime",
    "sparsity",
    "tensor",
    "__version__",
]
