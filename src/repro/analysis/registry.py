"""The rule registry.

A rule is a callable ``rule(corpus) -> list[Finding]`` registered under a
stable kebab-case id.  Registration happens at import time via the
:func:`rule` decorator; the engine runs every registered rule (or a
requested subset) over one parsed :class:`~repro.analysis.engine.Corpus`,
so corpus-level rules (lock-order graphs, cross-function reachability) and
per-file rules share one interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

_RULES: dict = {}


@dataclass(frozen=True)
class RuleInfo:
    """A registered rule: id, one-line description, and the checker."""

    rule_id: str
    description: str
    check: Callable

    def run(self, corpus) -> list:
        return list(self.check(corpus))


def rule(rule_id: str, description: str) -> Callable:
    """Register ``check(corpus) -> list[Finding]`` under ``rule_id``."""

    def decorator(check: Callable) -> Callable:
        if rule_id in _RULES:
            raise ValueError(f"rule id {rule_id!r} is already registered")
        _RULES[rule_id] = RuleInfo(rule_id, description, check)
        return check

    return decorator


def all_rules() -> list:
    """Every registered rule, in registration order."""
    return list(_RULES.values())


def get_rule(rule_id: str) -> RuleInfo:
    try:
        return _RULES[rule_id]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


def known_rule_ids() -> set:
    return set(_RULES)
