"""Static lock analysis: acquisition sites, held-lock walking, order graph.

Locks are recognized in two shapes, matching the repo's two idioms:

* **registry locks** — module-level names ending in ``_LOCK``
  (``_SHARED_PLAN_CACHES_LOCK``, ``_INSTANCE_CACHE_LOCK``).  Their *order
  class* is the normalized name (``shared_plan_caches``,
  ``instance_cache``), the same string the runtime debug-lock factory
  tags them with.
* **shard locks** — ``<shard>.lock`` attributes, where ``<shard>`` is a
  variable the analyzer can see holding a :class:`_PlanCacheShard`
  (assigned from ``._shard_for(...)``, iterated out of ``._shard_list``,
  or ``self`` inside a ``*Shard`` class).  All shard locks share the one
  order class ``shard``: any nesting of two of them is a deadlock risk,
  because two threads can nest them in opposite shard order.

The **lock-order graph** has one node per order class and an edge
``A -> B`` wherever code acquires ``B`` while holding ``A`` — lexically,
or through a call whose (transitively resolved, same-module) callee
acquires ``B``.  The serving stack's invariant is that this graph is
*acyclic*; the runtime verifier
(:mod:`repro.analysis.runtime_checks`) asserts that the dynamically
observed edges are a subset of the static ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from .astutil import FunctionInfo, iter_functions

#: Attributes that make up a shard's lock-guarded mutable state.
SHARD_STATE_ATTRS = frozenset(
    {"entries", "inflight", "hits", "misses", "evictions"}
)


def normalize_lock_name(name: str) -> str:
    """``_SHARED_PLAN_CACHES_LOCK`` -> ``shared_plan_caches``.

    The same class string :func:`repro.analysis.runtime_checks.make_lock`
    callers pass explicitly, so static and dynamic graphs share a node
    vocabulary.
    """
    stripped = name.strip("_")
    if stripped.upper().endswith("LOCK"):
        stripped = stripped[: -len("LOCK")].rstrip("_")
    return stripped.lower()


def infer_shard_vars(info: FunctionInfo) -> set:
    """Names bound to ``_PlanCacheShard``-like objects in one function."""
    shard_vars: set = set()
    if info.class_name and info.class_name.endswith("Shard"):
        shard_vars.add("self")

    def from_shard_expr(value) -> bool:
        # x = <expr>._shard_for(...)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "_shard_for"
        ):
            return True
        # x = <expr>._shard_list[i]
        if (
            isinstance(value, ast.Subscript)
            and isinstance(value.value, ast.Attribute)
            and value.value.attr == "_shard_list"
        ):
            return True
        return False

    def iter_is_shard_list(value) -> bool:
        return (
            isinstance(value, ast.Attribute) and value.attr == "_shard_list"
        )

    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and from_shard_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    shard_vars.add(target.id)
        elif isinstance(node, ast.For) and iter_is_shard_list(node.iter):
            if isinstance(node.target, ast.Name):
                shard_vars.add(node.target.id)
        elif isinstance(node, ast.comprehension) and iter_is_shard_list(
            node.iter
        ):
            if isinstance(node.target, ast.Name):
                shard_vars.add(node.target.id)
    return shard_vars


@dataclass(frozen=True)
class LockRef:
    """One recognized lock expression.

    ``order_class`` is the graph node; ``token`` identifies the concrete
    guard for discipline checks — ``("name", "_X_LOCK")`` for registry
    locks, ``("attr", "<base var>")`` for attribute locks, so holding
    ``a.lock`` is not mistaken for holding ``b.lock``.
    """

    order_class: str
    token: tuple


def classify_lock(expr, shard_vars) -> Optional[LockRef]:
    """Recognize ``with <expr>`` as a lock acquisition, or return None."""
    if isinstance(expr, ast.Name) and expr.id.upper().endswith("_LOCK"):
        return LockRef(normalize_lock_name(expr.id), ("name", expr.id))
    if isinstance(expr, ast.Attribute) and expr.attr == "lock":
        if isinstance(expr.value, ast.Name):
            base = expr.value.id
            order = "shard" if base in shard_vars else f"{base}.lock"
            return LockRef(order, ("attr", base))
        return LockRef("anonymous.lock", ("attr", "<expr>"))
    return None


def walk_held(info: FunctionInfo):
    """Yield ``(node, held)`` for every node in one function body.

    ``held`` is the tuple of :class:`LockRef` acquired by enclosing
    ``with`` statements at that point.  Nested function/class definitions
    are not entered — they run in their own (lock-free, analyzed
    separately) context, not at the definition site.
    """
    shard_vars = infer_shard_vars(info)
    out: list = []

    def visit(node, held):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Lambda):
            return
        out.append((node, held))
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in node.items:
                visit(item.context_expr, held)
                ref = classify_lock(item.context_expr, shard_vars)
                if ref is not None:
                    acquired.append(ref)
                    out.append((("acquire", ref, item.context_expr), held))
                if item.optional_vars is not None:
                    visit(item.optional_vars, held)
            inner = held + tuple(acquired)
            for child in node.body:
                visit(child, inner)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for child in info.node.body:
        visit(child, ())
    return out


def guarded_globals(tree: ast.Module) -> dict:
    """Module globals with a companion ``<name>_LOCK`` sibling.

    Returns ``{global_name: lock_name}``.  The convention is the contract:
    defining ``_X`` next to ``_X_LOCK`` declares that every access to
    ``_X`` must hold ``_X_LOCK``.
    """
    names = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return {
        name: f"{name}_LOCK"
        for name in names
        if not name.upper().endswith("_LOCK") and f"{name}_LOCK" in names
    }


# ----------------------------------------------------------------------
# The lock-order graph
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LockEdge:
    """``held -> acquired`` at one site."""

    held: str
    acquired: str
    path: str
    line: int


def _callee_keys(call: ast.Call, enclosing_class: Optional[str]) -> list:
    """Resolution keys for a call site (same-module, name-based).

    Attribute calls resolve only on ``self``/``cls`` receivers: resolving
    any ``x.get(...)`` to every method named ``get`` in the module would
    conflate dict lookups with :meth:`PlanCache.get` and manufacture
    phantom lock edges.  Calls on other receivers are treated as lock-free
    — the runtime verifier covers the gap.
    """
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "cls" and enclosing_class:
            return [("class", enclosing_class)]
        return [("func", func.id), ("class", func.id)]
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "self":
            return [("method", func.attr)]
        if func.value.id == "cls" and enclosing_class:
            return [("method", func.attr)]
    return []


def _module_lock_facts(module) -> tuple:
    """Per-function direct acquisitions and call sites for one module."""
    functions = iter_functions(module.tree)
    facts = {}
    tables: dict = {"func": {}, "method": {}, "class": {}}
    for info in functions:
        if info.class_name is None:
            tables["func"].setdefault(info.name, []).append(info)
        else:
            tables["method"].setdefault(info.name, []).append(info)
            if info.name == "__init__":
                tables["class"].setdefault(info.class_name, []).append(info)
    for info in functions:
        direct: list = []  # (order_class, line)
        calls: list = []  # (held order classes, callee keys, line)
        for node, held in walk_held(info):
            if isinstance(node, tuple) and node[0] == "acquire":
                _, ref, expr = node
                direct.append((ref.order_class, expr.lineno, held))
            elif isinstance(node, ast.Call) and held:
                calls.append(
                    (
                        tuple(ref.order_class for ref in held),
                        _callee_keys(node, info.class_name),
                        node.lineno,
                    )
                )
        facts[id(info.node)] = (info, direct, calls)
    return facts, tables


def build_lock_graph(corpus) -> tuple:
    """The corpus-wide lock-order graph: ``(nodes, edges)``.

    Call expansion is same-module and name-based: a call made while
    holding lock ``A`` contributes an edge to every lock class the callee
    (or anything it transitively calls, within the module) acquires.
    Cross-module calls are treated as lock-free — the repo's lock domains
    are module-local by design, and the runtime verifier would surface a
    violation of that assumption.
    """
    nodes: set = set()
    edges: set = set()
    for module in corpus:
        facts, tables = _module_lock_facts(module)

        def resolve(keys) -> list:
            found = []
            for kind, name in keys:
                for info in tables[kind].get(name, []):
                    found.append(info)
            return found

        # Fixpoint: lock classes each function acquires, including through
        # same-module callees.
        acquired = {
            fid: {cls for cls, _, _ in direct}
            for fid, (_, direct, _) in facts.items()
        }
        changed = True
        while changed:
            changed = False
            for fid, (_, _, calls) in facts.items():
                for _, keys, _ in calls:
                    for callee in resolve(keys):
                        extra = acquired.get(id(callee.node), set())
                        if not extra <= acquired[fid]:
                            acquired[fid] |= extra
                            changed = True

        for fid, (info, direct, calls) in facts.items():
            for cls, line, held in direct:
                nodes.add(cls)
                for ref in held:
                    edges.add(LockEdge(ref.order_class, cls, module.path, line))
            for held_classes, keys, line in calls:
                callee_locks: set = set()
                for callee in resolve(keys):
                    callee_locks |= acquired.get(id(callee.node), set())
                for cls in callee_locks:
                    nodes.add(cls)
                    for held_cls in held_classes:
                        edges.add(LockEdge(held_cls, cls, module.path, line))
    return nodes, edges


def find_cycles(edges) -> list:
    """Cycles in the order graph, as node paths (``[a, b, a]``)."""
    graph: dict = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
    cycles: list = []
    seen_cycles: set = set()

    def dfs(node, stack, on_stack):
        for succ in sorted(graph.get(node, ())):
            if succ in on_stack:
                cycle = stack[stack.index(succ):] + [succ]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
                continue
            dfs(succ, stack + [succ], on_stack | {succ})

    for start in sorted(graph):
        dfs(start, [start], {start})
    return cycles


def static_lock_order(corpus) -> dict:
    """Graph summary for reports and the runtime-verifier comparison."""
    nodes, edges = build_lock_graph(corpus)
    return {
        "nodes": sorted(nodes),
        "edges": sorted({(e.held, e.acquired) for e in edges}),
        "cycles": find_cycles(edges),
    }
