"""Dynamic lock-order verification: the runtime half of ``lock-discipline``.

The static analyzer derives the lock-order graph the code *can* produce
(:func:`repro.analysis.lockgraph.build_lock_graph`); this module observes
the graph the code *does* produce.  Under ``REPRO_DEBUG_LOCKS=1``,
:func:`make_lock` hands out :class:`DebugLock` instances that

* keep a per-thread stack of currently held locks,
* record an order edge ``held -> acquired`` for every nested acquisition
  (reentrant re-acquisition of the *same* lock object records nothing),
* raise :class:`LockOrderError` *before* acquiring when the new edge
  would close a cycle in the observed graph — a deadlock caught at test
  time instead of a hang in production.

Tests then assert the observed edges are a subset of the statically
derived ones (:func:`verify_against_static`): the analyzer's
over-approximation must cover everything reality does.

Without the environment variable, :func:`make_lock` returns plain
``threading`` primitives — zero overhead on the serving hot path.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

ENV_VAR = "REPRO_DEBUG_LOCKS"


def debug_locks_enabled() -> bool:
    return os.environ.get(ENV_VAR, "") == "1"


class LockOrderError(RuntimeError):
    """A lock acquisition that would close an order cycle."""


_STATE_LOCK = threading.Lock()
#: (held_class, acquired_class) -> times observed.
_OBSERVED: dict = {}
_HELD = threading.local()


def reset_observed() -> None:
    with _STATE_LOCK:
        _OBSERVED.clear()


def observed_edges() -> set:
    """Every ``(held, acquired)`` order edge recorded so far."""
    with _STATE_LOCK:
        return set(_OBSERVED)


def _would_cycle(held_class: str, acquired_class: str) -> list:
    """The cycle the new edge would close, or [] (under _STATE_LOCK)."""
    if held_class == acquired_class:
        return [held_class, acquired_class]
    graph: dict = {}
    for held, acquired in _OBSERVED:
        graph.setdefault(held, set()).add(acquired)
    # A cycle appears iff held_class is already reachable from
    # acquired_class.
    stack, seen, parent = [acquired_class], set(), {}
    while stack:
        node = stack.pop()
        if node == held_class:
            path = [node]
            while path[-1] != acquired_class:
                path.append(parent[path[-1]])
            return [held_class, acquired_class] + path[-2::-1]
        if node in seen:
            continue
        seen.add(node)
        for succ in graph.get(node, ()):
            parent.setdefault(succ, node)
            stack.append(succ)
    return []


class DebugLock:
    """A lock that audits acquisition order (see module docstring)."""

    def __init__(self, order_class: str, *, reentrant: bool = True):
        self.order_class = order_class
        self._lock = threading.RLock() if reentrant else threading.Lock()

    def _stack(self) -> list:
        stack = getattr(_HELD, "stack", None)
        if stack is None:
            stack = _HELD.stack = []
        return stack

    def _check_and_record(self) -> None:
        stack = self._stack()
        new_edges = []
        for held in stack:
            if held is self:
                # Reentrant re-acquisition: no ordering implied.
                return
        for held in stack:
            # A distinct lock of the *same* class still makes an edge — a
            # self-loop in the order graph, i.e. a deadlock candidate.
            new_edges.append((held.order_class, self.order_class))
        with _STATE_LOCK:
            for edge in new_edges:
                cycle = _would_cycle(*edge)
                if cycle:
                    raise LockOrderError(
                        f"acquiring lock class `{self.order_class}` while "
                        f"holding `{edge[0]}` closes the order cycle "
                        + " -> ".join(cycle)
                    )
            for edge in new_edges:
                _OBSERVED[edge] = _OBSERVED.get(edge, 0) + 1

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # Order is audited before blocking: a cycle must raise, not hang.
        self._check_and_record()
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._stack().append(self)
        return acquired

    def release(self) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break
        self._lock.release()

    def __enter__(self) -> "DebugLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


def make_lock(order_class: str, *, reentrant: bool = True):
    """A lock tagged with its order class.

    Plain ``threading`` primitive unless ``REPRO_DEBUG_LOCKS=1`` — callers
    pay nothing for the audit capability in production.  ``order_class``
    must match the static analyzer's vocabulary
    (:func:`repro.analysis.lockgraph.normalize_lock_name` for registry
    locks, ``"shard"`` for plan-cache shards).
    """
    if debug_locks_enabled():
        return DebugLock(order_class, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def verify_against_static(static_edges) -> list:
    """Observed order edges the static graph does not predict.

    Empty means the two halves of the lock-discipline story agree: the
    statically derived graph covers every acquisition order reality
    produced.  ``static_edges`` accepts ``(held, acquired)`` tuples or
    :class:`~repro.analysis.lockgraph.LockEdge` objects.
    """
    allowed = set()
    for edge in static_edges:
        if hasattr(edge, "held"):
            allowed.add((edge.held, edge.acquired))
        else:
            allowed.add((edge[0], edge[1]))
    return sorted(set(observed_edges()) - allowed)


@contextmanager
def debug_locks_installed():
    """Force debug locks on for a block (tests).

    Sets the environment variable (so shard locks created inside the block
    are :class:`DebugLock`), swaps the core registry locks for audited
    ones, resets the observed-edge record, and restores everything after.
    """
    from ..core import selection, tiledb

    previous_env = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = "1"
    previous_plan_lock = selection._SHARED_PLAN_CACHES_LOCK
    previous_tile_lock = tiledb._INSTANCE_CACHE_LOCK
    selection._SHARED_PLAN_CACHES_LOCK = DebugLock("shared_plan_caches")
    tiledb._INSTANCE_CACHE_LOCK = DebugLock("instance_cache")
    reset_observed()
    try:
        yield
    finally:
        selection._SHARED_PLAN_CACHES_LOCK = previous_plan_lock
        tiledb._INSTANCE_CACHE_LOCK = previous_tile_lock
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env
