"""Findings, suppression pragmas and the analysis report.

A :class:`Finding` is one rule violation anchored to a file and line.  A
:class:`Suppression` is one inline pragma of the form::

    # pit: allow[rule-id] — one-line justification

which silences findings of ``rule-id`` on the pragma's own line or, for a
standalone comment line, on the next code line below it.  The justification
is mandatory: a pragma without one is itself a finding
(:data:`~repro.analysis.rules` ``pragma-justification``), so every
suppression in the tree documents *why* the invariant may be relaxed there.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Optional

#: Pragma syntax.  The separator before the justification accepts an em
#: dash, en dash, hyphen(s) or a colon, so plain-ASCII environments can
#: write the pragma as ``pit: allow[rule-id] - reason`` after the hash.
PRAGMA_RE = re.compile(
    r"#\s*pit:\s*allow\[(?P<rule>[A-Za-z0-9_*-]+)\]"
    r"(?:\s*(?:[—–:]|-+)\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    path: str
    line: int
    message: str
    #: Short suggestion for how to fix (or legitimately suppress) it.
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class Suppression:
    """One parsed ``# pit: allow[...]`` pragma."""

    rule: str
    path: str
    #: Line the pragma comment sits on.
    line: int
    #: Line(s) the pragma silences: its own line, plus — when the pragma is
    #: a standalone comment — the next code line below it.
    covers: tuple
    reason: Optional[str] = None
    #: Set by the engine when the pragma actually silenced a finding.
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        if finding.path != self.path or finding.line not in self.covers:
            return False
        return self.rule == "*" or self.rule == finding.rule


def extract_suppressions(source: str, path: str) -> list:
    """Parse every suppression pragma in ``source``.

    Comments are found with :mod:`tokenize` (never inside string
    literals).  A pragma that shares its line with code covers that line; a
    pragma on a comment-only line covers the next non-blank, non-comment
    line, so it can sit above a long statement.
    """
    suppressions = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        covers = [line]
        stripped = lines[line - 1].strip() if line <= len(lines) else ""
        if stripped.startswith("#"):
            # Standalone comment: cover the next code line below.
            for next_line in range(line + 1, len(lines) + 1):
                text = lines[next_line - 1].strip()
                if text and not text.startswith("#"):
                    covers.append(next_line)
                    break
        suppressions.append(
            Suppression(
                rule=match.group("rule"),
                path=path,
                line=line,
                covers=tuple(covers),
                reason=match.group("reason"),
            )
        )
    return suppressions


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list = field(default_factory=list)
    #: Findings a pragma silenced (kept for the JSON report's audit trail).
    suppressed: list = field(default_factory=list)
    files: int = 0
    rules: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "clean": self.clean,
            "files": self.files,
            "rules": list(self.rules),
            "findings": [f.to_json() for f in self.findings],
            "suppressed": [f.to_json() for f in self.suppressed],
        }
