"""Text and JSON renderings of an analysis report."""

from __future__ import annotations

import json

from .findings import Report


def render_text(report: Report, *, verbose: bool = False) -> str:
    """Human-readable findings, one `path:line: [rule] message` per line."""
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: [{finding.rule}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    if verbose and report.suppressed:
        lines.append("")
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()}: [{finding.rule}] suppressed: "
                f"{finding.message}"
            )
    summary = (
        f"pitlint: {len(report.findings)} finding"
        f"{'' if len(report.findings) == 1 else 's'} "
        f"({len(report.suppressed)} suppressed) in {report.files} files"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Machine-readable report (the CI artifact format)."""
    return json.dumps(report.to_json(), indent=2, sort_keys=False)
