"""Small AST helpers shared by the rules.

Nothing here is repo-specific: import-alias resolution (so ``np.random``
and ``numpy.random`` are one name), dotted call-chain rendering, and a
function iterator that attributes methods to their class.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional


class ImportMap:
    """Alias -> canonical dotted module/name map for one module.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from time import
    perf_counter as pc`` maps ``pc`` to ``time.perf_counter``.  Resolution
    rewrites the head of a dotted chain, so ``np.random.default_rng``
    canonicalizes to ``numpy.random.default_rng``.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        if not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call, imports: Optional[ImportMap] = None) -> Optional[str]:
    """Canonical dotted name of a call's target, when it is a plain chain."""
    name = dotted_name(node.func)
    if name is not None and imports is not None:
        return imports.resolve(name)
    return name


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    name: str
    #: Enclosing class name, or None for module-level functions.
    class_name: Optional[str]

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


def iter_functions(tree: ast.Module) -> list:
    """Every function/method in a module, with its enclosing class.

    Nested functions are attributed to their outermost enclosing def's
    class; that is enough for name-based call resolution.
    """
    functions: list = []

    def visit(node, class_name):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append(FunctionInfo(child, child.name, class_name))
                visit(child, class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)
            else:
                visit(child, class_name)

    visit(tree, None)
    return functions


CONSTRUCTOR_NAMES = ("__init__", "__post_init__", "__new__", "__setstate__")
