"""The repo-specific rule set.

Every rule answers one question about an invariant the concurrency and
reproducibility story rests on (see ``docs/static-analysis.md`` for the
catalog with examples):

* ``lock-discipline`` — shard state and ``*_LOCK``-guarded registries are
  only touched under their lock, and the lock-order graph is acyclic.
* ``async-hygiene`` — no blocking calls inside ``async def`` bodies; CPU
  work goes through ``asyncio.to_thread``.
* ``replay-determinism`` — code reachable from the scheduling decision
  core never reads wall-clock time, unseeded RNG, or set iteration order.
* ``seeded-rng`` — every ``np.random.default_rng`` takes an explicit seed
  and nothing uses numpy's hidden global RNG state.
* ``frozen-spec-purity`` — no attribute mutation on ``PlanSpec`` /
  ``KernelChoice`` / ``ResolvedPlan`` instances outside construction.
* ``bounded-retry`` — retry loops carry a static attempt bound, and
  fault-injection randomness always takes an explicit seed.
* ``transport-hygiene`` — only plan-codec-serializable payloads cross
  the worker boundary (no lambdas, locks, backends, engines in channel
  sends), and heartbeat intervals flow from config, never literals.
* ``pragma-justification`` — every suppression pragma carries a reason
  and silences something real.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from .astutil import (
    CONSTRUCTOR_NAMES,
    ImportMap,
    call_name,
    dotted_name,
    iter_functions,
)
from .findings import Finding
from .lockgraph import (
    SHARD_STATE_ATTRS,
    build_lock_graph,
    find_cycles,
    guarded_globals,
    infer_shard_vars,
    walk_held,
)
from .registry import known_rule_ids, rule


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
@rule(
    "lock-discipline",
    "Shard state and *_LOCK-guarded globals accessed only under their "
    "lock; lock-order graph acyclic",
)
def check_lock_discipline(corpus):
    findings: set = set()
    for module in corpus:
        global_guards = guarded_globals(module.tree)
        for info in iter_functions(module.tree):
            if info.name in CONSTRUCTOR_NAMES:
                continue
            shard_vars = infer_shard_vars(info)
            for node, held in walk_held(info):
                if isinstance(node, tuple):
                    continue
                tokens = {ref.token for ref in held}
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in shard_vars
                    and node.attr in SHARD_STATE_ATTRS
                    and ("attr", node.value.id) not in tokens
                ):
                    base = node.value.id
                    findings.add(
                        Finding(
                            rule="lock-discipline",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"shard state `{base}.{node.attr}` accessed "
                                f"outside `with {base}.lock`"
                            ),
                            hint=(
                                "wrap the access in `with "
                                f"{base}.lock:` (take each shard's lock "
                                "sequentially when aggregating, never "
                                "nested)"
                            ),
                        )
                    )
                elif (
                    isinstance(node, ast.Name)
                    and node.id in global_guards
                    and ("name", global_guards[node.id]) not in tokens
                ):
                    findings.add(
                        Finding(
                            rule="lock-discipline",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"registry `{node.id}` accessed outside "
                                f"`with {global_guards[node.id]}`"
                            ),
                            hint=(
                                f"every read or write of `{node.id}` must "
                                f"hold its companion lock"
                            ),
                        )
                    )
    nodes, edges = build_lock_graph(corpus)
    for cycle in find_cycles(edges):
        held, acquired = cycle[0], cycle[1]
        site = min(
            (e for e in edges if e.held == held and e.acquired == acquired),
            key=lambda e: (e.path, e.line),
        )
        findings.add(
            Finding(
                rule="lock-discipline",
                path=site.path,
                line=site.line,
                message=(
                    "lock-order cycle "
                    + " -> ".join(cycle)
                    + f" (acquires `{acquired}` while holding `{held}` here)"
                ),
                hint=(
                    "impose a single global acquisition order, or release "
                    "the outer lock before taking the inner one (the "
                    "single-flight pattern in PlanCache.get_or_compute)"
                ),
            )
        )
    return sorted(findings, key=lambda f: (f.path, f.line))


# ----------------------------------------------------------------------
# async-hygiene
# ----------------------------------------------------------------------
#: Calls that block the event loop no matter how they are used.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "open",
        "io.open",
        "socket.create_connection",
    }
)
#: Method names that block unless the call is awaited (asyncio's own
#: ``Lock.acquire`` / ``Condition.wait`` are coroutines, so ``await
#: lock.acquire()`` is fine; a bare call is the threading primitive).
_BLOCKING_METHODS = frozenset({"acquire", "result"})
#: Direct backend execution — CPU-bound engine work that must be handed
#: to a worker thread, never run on the loop.
_DIRECT_EXEC_METHODS = frozenset({"execute_batch", "run_lineup"})


@rule(
    "async-hygiene",
    "No blocking calls (sleep, lock acquire, file I/O, .result(), direct "
    "backend execution) inside async def bodies",
)
def check_async_hygiene(corpus):
    findings = []
    for module in corpus:
        imports = ImportMap(module.tree)
        for info in iter_functions(module.tree):
            if not isinstance(info.node, ast.AsyncFunctionDef):
                continue
            walked = walk_held(info)
            awaited = {
                id(node.value)
                for node, _ in walked
                if isinstance(node, ast.Await)
            }
            for node, _ in walked:
                if isinstance(node, tuple) or not isinstance(node, ast.Call):
                    continue
                resolved = call_name(node, imports)
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                if resolved in _BLOCKING_CALLS:
                    findings.append(
                        Finding(
                            rule="async-hygiene",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"blocking call `{resolved}` inside "
                                f"`async def {info.name}`"
                            ),
                            hint=(
                                "use the asyncio equivalent, or run it in "
                                "a worker: `await asyncio.to_thread(...)`"
                            ),
                        )
                    )
                elif attr in _DIRECT_EXEC_METHODS:
                    findings.append(
                        Finding(
                            rule="async-hygiene",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"direct backend execution `.{attr}(...)` "
                                f"inside `async def {info.name}` stalls the "
                                f"event loop"
                            ),
                            hint="hand it off: `await asyncio.to_thread(...)`",
                        )
                    )
                elif attr in _BLOCKING_METHODS and id(node) not in awaited:
                    findings.append(
                        Finding(
                            rule="async-hygiene",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"potentially blocking `.{attr}()` call "
                                f"inside `async def {info.name}` is not "
                                f"awaited"
                            ),
                            hint=(
                                "await the asyncio primitive, or move the "
                                "threading primitive into "
                                "`asyncio.to_thread`"
                            ),
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# replay-determinism
# ----------------------------------------------------------------------
#: Definitions that anchor the deterministic decision core.  Everything
#: name-reachable from these, within the modules that define them, must be
#: a pure function of its inputs.  Calls that leave those modules (the
#: engine boundary: execution pricing, plan search, measured wall time)
#: are the documented measurement boundary and are not followed.
_DETERMINISM_ROOT_CLASSES = frozenset(
    {"SchedulingPolicy", "ContinuousScheduler", "VirtualClock"}
)
_DETERMINISM_ROOT_FUNCS = frozenset({"decision_trace", "replay_trace"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
    }
)
_NUMPY_GLOBAL_SAMPLERS = frozenset(
    {
        f"numpy.random.{name}"
        for name in (
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "choice",
            "shuffle",
            "permutation",
            "normal",
            "uniform",
            "standard_normal",
            "beta",
            "binomial",
            "poisson",
            "seed",
        )
    }
)


def _is_unseeded_default_rng(node: ast.Call, resolved: Optional[str]) -> bool:
    if resolved != "numpy.random.default_rng":
        return False
    args = [a for a in node.args if not isinstance(a, ast.Starred)]
    if args:
        return isinstance(args[0], ast.Constant) and args[0].value is None
    for kw in node.keywords:
        if kw.arg == "seed":
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
        if kw.arg is None:  # **kwargs: assume the caller threads a seed
            return False
    return not node.args


def _set_valued_names(func_node) -> set:
    """Names assigned a set expression anywhere in the function."""
    names: set = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, ()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node, set_names) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


@rule(
    "replay-determinism",
    "Code reachable from the scheduling decision core must not read wall "
    "clocks, unseeded RNG, or set iteration order",
)
def check_replay_determinism(corpus):
    findings = []
    root_modules = []
    for module in corpus:
        names = {
            n.name
            for n in ast.walk(module.tree)
            if isinstance(n, (ast.ClassDef, ast.FunctionDef))
        }
        if names & (_DETERMINISM_ROOT_CLASSES | _DETERMINISM_ROOT_FUNCS):
            root_modules.append(module)
    if not root_modules:
        return findings

    # Joint name tables over the root modules (the decision core may span
    # the scheduler and the front end).
    func_table: dict = {}
    method_table: dict = {}
    class_table: dict = {}
    functions_of: dict = {}
    for module in root_modules:
        functions_of[module.path] = iter_functions(module.tree)
        for info in functions_of[module.path]:
            func_table.setdefault(info.name, []).append((module, info))
            if info.class_name is not None:
                method_table.setdefault(info.name, []).append((module, info))
                class_table.setdefault(info.class_name, []).append(
                    (module, info)
                )

    reachable: dict = {}  # id(node) -> (module, info)

    def mark(module, info):
        if id(info.node) not in reachable:
            reachable[id(info.node)] = (module, info)
            pending.append((module, info))

    pending: list = []
    for module in root_modules:
        for info in functions_of[module.path]:
            if (
                info.class_name in _DETERMINISM_ROOT_CLASSES
                or (info.class_name is None and info.name in _DETERMINISM_ROOT_FUNCS)
            ):
                mark(module, info)

    while pending:
        module, info = pending.pop()
        for node, _ in walk_held(info):
            if isinstance(node, tuple):
                continue
            if isinstance(node, ast.Name):
                for entry in func_table.get(node.id, []):
                    mark(*entry)
                for entry in class_table.get(node.id, []):
                    mark(*entry)
            elif isinstance(node, ast.Attribute):
                for entry in method_table.get(node.attr, []):
                    mark(*entry)

    for module, info in reachable.values():
        imports = ImportMap(module.tree)
        set_names = _set_valued_names(info.node)
        context = (
            f"`{info.qualname}` (reachable from the scheduling decision core)"
        )
        for node, _ in walk_held(info):
            if isinstance(node, tuple):
                continue
            if isinstance(node, ast.Call):
                resolved = call_name(node, imports)
                if resolved in _WALL_CLOCK_CALLS:
                    findings.append(
                        Finding(
                            rule="replay-determinism",
                            path=module.path,
                            line=node.lineno,
                            message=f"wall-clock read `{resolved}` in {context}",
                            hint=(
                                "decisions must be driven by the injected "
                                "clock (VirtualClock/RealClock), never "
                                "wall time"
                            ),
                        )
                    )
                elif (
                    resolved in _GLOBAL_RANDOM_FUNCS
                    or resolved in _NUMPY_GLOBAL_SAMPLERS
                    or _is_unseeded_default_rng(node, resolved)
                ):
                    findings.append(
                        Finding(
                            rule="replay-determinism",
                            path=module.path,
                            line=node.lineno,
                            message=f"unseeded RNG `{resolved}` in {context}",
                            hint=(
                                "thread an explicitly seeded "
                                "np.random.default_rng(seed) through the "
                                "decision path"
                            ),
                        )
                    )
            iter_expr = None
            if isinstance(node, ast.For):
                iter_expr = node.iter
            elif isinstance(node, ast.comprehension):
                iter_expr = node.iter
            if iter_expr is not None and _is_set_expr(iter_expr, set_names):
                findings.append(
                    Finding(
                        rule="replay-determinism",
                        path=module.path,
                        line=iter_expr.lineno,
                        message=(
                            f"iteration over a set in {context}: element "
                            f"order is hash-randomized and would feed a "
                            f"decision"
                        ),
                        hint="iterate `sorted(...)` or keep a list/dict",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# seeded-rng
# ----------------------------------------------------------------------
@rule(
    "seeded-rng",
    "np.random.default_rng must take an explicit seed; numpy's global RNG "
    "state is off limits",
)
def check_seeded_rng(corpus):
    findings = []
    for module in corpus:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = call_name(node, imports)
            if _is_unseeded_default_rng(node, resolved):
                findings.append(
                    Finding(
                        rule="seeded-rng",
                        path=module.path,
                        line=node.lineno,
                        message=(
                            "np.random.default_rng without an explicit "
                            "seed: entropy-seeded plans are not "
                            "reproducible"
                        ),
                        hint=(
                            "pass a seed expression (the repo idiom: "
                            "default_rng(seed), default_rng(seed ^ salt))"
                        ),
                    )
                )
            elif resolved in _NUMPY_GLOBAL_SAMPLERS:
                findings.append(
                    Finding(
                        rule="seeded-rng",
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"`{resolved}` draws from numpy's hidden "
                            f"global RNG state"
                        ),
                        hint=(
                            "construct a local np.random.default_rng(seed) "
                            "and sample from it"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# frozen-spec-purity
# ----------------------------------------------------------------------
_FROZEN_CLASSES = frozenset(
    {"PlanSpec", "KernelChoice", "PermutedChoice", "ResolvedPlan"}
)
#: Factory methods whose return value is a frozen plan object.
_FROZEN_FACTORIES = {"make_spec": "PlanSpec", "resolve": "ResolvedPlan"}


def _annotation_class(annotation) -> Optional[str]:
    name = dotted_name(annotation) if annotation is not None else None
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    return tail if tail in _FROZEN_CLASSES else None


def _frozen_vars(info) -> dict:
    """Names known to hold frozen plan objects in one function."""
    frozen: dict = {}
    if info.class_name in _FROZEN_CLASSES:
        frozen["self"] = info.class_name
    args = info.node.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, [args.vararg, args.kwarg]),
    ]:
        cls = _annotation_class(arg.annotation)
        if cls is not None:
            frozen[arg.arg] = cls
    for node in ast.walk(info.node):
        value, targets = None, []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            cls = _annotation_class(node.annotation)
            if cls is not None and isinstance(node.target, ast.Name):
                frozen[node.target.id] = cls
            continue
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        cls = None
        if isinstance(func, ast.Name) and func.id in _FROZEN_CLASSES:
            cls = func.id
        elif isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in _FROZEN_CLASSES
            ):
                cls = func.value.id  # classmethod factory, e.g. from_json
            elif func.attr in _FROZEN_FACTORIES:
                cls = _FROZEN_FACTORIES[func.attr]
        if cls is not None:
            for target in targets:
                if isinstance(target, ast.Name):
                    frozen[target.id] = cls
    return frozen


@rule(
    "frozen-spec-purity",
    "No attribute mutation on PlanSpec/KernelChoice/ResolvedPlan outside "
    "their constructors",
)
def check_frozen_spec_purity(corpus):
    findings = []
    for module in corpus:
        for info in iter_functions(module.tree):
            in_constructor = info.name in CONSTRUCTOR_NAMES
            frozen = {} if in_constructor else _frozen_vars(info)

            def flag(node, target, cls):
                findings.append(
                    Finding(
                        rule="frozen-spec-purity",
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"attribute mutation on frozen {cls} instance "
                            f"`{target}` outside its constructor"
                        ),
                        hint=(
                            "plans are immutable value objects: build a "
                            "new instance (dataclasses.replace) instead "
                            "of mutating"
                        ),
                    )
                )

            for node, _ in walk_held(info):
                if isinstance(node, tuple):
                    continue
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frozen
                        ):
                            flag(node, target.value.id, frozen[target.value.id])
                elif isinstance(node, ast.Call):
                    resolved = dotted_name(node.func)
                    if (
                        resolved == "object.__setattr__"
                        and not in_constructor
                    ):
                        target = (
                            node.args[0].id
                            if node.args and isinstance(node.args[0], ast.Name)
                            else "<object>"
                        )
                        cls = frozen.get(target, "plan-like")
                        flag(node, target, cls)
                    elif (
                        resolved == "setattr"
                        and node.args
                        and isinstance(node.args[0], ast.Name)
                        and node.args[0].id in frozen
                    ):
                        flag(node, node.args[0].id, frozen[node.args[0].id])
    return findings


# ----------------------------------------------------------------------
# bounded-retry
# ----------------------------------------------------------------------
#: A loop counter name that smells like a retry/attempt count.
_RETRY_COUNTER = re.compile(r"(?i)(retr|attempt)")
#: Constructors whose randomness must be pinned by an explicit seed: an
#: entropy-seeded fault schedule makes every chaos run unreproducible.
_FAULT_RNG_CONSTRUCTORS = frozenset({"FaultSpec", "FaultInjector"})


def _incremented_names(loop: ast.While) -> set:
    """Names the loop body grows: ``x += ...`` or ``x = x <op> ...``."""
    names = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(
                node.value, ast.BinOp
            ):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == target.id:
                        names.add(target.id)
                        break
    return names


def _compared_names(loop: ast.While) -> set:
    """Names the loop body ever compares (a bound check, however spelled)."""
    names = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


@rule(
    "bounded-retry",
    "Retry loops carry a static attempt bound; fault-injection RNG "
    "always takes an explicit seed",
)
def check_bounded_retry(corpus):
    """Two failure-handling invariants the resilience layer rests on.

    A ``while True`` loop that counts retries/attempts without ever
    comparing the counter can retry forever — a failed replica then wedges
    the front end instead of surfacing a terminal report.  And a
    :class:`~repro.runtime.resilience.FaultSpec` (or injector) built
    without an explicit seed draws a different fault schedule every run,
    which breaks the replay-equivalence gate the chaos tests rely on.
    """
    findings = []
    for module in corpus:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.While):
                test = node.test
                if not (
                    isinstance(test, ast.Constant) and test.value is True
                ):
                    continue
                counters = {
                    name
                    for name in _incremented_names(node)
                    if _RETRY_COUNTER.search(name)
                }
                unbounded = sorted(counters - _compared_names(node))
                if unbounded:
                    findings.append(
                        Finding(
                            rule="bounded-retry",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"`while True` increments retry counter "
                                f"`{unbounded[0]}` without ever comparing "
                                f"it: the retry chain has no static bound"
                            ),
                            hint=(
                                "loop `for attempt in "
                                "range(max_retries + 1)` or guard with "
                                "`while attempt <= max_retries`"
                            ),
                        )
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = name.rsplit(".", 1)[-1]
                if tail not in _FAULT_RNG_CONSTRUCTORS:
                    continue
                seed_kw = next(
                    (kw for kw in node.keywords if kw.arg == "seed"), None
                )
                unseeded = not node.args and not node.keywords
                explicit_none = (
                    seed_kw is not None
                    and isinstance(seed_kw.value, ast.Constant)
                    and seed_kw.value.value is None
                )
                if unseeded or explicit_none:
                    findings.append(
                        Finding(
                            rule="bounded-retry",
                            path=module.path,
                            line=node.lineno,
                            message=(
                                f"`{tail}` without an explicit seed: the "
                                f"fault schedule changes every run and "
                                f"chaos results are not reproducible"
                            ),
                            hint=(
                                "pass the seed first: FaultSpec(seed, ...) "
                                "/ FaultInjector(spec)"
                            ),
                        )
                    )
    return findings


# ----------------------------------------------------------------------
# transport-hygiene
# ----------------------------------------------------------------------
#: A receiver whose attribute chain smells like a transport endpoint.
_TRANSPORT_RECEIVER = re.compile(r"(?i)(transport|channel|chan\b|chan_|pipe)")
#: Methods that put a payload on the wire.
_TRANSPORT_SEND_METHODS = frozenset(
    {"send", "send_message", "broadcast", "request"}
)
#: Identifiers that name things the plan codec cannot (and must not)
#: serialize: live handles, not data.
_UNSERIALIZABLE_NAME = re.compile(
    r"(?i)(backend|planner|tiledb|lock|thread|socket|executor|engine)"
)
_HEARTBEAT_NAME = re.compile(r"(?i)heartbeat")


def _attr_segments(node) -> list:
    """Name segments of a ``a.b.c``-style receiver chain, if any."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts


def _is_numeric_literal(node) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


@rule(
    "transport-hygiene",
    "Only codec-serializable payloads cross the worker boundary; "
    "heartbeat intervals come from config, never literals",
)
def check_transport_hygiene(corpus):
    """Two wire-protocol invariants the cluster subsystem rests on.

    A channel ``send`` whose payload expression mentions a live handle —
    a backend, engine, lock, thread, socket — or embeds a lambda is
    smuggling process state across the boundary; only data the plan codec
    round-trips may travel (build messages with the ``codec`` helpers).
    And a heartbeat interval spelled as a numeric literal at a call site
    (or assigned onto a ``heartbeat*`` attribute) drifts from the cluster
    config the liveness monitor times against; intervals must flow from
    configuration.
    """
    findings: dict = {}

    def flag(module, line, message, hint):
        # One finding per line: a payload subtree may trip several name
        # patterns, but the defect (and the fix) is the send itself.
        key = (module.path, line)
        if key not in findings:
            findings[key] = Finding(
                rule="transport-hygiene",
                path=module.path,
                line=line,
                message=message,
                hint=hint,
            )

    for module in corpus:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and _HEARTBEAT_NAME.search(target.attr)
                        and _is_numeric_literal(node.value)
                    ):
                        flag(
                            module,
                            node.lineno,
                            (
                                f"heartbeat interval `{target.attr}` "
                                f"assigned a numeric literal"
                            ),
                            (
                                "heartbeat cadence comes from the cluster "
                                "config (ClusterConfig / WorkerConfig), "
                                "never a call-site literal"
                            ),
                        )
                continue
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if (
                    kw.arg is not None
                    and _HEARTBEAT_NAME.search(kw.arg)
                    and _is_numeric_literal(kw.value)
                ):
                    flag(
                        module,
                        node.lineno,
                        (
                            f"heartbeat interval `{kw.arg}=` passed as a "
                            f"numeric literal"
                        ),
                        (
                            "thread the interval from configuration so "
                            "the liveness monitor and the worker agree "
                            "on one cadence"
                        ),
                    )
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _TRANSPORT_SEND_METHODS
            ):
                continue
            segments = _attr_segments(func.value)
            if not any(_TRANSPORT_RECEIVER.search(s) for s in segments):
                continue
            payloads = [
                *node.args,
                *(kw.value for kw in node.keywords),
            ]
            for payload in payloads:
                for sub in ast.walk(payload):
                    if isinstance(sub, ast.Lambda):
                        flag(
                            module,
                            node.lineno,
                            (
                                f"lambda in a `.{func.attr}(...)` payload: "
                                f"functions cannot cross the worker "
                                f"boundary"
                            ),
                            (
                                "send data the plan codec round-trips; "
                                "behaviour lives in the worker, not the "
                                "message"
                            ),
                        )
                    elif isinstance(
                        sub, ast.Name
                    ) and _UNSERIALIZABLE_NAME.search(sub.id):
                        flag(
                            module,
                            node.lineno,
                            (
                                f"`{sub.id}` in a `.{func.attr}(...)` "
                                f"payload: live handles do not cross the "
                                f"worker boundary"
                            ),
                            (
                                "extract the serializable fields and build "
                                "the message with the codec helpers"
                            ),
                        )
                    elif isinstance(
                        sub, ast.Attribute
                    ) and _UNSERIALIZABLE_NAME.search(sub.attr):
                        flag(
                            module,
                            node.lineno,
                            (
                                f"`.{sub.attr}` in a `.{func.attr}(...)` "
                                f"payload: live handles do not cross the "
                                f"worker boundary"
                            ),
                            (
                                "extract the serializable fields and build "
                                "the message with the codec helpers"
                            ),
                        )
    return sorted(findings.values(), key=lambda f: (f.path, f.line))


# ----------------------------------------------------------------------
# pragma-justification
# ----------------------------------------------------------------------
@rule(
    "pragma-justification",
    "Every `# pit: allow[...]` pragma names a known rule and carries a "
    "one-line justification",
)
def check_pragma_justification(corpus):
    findings = []
    known = known_rule_ids()
    for module in corpus:
        for suppression in module.suppressions:
            if not suppression.reason:
                findings.append(
                    Finding(
                        rule="pragma-justification",
                        path=module.path,
                        line=suppression.line,
                        message=(
                            f"suppression of `{suppression.rule}` has no "
                            f"justification"
                        ),
                        hint=(
                            "write `# pit: allow["
                            + suppression.rule
                            + "] — <why this is safe here>`"
                        ),
                    )
                )
            if suppression.rule != "*" and suppression.rule not in known:
                findings.append(
                    Finding(
                        rule="pragma-justification",
                        path=module.path,
                        line=suppression.line,
                        message=(
                            f"pragma names unknown rule "
                            f"`{suppression.rule}`"
                        ),
                        hint="run `python -m repro.analysis --list-rules`",
                    )
                )
    return findings
