"""repro.analysis — "pitlint", the invariant checker for this repo.

PR 6 made serving truly concurrent; the invariants that keep it correct
(lock discipline over the sharded :class:`~repro.core.selection.PlanCache`
and the shared registries, async hygiene in the live front end,
decision-path determinism behind the replay-equivalence guarantee, seeded
RNG everywhere, frozen plan objects) were until now enforced by convention.
This package enforces them mechanically:

* a **static analyzer** (`python -m repro.analysis src`) with a rule
  registry, per-rule findings, inline suppression pragmas
  (``# pit: allow[rule-id] — reason``) and text/JSON reporters — wired
  into CI as a gate;
* a **dynamic verifier** (:mod:`repro.analysis.runtime_checks`): a debug
  lock factory, enabled by ``REPRO_DEBUG_LOCKS=1``, that records real
  acquisition order at test time and cross-checks it against the
  statically derived lock-order graph.

See ``docs/static-analysis.md`` for the rule catalog and how to add a
rule.
"""

from .engine import Corpus, analyze, analyze_paths, load_corpus
from .findings import Finding, Report, Suppression, extract_suppressions
from .lockgraph import build_lock_graph, find_cycles, static_lock_order
from .registry import RuleInfo, all_rules, get_rule, known_rule_ids, rule

__all__ = [
    "Corpus",
    "Finding",
    "Report",
    "RuleInfo",
    "Suppression",
    "all_rules",
    "analyze",
    "analyze_paths",
    "build_lock_graph",
    "extract_suppressions",
    "find_cycles",
    "get_rule",
    "known_rule_ids",
    "load_corpus",
    "rule",
    "static_lock_order",
]
