"""The pitlint CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 when clean, 1 when findings survive suppression, 2 on
usage errors — so the CI job is just the bare invocation.
"""

from __future__ import annotations

import argparse
import sys

from .engine import analyze, load_corpus
from .lockgraph import static_lock_order
from .registry import all_rules
from .reporters import render_json, render_text


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "pitlint: concurrency- and determinism-invariant checker for "
            "the PIT reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report (in the chosen format) to FILE",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="run only these rule ids (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--lock-graph",
        action="store_true",
        help="print the statically derived lock-order graph and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="include suppressed findings in text output",
    )
    args = parser.parse_args(argv)

    # Rule registration side effect.
    from . import rules as _rules  # noqa: F401

    if args.list_rules:
        for info in all_rules():
            print(f"{info.rule_id:24} {info.description}")
        return 0

    try:
        corpus = load_corpus(args.paths)
    except OSError as exc:
        print(f"pitlint: cannot read {exc.filename}: {exc.strerror}",
              file=sys.stderr)
        return 2

    if args.lock_graph:
        graph = static_lock_order(corpus)
        print(render_json_graph(graph))
        return 1 if graph["cycles"] else 0

    rule_ids = args.rules.split(",") if args.rules else None
    try:
        report = analyze(corpus, rule_ids=rule_ids)
    except KeyError as exc:
        print(f"pitlint: {exc.args[0]}", file=sys.stderr)
        return 2

    rendered = (
        render_json(report)
        if args.format == "json"
        else render_text(report, verbose=args.verbose)
    )
    print(rendered)
    if args.output:
        payload = (
            rendered if args.format == "json" else render_json(report)
        )
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(payload + "\n")
    return 0 if report.clean else 1


def render_json_graph(graph: dict) -> str:
    import json

    return json.dumps(graph, indent=2)


if __name__ == "__main__":
    sys.exit(main())
