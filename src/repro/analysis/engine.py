"""The analysis engine: parse a file set, run rules, apply suppressions.

The engine owns no rule logic.  It builds a :class:`Corpus` — every
analyzed module parsed once, with its source lines and suppression pragmas
— hands it to each registered rule, and folds the raw findings against the
pragmas into a :class:`~repro.analysis.findings.Report`.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Optional

from .findings import Finding, Report, extract_suppressions
from .registry import all_rules, get_rule


@dataclass
class Module:
    """One parsed source file."""

    path: str
    source: str
    tree: ast.Module
    lines: list = field(default_factory=list)
    suppressions: list = field(default_factory=list)


class Corpus:
    """Every module of one analysis run, parsed once and shared by rules."""

    def __init__(self, modules: list):
        self.modules = modules
        self.by_path = {m.path: m for m in modules}

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


def _iter_python_files(paths) -> list:
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return files


def load_corpus(paths, *, root: Optional[str] = None) -> Corpus:
    """Parse every ``.py`` file under ``paths`` into a :class:`Corpus`.

    ``root`` (default: the current directory) is stripped from reported
    paths so findings are repo-relative and stable across machines.  A file
    that fails to parse becomes a corpus-less ``syntax-error`` finding at
    analysis time rather than an exception — the checker must be runnable
    on a broken tree, that is when it is needed most.
    """
    root = os.path.abspath(root) if root else os.getcwd()
    modules = []
    for file_path in _iter_python_files(paths):
        abs_path = os.path.abspath(file_path)
        rel = os.path.relpath(abs_path, root)
        display = file_path if rel.startswith("..") else rel
        with open(abs_path, encoding="utf-8") as f:
            source = f.read()
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            modules.append(
                Module(
                    path=display,
                    source=source,
                    tree=tree,
                    lines=source.splitlines(),
                    suppressions=[],
                )
            )
            modules[-1].parse_error = (exc.lineno or 1, exc.msg)
            continue
        modules.append(
            Module(
                path=display,
                source=source,
                tree=tree,
                lines=source.splitlines(),
                suppressions=extract_suppressions(source, display),
            )
        )
    return Corpus(modules)


def analyze(corpus: Corpus, *, rule_ids: Optional[list] = None) -> Report:
    """Run rules over ``corpus`` and fold pragmas into the report.

    A finding survives unless a matching pragma covers its line; matched
    pragmas are marked used, which the ``pragma-justification`` rule reads
    to flag suppressions that silence nothing.  Suppression is applied
    after *all* rules ran, so pragma-rule findings about a pragma cannot be
    silenced by the very pragma they complain about.
    """
    # Import for the registration side effect; a later `rules` plugin dir
    # would import here too.
    from . import rules as _rules  # noqa: F401

    selected = (
        [get_rule(rule_id) for rule_id in rule_ids]
        if rule_ids is not None
        else all_rules()
    )
    report = Report(files=len(corpus), rules=[r.rule_id for r in selected])

    raw: list = []
    for module in corpus:
        error = getattr(module, "parse_error", None)
        if error is not None:
            raw.append(
                Finding(
                    rule="syntax-error",
                    path=module.path,
                    line=error[0],
                    message=f"file does not parse: {error[1]}",
                    hint="pitlint analyzes the AST; fix the syntax first",
                )
            )
    for info in selected:
        raw.extend(info.run(corpus))

    suppressions = [s for module in corpus for s in module.suppressions]
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        silencer = None
        # The self-audit rule must not be silenceable by the pragma it
        # audits (or a wildcard on the same line) — otherwise one could
        # write an unjustified pragma that excuses itself.
        if finding.rule != "pragma-justification":
            for suppression in suppressions:
                if suppression.matches(finding):
                    silencer = suppression
                    break
        if silencer is None:
            report.findings.append(finding)
        else:
            silencer.used = True
            report.suppressed.append(finding)

    # Usage audit: a pragma that silenced nothing is dead weight (or a
    # stale excuse for a finding that was since fixed) — flag it under the
    # pragma rule.  Only when that rule is selected, and only for pragmas
    # that were not already flagged as unjustified.
    if "pragma-justification" in report.rules:
        for suppression in suppressions:
            if not suppression.used and suppression.reason:
                report.findings.append(
                    Finding(
                        rule="pragma-justification",
                        path=suppression.path,
                        line=suppression.line,
                        message=(
                            f"pragma `allow[{suppression.rule}]` suppresses "
                            f"nothing on its line"
                        ),
                        hint="remove the stale pragma",
                    )
                )
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report


def analyze_paths(
    paths, *, root: Optional[str] = None, rule_ids: Optional[list] = None
) -> Report:
    """Convenience: :func:`load_corpus` + :func:`analyze`."""
    return analyze(load_corpus(paths, root=root), rule_ids=rule_ids)
