"""Continuous batching + multi-replica scheduling vs the drain baseline.

Drives an interleaved-arrival Figure-11 style BERT stream (alternating
mnli/cola requests with dataset-drawn variable sequence lengths) through
the :class:`~repro.runtime.scheduler.ContinuousScheduler` and gates the
three properties the scheduler exists for:

1. **Latency** (light load): with a batching-window deadline, an early
   arrival no longer waits for a full drain-mode batch to form — p95
   queueing delay must be strictly below drain mode while serving the
   stream in no more wall time (equal-or-better episode throughput).
2. **Scale-out** (heavy load): least-loaded placement across 4 replicas
   must at least double single-replica episode throughput.
3. **Shared PlanCache**: the 4-replica run must add *zero* cold
   Algorithm 1 searches over the warmed single-replica run — one cache
   serves every replica, so scaling out is selection-overhead-free.

4. **Selection/compute overlap**: on a cold-heavy trace (fresh plan
   cache), batch-open speculative searches must hide real search time
   behind the batching window and prior compute
   (``ServingReport.overlap_saved_us > 0``), while the warmed runs report
   exactly zero (nothing to hide when every signature hits).

Warm-up runs populate the plan cache first: cold Algorithm 1 searches are
*measured wall time* (Section 5.5's 30-100us budget; milliseconds in this
pure-python reproduction) and folding them into batch latencies would
measure the host machine, not the scheduler.

Episode throughput is ``completed_tokens / last_batch_completion`` — the
first arrival lands at t=0, so this is tokens over the wall time the whole
episode took.  (``ServingReport.makespan_us`` starts at the *first batch
start* instead, which would flatter drain mode for forming its first batch
late.)

Run:  PYTHONPATH=src python benchmarks/bench_continuous_scheduler.py
"""

from __future__ import annotations

from repro.core import PlanCache
from repro.hw import V100
from repro.models import bert_workload
from repro.runtime import ServingEngine, format_table

#: Interleaved two-task BERT stream (Figure 11 traffic shapes).
NUM_REQUESTS = 48
#: Light load: inter-arrival well above per-request execution time.
LIGHT_GAP_US = 5000.0
#: Heavy load: arrivals outpace one replica, building a backlog.
HEAVY_GAP_US = 1000.0
BATCH_WINDOW_US = 2000.0
REPLICAS = 4


def interleaved_stream(n: int = NUM_REQUESTS) -> list:
    return [
        bert_workload("mnli" if s % 2 == 0 else "cola", 8, seed=s)
        for s in range(n)
    ]


def serve(cache, *, policy, gap_us, replicas=1):
    engine = ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=8,
        replicas=replicas,
        batch_window_us=BATCH_WINDOW_US,
        plan_cache=cache,
        enforce_memory=False,
    )
    engine.submit_many(interleaved_stream(), interarrival_us=gap_us)
    return engine.run(policy=policy)


def episode_throughput(report) -> float:
    """Completed tokens over the episode's wall clock (arrivals start at 0)."""
    last_end = max((b.start_us + b.exec_us for b in report.batches), default=0.0)
    if last_end <= 0:
        return 0.0
    return report.completed_tokens / (last_end / 1e6)


def row(label, report):
    return [
        label,
        len(report.batches),
        f"{episode_throughput(report):,.0f}",
        report.mean_queue_us / 1e3,
        report.p95_queue_us / 1e3,
        report.p95_latency_us / 1e3,
        len(report.replica_stats) or 1,
    ]


def main():
    # --- Regime 0: cold-heavy trace — the selection/compute overlap ------
    # A fresh cache makes every signature's first batch pay a real
    # Algorithm 1 search; issued at batch-open time, those searches must
    # overlap the batching window / prior compute instead of serializing.
    cold_heavy = serve(PlanCache(), policy="continuous", gap_us=HEAVY_GAP_US)
    overlap_saved_us = cold_heavy.overlap_saved_us

    cache = PlanCache()

    # Warm-up: populate the plan cache with every batch composition the
    # measured runs will produce (batching is placement-independent, so the
    # 1- and 4-replica runs form identical batches).
    for policy, gap in (
        ("drain", LIGHT_GAP_US),
        ("continuous", LIGHT_GAP_US),
        ("drain", HEAVY_GAP_US),
        ("continuous", HEAVY_GAP_US),
    ):
        serve(cache, policy=policy, gap_us=gap)

    # --- Regime 1: light load — the batching-window latency win ---------
    drain_light = serve(cache, policy="drain", gap_us=LIGHT_GAP_US)
    cont_light = serve(cache, policy="continuous", gap_us=LIGHT_GAP_US)

    # --- Regime 2: heavy load — least-loaded multi-replica scale-out ----
    drain_heavy = serve(cache, policy="drain", gap_us=HEAVY_GAP_US)
    cont_heavy_1r = serve(cache, policy="continuous", gap_us=HEAVY_GAP_US)
    misses_before = cache.misses
    cont_heavy_4r = serve(
        cache, policy="continuous", gap_us=HEAVY_GAP_US, replicas=REPLICAS
    )
    extra_cold_searches = cache.misses - misses_before

    print(
        format_table(
            ["run", "batches", "tok/s", "mean queue ms", "p95 queue ms",
             "p95 latency ms", "replicas"],
            [
                row("drain (light)", drain_light),
                row("continuous (light)", cont_light),
                row("drain (heavy)", drain_heavy),
                row("continuous 1r (heavy)", cont_heavy_1r),
                row(f"continuous {REPLICAS}r (heavy)", cont_heavy_4r),
            ],
            title=(
                "Continuous batching vs drain "
                f"(interleaved BERT stream, window {BATCH_WINDOW_US:.0f} us)"
            ),
        )
    )
    print()
    util = "  ".join(
        f"r{s.replica_id}: {s.utilization * 100:.0f}%"
        for s in cont_heavy_4r.replica_stats
    )
    print(f"{REPLICAS}-replica utilization: {util}")

    # --- Gates -----------------------------------------------------------
    failures = []

    p95_cont = cont_light.p95_queue_us
    p95_drain = drain_light.p95_queue_us
    if not p95_cont < p95_drain:
        failures.append(
            f"p95 queueing delay: continuous {p95_cont / 1e3:.2f} ms is not "
            f"strictly below drain {p95_drain / 1e3:.2f} ms"
        )
    tput_cont = episode_throughput(cont_light)
    tput_drain = episode_throughput(drain_light)
    if tput_cont < 0.95 * tput_drain:
        failures.append(
            f"episode throughput: continuous {tput_cont:,.0f} tok/s fell "
            f"below drain {tput_drain:,.0f} tok/s (need >= 0.95x)"
        )
    print(
        f"latency gate: p95 queue {p95_cont / 1e3:.2f} ms (continuous) vs "
        f"{p95_drain / 1e3:.2f} ms (drain) at {tput_cont / tput_drain:.2f}x "
        f"throughput"
    )

    tput_1r = episode_throughput(cont_heavy_1r)
    tput_4r = episode_throughput(cont_heavy_4r)
    scale = tput_4r / tput_1r if tput_1r > 0 else 0.0
    if scale < 2.0:
        failures.append(
            f"scale-out: {REPLICAS} replicas gave {scale:.2f}x single-replica "
            f"throughput (need >= 2x)"
        )
    print(f"scale-out gate: {REPLICAS} replicas = {scale:.2f}x 1 replica")

    if extra_cold_searches != 0:
        failures.append(
            f"shared PlanCache: the {REPLICAS}-replica run paid "
            f"{extra_cold_searches} extra cold Algorithm 1 searches (need 0)"
        )
    print(
        f"plan-cache gate: {extra_cold_searches} extra cold searches across "
        f"{REPLICAS} replicas"
    )

    if not overlap_saved_us > 0:
        failures.append(
            f"selection/compute overlap: cold-heavy trace saved "
            f"{overlap_saved_us:.1f} us (need > 0)"
        )
    warm_saved_us = cont_heavy_4r.overlap_saved_us
    if warm_saved_us != 0:
        failures.append(
            f"selection/compute overlap: warmed run reported "
            f"{warm_saved_us:.1f} us saved (must be exactly 0 — every "
            f"signature hits the cache)"
        )
    print(
        f"overlap gate: cold-heavy trace hid "
        f"{overlap_saved_us / 1e3:.2f} ms of search behind compute "
        f"(warmed run: {warm_saved_us:.1f} us)"
    )

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: continuous batching + multi-replica gates hold")


if __name__ == "__main__":
    main()
