"""Figure 20: how often do dynamic sparsity patterns repeat?

The alternative design — memoize compiled kernels per sparsity pattern —
only works if patterns recur.  Streaming MNLI sequence-length patterns and
ReLU activation patterns for batch sizes 8 and 32, the paper measures
cumulative hit ratios of ~0.4% (lengths) and ~0.1% (ReLU): patterns almost
never repeat, so per-pattern kernels are non-reusable.
"""

import pytest

from repro.sparsity import (
    PatternHitCounter,
    relu_pattern_stream,
    seqlen_pattern_stream,
)

from .conftest import paper_note

SAMPLE_POINTS = (1, 10, 100, 300, 1000)


def run_study():
    rows = []
    finals = {}
    for kind in ("seqlen", "relu"):
        for batch in (8, 32):
            counter = PatternHitCounter()
            if kind == "seqlen":
                stream = seqlen_pattern_stream("mnli", batch, 1000, seed=1)
            else:
                stream = relu_pattern_stream(batch, 3072, 0.99, 1000, seed=1)
            curve = {}
            for i, pattern in enumerate(stream, start=1):
                counter.observe(pattern)
                if i in SAMPLE_POINTS:
                    curve[i] = counter.hit_ratio
            rows.append(
                [f"{kind} bsz={batch}"]
                + [f"{curve[p] * 100:.2f}%" for p in SAMPLE_POINTS]
            )
            finals[(kind, batch)] = counter.hit_ratio
    return rows, finals


@pytest.mark.benchmark(group="fig20")
def test_fig20_pattern_study(benchmark, print_table):
    rows, finals = benchmark.pedantic(run_study, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 20 — sparsity-pattern repetition (hit ratio)",
            "~0.4% of batches repeat a sequence-length pattern; ~0.1% "
            "repeat a ReLU pattern: per-pattern kernel caching is useless",
        )
    )
    print_table(
        ["stream"] + [f"after {p}" for p in SAMPLE_POINTS], rows
    )

    # Sequence-length patterns repeat rarely; ReLU patterns essentially never.
    for batch in (8, 32):
        assert finals[("seqlen", batch)] < 0.05
        assert finals[("relu", batch)] < 0.002
    # Smaller batches repeat (slightly) more often: fewer degrees of freedom.
    assert finals[("seqlen", 8)] >= finals[("seqlen", 32)]
