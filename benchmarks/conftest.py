"""Shared benchmark fixtures and reporting helpers.

Every benchmark prints the paper-style table for its figure via ``-s`` (or
the captured stdout section of the pytest report) and wraps its core
computation with pytest-benchmark for timing.  Simulated latencies are the
reproduction target; wall-clock numbers measure the harness itself.
"""

from __future__ import annotations

import pytest


def paper_note(figure: str, claim: str) -> str:
    """A uniform header tying each bench to its figure and claim."""
    return f"\n=== {figure} ===\npaper: {claim}\n"


@pytest.fixture(scope="session")
def print_table():
    """Print a formatted table (kept visible with `pytest -s`)."""
    from repro.runtime import format_table

    def _print(headers, rows, title=""):
        print()
        print(format_table(headers, rows, title=title))

    return _print
