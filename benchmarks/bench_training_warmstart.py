"""Training warm-start: a pruning run's plans must survive restarts.

PR 10 unifies the training path onto the Planner: every PIT training-step
matmul resolves a ``weight-sparse`` (or ``nm-sparse``) plan through
``Planner.resolve`` over a shared :class:`PlanCache`.  This benchmark gates
the property that unification exists for:

1. price a first pruning epoch (several sparsity steps plus one nm-sparse
   step) with a cold cache, paying the real full-TileDB Algorithm 1
   searches;
2. persist the cache with ``PlanCache.save`` (TileDB-key stamped);
3. revive it with ``PlanCache.load`` in a **fresh** cache object — the
   restarted-trainer simulation — and re-price the identical epoch.

Gates:

* the second epoch performs **zero** cold searches — every spec built from
  the replayed pruning steps keys the dump exactly (nm-sparse plans, with
  their cached channel permutation, included);
* total measured selection wall time drops at least ``MIN_SPEEDUP``x;
* the warm epoch's latencies match the cold epoch's bit-for-bit — a
  replayed plan prices the same masks identically.

Each run appends a record to the cumulative ``BENCH_training.json``
trajectory (uploaded by CI), so selection-time regressions across PRs are
visible as history, not just as a pass/fail bit.

Run:  PYTHONPATH=src python benchmarks/bench_training_warmstart.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import PlanCache, TileDB
from repro.hw import V100
from repro.runtime import format_table, sparse_training_run, sparse_training_step

DUMP_PATH = "BENCH_training_plans.json"
OUT_PATH = Path("BENCH_training.json")
#: The reloaded epoch must cut total selection wall time at least this much
#: (observed: >50x — cache lookups vs cold full-TileDB searches).
MIN_SPEEDUP = 5.0

SPARSITIES = (0.5, 0.8, 0.9, 0.98)
BLOCK = (32, 1)
SEED = 11
NM_PATTERN = (2, 4)
NM_PERMUTATION = ("learned", 2, SEED)


def price_epoch(cache: PlanCache) -> list:
    """One pruning epoch: a sparsity ramp of weight-sparse steps plus one
    2:4 nm-sparse step (the permutation search composed with N:M)."""
    reports = sparse_training_run(
        "pit", V100, sparsities=SPARSITIES, block=BLOCK, seed=SEED,
        plan_cache=cache,
    )
    reports.append(
        sparse_training_step(
            "pit", V100, block=BLOCK, sparsity=0.9, seed=SEED,
            plan_cache=cache, pattern=NM_PATTERN, permutation=NM_PERMUTATION,
        )
    )
    return reports


def totals(reports: list) -> tuple:
    return (
        sum(r.plan_misses for r in reports),
        sum(r.plan_hits for r in reports),
        sum(r.search_us for r in reports),
    )


def main():
    # --- Epoch 1: cold cache, pay the searches, persist ------------------
    cold_cache = PlanCache()
    cold = price_epoch(cold_cache)
    cold_misses, cold_hits, cold_search_us = totals(cold)
    if cold_misses == 0:
        raise SystemExit("FAIL: the cold epoch paid no searches — nothing to gate")
    tiledb = TileDB.shared(V100, "float32")
    saved = cold_cache.save(DUMP_PATH, tiledb_key=tiledb.cache_key)

    # --- Epoch 2: "restarted trainer" — fresh cache from the dump --------
    warm_cache = PlanCache.load(DUMP_PATH, expected_tiledb_key=tiledb.cache_key)
    warm = price_epoch(warm_cache)
    warm_misses, warm_hits, warm_search_us = totals(warm)

    rows = [
        ["epoch 1 (cold cache)", cold_misses, cold_hits,
         f"{cold_search_us / 1e3:.1f}"],
        ["epoch 2 (reloaded dump)", warm_misses, warm_hits,
         f"{warm_search_us / 1e3:.1f}"],
    ]
    print(
        format_table(
            ["epoch", "cold searches", "plan hits", "selection ms"],
            rows,
            title=(
                f"Training warm-start: pruning ramp {SPARSITIES} + "
                f"{NM_PATTERN[0]}:{NM_PATTERN[1]} step, block "
                f"{BLOCK[0]}x{BLOCK[1]} (V100)"
            ),
        )
    )
    print(f"dump: {saved['entries']} entries -> {DUMP_PATH} "
          f"({os.path.getsize(DUMP_PATH)} bytes)")

    # --- Gates ------------------------------------------------------------
    if warm_misses != 0:
        raise SystemExit(
            f"FAIL: the reloaded epoch paid {warm_misses} cold searches; "
            f"expected zero from a persisted cache"
        )
    speedup = (
        cold_search_us / warm_search_us if warm_search_us > 0 else float("inf")
    )
    print(f"selection wall-time cut from warm start: {speedup:.1f}x")
    if speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"FAIL: expected >= {MIN_SPEEDUP:.0f}x selection cut on the "
            f"second epoch, got {speedup:.1f}x"
        )
    for c, w in zip(cold, warm):
        if c.latency_ms != w.latency_ms:
            raise SystemExit(
                f"FAIL: warm epoch repriced sparsity {c.sparsity} at "
                f"{w.latency_ms:.4f}ms vs cold {c.latency_ms:.4f}ms — "
                f"replayed plans must price identical masks identically"
            )

    # --- Cumulative trajectory (CI artifact) ------------------------------
    history = []
    if OUT_PATH.exists():
        try:
            history = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            history = []  # a corrupt trajectory never blocks the gate
    if not isinstance(history, list):
        history = [history]
    history.append({
        "sparsities": list(SPARSITIES),
        "block": list(BLOCK),
        "nm_pattern": list(NM_PATTERN),
        "cold_searches": cold_misses,
        "cold_selection_us": cold_search_us,
        "warm_selection_us": warm_search_us,
        "selection_speedup": speedup,
        "dump_entries": saved["entries"],
    })
    OUT_PATH.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended run {len(history)} to {OUT_PATH}")

    print(
        f"OK: zero cold searches after reload, {speedup:.1f}x selection cut, "
        f"warm latencies bit-identical"
    )


if __name__ == "__main__":
    main()
