"""Figure 13: Museformer inference latency and memory (V100, fp32).

Fine/coarse-grained music attention over sequences of 1k-32k tokens.
Paper claims: PIT 2.5x over PyTorch, 2.0x over PyTorch-S and DeepSpeed
before they crash OOM; the PyTorch-S index-construction share reaches
23.2% at short sequences and dilutes as sequences grow; PIT has the
lowest memory footprint.
"""

import pytest

from repro.hw import V100
from repro.models import museformer_workload
from repro.runtime import run_lineup, run_transformer
from repro.baselines import PyTorchSBackend

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

LINEUP = ("PyTorch", "PyTorch-S", "DeepSpeed", "PIT")
SEQS = (1024, 4096, 7168, 15360, 20480, 24576, 32768)
BATCH = 4


@pytest.mark.benchmark(group="fig13")
def test_fig13_museformer(benchmark, print_table):
    configs = [
        (f"{seq // 1024}k", museformer_workload(seq, batch_size=BATCH, seed=0))
        for seq in SEQS
    ]
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(configs, LINEUP, V100, "float32"),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            f"Figure 13 — Museformer, fp32, batch={BATCH} (V100)",
            "PIT 2.5x/2.0x/2.0x over PyTorch/PyTorch-S/DeepSpeed before "
            "they OOM; PIT lowest memory",
        )
    )
    print_table(["seq"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    for table in speedups.values():
        for name, value in table.items():
            assert value > 1.0, (name, value)

    # PyTorch (dense scores) dies first as sequences grow; PIT survives.
    long_reports = run_lineup(
        museformer_workload(SEQS[-1], batch_size=BATCH, seed=0),
        LINEUP, V100, "float32",
    )
    by_name = {r.backend: r for r in long_reports}
    assert by_name["PyTorch"].oom
    assert by_name["PIT"].ok
    ok = [r for r in long_reports if r.ok]
    assert by_name["PIT"].peak_mem_gib == min(r.peak_mem_gib for r in ok)


@pytest.mark.benchmark(group="fig13")
def test_fig13_convert_share_dilutes(benchmark, print_table):
    """PyTorch-S conversion share shrinks as compute grows with sequence
    length (the paper's 23.2%-then-diluted observation)."""

    def shares():
        out = []
        for seq in (1024, 16384):
            rep = run_transformer(
                museformer_workload(seq, batch_size=BATCH, seed=0),
                PyTorchSBackend(V100),
            )
            out.append((seq, rep.convert_ms / rep.latency_ms))
        return out

    result = benchmark.pedantic(shares, rounds=1, iterations=1)
    print(paper_note(
        "Figure 13 (detail) — PyTorch-S conversion share vs sequence length",
        "index construction is up to 23.2% at short sequences, diluted "
        "as computation grows",
    ))
    print_table(
        ["seq", "convert share"],
        [[s, f"{share * 100:.1f}%"] for s, share in result],
    )
    assert result[0][1] > result[1][1]
