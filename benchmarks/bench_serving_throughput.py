"""Serving throughput under sustained multi-request load.

Drives the :class:`~repro.runtime.serving.ServingEngine` with the paper's
Figure 11/12 traffic shapes — BERT batches with dataset-drawn variable
sequence lengths, OPT batches with ReLU activation sparsity, and Longformer
single-sequence requests with dynamic global attention — and reports:

* aggregate throughput and per-request latency/queueing-delay percentiles,
* the PlanCache hit rate, and
* the amortization headline: steady-state kernel-selection overhead per
  request vs the cold-start cost of running Algorithm 1 (the acceptance
  criterion is at least 10x; the deployed system's Section 5.5 equivalent
  is reusing its 30-100us search across invocations).

Run:  PYTHONPATH=src python benchmarks/bench_serving_throughput.py
"""

from __future__ import annotations

from repro.core import PlanCache
from repro.hw import V100
from repro.models import (
    bert_workload,
    longformer_workload,
    opt_inference_workload,
)
from repro.runtime import ServingEngine, format_table


def drive(engine: ServingEngine, label: str, workloads, *, interarrival_us):
    engine.submit_many(workloads, interarrival_us=interarrival_us)
    report = engine.run()
    sel = report.selection_summary()
    return report, sel, [
        label,
        len(report.requests),
        len(report.batches),
        report.throughput_tokens_per_s,
        report.mean_latency_us / 1e3,
        report.p95_latency_us / 1e3,
        report.mean_queue_us / 1e3,
        f"{report.plan_cache_stats['hit_rate'] * 100:.0f}%",
    ]


def main():
    cache = PlanCache()
    engine = ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=8,
        plan_cache=cache,
        enforce_memory=False,
    )

    streams = [
        (
            "BERT/mnli",
            [bert_workload("mnli", 8, seed=s) for s in range(24)],
            1500.0,
        ),
        (
            "BERT/cola",
            [bert_workload("cola", 8, seed=s) for s in range(24)],
            1500.0,
        ),
        (
            "OPT-125m/alpaca",
            [opt_inference_workload("125m", 4, seed=s % 4) for s in range(12)],
            4000.0,
        ),
        (
            "Longformer-2k",
            [longformer_workload(seq_len=2048, seed=s % 3) for s in range(6)],
            8000.0,
        ),
    ]

    rows = []
    cold_us, warm_us = [], []
    per_request_cold, per_request_warm = [], []
    for label, workloads, gap in streams:
        report, sel, row = drive(engine, label, workloads, interarrival_us=gap)
        rows.append(row)
        for b in report.batches:
            share = b.selection_us / b.size
            if b.cache_misses > 0:
                cold_us.append(b.selection_us)
                per_request_cold.append(share)
            elif b.cache_hits > 0:
                warm_us.append(b.selection_us)
                per_request_warm.append(share)

    print(
        format_table(
            ["stream", "reqs", "batches", "tok/s", "mean ms", "p95 ms",
             "queue ms", "hit rate"],
            rows,
            title="Serving throughput (V100, PIT backend, token-budget batching)",
        )
    )

    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
    cold = mean(per_request_cold)
    warm = mean(per_request_warm)
    if not warm_us:
        # Zero warm batches would make the amortization ratio inf and the
        # >=10x gate below pass vacuously without measuring anything.
        raise SystemExit(
            "FAIL: no warm (all-cache-hit) batches were observed — the "
            "amortization gate would be vacuous; the PlanCache is not "
            "amortizing across requests"
        )
    amortization = cold / warm if warm > 0 else float("inf")
    print()
    print(
        format_table(
            ["phase", "batches", "selection us/batch", "selection us/request"],
            [
                ["cold (Algorithm 1 runs)", len(cold_us), mean(cold_us), cold],
                ["steady (PlanCache hits)", len(warm_us), mean(warm_us), warm],
            ],
            title="Kernel-selection overhead: cold start vs steady state",
        )
    )
    print()
    stats = cache.stats()
    print(
        f"plan cache: {stats['hits']} hits / {stats['misses']} misses "
        f"({stats['hit_rate'] * 100:.1f}% hit rate, "
        f"{stats['size']}/{stats['capacity']} entries)"
    )
    print(f"amortization: steady-state selection is {amortization:.1f}x "
          f"cheaper per request than cold start")
    if amortization < 10:
        raise SystemExit(
            f"FAIL: expected >= 10x selection amortization, got {amortization:.1f}x"
        )
    print("OK: amortization >= 10x")


if __name__ == "__main__":
    main()
