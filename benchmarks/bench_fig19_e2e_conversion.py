"""Figure 19: end-to-end conversion overhead of PIT on BERT (GLUE, V100).

PIT's online index construction ("PIT Convert") accounts for only
0.7-1.1% of end-to-end latency, versus PyTorch-S's visible conversion
share; TVM (Ansor-tuned dense) is added as a tuned dense yardstick.
"""

import pytest

from repro.hw import V100
from repro.models import bert_workload
from repro.runtime import run_lineup
from repro.sparsity import GLUE_TASKS

from .conftest import paper_note

LINEUP = ("PyTorch", "TVM", "PyTorch-S", "PIT")


def run_glue():
    rows = []
    shares = {}
    for dataset in GLUE_TASKS:
        reports = run_lineup(
            bert_workload(dataset, 32, seed=0), LINEUP, V100, "float32"
        )
        by_name = {r.backend: r for r in reports}
        pit = by_name["PIT"]
        pts = by_name["PyTorch-S"]
        rows.append(
            [
                dataset,
                f"{by_name['PyTorch'].latency_ms:.1f}ms",
                f"{by_name['TVM'].latency_ms:.1f}ms",
                f"{pts.latency_ms:.1f}ms ({pts.convert_ms:.1f}c)",
                f"{pit.latency_ms:.1f}ms ({pit.convert_ms:.2f}c)",
            ]
        )
        shares[dataset] = (
            pit.convert_ms / pit.latency_ms,
            pts.convert_ms / pts.latency_ms,
        )
    return rows, shares


@pytest.mark.benchmark(group="fig19")
def test_fig19_e2e_conversion(benchmark, print_table):
    rows, shares = benchmark.pedantic(run_glue, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 19 — end-to-end conversion overhead, BERT/GLUE (V100)",
            "PIT Convert is 0.7-1.1% of end-to-end latency (almost "
            "invisible); PyTorch-S Convert is a visible share",
        )
    )
    print_table(["dataset", "PyTorch", "TVM", "PyTorch-S (conv)", "PIT (conv)"], rows)
    pit_shares = [s[0] for s in shares.values()]
    pts_shares = [s[1] for s in shares.values()]
    print(
        f"PIT convert share: {min(pit_shares) * 100:.2f}%"
        f"~{max(pit_shares) * 100:.2f}%; PyTorch-S: "
        f"{min(pts_shares) * 100:.1f}%~{max(pts_shares) * 100:.1f}%"
    )

    for dataset, (pit_share, pts_share) in shares.items():
        # PIT's conversion is a few percent at most...
        assert pit_share < 0.05, (dataset, pit_share)
        # ... and at least an order of magnitude below PyTorch-S's.
        assert pts_share > 3 * pit_share, (dataset, pts_share, pit_share)
