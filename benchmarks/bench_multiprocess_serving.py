"""Multiprocess serving: the worker pool must pay its way.

The cluster frontend (`repro.runtime.cluster`) moves batch execution into
real OS processes.  Three gates:

1. **Throughput**: on a CPU-bound trace over ``REPLICAS`` replicas, the
   process pool must reach at least ``SPEEDUP_GATE``x the throughput of
   the threaded front end, whose Python-level plan searches and pricing
   serialize on the GIL.  Worker startup (engine build, TileDB profile)
   is excluded from both timings.  The multiplier is only enforced when
   the machine actually has the cores (``os.cpu_count() >= REPLICAS``);
   on smaller hosts it is reported and skipped, loudly.
2. **Plan-cache sync**: serving the same workload through a 4-worker
   fleet must pay exactly as many cold plan searches as a single-worker
   fleet — the cache-delta broadcast makes N private caches behave like
   one, with zero duplicate searches.
3. **Decision equivalence**: ``cluster_replay_trace`` over real worker
   processes is bit-identical (timings included, under
   ``charge_selection=False``) to the simulated scheduler on the same
   seeded trace — crossing a process boundary changed nothing the policy
   can observe.

Each run appends a record to the cumulative ``BENCH_serving.json``
trajectory so future PRs can regress against the history.

Run:  PYTHONPATH=src python benchmarks/bench_multiprocess_serving.py
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from repro.hw import V100
from repro.models import bert_workload, switch_workload
from repro.models.workloads import (
    longformer_workload,
    museformer_workload,
    opt_inference_workload,
)
from repro.runtime import (
    AsyncServingFrontend,
    ClusterFrontend,
    ServingEngine,
    cluster_replay_trace,
    decision_trace,
    serve_cluster,
)

OUT_PATH = Path("BENCH_serving.json")

REPLICAS = 4
NUM_REQUESTS = 16
SPEEDUP_GATE = 1.5


def make_engine(replicas=REPLICAS, **kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=2,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=replicas,
        overlap_selection=False,
        charge_selection=False,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


def cpu_bound_trace(n=NUM_REQUESTS):
    """A trace of mostly-distinct batch signatures.

    Every new signature costs a cold plan search — pure-Python Algorithm 1
    work that serializes threads on the GIL but parallelizes across worker
    processes.  Four families with varied shapes give well over 12
    distinct signatures across the trace.
    """
    workloads = []
    for i in range(n):
        family, variant = i % 4, i // 4
        if family == 0:
            workloads.append(
                switch_workload((8, 16, 32, 64)[variant % 4],
                                batch_size=2, seed=i)
            )
        elif family == 1:
            workloads.append(
                longformer_workload(
                    "base", seq_len=512 * (1 + variant % 4), seed=i
                )
            )
        elif family == 2:
            # Big decoders: their cold plan searches are the most
            # expensive pure-Python work in the trace, exactly what the
            # GIL serializes and worker processes parallelize.
            size, sparsity = (
                ("125m", 0.90),
                ("350m", 0.95),
                ("1.3b", 0.99),
                ("350m", 0.80),
            )[variant % 4]
            workloads.append(
                opt_inference_workload(
                    size, batch_size=2, act_sparsity=sparsity, seed=i
                )
            )
        else:
            workloads.append(
                museformer_workload(
                    seq_len=1024 * (1 + variant % 2), seed=i
                )
            )
    return workloads


async def _timed_threaded(engine, workloads):
    frontend = AsyncServingFrontend(engine)
    await frontend.start()
    begin = time.perf_counter()
    futures = [await frontend.submit(w) for w in workloads]
    await frontend.drain()
    await asyncio.gather(*futures)
    elapsed = time.perf_counter() - begin
    await frontend.stop()
    return frontend.report(), elapsed


async def _timed_cluster(engine, workloads):
    frontend = ClusterFrontend(engine)
    # start() spawns the workers and blocks on their readiness pings, so
    # engine construction inside each process stays out of the timing.
    await frontend.start()
    begin = time.perf_counter()
    futures = [await frontend.submit(w) for w in workloads]
    await frontend.drain()
    await asyncio.gather(*futures)
    elapsed = time.perf_counter() - begin
    await frontend.stop()
    return frontend.report(), elapsed


def distinct_signatures(trace):
    """Distinct admission signatures across the trace's requests."""
    probe = make_engine(replicas=1)
    requests = probe.submit_many(trace)
    quantum = probe.plan_cache.quantum
    return len({r.batch_signature(quantum) for r in requests})


def append_trajectory(record: dict) -> None:
    runs = []
    if OUT_PATH.exists():
        try:
            runs = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = []
    runs.append(record)
    OUT_PATH.write_text(json.dumps(runs, indent=2))


def main():
    failures = []
    cores = os.cpu_count() or 1

    # --- Gate 1: process pool beats the GIL on a CPU-bound trace ----------
    # Best of two runs each: cold caches every time (fresh engines), but
    # scheduler noise on shared CI runners is damped.
    trace = cpu_bound_trace()
    threaded_report, threaded_s = min(
        (asyncio.run(_timed_threaded(make_engine(), trace)) for _ in range(2)),
        key=lambda pair: pair[1],
    )
    cluster_report, cluster_s = min(
        (asyncio.run(_timed_cluster(make_engine(), trace)) for _ in range(2)),
        key=lambda pair: pair[1],
    )
    for label, report in (
        ("threaded", threaded_report),
        ("cluster", cluster_report),
    ):
        if len(report.requests) != NUM_REQUESTS or not all(
            r.ok for r in report.requests
        ):
            failures.append(f"{label} run did not serve every request")
    speedup = threaded_s / cluster_s if cluster_s > 0 else 0.0
    enforce = cores >= REPLICAS
    if enforce and speedup < SPEEDUP_GATE:
        failures.append(
            f"throughput: process pool at {speedup:.2f}x the threaded "
            f"front end (need >= {SPEEDUP_GATE}x on {cores} cores)"
        )
    print(
        f"throughput gate: threaded {threaded_s * 1e3:.0f} ms vs "
        f"cluster {cluster_s * 1e3:.0f} ms -> {speedup:.2f}x "
        + (
            f"(gate >= {SPEEDUP_GATE}x)"
            if enforce
            else f"(SKIPPED: only {cores} core(s); gate needs {REPLICAS})"
        )
    )
    signatures = distinct_signatures(cpu_bound_trace())
    if signatures < 12:
        failures.append(
            f"trace too uniform: {signatures} distinct request signatures "
            f"(need >= 12 for a meaningful CPU-bound gate)"
        )
    print(f"trace: {signatures} distinct request signatures over "
          f"{len(threaded_report.batches)} batches")

    # --- Gate 2: N workers, one process's worth of cold searches ----------
    workload = bert_workload("mnli", 2, seed=0)
    single = serve_cluster(
        make_engine(replicas=1, max_batch_size=1), [workload] * 8
    )
    fleet = serve_cluster(
        make_engine(replicas=REPLICAS, max_batch_size=1), [workload] * 8
    )
    single_misses = sum(b.cache_misses for b in single.batches)
    fleet_misses = sum(b.cache_misses for b in fleet.batches)
    if fleet_misses != single_misses:
        failures.append(
            f"plan sync: {REPLICAS}-worker fleet paid {fleet_misses} cold "
            f"searches vs {single_misses} for one worker (duplicates "
            f"survived the cache-delta sync)"
        )
    print(
        f"plan-sync gate: {fleet_misses} cold searches across "
        f"{REPLICAS} workers vs {single_misses} in one process"
    )

    # --- Gate 3: decisions identical to the simulated scheduler -----------
    sim_engine = make_engine()
    sim_engine.submit_many(cpu_bound_trace(), interarrival_us=400.0)
    simulated = sim_engine.run(policy="continuous")
    clu_engine = make_engine()
    requests = clu_engine.submit_many(cpu_bound_trace(), interarrival_us=400.0)
    replayed = cluster_replay_trace(clu_engine, requests)
    equivalent = decision_trace(simulated, include_timing=True) == (
        decision_trace(replayed, include_timing=True)
    )
    if not equivalent:
        failures.append(
            "equivalence: worker processes forked the decision trace from "
            "the simulated scheduler"
        )
    print(
        f"equivalence gate: simulated vs cluster replay -> "
        f"{'decision-identical' if equivalent else 'DIVERGED'} "
        f"({len(replayed.batches)} batches)"
    )

    append_trajectory(
        {
            "bench": "multiprocess_serving",
            "timestamp": time.time(),
            "requests": NUM_REQUESTS,
            "replicas": REPLICAS,
            "cores": cores,
            "threaded_s": threaded_s,
            "cluster_s": cluster_s,
            "speedup": speedup,
            "speedup_enforced": enforce,
            "distinct_signatures": signatures,
            "fleet_cold_searches": fleet_misses,
            "single_cold_searches": single_misses,
            "replay_equivalent": equivalent,
            "ok": not failures,
        }
    )
    print(f"trajectory: appended run record to {OUT_PATH}")

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: multiprocess serving gates hold")


if __name__ == "__main__":
    main()
