"""Figure 11: BERT-base across 12 datasets (V100, fp32, batch 32).

Varying-sequence-length sparsity only.  Paper claims: PIT 1.3-4.9x over
PyTorch, 1.8-3.5x over PyTorch-S (32-token padding hurts on short GLUE
sequences), 1.2-4.5x over DeepSpeed, 1.1-1.9x over TurboTransformers (the
strongest baseline: dynamic length-bucketed batching).
"""

import pytest

from repro.hw import V100
from repro.models import bert_workload
from repro.sparsity import BERT_DATASETS

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

LINEUP = ("PyTorch", "PyTorch-S", "DeepSpeed", "TurboTransformer", "PIT")


@pytest.mark.benchmark(group="fig11")
def test_fig11_bert_datasets(benchmark, print_table):
    configs = [
        (name, bert_workload(name, 32, seed=0)) for name in BERT_DATASETS
    ]
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(configs, LINEUP, V100, "float32"),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            "Figure 11 — BERT-base on 12 datasets, fp32, batch=32 (V100)",
            "PIT 1.3-4.9x over PyTorch, 1.8-3.5x over PyTorch-S, 1.2-4.5x "
            "over DeepSpeed, 1.1-1.9x over TurboTransformers",
        )
    )
    print_table(["dataset"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    # PIT wins on every dataset.
    for dataset, table in speedups.items():
        for name, value in table.items():
            assert value > 1.0, (dataset, name, value)

    # PyTorch-S suffers most on the shortest-sequence dataset (cola):
    # padding 11-token sentences to 32 wastes ~2/3 of the compute.
    assert speedups["cola"]["PyTorch-S"] > speedups["imdb"]["PyTorch-S"]

    # PyTorch's worst case is on a GLUE task (high padding variance),
    # not on the long-document sets whose lengths clip at the max.
    from repro.sparsity import GLUE_TASKS

    worst_pt = max(speedups, key=lambda d: speedups[d]["PyTorch"])
    assert worst_pt in GLUE_TASKS
