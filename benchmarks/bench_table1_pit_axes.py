"""Table 1: operator tensor expressions and their PIT-axes.

Regenerated from the expression parser + Theorem 1 analysis (not
hard-coded); the benchmark also times the inference itself — PIT-axis
analysis must be cheap since it runs once per operator at compile time.
"""

import pytest

from repro.core import TABLE1_PIT_AXES, classify_axes, parse_expr, table1_rows

from .conftest import paper_note


@pytest.mark.benchmark(group="table1")
def test_table1_pit_axes(benchmark, print_table):
    rows = benchmark(table1_rows)
    print(
        paper_note(
            "Table 1 — PIT-axes of widely-used operators",
            "spatial + commutative/associative reduction axes are PIT-axes; "
            "derived (index-arithmetic) axes are not",
        )
    )
    print_table(
        ["operator", "tensor expression", "PIT-axes (inferred)"],
        [[name, src, ", ".join(axes)] for name, src, axes in rows],
    )
    for name, _, inferred in rows:
        assert frozenset(inferred) == frozenset(TABLE1_PIT_AXES[name]), name


@pytest.mark.benchmark(group="table1")
def test_table1_derived_axes_excluded(benchmark):
    """The convolution's x/y/i/j axes are rejected with explanations."""

    def classify():
        expr = parse_expr("C[n, f, x, y] += A[n, m, x+i, y+j] * B[f, m, i, j]")
        return classify_axes(expr)

    axes = benchmark(classify)
    for name in ("x", "y", "i", "j"):
        assert not axes[name].is_pit
        assert "index arithmetic" in axes[name].reason
