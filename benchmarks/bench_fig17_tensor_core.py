"""Figure 17: PIT with Tensor Cores (wmma), fp16 4096^3 SpMM.

wmma only supports 16x16x16 / 32x8x16 / 8x32x16 fragments, so a 32x1
sparsity granularity cannot feed it directly; PIT's transformation builds
dense fragments from 32x1 micro-tiles.  Paper claim: the 32x1 and 32x64
kernels PIT generates have *similar latency* across sparsity ratios 0-99%
— the transformation itself costs (almost) nothing.
"""

import pytest

from repro.baselines import PITSpmmKernel
from repro.hw import V100, wmma_supports
from repro.sparsity import granular_mask

from .conftest import paper_note

SIZE = 4096
SPARSITIES = (0.0, 0.10, 0.30, 0.50, 0.70, 0.90, 0.95, 0.99)


def run_tensor_core():
    kern = PITSpmmKernel(V100, "float16", tensor_core=True)
    rows = []
    ratios = []
    for sparsity in SPARSITIES:
        fine = granular_mask((SIZE, SIZE), (32, 1), sparsity, seed=9)
        coarse = granular_mask((SIZE, SIZE), (32, 64), sparsity, seed=9)
        t_fine = kern.spmm(fine, SIZE).compute_us
        t_coarse = kern.spmm(coarse, SIZE).compute_us
        rows.append(
            [f"{sparsity * 100:.0f}%", f"{t_fine / 1e3:.2f}ms",
             f"{t_coarse / 1e3:.2f}ms"]
        )
        ratios.append(t_fine / max(t_coarse, 1e-9))
    return rows, ratios


@pytest.mark.benchmark(group="fig17")
def test_fig17_tensor_core(benchmark, print_table):
    rows, ratios = benchmark.pedantic(run_tensor_core, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 17 — PIT + Tensor Core (wmma), fp16 4096^3",
            "the 32x1-micro-tile and 32x64-micro-tile sparse kernels have "
            "similar latency: PIT transformation adds little overhead",
        )
    )
    print_table(["sparsity", "32x1 micro-tile", "32x64 micro-tile"], rows)

    # wmma cannot express the 32x1 granularity directly...
    assert not wmma_supports(32, 1, 16)
    # ... yet the PIT-transformed kernels stay within ~2.5x of each other
    # across the whole sweep (paper reports near-identical curves; our tile
    # model keeps a <=2.4x residual from B-operand traffic of thin-tk
    # tiles — recorded in EXPERIMENTS.md).
    for sparsity, ratio in zip(SPARSITIES, ratios):
        assert 0.4 < ratio < 2.5, (sparsity, ratio)
    # Both kernels crush the dense fallback at extreme sparsity.
    assert ratios[-1] < 2.5


@pytest.mark.benchmark(group="fig17")
def test_fig17_tensor_core_beats_cuda_cores(benchmark):
    """The generated fp16 kernels actually use the Tensor Core rate."""
    mask = granular_mask((SIZE, SIZE), (32, 1), 0.5, seed=9)

    def both():
        tc = PITSpmmKernel(V100, "float16", tensor_core=True).spmm(mask, SIZE)
        cuda = PITSpmmKernel(V100, "float32").spmm(mask, SIZE)
        return tc.compute_us, cuda.compute_us

    tc_us, cuda_us = benchmark.pedantic(both, rounds=1, iterations=1)
    assert tc_us < cuda_us
