"""Figure 9: Swin-MoE end-to-end latency and memory (A100, fp16).

Batch sizes {8, 32} x expert counts {8, 16, 32}.  Paper claims: PIT
1.5-6.3x over PyTorch, 1.5-2.9x over PyTorch-S, 1.1-1.8x over Tutel,
1.2-1.6x over DeepSpeed, 1.1-1.4x over MegaBlocks; the gains are smaller
than Switch Transformer because MoE layers are only 23.6-61.2% of the
end-to-end latency at 8-32 experts.
"""

import pytest

from repro.hw import A100
from repro.models import swin_moe_workload
from repro.runtime import run_transformer
from repro.baselines import MegaBlocksBackend, PITBackend

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

EXPERTS = (8, 16, 32)
LINEUP = ("PyTorch", "PyTorch-S", "Tutel", "DeepSpeed", "MegaBlocks", "PIT")


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("batch", [32, 8])
def test_fig9_swin_moe(benchmark, print_table, batch):
    configs = [
        (f"{e} experts", swin_moe_workload(e, batch, seed=0)) for e in EXPERTS
    ]
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(configs, LINEUP, A100, "float16"),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            f"Figure 9 — Swin-MoE, fp16, batch={batch} (A100)",
            "smaller gains than Switch (fewer experts, MoE is 24-61% of "
            "latency); MegaBlocks the best baseline; PIT still fastest",
        )
    )
    print_table(["config"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    for table in speedups.values():
        for name, value in table.items():
            assert value > 1.0, (name, value)
        # The MoE-focused baselines sit much closer to PIT than on Switch.
        assert table["DeepSpeed"] < 2.0
        assert table["MegaBlocks"] < 2.0


@pytest.mark.benchmark(group="fig9")
def test_fig9_moe_layer_share(benchmark):
    """MoE layers contribute a minority-to-majority share (the paper's
    23.6-61.2% explanation for the smaller gains)."""
    wl = swin_moe_workload(32, 32, seed=0)
    rep = benchmark.pedantic(
        lambda: run_transformer(wl, MegaBlocksBackend(A100, "float16")),
        rounds=1, iterations=1,
    )
    moe_us = sum(
        v for k, v in rep.timeline.by_op().items() if k.startswith("moe.")
    )
    share = moe_us / rep.timeline.total_us
    print(f"\nMoE share of MegaBlocks latency at 32 experts: {share * 100:.1f}%")
    assert 0.1 < share < 0.75
