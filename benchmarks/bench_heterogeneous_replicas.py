"""Heterogeneous replicas: cost-aware placement vs least-loaded.

The paper's online model (Sections 3.2, 5.5) makes plans device-specific —
an A100 and a V100 pick different tiles for the same sparsity — and real
fleets are mixed.  `ServingEngine(replica_specs=[...])` builds one
backend/TileDB/Planner per distinct device class over one shared PlanCache,
and the continuous scheduler places closed batches to minimize predicted
finish time `max(close, free_at) + est_exec` on each class's analytical
model.  This benchmark gates the three properties that design exists for:

1. **Degenerate equivalence**: an all-identical lineup must reproduce the
   least-loaded scheduler's report bit-identically on every deterministic
   field (placement, batch composition, simulated latencies, cache
   accounting, per-replica totals).  Measured selection *wall* times are
   real wall clock and excluded — they differ between any two runs of the
   same scheduler.
2. **Mixed-fleet makespan**: on the same traffic, a mixed V100+A100 lineup
   under cost-aware placement must cut makespan — and mean latency by at
   least ``LATENCY_GATE`` — vs least-loaded placement.  Least-loaded is
   speed-blind: whenever the fleet is idle its (free_at, id) tie-break
   parks the batch on replica 0 regardless of device, so listing the slow
   V100 first exposes the pathology (fp16, where the A100's tensor cores
   make the classes genuinely different).
3. **Plan-cache scale-out**: adding replicas of already-seen device
   classes must add exactly zero cold Algorithm 1 searches — plans are
   keyed per class, not per replica.

Each run appends a record to the ``BENCH_serving.json`` trajectory (a JSON
list, like the ``BENCH_selection.json`` perf trajectory but cumulative), so
future PRs can regress against the serving-layer history.

Run:  PYTHONPATH=src python benchmarks/bench_heterogeneous_replicas.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core import PlanCache
from repro.hw import A100, V100
from repro.models import bert_workload
from repro.runtime import ServingEngine, format_table

OUT_PATH = Path("BENCH_serving.json")

#: Odd on purpose: under light load least-loaded strictly alternates
#: replicas (the replica just used always carries the larger free_at
#: stamp), so an odd-length stream ends its alternation — and therefore
#: the makespan-defining final batch — on the slow device listed first,
#: while cost-aware placement keeps every idle-fleet batch on the device
#: that finishes it soonest.
NUM_REQUESTS = 31
#: Light-to-moderate load: batches mostly close with the fleet idle, the
#: regime where least-loaded's speed-blind placement misassigns batches
#: the fleet had capacity to run on the faster device.
GAP_US = 4000.0
BATCH_WINDOW_US = 500.0
#: Cost-aware placement must cut mean latency at least this much on the
#: mixed lineup (observed: ~1.3x; the fp16 A100/V100 exec gap is ~1.45x).
LATENCY_GATE = 1.15

IDENTICAL_LINEUP = [V100, V100, V100]
#: Slow device first: naive id-order tie-breaks favour it, so every win
#: below is the placement policy's, not the lineup order's.
MIXED_LINEUP = [V100, A100]
SCALED_LINEUP = [V100, V100, A100, A100]


def stream() -> list:
    return [
        bert_workload("mnli" if s % 2 == 0 else "cola", 8, seed=s % 4)
        for s in range(NUM_REQUESTS)
    ]


def serve(cache, *, lineup, placement, gap_us=GAP_US):
    engine = ServingEngine(
        lineup[0],
        replica_specs=lineup,
        placement=placement,
        dtype="float16",
        max_batch_tokens=8192,
        max_batch_size=2,
        batch_window_us=BATCH_WINDOW_US,
        plan_cache=cache,
        enforce_memory=False,
    )
    engine.submit_many(stream(), interarrival_us=gap_us)
    return engine.run(policy="continuous")


def canonical(report) -> dict:
    """Every deterministic field of a serving report.

    Simulated latencies (`run.latency_ms`), placement, batch composition
    and cache accounting are pure functions of the traffic and the
    scheduler's decisions; measured selection wall times are host wall
    clock and excluded.
    """
    return {
        "batches": [
            [
                b.batch_id,
                list(b.request_ids),
                b.replica_id,
                b.tokens,
                b.padded_tokens,
                b.cache_hits,
                b.cache_misses,
                dict(b.plan_kinds),
                b.run.latency_ms,
                b.run.peak_mem_gib,
            ]
            for b in report.batches
        ],
        "requests": [
            [r.request_id, r.batch_id, r.tokens, r.ok]
            for r in report.requests
        ],
        "replicas": [
            [s.replica_id, s.device, s.batches, s.tokens]
            for s in report.replica_stats
        ],
    }


def append_trajectory(record: dict) -> None:
    """Append one run record to the BENCH_serving.json trajectory."""
    runs = []
    if OUT_PATH.exists():
        try:
            runs = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = []
    runs.append(record)
    OUT_PATH.write_text(json.dumps(runs, indent=2))


def main():
    failures = []

    # --- Gate 1: all-identical lineup == least-loaded, bit for bit ------
    def serve_identical(placement):
        cache = PlanCache()
        serve(cache, lineup=IDENTICAL_LINEUP, placement=placement)  # warm
        return serve(cache, lineup=IDENTICAL_LINEUP, placement=placement)

    identical_ll = serve_identical("least-loaded")
    identical_ca = serve_identical("cost-aware")
    identical_match = canonical(identical_ca) == canonical(identical_ll)
    if not identical_match:
        failures.append(
            "degenerate lineup: cost-aware placement diverged from the "
            "least-loaded report on deterministic fields"
        )
    print(
        f"degenerate gate: {len(IDENTICAL_LINEUP)} identical replicas -> "
        f"{'bit-identical' if identical_match else 'DIVERGED'} vs "
        f"least-loaded ({len(identical_ca.batches)} batches)"
    )

    # --- Gate 2: mixed lineup, cost-aware cuts makespan ------------------
    def serve_mixed(placement):
        cache = PlanCache()
        serve(cache, lineup=MIXED_LINEUP, placement=placement)  # warm
        return serve(cache, lineup=MIXED_LINEUP, placement=placement)

    mixed_ll = serve_mixed("least-loaded")
    mixed_ca = serve_mixed("cost-aware")
    speedup = (
        mixed_ll.makespan_us / mixed_ca.makespan_us
        if mixed_ca.makespan_us > 0
        else 0.0
    )
    latency_cut = (
        mixed_ll.mean_latency_us / mixed_ca.mean_latency_us
        if mixed_ca.mean_latency_us > 0
        else 0.0
    )
    if not mixed_ca.makespan_us < mixed_ll.makespan_us:
        failures.append(
            f"mixed lineup: cost-aware makespan "
            f"{mixed_ca.makespan_us / 1e3:.2f} ms did not beat least-loaded "
            f"{mixed_ll.makespan_us / 1e3:.2f} ms"
        )
    if latency_cut < LATENCY_GATE:
        failures.append(
            f"mixed lineup: cost-aware cut mean latency only "
            f"{latency_cut:.2f}x vs least-loaded (need >= {LATENCY_GATE}x)"
        )
    ca_classes = mixed_ca.device_class_stats()
    if (
        ca_classes.get(A100.name, {}).get("batches", 0)
        < ca_classes.get(V100.name, {}).get("batches", 0)
    ):
        failures.append(
            "mixed lineup: the strictly-faster A100 received fewer batches "
            "than the V100 under cost-aware placement"
        )

    def row(label, report):
        per_dev = report.device_class_stats()
        devs = "  ".join(
            f"{name.split('-')[0]}: {agg['batches']}b"
            for name, agg in sorted(per_dev.items())
        )
        return [
            label,
            len(report.batches),
            report.makespan_us / 1e3,
            report.mean_latency_us / 1e3,
            report.p95_latency_us / 1e3,
            devs,
        ]

    print()
    print(
        format_table(
            ["run", "batches", "makespan ms", "mean lat ms", "p95 lat ms",
             "per-device batches"],
            [
                row("least-loaded (V100+A100)", mixed_ll),
                row("cost-aware   (V100+A100)", mixed_ca),
            ],
            title=(
                f"Heterogeneous placement (interleaved BERT stream, "
                f"gap {GAP_US:.0f} us)"
            ),
        )
    )
    print(
        f"makespan gate: cost-aware = {speedup:.3f}x least-loaded "
        f"(mean latency {latency_cut:.2f}x better)"
    )

    # --- Gate 3: scale-out of seen classes adds zero cold searches -------
    shared = PlanCache()
    serve(shared, lineup=MIXED_LINEUP, placement="cost-aware", gap_us=0.0)
    misses_before = shared.misses
    scaled = serve(
        shared, lineup=SCALED_LINEUP, placement="cost-aware", gap_us=0.0
    )
    extra_cold = shared.misses - misses_before
    if extra_cold != 0:
        failures.append(
            f"scale-out: adding {len(SCALED_LINEUP) - len(MIXED_LINEUP)} "
            f"replicas of seen device classes paid {extra_cold} extra cold "
            f"searches (need 0)"
        )
    print(
        f"plan-cache gate: {extra_cold} extra cold searches scaling "
        f"{len(MIXED_LINEUP)} -> {len(SCALED_LINEUP)} replicas "
        f"({len({b.replica_id for b in scaled.batches})} replicas served)"
    )

    append_trajectory(
        {
            "bench": "heterogeneous_replicas",
            "timestamp": time.time(),
            "requests": NUM_REQUESTS,
            "identical_match": identical_match,
            "makespan_least_loaded_us": mixed_ll.makespan_us,
            "makespan_cost_aware_us": mixed_ca.makespan_us,
            "makespan_speedup": speedup,
            "mean_latency_cut": latency_cut,
            "p95_latency_least_loaded_us": mixed_ll.p95_latency_us,
            "p95_latency_cost_aware_us": mixed_ca.p95_latency_us,
            "extra_cold_searches": extra_cold,
            "ok": not failures,
        }
    )
    print(f"trajectory: appended run record to {OUT_PATH}")

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: heterogeneous replica gates hold")


if __name__ == "__main__":
    main()
