"""Ablations of PIT's design choices (DESIGN.md Section 5).

Three ablations isolate the components:

* **micro-tile search vs fixed micro-tile** — Algorithm 1's searched choice
  against always-32x32 covering (what a block-library effectively does);
* **unordered vs ordered index construction** — the PIT property removes
  the sort from detection; an ordered index would add a sorting pass;
* **dense-fallback threshold** — disabling the fallback must never help,
  and at low sparsity it actively hurts.

Plus the Section 6 extension: routing only 2:4-eligible micro-tiles to the
Sparse Tensor Core.
"""

import numpy as np
import pytest

from repro.baselines import PITSpmmKernel, TritonBlockSparseKernel
from repro.core import (
    MicroTile,
    SparseIndex,
    TileDB,
    build_index,
    index_construction_time_us,
    kernel_selection,
)
from repro.hw import V100, SparseTensorCore, is_two_four_eligible, stream_time_us
from repro.sparsity import granular_mask, two_four_mask

from .conftest import paper_note

SIZE = 2048


@pytest.fixture(scope="module")
def tiledb():
    return TileDB(V100, "float32")


@pytest.mark.benchmark(group="ablation")
def test_ablation_microtile_search(benchmark, print_table, tiledb):
    """Searched micro-tile vs a fixed 32x32 cover across granularities."""

    def run():
        rows = []
        gains = []
        for granularity in ((2, 1), (8, 1), (1, 64), (32, 32)):
            mask = granular_mask((SIZE, SIZE), granularity, 0.95, seed=21)
            searched = kernel_selection([mask], SIZE, SIZE, SIZE, tiledb)
            fixed = TritonBlockSparseKernel(V100, block=32).spmm(mask, SIZE)
            gain = fixed.compute_us / searched.est_cost_us
            rows.append(
                [
                    f"{granularity[0]}x{granularity[1]}",
                    str(searched.microtile) if searched.microtile else "dense",
                    f"{searched.est_cost_us / 1e3:.2f}ms",
                    f"{fixed.compute_us / 1e3:.2f}ms",
                    f"{gain:.1f}x",
                ]
            )
            gains.append((granularity, gain))
        return rows, gains

    rows, gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print(paper_note(
        "Ablation — micro-tile search vs fixed 32x32 cover",
        "searching the micro-tile shape is what makes fine granularity "
        "cheap; on block-aligned patterns the search matches the fixed tile",
    ))
    print_table(
        ["granularity", "searched micro", "searched", "fixed 32x32", "gain"],
        rows,
    )
    by_gran = dict(gains)
    assert by_gran[(2, 1)] > 2.0      # fine granularity: search matters a lot
    assert by_gran[(32, 32)] < 2.6    # block-aligned: fixed cover is fine


@pytest.mark.benchmark(group="ablation")
def test_ablation_unordered_index(benchmark, print_table):
    """Unordered (atomic-add) index vs an ordered one needing a sort pass."""

    def run():
        mask = granular_mask((4096, 4096), (1, 1), 0.95, seed=4)
        idx = build_index(mask, MicroTile((1, 8)), V100, seed=9)
        unordered_us = idx.construct_us
        # An ordered index adds a device sort over the index entries:
        # several passes over the (num_microtiles x 8B) key-value pairs.
        sort_bytes = idx.num_microtiles * 8
        ordered_us = unordered_us + 6 * stream_time_us(sort_bytes, V100) + \
            2 * V100.kernel_launch_us
        return idx, unordered_us, ordered_us

    idx, unordered_us, ordered_us = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(paper_note(
        "Ablation — unordered vs ordered index construction",
        "PIT's permutation invariance removes the sort from detection",
    ))
    print_table(
        ["variant", "latency"],
        [["unordered (PIT)", f"{unordered_us:.1f}us"],
         ["ordered (sort added)", f"{ordered_us:.1f}us"]],
    )
    assert ordered_us > unordered_us
    # The index is genuinely unordered, and ordering it changes nothing
    # semantically (checked functionally in the kernel tests).
    ordered = idx.ordered()
    assert not np.array_equal(idx.positions, ordered.positions)
    assert set(map(tuple, idx.positions)) == set(map(tuple, ordered.positions))


@pytest.mark.benchmark(group="ablation")
def test_ablation_dense_fallback(benchmark, print_table, tiledb):
    """Disabling the dense fallback hurts at low sparsity, never helps."""

    def run():
        rows = []
        for sparsity in (0.10, 0.50, 0.95):
            mask = granular_mask((SIZE, SIZE), (1, 1), sparsity, seed=6)
            with_fb = kernel_selection(
                [mask], SIZE, SIZE, SIZE, tiledb, include_dense_fallback=True
            )
            without_fb = kernel_selection(
                [mask], SIZE, SIZE, SIZE, tiledb, include_dense_fallback=False
            )
            rows.append(
                [
                    f"{sparsity * 100:.0f}%",
                    "dense" if with_fb.is_dense_fallback else "sparse",
                    f"{with_fb.est_cost_us / 1e3:.2f}ms",
                    f"{without_fb.est_cost_us / 1e3:.2f}ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(paper_note(
        "Ablation — the dense fallback of Algorithm 1",
        "low-sparsity inputs 'seamlessly fall back to dense computation'",
    ))
    print_table(
        ["sparsity", "with-fallback choice", "with", "without"], rows
    )
    assert rows[0][1] == "dense"   # 10% sparsity -> fallback
    assert rows[2][1] == "sparse"  # 95% sparsity -> PIT rule
    for row in rows:
        assert float(row[2].rstrip("ms")) <= float(row[3].rstrip("ms")) + 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_sparse_tensor_core(benchmark, print_table):
    """Section 6 extension: feed only 2:4-eligible micro-tiles to mma.sp."""

    def run():
        mask24 = two_four_mask((256, 256), seed=0)
        stc = SparseTensorCore(V100)
        eligible = is_two_four_eligible(mask24.astype(float))
        dense_ratio = stc.fragment_time_ratio(eligible=False)
        sparse_ratio = stc.fragment_time_ratio(eligible=True)
        # A mixed matrix: half strict-2:4 rows, half all-zero rows.  PIT
        # skips the all-zero micro-tiles entirely and runs the rest at the
        # mma.sp rate; plain 2:4 hardware would compute the zero rows too.
        mixed_rows = 256
        pit_time = (mixed_rows / 2) * sparse_ratio
        hw_only = mixed_rows * sparse_ratio
        return eligible, dense_ratio, sparse_ratio, pit_time, hw_only

    eligible, dense_ratio, sparse_ratio, pit_time, hw_only = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(paper_note(
        "Extension — PIT + Sparse Tensor Core (mma.sp)",
        "PIT feeds only 2:4-eligible micro-tiles to the instruction and "
        "skips all-zero tiles the hardware alone would still compute",
    ))
    print_table(
        ["variant", "relative time"],
        [["dense fragments", f"{dense_ratio:.2f}"],
         ["2:4 fragments (mma.sp)", f"{sparse_ratio:.2f}"],
         ["mma.sp on mixed matrix", f"{hw_only:.0f} units"],
         ["PIT-augmented (skip zero tiles)", f"{pit_time:.0f} units"]],
    )
    assert eligible
    assert sparse_ratio == pytest.approx(0.5)
    assert pit_time < hw_only
