"""Figure 15: iterative-pruning sparse training (BERT, V100).

Magnitude pruning at block granularities 32x64 and 32x1, sparsity 50-98%.
Paper claims: at 32x64 PIT is 1.5-3.0x over PyTorch and 1.7-2.2x over
PyTorch-S (whose per-step layout rebuilds dominate); at 32x1 PIT is 2.4x
over PyTorch and 4.8x over PyTorch-S (32x32 blocks cover nearly the whole
matrix); PIT's 32x1 latency roughly equals its 32x64 latency — micro-tiles
cover fine granularity while the kernel stays coarse ("best of both
worlds"); PIT uses the least memory and its footprint falls with sparsity.
"""

import pytest

from repro.hw import V100
from repro.runtime import format_table, sparse_training_step

from .conftest import paper_note

SPARSITIES = (0.50, 0.80, 0.90, 0.94, 0.96, 0.98)
BACKENDS = ("pytorch", "pytorch-s", "pit")
BATCH_TOKENS = 32 * 128


def run_block(block):
    rows = []
    results = {}
    for sparsity in SPARSITIES:
        row = [f"{sparsity * 100:.0f}%"]
        for backend in BACKENDS:
            rep = sparse_training_step(
                backend, V100, block=block, sparsity=sparsity,
                batch_tokens=BATCH_TOKENS, seed=7,
            )
            results[(backend, sparsity)] = rep
            row.append(
                f"{rep.latency_ms:.0f}ms({rep.convert_ms:.0f}c)/{rep.mem_gib:.1f}G"
            )
        rows.append(row)
    return rows, results


@pytest.mark.benchmark(group="fig15")
@pytest.mark.parametrize("block", [(32, 64), (32, 1)], ids=["32x64", "32x1"])
def test_fig15_sparse_training(benchmark, print_table, block):
    rows, results = benchmark.pedantic(
        lambda: run_block(block), rounds=1, iterations=1
    )
    print(
        paper_note(
            f"Figure 15 — iterative pruning, block {block[0]}x{block[1]} (V100)",
            "PIT fastest at both granularities; PyTorch-S slower than dense "
            "PyTorch at 32x1 (32x32 blocks cover almost everything)",
        )
    )
    print_table(["sparsity"] + list(BACKENDS), rows)

    for sparsity in SPARSITIES:
        pit = results[("pit", sparsity)]
        pt = results[("pytorch", sparsity)]
        pts = results[("pytorch-s", sparsity)]
        assert pit.latency_ms < pt.latency_ms
        assert pit.latency_ms < pts.latency_ms
        assert pit.mem_gib <= pt.mem_gib
        # The training path now resolves through Planner.resolve: each
        # figure point pays one cold full-TileDB search per matmul family
        # (attn/ffn1/ffn2) and reports it as provenance.
        assert pit.plan_misses == 3 and pit.plan_hits == 0
        assert pit.search_us > 0
        assert pt.plan_misses == 0 and pts.plan_misses == 0
        if block == (32, 1) and sparsity <= 0.94:
            # The 32x32 block cover is nearly dense: PyTorch-S loses to
            # plain dense PyTorch.
            assert pts.latency_ms > pt.latency_ms


@pytest.mark.benchmark(group="fig15")
def test_fig15_pit_granularity_insensitive(benchmark, print_table):
    """PIT's 32x1 latency ~ its 32x64 latency (the headline observation)."""

    def compare():
        coarse = sparse_training_step(
            "pit", V100, block=(32, 64), sparsity=0.9,
            batch_tokens=BATCH_TOKENS, seed=7,
        )
        fine = sparse_training_step(
            "pit", V100, block=(32, 1), sparsity=0.9,
            batch_tokens=BATCH_TOKENS, seed=7,
        )
        return coarse, fine

    coarse, fine = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 15 (detail) — PIT latency vs pruning granularity",
            "PIT at 32x1 is almost as fast as at 32x64: fine micro-tiles "
            "cover the data while the compute tile stays coarse",
        )
    )
    print(
        format_table(
            ["granularity", "latency"],
            [["32x64", f"{coarse.latency_ms:.1f}ms"],
             ["32x1", f"{fine.latency_ms:.1f}ms"]],
        )
    )
    assert fine.latency_ms < 1.6 * coarse.latency_ms


@pytest.mark.benchmark(group="fig15")
def test_fig15_pit_memory_falls_with_sparsity(benchmark):
    reps = benchmark.pedantic(
        lambda: [
            sparse_training_step(
                "pit", V100, block=(32, 1), sparsity=s,
                batch_tokens=BATCH_TOKENS, seed=7,
            )
            for s in (0.5, 0.98)
        ],
        rounds=1, iterations=1,
    )
    assert reps[1].mem_gib < reps[0].mem_gib
