"""Table 3: micro-tile online search results (+ the Section 5.5 timing).

4096^3 matmul, sparsity granularities {2x1, 4x1, 8x1, 32x1} at ratios
{95, 99}%.  For each configuration Algorithm 1 reports the chosen
micro-tile, the sparsity ratio after covering, the dense kernel it maps to
and the estimated latency.  Paper anchors: the 'after cover' column —
(2,1)@95% -> 66.39%, (4,1)@95% -> 81.45%, (8,1)@95% -> 95%,
(8,1)@99% -> 96.06%, (32,1)@95/99% -> unchanged — is pure cover math and
must reproduce to within sampling noise; the search itself took 30-100us
in the CUDA implementation (we report our Python search wall time).
"""

import pytest

from repro.core import TileDB, kernel_selection
from repro.hw import V100
from repro.sparsity import granular_mask

from .conftest import paper_note

SIZE = 4096
CONFIGS = [
    ((2, 1), 0.95, 0.6639),
    ((2, 1), 0.99, 0.9606),
    ((4, 1), 0.95, 0.8145),
    ((4, 1), 0.99, 0.9605),
    ((8, 1), 0.95, 0.9500),
    ((8, 1), 0.99, 0.9602),
    ((32, 1), 0.95, 0.9500),
    ((32, 1), 0.99, 0.9900),
]


@pytest.fixture(scope="module")
def tiledb():
    return TileDB(V100, "float32")


def run_search(tiledb):
    rows = []
    checks = []
    for granularity, sparsity, expected_cover in CONFIGS:
        mask = granular_mask((SIZE, SIZE), granularity, sparsity, seed=11)
        choice = kernel_selection([mask], SIZE, SIZE, SIZE, tiledb)
        rows.append(
            [
                f"({granularity[0]},{granularity[1]})",
                f"{sparsity * 100:.0f}%",
                str(choice.microtile) if choice.microtile else "dense",
                f"{choice.covered_sparsity * 100:.2f}%",
                choice.tile.describe(),
                f"{choice.est_cost_us / 1e3:.2f}ms",
                f"{choice.search_time_us / 1e3:.1f}ms wall",
            ]
        )
        checks.append((choice, expected_cover, granularity, sparsity))
    return rows, checks


@pytest.mark.benchmark(group="table3")
def test_table3_microtile_search(benchmark, print_table, tiledb):
    rows, checks = benchmark.pedantic(
        lambda: run_search(tiledb), rounds=1, iterations=1
    )
    print(
        paper_note(
            "Table 3 — micro-tile online search (4096^3 matmul, V100)",
            "selected micro-tile balances kernel efficiency vs coverage "
            "waste; 'after cover' column matches the paper's cover math",
        )
    )
    print_table(
        ["granularity", "sparsity", "micro-tile", "after cover",
         "dense kernel", "est latency", "search time"],
        rows,
    )

    for choice, expected_cover, granularity, sparsity in checks:
        assert not choice.is_dense_fallback, (granularity, sparsity)
        # The paper's 'Sparsity Ratio After Cover' numbers are cover math;
        # ours must land within sampling noise *when the same micro-tile is
        # selected*, and never below the original sparsity's complement.
        assert choice.covered_sparsity <= sparsity + 0.005  # sampling noise
        # Micro-tiles are thin strips (extent 1 on the PIT-axis).  Our cost
        # model sometimes prefers the transposed rule relative to Table 3 —
        # e.g. (1, 8) row strips instead of (16, 1) column strips for the
        # (2,1) granularity — with identical cover mathematics (66.33% vs
        # the paper's 66.39% after cover).
        assert 1 in choice.microtile.shape, (granularity, sparsity)

    # Higher sparsity never selects a *smaller* estimated latency... (it
    # does select a smaller or equal one: more zeros, less work).
    by_key = {(g, s): c for c, _, g, s in checks}
    for granularity in ((2, 1), (4, 1), (8, 1), (32, 1)):
        assert (
            by_key[(granularity, 0.99)].est_cost_us
            <= by_key[(granularity, 0.95)].est_cost_us
        )


@pytest.mark.benchmark(group="table3")
def test_table3_exact_cover_anchors(benchmark):
    """The four cover-math anchors from the paper, checked directly."""
    from repro.core import covered_sparsity

    def anchors():
        out = {}
        for granularity, sparsity, micro, expected in [
            ((2, 1), 0.95, (16, 1), 0.6639),
            ((4, 1), 0.95, (16, 1), 0.8145),
            ((8, 1), 0.99, (32, 1), 0.9606),
            ((32, 1), 0.95, (32, 1), 0.9500),
        ]:
            mask = granular_mask((SIZE, SIZE), granularity, sparsity, seed=11)
            out[(granularity, sparsity)] = (
                covered_sparsity(mask, micro), expected
            )
        return out

    results = benchmark.pedantic(anchors, rounds=1, iterations=1)
    for key, (measured, expected) in results.items():
        assert measured == pytest.approx(expected, abs=0.01), key
