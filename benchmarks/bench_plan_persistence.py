"""Plan-cache persistence: a warm cache must survive process restarts.

The PlanSpec redesign makes every serving-path plan — token projection,
activation-sparse FFN, dynamic attention, merged-routing MoE — a
JSON-round-trippable artifact keyed by a serializable spec.  This benchmark
gates the property the redesign exists for:

1. drive a mixed traffic trace (BERT + OPT + Longformer + Switch-MoE)
   through a cold engine, paying the real Algorithm 1 searches;
2. ``ServingEngine.save_plan_cache`` the warmed cache to disk;
3. revive it with ``PlanCache.load`` (TileDB-key validated) inside a
   **fresh** engine and replay the identical trace.

Gates:

* the reloaded run performs **zero** cold searches (no plan-cache misses,
  no cold batches) — every spec built from the replayed traffic keys the
  dump exactly;
* every plan kind resolved cold is resolved warm (same per-kind plan mix);
* total measured selection wall time drops at least ``MIN_SPEEDUP``x —
  the warm start actually buys the restart something;
* a dump is *not* transferable across tile databases: loading against a
  different device's TileDB key must raise.

The dump is written to ``BENCH_plan_cache.json`` so CI can archive it.

Run:  PYTHONPATH=src python benchmarks/bench_plan_persistence.py
"""

from __future__ import annotations

import os

from repro.core import PlanCache, TileDB
from repro.hw import A100, V100
from repro.models import (
    bert_workload,
    longformer_workload,
    opt_inference_workload,
    switch_workload,
)
from repro.runtime import ServingEngine, format_table

DUMP_PATH = "BENCH_plan_cache.json"
#: The warm replay must cut total measured selection wall time at least
#: this much (observed: >50x — lookups vs real Algorithm 1 searches).
MIN_SPEEDUP = 3.0


def traffic() -> list:
    """A mixed trace exercising all four plan kinds, with enough repeats
    per shape that the cold run itself reaches a steady state."""
    wls = [bert_workload("mnli", 8, seed=s) for s in range(8)]
    wls += [bert_workload("cola", 8, seed=s) for s in range(8)]
    wls += [opt_inference_workload("125m", 4, seed=s % 2) for s in range(6)]
    wls += [longformer_workload(seq_len=2048, batch_size=1, seed=s % 2)
            for s in range(4)]
    wls += [switch_workload(8, 4, seed=s % 2) for s in range(6)]
    return wls


def serve(cache: PlanCache) -> tuple:
    engine = ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=8,
        plan_cache=cache,
        enforce_memory=False,
    )
    engine.submit_many(traffic(), interarrival_us=2000.0)
    # Drain policy: deterministic batching, so the replay forms the exact
    # same batches (and therefore the exact same merged-workload specs).
    return engine, engine.run()


def main():
    # --- Cold process: pay the searches, persist the outcome -------------
    cold_cache = PlanCache()
    cold_engine, cold_report = serve(cold_cache)
    cold_sel = cold_report.selection_summary()
    if cold_cache.misses == 0:
        raise SystemExit("FAIL: the cold run paid no searches — nothing to gate")
    saved = cold_engine.save_plan_cache(DUMP_PATH)

    # --- "Restarted" process: fresh engine, reloaded cache ---------------
    loaded = PlanCache.load(
        DUMP_PATH, expected_tiledb_key=cold_engine.tiledb.cache_key
    )
    warm_engine, warm_report = serve(loaded)
    warm_sel = warm_report.selection_summary()

    rows = [
        ["cold (fresh cache)", len(cold_report.batches),
         cold_sel["cold_batches"], cold_cache.misses,
         cold_report.total_selection_us / 1e3],
        ["warm (reloaded dump)", len(warm_report.batches),
         warm_sel["cold_batches"], loaded.misses,
         warm_report.total_selection_us / 1e3],
    ]
    print(
        format_table(
            ["run", "batches", "cold batches", "cache misses", "selection ms"],
            rows,
            title="Plan persistence: cold process vs reloaded warm start",
        )
    )
    print()
    kinds = "  ".join(
        f"{kind}: {agg['resolved']}"
        for kind, agg in sorted(warm_sel["plans_by_kind"].items())
    )
    print(f"plan kinds served warm: {kinds}")
    print(f"dump: {saved['entries']} entries "
          f"({saved['skipped']} skipped) -> {DUMP_PATH} "
          f"({os.path.getsize(DUMP_PATH)} bytes)")

    # --- Gates ------------------------------------------------------------
    if loaded.misses != 0 or warm_sel["cold_batches"] != 0:
        raise SystemExit(
            f"FAIL: reloaded engine paid {loaded.misses} cache misses over "
            f"{warm_sel['cold_batches']} cold batches; expected zero cold "
            f"searches from a persisted cache"
        )
    expected_kinds = {"proj", "ffn-act", "attention", "moe-grouped"}
    warm_kinds = set(warm_sel["plans_by_kind"])
    if warm_kinds != expected_kinds:
        raise SystemExit(
            f"FAIL: warm run resolved plan kinds {sorted(warm_kinds)}, "
            f"expected {sorted(expected_kinds)}"
        )
    if {k: v["resolved"] for k, v in warm_sel["plans_by_kind"].items()} != \
       {k: v["resolved"] for k, v in cold_sel["plans_by_kind"].items()}:
        raise SystemExit(
            "FAIL: the replayed traffic resolved a different plan mix than "
            "the cold run — the dump does not describe identical serving"
        )
    speedup = (
        cold_report.total_selection_us / warm_report.total_selection_us
        if warm_report.total_selection_us > 0
        else float("inf")
    )
    print(f"selection wall-time speedup from warm start: {speedup:.1f}x")
    if speedup < MIN_SPEEDUP:
        raise SystemExit(
            f"FAIL: expected >= {MIN_SPEEDUP}x warm-start selection speedup, "
            f"got {speedup:.1f}x"
        )

    # A dump must not leak across tile databases.
    foreign = TileDB.shared(A100, "float32")
    try:
        PlanCache.load(DUMP_PATH, expected_tiledb_key=foreign.cache_key)
    except ValueError:
        pass
    else:
        raise SystemExit(
            "FAIL: a dump built on V100 loaded against the A100 TileDB key"
        )

    print(f"OK: zero cold searches after reload, {speedup:.1f}x selection "
          f"speedup, foreign-TileDB dump rejected")


if __name__ == "__main__":
    main()
