"""Concurrent serving: sharded PlanCache contention and live/simulated parity.

The real-concurrency front end (`repro.runtime.frontend`) only earns its
keep if (a) the sharded plan cache actually removes the head-of-line
blocking a single cache lock imposes while a cold Algorithm 1 search runs,
and (b) going concurrent changes *nothing* about the decisions the paper's
scheduler makes.  Three gates:

1. **Contention**: with ``WARM_THREADS`` threads doing warm plan lookups
   while a cold Algorithm 1 search stream runs, the sharded single-flight
   cache must beat a global-lock baseline (one lock held across the whole
   search, the pre-sharding design) by at least ``CONTENTION_GATE``x on
   mean warm-lookup latency.
2. **Zero extra cold searches**: serving the same workloads through the
   real asyncio front end (4 worker replicas pulling batches concurrently)
   must run exactly as many cold Algorithm 1 searches as the simulated
   continuous scheduler — concurrency never duplicates a search.
3. **Equivalence**: a seeded trace replayed through the front end in
   virtual time must reproduce the simulated scheduler's batch
   compositions, placements and timings decision-for-decision.

Each run appends a record to the cumulative ``BENCH_serving.json``
trajectory so future PRs can regress against the history.

Run:  PYTHONPATH=src python benchmarks/bench_concurrent_serving.py
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path

from repro.core import PlanCache, Planner, TileDB
from repro.hw import V100
from repro.models import bert_workload, switch_workload
from repro.models.workloads import opt_inference_workload
from repro.runtime import (
    ServingEngine,
    decision_trace,
    replay_trace,
    serve_workloads,
)
from repro.sparsity import granular_mask

OUT_PATH = Path("BENCH_serving.json")

WARM_THREADS = 4
COLD_SEARCHES = 6
#: Sharded warm lookups during a concurrent cold search must be at least
#: this much faster than under a global lock held across the search
#: (observed: orders of magnitude — a cold search blocks the global lock
#: for whole milliseconds while a warm hit needs microseconds).
CONTENTION_GATE = 2.0
#: ~300 us between warm lookups per thread: several lookups land inside
#: every multi-millisecond cold search, so lock waits dominate the mean.
WARM_LOOKUP_GAP_S = 0.0003
NUM_REQUESTS = 24
REPLICAS = 4


class GlobalLockPlanCache:
    """The pre-sharding design, as a baseline: one lock for every
    operation, held across the entire Algorithm 1 search on a miss."""

    def __init__(self, inner: PlanCache):
        self._inner = inner
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            return self._inner.get(key)

    def put(self, key, value):
        with self._lock:
            self._inner.put(key, value)

    def get_or_compute(self, key, compute):
        with self._lock:  # held across compute: warm readers wait
            value = self._inner.get(key)
            if value is not None:
                return value, True
            value = compute()
            self._inner.put(key, value)
            return value, False

    def __getattr__(self, name):
        return getattr(self._inner, name)


def cold_stream(planner):
    """Fresh (never-cached) specs: sparsities spaced past the signature
    quantum and distinct shapes, so every resolve is a real cold search."""
    specs = []
    for i in range(COLD_SEARCHES):
        mask = granular_mask((1024, 1024), (8, 1), 0.50 + 0.06 * i, seed=i)
        specs.append(
            (planner.make_spec("proj", [mask], 1024, 1024, 256 * (i + 1)),
             mask)
        )
    return specs


def contention_trial(label, cache):
    """Mean warm-lookup latency (us) while cold searches run concurrently."""
    db = TileDB.shared(V100, "float32")
    planner = Planner(db, cache)
    warm_keys = [
        ("plan", "proj", 128, 64, 64, "A", (1000 + i,), True, "warm")
        for i in range(WARM_THREADS)
    ]
    for key in warm_keys:
        cache.put(key, "warm")
    specs = cold_stream(planner)

    stop = threading.Event()
    ready = threading.Barrier(WARM_THREADS + 1)
    latencies = [[] for _ in range(WARM_THREADS)]

    def warm_loop(i):
        key, out = warm_keys[i], latencies[i]
        ready.wait()
        while not stop.is_set():
            # Pace the lookups: a spinning loop would take most of its
            # samples between blocking windows (and fight over the GIL),
            # drowning the lock-wait signal in loop overhead.  Paced
            # lookups measure what a serving worker sees: the latency of
            # a warm hit issued while a cold search is in flight.
            time.sleep(WARM_LOOKUP_GAP_S)
            t0 = time.perf_counter()
            cache.get(key)
            out.append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=warm_loop, args=(i,))
        for i in range(WARM_THREADS)
    ]
    for t in threads:
        t.start()
    ready.wait()
    cold = 0
    for spec, mask in specs:
        resolved = planner.resolve(spec, lambda m=mask: [m])
        cold += bool(resolved.cold)
    stop.set()
    for t in threads:
        t.join()
    samples = [s for out in latencies for s in out]
    mean_us = statistics.fmean(samples) * 1e6
    print(
        f"contention [{label}]: {cold}/{COLD_SEARCHES} cold searches, "
        f"{len(samples)} warm lookups, mean {mean_us:.2f} us"
    )
    return mean_us, cold


def serving_trace(n=NUM_REQUESTS):
    workloads = []
    for i in range(n):
        if i % 5 == 0:
            workloads.append(
                opt_inference_workload("125m", batch_size=2, seed=i)
            )
        elif i % 5 == 3:
            workloads.append(switch_workload(8, batch_size=2, seed=i))
        else:
            workloads.append(bert_workload("mnli", 2, seed=i))
    return workloads


def make_engine(**kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=4,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=REPLICAS,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


def append_trajectory(record: dict) -> None:
    runs = []
    if OUT_PATH.exists():
        try:
            runs = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = []
    runs.append(record)
    OUT_PATH.write_text(json.dumps(runs, indent=2))


def main():
    failures = []

    # --- Gate 1: sharded warm lookups vs global-lock baseline ------------
    baseline_us, baseline_cold = contention_trial(
        "global lock", GlobalLockPlanCache(PlanCache(shards=1))
    )
    sharded_us, sharded_cold = contention_trial("sharded", PlanCache())
    ratio = baseline_us / sharded_us if sharded_us > 0 else 0.0
    if baseline_cold != COLD_SEARCHES or sharded_cold != COLD_SEARCHES:
        failures.append(
            f"contention: expected {COLD_SEARCHES} cold searches per trial, "
            f"got baseline={baseline_cold} sharded={sharded_cold}"
        )
    if ratio < CONTENTION_GATE:
        failures.append(
            f"contention: sharded warm lookups only {ratio:.2f}x faster "
            f"than the global-lock baseline (need >= {CONTENTION_GATE}x)"
        )
    print(
        f"contention gate: sharded mean warm-lookup latency "
        f"{ratio:.1f}x better under concurrent cold search"
    )

    # --- Gate 2: live front end runs zero extra cold searches ------------
    workloads = serving_trace()
    sim_engine = make_engine(charge_selection=True)
    sim_engine.submit_many(workloads, interarrival_us=300.0)
    simulated = sim_engine.run(policy="continuous")

    live_engine = make_engine(charge_selection=True)
    live = serve_workloads(live_engine, workloads)
    extra_cold = (
        live.plan_cache_stats["misses"] - simulated.plan_cache_stats["misses"]
    )
    if live.failed_requests != 0:
        failures.append(
            f"live serving: {live.failed_requests} requests failed"
        )
    # One-sided: the live path may legitimately run *fewer* searches (its
    # burst arrivals pack fuller batches than the simulated interarrival
    # spacing), but concurrency must never duplicate one.
    if extra_cold > 0:
        failures.append(
            f"live serving: {REPLICAS} concurrent workers paid "
            f"{extra_cold} extra cold searches vs the simulated schedule "
            f"(need <= 0)"
        )
    print(
        f"cold-search gate: live front end ({REPLICAS} workers, "
        f"{len(live.batches)} batches) ran "
        f"{live.plan_cache_stats['misses']} cold searches vs "
        f"{simulated.plan_cache_stats['misses']} simulated "
        f"({extra_cold:+d} extra)"
    )

    # --- Gate 3: virtual-time replay is decision-identical ---------------
    eq_sim_engine = make_engine(charge_selection=False)
    eq_sim_engine.submit_many(workloads, interarrival_us=300.0)
    eq_simulated = eq_sim_engine.run(policy="continuous")

    eq_live_engine = make_engine(charge_selection=False)
    requests = eq_live_engine.submit_many(workloads, interarrival_us=300.0)
    replayed = replay_trace(eq_live_engine, requests)
    equivalent = decision_trace(replayed, include_timing=True) == (
        decision_trace(eq_simulated, include_timing=True)
    )
    if not equivalent:
        failures.append(
            "equivalence: virtual-time replay diverged from the simulated "
            "scheduler's decision trace"
        )
    print(
        f"equivalence gate: replay of {len(workloads)} requests -> "
        f"{'decision-identical' if equivalent else 'DIVERGED'} "
        f"({len(replayed.batches)} batches, timings included)"
    )

    append_trajectory(
        {
            "bench": "concurrent_serving",
            "timestamp": time.time(),
            "requests": len(workloads),
            "replicas": REPLICAS,
            "warm_lookup_global_lock_us": baseline_us,
            "warm_lookup_sharded_us": sharded_us,
            "contention_ratio": ratio,
            "cold_searches_simulated": simulated.plan_cache_stats["misses"],
            "cold_searches_live": live.plan_cache_stats["misses"],
            "extra_cold_searches": extra_cold,
            "replay_equivalent": equivalent,
            "ok": not failures,
        }
    )
    print(f"trajectory: appended run record to {OUT_PATH}")

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: concurrent serving gates hold")


if __name__ == "__main__":
    main()
