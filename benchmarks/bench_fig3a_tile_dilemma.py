"""Figure 3a: latency and wasted computation of different tile sizes.

The tile-shape dilemma: on OPT-style activation masks (fine granularity),
8x8/16x16/32x32 block covers trade coverage waste against GPU efficiency;
PIT escapes the trade-off.  Paper shape: 32x32 fastest below ~99.6%
sparsity despite the most waste; 8x8 wins only above ~99.9%; PIT below all.
"""

import pytest

from repro.baselines import PITSpmmKernel, TritonBlockSparseKernel
from repro.core import coverage_waste
from repro.hw import V100
from repro.sparsity import relu_activation_mask

from .conftest import paper_note

SPARSITIES = (0.90, 0.95, 0.99, 0.999)
TILES = (8, 16, 32)
SIZE = 4096


def tile_dilemma_rows():
    rows = []
    for sparsity in SPARSITIES:
        # OPT-style activation sparsity: fine-grained, per-token patterns.
        mask = relu_activation_mask(SIZE, SIZE, sparsity, seed=17)
        row = [f"{sparsity * 100:.1f}%"]
        for block in TILES:
            kern = TritonBlockSparseKernel(V100, block=block)
            result = kern.spmm(mask, SIZE)
            waste = coverage_waste(mask, (block, block))
            row.append(f"{result.compute_us / 1e3:.2f}ms/{waste * 100:.1f}%w")
        pit = PITSpmmKernel(V100).spmm(mask, SIZE)
        row.append(f"{pit.compute_us / 1e3:.2f}ms")
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_tile_dilemma(benchmark, print_table):
    rows = benchmark.pedantic(tile_dilemma_rows, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 3a — tile-size dilemma (latency / wasted computation)",
            "32x32 fastest below ~99.6% sparsity despite most waste; "
            "8x8 only wins at extreme sparsity; PIT beats all tile sizes",
        )
    )
    print_table(
        ["sparsity"] + [f"{t}x{t} tile" for t in TILES] + ["PIT"], rows
    )

    # Shape assertions: the dilemma and PIT's escape from it.
    mask_lo = relu_activation_mask(SIZE, SIZE, 0.90, seed=17)
    t8 = TritonBlockSparseKernel(V100, block=8).spmm(mask_lo, SIZE)
    t32 = TritonBlockSparseKernel(V100, block=32).spmm(mask_lo, SIZE)
    assert t32.compute_us < t8.compute_us  # GPU efficiency wins at low sparsity
    assert coverage_waste(mask_lo, (32, 32)) > coverage_waste(mask_lo, (8, 8))
    pit = PITSpmmKernel(V100).spmm(mask_lo, SIZE)
    assert pit.compute_us < t32.compute_us
