"""Shared helpers for the end-to-end figure benchmarks (Figures 8-14, 19)."""

from __future__ import annotations

from repro.runtime import run_lineup


def cell(report) -> str:
    """One figure cell: latency(convert)/memory or the failure marker."""
    if report.oom:
        return "OOM"
    if report.unsupported:
        return "n/a"
    return (
        f"{report.latency_ms:.1f}ms"
        f"({report.convert_ms:.1f}c)/{report.peak_mem_gib:.1f}G"
    )


def lineup_rows(configs, names, spec, dtype, *, mode="inference", devices=1,
                plan_cache=None):
    """Run each (label, workload) against the lineup; returns printable rows
    and {label: {backend: speedup-over-PIT}}.

    ``plan_cache`` is threaded to :func:`run_lineup`, so a figure sweeping
    several model sizes resolves shared plan traffic once across the whole
    sweep instead of once per configuration."""
    rows = []
    speedups = {}
    for label, workload in configs:
        reports = run_lineup(
            workload, names, spec, dtype, mode=mode, devices=devices,
            plan_cache=plan_cache,
        )
        by_name = {r.backend: r for r in reports}
        pit = by_name["PIT"]
        rows.append([label] + [cell(by_name[n]) for n in names])
        speedups[label] = {
            n: by_name[n].latency_ms / pit.latency_ms
            for n in names
            if n != "PIT" and by_name[n].ok and pit.ok
        }
    return rows, speedups


def speedup_summary(speedups: dict) -> str:
    """Min~max speedup per backend across all configurations."""
    agg: dict = {}
    for table in speedups.values():
        for name, value in table.items():
            agg.setdefault(name, []).append(value)
    parts = [
        f"PIT vs {name}: {min(vals):.1f}x~{max(vals):.1f}x"
        for name, vals in agg.items()
    ]
    return "; ".join(parts)
