"""Cold Algorithm 1 search: cover-grid pyramid vs the naive per-shape scan.

The paper's online compilation budget (Section 5.5: 30-100us per search;
Figure 18: index construction under 10% of kernel time) rests on never
re-scanning the raw mask per candidate micro-tile shape.  This benchmark
times a *cold* ``kernel_selection`` on Figure-18-style masks (fine-grained
95-99% sparse, 4k x 4k) two ways:

* ``fastpath=False`` — the legacy loop: one naive padded cover scan per
  distinct micro-tile shape per sample, per-sample Python iteration;
* ``fastpath=True`` — the pyramid: one base grid per mask, coarser grids
  derived by pooled reductions, samples stacked and evaluated batched.

Gates:

1. every case's median cold-search speedup is >= ``SPEEDUP_GATE`` (5x);
2. both paths return the identical ``KernelChoice`` (same tile, PIT-axis
   and micro-tile; cost equal to float tolerance) for every case.

The result lands in ``BENCH_selection.json`` (per-case medians plus the
overall median cold-search time and batched sample count), giving future
PRs a perf trajectory to regress against.

Run:  PYTHONPATH=src python benchmarks/bench_selection_fastpath.py
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

import numpy as np

from repro.core import TileDB, kernel_selection
from repro.hw import V100
from repro.runtime import format_table

SIZE = 4096
REPEATS = 3
SPEEDUP_GATE = 5.0
OUT_PATH = Path("BENCH_selection.json")

#: (name, sparsity, number of stacked samples) — Figure 18's fine-grained
#: regime at the paper's two headline sparsity levels, plus a two-sample
#: case so the batched evaluator is exercised.
CASES = [
    ("fine-0.95", 0.95, 1),
    ("fine-0.99", 0.99, 1),
    ("fine-0.99-s2", 0.99, 2),
]


def fine_grained_masks(sparsity: float, num_samples: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    return [rng.random((SIZE, SIZE)) >= sparsity for _ in range(num_samples)]


def run_case(tiledb, sparsity: float, num_samples: int):
    """Median cold-search time of both paths plus per-repeat mismatches."""
    naive_us, fast_us, mismatches = [], [], []
    fast_choice = None
    for rep in range(REPEATS):
        # Fresh masks per repeat: every run is a true cold search (no state
        # survives a kernel_selection call), and the medians average over
        # pattern draws the way Algorithm 1 averages over samples.
        masks = fine_grained_masks(sparsity, num_samples, seed=rep)
        naive_choice = kernel_selection(
            masks, SIZE, SIZE, SIZE, tiledb, fastpath=False
        )
        fast_choice = kernel_selection(masks, SIZE, SIZE, SIZE, tiledb)
        naive_us.append(naive_choice.search_time_us)
        fast_us.append(fast_choice.search_time_us)
        # Every repeat's pair must agree, not just the last: equivalence on
        # one mask draw says nothing about the others.
        if not choices_equivalent(fast_choice, naive_choice):
            mismatches.append(
                f"rep {rep}: fast chose {fast_choice.describe()} but naive "
                f"chose {naive_choice.describe()}"
            )
    return (
        statistics.median(naive_us),
        statistics.median(fast_us),
        mismatches,
        fast_choice,
    )


def choices_equivalent(a, b) -> bool:
    return (
        a.tile == b.tile
        and a.pit_axis == b.pit_axis
        and a.microtile == b.microtile
        and abs(a.est_cost_us - b.est_cost_us)
        <= 1e-6 * max(1.0, abs(b.est_cost_us))
    )


def main():
    tiledb = TileDB(V100, "float32")
    failures = []
    rows = []
    results = []
    for name, sparsity, num_samples in CASES:
        naive_us, fast_us, mismatches, fast_choice = run_case(
            tiledb, sparsity, num_samples
        )
        speedup = naive_us / fast_us if fast_us > 0 else float("inf")
        rows.append([
            name,
            num_samples,
            f"{naive_us / 1e3:.1f}",
            f"{fast_us / 1e3:.1f}",
            f"{speedup:.1f}x",
            fast_choice.describe(),
        ])
        results.append({
            "case": name,
            "sparsity": sparsity,
            "num_samples": num_samples,
            "naive_median_us": naive_us,
            "fast_median_us": fast_us,
            "speedup": speedup,
        })
        if speedup < SPEEDUP_GATE:
            failures.append(
                f"{name}: pyramid path {speedup:.1f}x vs naive "
                f"(need >= {SPEEDUP_GATE:.0f}x)"
            )
        failures.extend(f"{name}: {m}" for m in mismatches)

    print(
        format_table(
            ["case", "samples", "naive ms", "pyramid ms", "speedup",
             "choice"],
            rows,
            title=(
                f"Cold Algorithm 1 search, {SIZE}x{SIZE} fine-grained masks "
                f"(median of {REPEATS})"
            ),
        )
    )

    # Per-rule attribution of one cold fast-path search (the profile hook).
    profile = {}
    kernel_selection(
        fine_grained_masks(0.99, 1, seed=0), SIZE, SIZE, SIZE, tiledb,
        profile=profile,
    )
    slowest = sorted(
        profile["rules"], key=lambda r: r["eval_us"], reverse=True
    )[:3]
    print("\nslowest candidate evaluations (fast path):")
    for r in slowest:
        print(
            f"  axis={r['pit_axis']} micro-tile={r['microtile']:>6s} "
            f"tile={r['tile']}: {r['eval_us']:.0f} us"
        )

    payload = {
        "mask_size": SIZE,
        "repeats": REPEATS,
        "speedup_gate": SPEEDUP_GATE,
        "median_cold_search_us": statistics.median(
            r["fast_median_us"] for r in results
        ),
        "batch_count": max(r["num_samples"] for r in results),
        "cases": results,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUT_PATH}")

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print(
        "OK: pyramid fast path >= "
        f"{SPEEDUP_GATE:.0f}x on every case with identical KernelChoice"
    )


if __name__ == "__main__":
    main()
