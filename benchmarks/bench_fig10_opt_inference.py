"""Figure 10: OPT-13B/30B inference latency and memory (8x V100, fp32).

Two PIT optimizations: padding removal for varying Alpaca lengths and the
99%-sparse ReLU FFN activations.  Paper claims: PIT 2.1-2.3x over PyTorch,
2.5-3.0x over PyTorch-S (which has the *highest* latency due to format
conversion), 2.0-2.2x over DeepSpeed; "PIT w/o activation" isolates the
padding-removal gain at 1.6-1.7x, activation sparsity adds 1.3-1.4x more.
"""

import pytest

from repro.baselines import PITBackend
from repro.hw import V100
from repro.models import opt_inference_workload
from repro.runtime import run_transformer

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

LINEUP = ("PyTorch", "PyTorch-S", "DeepSpeed", "PIT")
DEVICES = 8


@pytest.mark.benchmark(group="fig10")
def test_fig10_opt_inference(benchmark, print_table):
    configs = [
        (size.upper(), opt_inference_workload(size, 32, seed=0))
        for size in ("13b", "30b")
    ]
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(
            configs, LINEUP, V100, "float32", devices=DEVICES
        ),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            "Figure 10 — OPT inference, fp32, batch=32 (8x V100)",
            "PIT 2.1-2.3x over PyTorch, 2.5-3.0x over PyTorch-S (highest "
            "latency: conversion overhead), 2.0-2.2x over DeepSpeed",
        )
    )
    print_table(["model"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    for table in speedups.values():
        assert table["PyTorch"] > 1.5
        # PyTorch-S is the slowest baseline (its conversion overhead).
        assert table["PyTorch-S"] >= table["PyTorch"]
        assert table["DeepSpeed"] > 1.5


@pytest.mark.benchmark(group="fig10")
def test_fig10_ablation_without_activation(benchmark, print_table):
    """'PIT w/o activation': padding removal alone, then + ReLU sparsity."""
    size = "13b"
    with_act = opt_inference_workload(size, 32, act_sparsity=0.99, seed=0)
    without_act = opt_inference_workload(size, 32, seed=0)
    without_act.act_sparsity = None

    def run_both():
        full = run_transformer(
            with_act, PITBackend(V100), devices=DEVICES
        )
        padding_only = run_transformer(
            without_act, PITBackend(V100), devices=DEVICES
        )
        return full, padding_only

    full, padding_only = benchmark.pedantic(run_both, rounds=1, iterations=1)
    gain = padding_only.latency_ms / full.latency_ms
    print(
        paper_note(
            "Figure 10 (ablation) — PIT w/o activation sparsity",
            "activation sparsity adds a further 1.3-1.4x on top of the "
            "1.6-1.7x padding-removal gain",
        )
    )
    print_table(
        ["variant", "latency"],
        [
            ["PIT (both opts)", f"{full.latency_ms:.1f}ms"],
            ["PIT w/o activation", f"{padding_only.latency_ms:.1f}ms"],
            ["activation gain", f"{gain:.2f}x"],
        ],
    )
    assert 1.1 < gain < 2.0
