"""Figure 16: kernel-level SpMM comparison (4096^3, static patterns, V100).

cuSPARSE / Sputnik / OpenAI Block Sparse / SparTA / PIT across sparsity
granularities {32x1, 1x64, 32x64} and ratios {50, 90, 95, 99}%.
Conversion/compile costs are excluded (static patterns), as in the paper.
Paper claims: at 32x64 PIT ~ SparTA ~ OpenAI (same dense tiles); at 32x1
PIT is 4.3-5.8x over Sputnik and 1.5-5.7x over SparTA; at 1x64 PIT is
1.1-2.3x over Sputnik and 1.1-2.2x over SparTA; up to 88.7x over cuSPARSE
and 17.5x over OpenAI overall.
"""

import pytest

from repro.baselines import (
    CuSparseKernel,
    PITSpmmKernel,
    SparTAKernel,
    SputnikKernel,
    TritonBlockSparseKernel,
)
from repro.hw import V100
from repro.sparsity import granular_mask

from .conftest import paper_note

SIZE = 4096
SPARSITIES = (0.50, 0.90, 0.95, 0.99)
GRANULARITIES = {"32x1": (32, 1), "1x64": (1, 64), "32x64": (32, 64)}


def kernels():
    return {
        "cuSPARSE": CuSparseKernel(V100),
        "Sputnik": SputnikKernel(V100),
        "OpenAI": TritonBlockSparseKernel(V100, block=32),
        "SparTA": SparTAKernel(V100),
        "PIT": PITSpmmKernel(V100),
    }


def run_granularity(granularity):
    ks = kernels()
    rows = []
    results = {}
    for sparsity in SPARSITIES:
        mask = granular_mask((SIZE, SIZE), granularity, sparsity, seed=5)
        row = [f"{sparsity * 100:.0f}%"]
        for name, kern in ks.items():
            r = kern.spmm(mask, SIZE)
            results[(name, sparsity)] = r.compute_us
            row.append(f"{r.compute_us / 1e3:.2f}ms")
        rows.append(row)
    return rows, results


@pytest.mark.benchmark(group="fig16")
@pytest.mark.parametrize("gran_name", list(GRANULARITIES))
def test_fig16_spmm_kernels(benchmark, print_table, gran_name):
    granularity = GRANULARITIES[gran_name]
    rows, results = benchmark.pedantic(
        lambda: run_granularity(granularity), rounds=1, iterations=1
    )
    print(
        paper_note(
            f"Figure 16 — SpMM kernels, granularity {gran_name} (4096^3, V100)",
            "PIT matches block kernels at coarse granularity and wins "
            "outright at fine granularity (the PIT-transformation claim)",
        )
    )
    print_table(["sparsity"] + list(kernels()), rows)

    for sparsity in SPARSITIES:
        pit = results[("PIT", sparsity)]
        # PIT never loses to any library at any point of the sweep.
        for name in ("cuSPARSE", "Sputnik", "OpenAI", "SparTA"):
            assert pit <= results[(name, sparsity)] * 1.05, (name, sparsity)

    if gran_name == "32x1":
        # Fine granularity at high sparsity: PIT far ahead of the block
        # kernel and comfortably ahead of granularity-aligned Sputnik/SparTA.
        assert results[("OpenAI", 0.95)] > 3 * results[("PIT", 0.95)]
        assert results[("Sputnik", 0.95)] > 2 * results[("PIT", 0.95)]
        assert results[("SparTA", 0.95)] > 1.5 * results[("PIT", 0.95)]
    if gran_name == "32x64":
        # Coarse blocks: the block-tile systems are comparable to PIT
        # (paper: 'similar latency'; our tile model leaves OpenAI a <=2.4x
        # residual from its fixed block-shaped tile — see EXPERIMENTS.md).
        assert results[("OpenAI", 0.90)] < 2.5 * results[("PIT", 0.90)]
        assert results[("SparTA", 0.90)] < 1.5 * results[("PIT", 0.90)]
