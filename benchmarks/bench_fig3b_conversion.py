"""Figure 3b: sparse-format conversion overheads vs. dense cuBLAS.

cuSPARSE / Sputnik pay a format conversion that rivals their computation;
SparTA pays a 400-600 *second* specialization per pattern.  Paper shape:
at moderate sparsity, conversion+compute of the sparse libraries is worse
than just running dense cuBLAS.
"""

import pytest

from repro.baselines import (
    CuSparseKernel,
    DenseKernelBaseline,
    SPARTA_COMPILE_US,
    SparTAKernel,
    SputnikKernel,
)
from repro.hw import V100
from repro.sparsity import granular_mask

from .conftest import paper_note

SPARSITIES = (0.70, 0.90, 0.99)
SIZE = 4096


def conversion_rows():
    rows = []
    dense = DenseKernelBaseline(V100)
    for sparsity in SPARSITIES:
        mask = granular_mask((SIZE, SIZE), (1, 1), sparsity, seed=3)
        cublas = dense.spmm(mask, SIZE)
        rows.append(
            [
                f"{sparsity * 100:.0f}%",
                f"{cublas.total_us / 1e3:.2f}ms",
                _fmt(CuSparseKernel(V100).spmm(mask, SIZE)),
                _fmt(SputnikKernel(V100).spmm(mask, SIZE)),
                f"compile {SPARTA_COMPILE_US / 1e6:.0f}s",
            ]
        )
    return rows


def _fmt(result):
    return (
        f"{result.compute_us / 1e3:.2f}ms + {result.convert_us / 1e3:.2f}ms conv"
    )


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_conversion_overheads(benchmark, print_table):
    rows = benchmark.pedantic(conversion_rows, rounds=1, iterations=1)
    print(
        paper_note(
            "Figure 3b — conversion overheads (4096^3 SpMM, V100)",
            "cuSPARSE/Sputnik conversion makes them worse than dense cuBLAS "
            "at 70-90% sparsity; SparTA compiles for 400-600 seconds",
        )
    )
    print_table(
        ["sparsity", "cuBLAS", "cuSPARSE", "Sputnik", "SparTA"], rows
    )

    # Shape assertions.
    mask70 = granular_mask((SIZE, SIZE), (1, 1), 0.70, seed=3)
    cublas = DenseKernelBaseline(V100).spmm(mask70, SIZE)
    for kern in (CuSparseKernel(V100), SputnikKernel(V100)):
        assert kern.spmm(mask70, SIZE).total_us > cublas.total_us, kern.name
    # SparTA's AOT compile is ~8 orders of magnitude above kernel time.
    assert SPARTA_COMPILE_US > 1e6 * cublas.total_us / 1e3
