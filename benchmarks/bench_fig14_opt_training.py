"""Figure 14: OPT-125M/350M/1.3B fine-tuning latency and memory (A100).

Forward+backward per batch (batch 8, Alpaca lengths), padding sparsity
only.  Paper claims: PIT 1.9-2.4x over PyTorch, 1.6-1.8x over PyTorch-S,
1.8-2.2x over DeepSpeed; PIT and PyTorch-S the smallest footprints;
DeepSpeed cannot fuse away training activations, so it loses its inference
memory edge.
"""

import pytest

from repro.core import PlanCache
from repro.hw import A100
from repro.models import opt_training_workload
from repro.runtime import run_lineup

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

LINEUP = ("PyTorch", "PyTorch-S", "DeepSpeed", "PIT")
SIZES = ("125m", "350m", "1.3b")


@pytest.mark.benchmark(group="fig14")
def test_fig14_opt_training(benchmark, print_table):
    configs = [
        (size.upper(), opt_training_workload(size, 8, seed=0)) for size in SIZES
    ]
    # One plan cache across the size sweep: the training lineup rides the
    # same unified planning path as serving, so repeated plan traffic
    # (e.g. the PIT backend's activation-cover memos) resolves once.
    plan_cache = PlanCache()
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(
            configs, LINEUP, A100, "float32", mode="training",
            plan_cache=plan_cache,
        ),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            "Figure 14 — OPT training (fwd+bwd), fp32, batch=8 (A100)",
            "PIT 1.9-2.4x over PyTorch, 1.6-1.8x over PyTorch-S, 1.8-2.2x "
            "over DeepSpeed; DeepSpeed loses its fusion memory edge",
        )
    )
    print_table(["model"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    for table in speedups.values():
        for name, value in table.items():
            assert value > 1.0, (name, value)

    # Training memory: DeepSpeed == PyTorch (no fused-activation savings).
    reports = run_lineup(
        opt_training_workload("350m", 8, seed=0),
        LINEUP, A100, "float32", mode="training",
    )
    by_name = {r.backend: r for r in reports}
    assert by_name["DeepSpeed"].peak_mem_gib == pytest.approx(
        by_name["PyTorch"].peak_mem_gib, rel=0.05
    )
    assert by_name["PIT"].peak_mem_gib < by_name["PyTorch"].peak_mem_gib
