"""Figure 12: Longformer inference latency and memory (V100, fp32).

Dynamic sparse attention: sliding window + input-dependent global tokens.
Paper claims: PIT up to 1.9x over PyTorch, 1.8x over Longformer-S (its
hand-decomposed kernels avoid waste but pay heavy rearrangement), 2.4x over
PyTorch-S and DeepSpeed (both Triton block-sparse); PyTorch-S and DeepSpeed
OOM at sequence length 4096; PIT uses the least memory.
"""

import pytest

from repro.hw import V100
from repro.models import longformer_workload
from repro.runtime import run_lineup

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

LINEUP = ("PyTorch", "PyTorch-S", "Longformer-S", "DeepSpeed", "PIT")
#: Chosen so the 32GB V100 capacity lands between the dense and the
#: Triton-temporary footprints at 4096 tokens (the figure's OOM boundary).
BATCH = 16
CONFIGS = (("base", 2048), ("large", 2048), ("base", 4096), ("large", 4096))


@pytest.mark.benchmark(group="fig12")
def test_fig12_longformer(benchmark, print_table):
    configs = [
        (f"{size}-{seq}", longformer_workload(size, seq, batch_size=BATCH, seed=0))
        for size, seq in CONFIGS
    ]
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(configs, LINEUP, V100, "float32"),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            f"Figure 12 — Longformer, fp32, batch={BATCH} (V100)",
            "PIT fastest; Longformer-S best baseline (no waste, but "
            "rearrangement overhead); PyTorch-S/DeepSpeed OOM at 4096",
        )
    )
    print_table(["config"] + list(LINEUP), rows)
    print(speedup_summary(speedups))

    for table in speedups.values():
        for name, value in table.items():
            assert value > 1.0, (name, value)
        # Longformer-S is the closest baseline (pattern-specialized).
        assert table["Longformer-S"] == min(table.values())

    # The OOM boundary: the block-sparse systems crash at large-4096.
    reports = run_lineup(
        longformer_workload("large", 4096, batch_size=BATCH, seed=0),
        LINEUP, V100, "float32",
    )
    by_name = {r.backend: r for r in reports}
    assert by_name["PyTorch-S"].oom
    assert by_name["DeepSpeed"].oom
    assert by_name["PIT"].ok
    # PIT uses the least memory among successful runs.
    ok = [r for r in reports if r.ok]
    assert by_name["PIT"].peak_mem_gib == min(r.peak_mem_gib for r in ok)
