"""Figure 8: Switch Transformer end-to-end latency and memory (A100).

Batch sizes {8, 32} x expert counts {64, 128, 256} x precisions
{fp16, fp32}.  Paper claims (fp32): PIT 3.6-18.1x over PyTorch, 3.7-17.8x
over PyTorch-S, 16.6-59.1x over Tutel, 2.3-5.9x over DeepSpeed; (fp16)
additionally 1.4-1.7x over MegaBlocks; Tutel/DeepSpeed OOM at the largest
configurations; PIT lowest memory.
"""

import pytest

from repro.hw import A100
from repro.models import switch_workload
from repro.runtime import run_lineup

from .conftest import paper_note
from .e2e_common import lineup_rows, speedup_summary

EXPERTS = (64, 128, 256)
LINEUP_FP16 = ("PyTorch", "PyTorch-S", "Tutel", "DeepSpeed", "MegaBlocks", "PIT")
LINEUP_FP32 = ("PyTorch", "PyTorch-S", "Tutel", "DeepSpeed", "PIT")


def _configs(batch_size):
    return [
        (f"{e} experts", switch_workload(e, batch_size, seed=0)) for e in EXPERTS
    ]


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("dtype,batch", [("float16", 32), ("float16", 8),
                                         ("float32", 32), ("float32", 8)])
def test_fig8_switch_transformer(benchmark, print_table, dtype, batch):
    lineup = LINEUP_FP16 if dtype == "float16" else LINEUP_FP32
    configs = _configs(batch)
    rows, speedups = benchmark.pedantic(
        lambda: lineup_rows(configs, lineup, A100, dtype),
        rounds=1, iterations=1,
    )
    print(
        paper_note(
            f"Figure 8 — Switch Transformer, {dtype}, batch={batch} (A100)",
            "PIT fastest everywhere; gap grows with expert count; "
            "Tutel OOMs at large configs; PIT lowest memory",
        )
    )
    print_table(["config"] + list(lineup), rows)
    print(speedup_summary(speedups))

    # Shape assertions: PIT wins everywhere and the gap grows with experts.
    for table in speedups.values():
        for name, value in table.items():
            assert value > 1.0, (name, value)
    assert speedups["256 experts"]["PyTorch"] > speedups["64 experts"]["PyTorch"]


@pytest.mark.benchmark(group="fig8")
def test_fig8_memory_ordering(benchmark):
    """PIT's memory is the lowest of the successful fp32 runs at 64e."""
    wl = switch_workload(64, 32, seed=0)
    reports = benchmark.pedantic(
        lambda: run_lineup(wl, LINEUP_FP32, A100, "float32"),
        rounds=1, iterations=1,
    )
    ok = [r for r in reports if r.ok]
    pit = next(r for r in ok if r.backend == "PIT")
    assert pit.peak_mem_gib == min(r.peak_mem_gib for r in ok)
