"""Fault tolerance: chaos serving under deterministic injection.

The resilience layer (`repro.runtime.resilience`) only earns its keep if a
failing fleet neither loses requests nor loses determinism.  Four gates:

1. **Zero lost requests**: with one of ``REPLICAS`` replicas killed
   mid-trace plus transient execution failures, every submitted request
   appears in the report exactly once with an explicit terminal outcome
   (served, failed, shed, or deadline-exceeded) — nothing vanishes.
2. **Goodput**: the chaos run must still serve at least
   ``GOODPUT_GATE`` of the requests the fault-free run serves.  Losing a
   replica costs capacity; it must not cost correctness or most of the
   throughput.
3. **Chaos determinism**: two virtual-time replays under the same
   injection seed produce bit-identical decision traces (batches,
   placements, attempts, timings).
4. **Equivalence under faults**: the simulated scheduler and the live
   front end's virtual-time replay make identical decisions under
   identical injection seeds — fault handling did not fork the drivers.

A live (real asyncio workers) chaos pass additionally checks that every
future resolves.  Each run appends a record to the cumulative
``BENCH_serving.json`` trajectory so future PRs can regress against the
history.

Run:  PYTHONPATH=src python benchmarks/bench_fault_tolerance.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.hw import V100
from repro.models import bert_workload, switch_workload
from repro.models.workloads import opt_inference_workload
from repro.runtime import (
    FaultSpec,
    ResilienceConfig,
    ServingEngine,
    decision_trace,
    replay_trace,
    serve_workloads,
)

OUT_PATH = Path("BENCH_serving.json")

NUM_REQUESTS = 30
#: Four replicas, one killed mid-trace: a 25% capacity loss leaves the
#: fleet enough headroom that goodput should hold well above the gate —
#: on a 3-replica fleet the loss alone caps goodput near 0.67x.
REPLICAS = 4
INTERARRIVAL_US = 400.0
SEED = 1234
#: Replica 1 dies at 3 ms into the trace and never comes back.
OUTAGE = (1, 3000.0, 1e9)
#: Chaos goodput must stay within this fraction of fault-free goodput.
GOODPUT_GATE = 0.70

CHAOS = ResilienceConfig(
    fault=FaultSpec(
        SEED,
        transient_prob=0.15,
        straggler_prob=0.10,
        # Mild stragglers: a 4x factor makes the tail of the makespan
        # hostage to whichever big batch straggles last, which measures
        # tail luck rather than fault handling.
        straggler_factor=1.5,
        outages=(OUTAGE,),
    ),
    max_retries=3,
    retry_backoff_us=400.0,
)


def serving_trace(n=NUM_REQUESTS):
    workloads = []
    for i in range(n):
        if i % 5 == 0:
            workloads.append(
                opt_inference_workload("125m", batch_size=2, seed=i)
            )
        elif i % 5 == 3:
            workloads.append(switch_workload(8, batch_size=2, seed=i))
        else:
            workloads.append(bert_workload("mnli", 2, seed=i))
    return workloads


def make_engine(resilience=None):
    return ServingEngine(
        V100,
        max_batch_tokens=8192,
        max_batch_size=4,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=REPLICAS,
        overlap_selection=False,
        charge_selection=False,
        resilience=resilience,
    )


def run_replay(resilience):
    engine = make_engine(resilience)
    requests = engine.submit_many(
        serving_trace(), interarrival_us=INTERARRIVAL_US
    )
    submitted = sorted(r.request_id for r in requests)
    report = replay_trace(engine, requests)
    return report, submitted


def goodput(report):
    """Served requests per second of makespan."""
    served = sum(1 for r in report.requests if r.ok)
    if report.makespan_us <= 0:
        return 0.0
    return served / (report.makespan_us / 1e6)


def append_trajectory(record: dict) -> None:
    runs = []
    if OUT_PATH.exists():
        try:
            runs = json.loads(OUT_PATH.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = []
    runs.append(record)
    OUT_PATH.write_text(json.dumps(runs, indent=2))


def main():
    failures = []

    # --- Gate 1: kill a replica mid-trace, lose nothing ------------------
    chaos, submitted = run_replay(CHAOS)
    reported = sorted(r.request_id for r in chaos.requests)
    if reported != submitted:
        failures.append(
            f"lost requests: submitted {len(submitted)}, reported "
            f"{len(reported)} (duplicates or drops under chaos)"
        )
    unexplained = [
        r for r in chaos.requests
        if not r.ok and not r.shed and not r.error
    ]
    if unexplained:
        failures.append(
            f"{len(unexplained)} failed requests carry no explicit outcome"
        )
    served = sum(1 for r in chaos.requests if r.ok)
    dead = any(state == "dead" for _, _, state in chaos.health_timeline)
    if not dead:
        failures.append(
            "the injected outage never surfaced in the health timeline"
        )
    print(
        f"chaos run: {served}/{len(submitted)} served, "
        f"{chaos.retries} retries ({chaos.failovers} failovers), "
        f"{chaos.deadline_exceeded} deadline-exceeded, replica "
        f"{OUTAGE[0]} down from {OUTAGE[1] / 1e3:.0f} ms"
    )

    # --- Gate 2: goodput within GOODPUT_GATE of fault-free ----------------
    clean, _ = run_replay(None)
    clean_goodput = goodput(clean)
    chaos_goodput = goodput(chaos)
    ratio = chaos_goodput / clean_goodput if clean_goodput > 0 else 0.0
    if ratio < GOODPUT_GATE:
        failures.append(
            f"goodput: chaos run at {ratio:.2f}x of fault-free "
            f"(need >= {GOODPUT_GATE}x)"
        )
    print(
        f"goodput gate: {chaos_goodput:,.0f} req/s under chaos vs "
        f"{clean_goodput:,.0f} req/s fault-free ({ratio:.2f}x)"
    )

    # --- Gate 3: same seed, bit-identical chaos ---------------------------
    rerun, _ = run_replay(CHAOS)
    deterministic = decision_trace(chaos, include_timing=True) == (
        decision_trace(rerun, include_timing=True)
    )
    if not deterministic:
        failures.append(
            "chaos determinism: two replays under one seed diverged"
        )
    print(
        f"determinism gate: same-seed replays "
        f"{'bit-identical' if deterministic else 'DIVERGED'} "
        f"({len(chaos.batches)} batch attempts)"
    )

    # --- Gate 4: simulated scheduler equals replay under faults -----------
    sim_engine = make_engine(CHAOS)
    sim_engine.submit_many(serving_trace(), interarrival_us=INTERARRIVAL_US)
    simulated = sim_engine.run(policy="continuous")
    equivalent = decision_trace(simulated, include_timing=True) == (
        decision_trace(chaos, include_timing=True)
    )
    if not equivalent:
        failures.append(
            "equivalence: fault handling forked the simulated scheduler "
            "from the virtual-time replay"
        )
    print(
        f"equivalence gate: simulated vs replay under faults -> "
        f"{'decision-identical' if equivalent else 'DIVERGED'}"
    )

    # --- Live pass: real workers, every future resolves -------------------
    live_engine = make_engine(CHAOS)
    live = serve_workloads(live_engine, serving_trace())
    live_ids = [r.request_id for r in live.requests]
    if len(live_ids) != NUM_REQUESTS or len(set(live_ids)) != len(live_ids):
        failures.append(
            f"live chaos: {len(live_ids)} reports for "
            f"{NUM_REQUESTS} requests"
        )
    print(
        f"live chaos: {sum(1 for r in live.requests if r.ok)}/"
        f"{NUM_REQUESTS} served through real workers, "
        f"{live.retries} retries"
    )

    append_trajectory(
        {
            "bench": "fault_tolerance",
            "timestamp": time.time(),
            "requests": NUM_REQUESTS,
            "replicas": REPLICAS,
            "seed": SEED,
            "served_under_chaos": served,
            "retries": chaos.retries,
            "failovers": chaos.failovers,
            "deadline_exceeded": chaos.deadline_exceeded,
            "goodput_chaos_req_s": chaos_goodput,
            "goodput_clean_req_s": clean_goodput,
            "goodput_ratio": ratio,
            "chaos_deterministic": deterministic,
            "replay_equivalent": equivalent,
            "ok": not failures,
        }
    )
    print(f"trajectory: appended run record to {OUT_PATH}")

    if failures:
        raise SystemExit("FAIL: " + "; ".join(failures))
    print("OK: fault-tolerance gates hold")


if __name__ == "__main__":
    main()
