"""Figure 18: sparse-index construction latency, PIT vs PyTorch-S.

4096x4096 tensors, sparsity 50-99%, granularities 1x1 (PyTorch-S uses
cuSPARSE's converter), 16x16 and 32x32 (Triton's layout builder).  Paper
claims: PIT is 3.6-4.7x faster than cuSPARSE at 1x1, 11.2-14.2x faster
than Triton at 16x16, and 13.3-26.5x faster at 32x32 — the unordered
micro-tile index needs one streaming pass and no sort.
"""

import pytest

from repro.baselines import CuSparseKernel, PITSpmmKernel, TritonBlockSparseKernel
from repro.hw import V100
from repro.sparsity import granular_mask

from .conftest import paper_note

SIZE = 4096
SPARSITIES = (0.50, 0.90, 0.95, 0.99)
#: granularity label -> (PyTorch-S converter factory, PIT micro-tile shape).
CASES = {
    "1x1": (lambda: CuSparseKernel(V100), (1, 1)),
    "16x16": (lambda: TritonBlockSparseKernel(V100, block=16), (16, 16)),
    "32x32": (lambda: TritonBlockSparseKernel(V100, block=32), (32, 32)),
}


def run_case(label):
    converter_factory, microtile = CASES[label]
    converter = converter_factory()
    pit = PITSpmmKernel(V100)
    rows = []
    ratios = []
    for sparsity in SPARSITIES:
        gran = microtile if label != "1x1" else (1, 1)
        mask = granular_mask((SIZE, SIZE), gran, sparsity, seed=13)
        baseline_us = converter.convert_us(mask)
        pit_us = pit.convert_us(mask, microtile)
        rows.append(
            [f"{sparsity * 100:.0f}%", f"{baseline_us / 1e3:.3f}ms",
             f"{pit_us / 1e3:.3f}ms", f"{baseline_us / pit_us:.1f}x"]
        )
        ratios.append(baseline_us / pit_us)
    return rows, ratios


@pytest.mark.benchmark(group="fig18")
@pytest.mark.parametrize("label", list(CASES))
def test_fig18_index_construction(benchmark, print_table, label):
    rows, ratios = benchmark.pedantic(
        lambda: run_case(label), rounds=1, iterations=1
    )
    print(
        paper_note(
            f"Figure 18 — index construction, tile {label} (4096x4096, V100)",
            "PIT 3.6-4.7x over cuSPARSE (1x1); 11.2-14.2x (16x16) and "
            "13.3-26.5x (32x32) over Triton",
        )
    )
    print_table(["sparsity", "PyTorch-S", "PIT", "speedup"], rows)

    expected = {"1x1": (2.0, 8.0), "16x16": (8.0, 20.0), "32x32": (10.0, 40.0)}
    lo, hi = expected[label]
    for sparsity, ratio in zip(SPARSITIES, ratios):
        assert lo < ratio < hi, (label, sparsity, ratio)
