"""Tests for the kernel-level SpMM baselines (Figures 3b, 16, 18 machinery)."""

import numpy as np
import pytest

from repro.baselines import (
    CuSparseKernel,
    DenseKernelBaseline,
    PITSpmmKernel,
    SparTAKernel,
    SputnikKernel,
    TritonBlockSparseKernel,
    mean_run_length,
    triton_convert_passes,
)
from repro.hw import V100
from repro.sparsity import granular_mask


@pytest.fixture(scope="module")
def fine_mask():
    """32x1-granular mask at 95% sparsity (Figure 16's hardest panel)."""
    return granular_mask((2048, 2048), (32, 1), 0.95, seed=0)


@pytest.fixture(scope="module")
def coarse_mask():
    """32x64-granular mask at 95% (the block-friendly panel)."""
    return granular_mask((2048, 2048), (32, 64), 0.95, seed=0)


class TestCuSparse:
    def test_conversion_is_significant_at_high_sparsity(self):
        """Figure 3b: the dense->CSR build is a visible fraction of the
        total even when only 1% of values survive."""
        mask = granular_mask((2048, 2048), (1, 1), 0.99, seed=1)
        r = CuSparseKernel(V100).spmm(mask, 2048)
        assert r.convert_us > 0.05 * r.compute_us
        # ... and it scales with the dense area, not with nnz.
        big = CuSparseKernel(V100).spmm(
            granular_mask((4096, 4096), (1, 1), 0.99, seed=1), 2048
        )
        assert big.convert_us > 3 * r.convert_us

    def test_compute_scales_with_nnz(self):
        k = CuSparseKernel(V100)
        lo = k.spmm(granular_mask((1024, 1024), (1, 1), 0.99, seed=0), 1024)
        hi = k.spmm(granular_mask((1024, 1024), (1, 1), 0.90, seed=0), 1024)
        assert hi.compute_us > 5 * lo.compute_us

    def test_functional_matches_dense(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64)) * (rng.random((64, 64)) < 0.2)
        b = rng.standard_normal((64, 32))
        out, _ = CuSparseKernel(V100).run_functional(a, b)
        np.testing.assert_allclose(out, a @ b, atol=1e-10)

    def test_slower_than_dense_at_low_sparsity(self):
        """Figure 3b: at 70% sparsity cuSPARSE loses to dense cuBLAS."""
        mask = granular_mask((2048, 2048), (1, 1), 0.70, seed=2)
        cs = CuSparseKernel(V100).spmm(mask, 2048)
        dense = DenseKernelBaseline(V100).spmm(mask, 2048)
        assert cs.total_us > dense.total_us


class TestSputnik:
    def test_run_length_detector(self):
        assert mean_run_length(np.array([[1, 1, 1, 0, 1]], dtype=bool)) == 2.0
        assert mean_run_length(np.zeros((2, 2), dtype=bool)) == 0.0

    def test_faster_than_cusparse(self, fine_mask):
        sp = SputnikKernel(V100).spmm(fine_mask, 2048)
        cs = CuSparseKernel(V100).spmm(fine_mask, 2048)
        assert sp.compute_us < cs.compute_us

    def test_horizontal_runs_help(self):
        k = SputnikKernel(V100)
        vert = granular_mask((1024, 1024), (32, 1), 0.95, seed=0)
        horz = granular_mask((1024, 1024), (1, 64), 0.95, seed=0)
        assert k.efficiency(horz) > k.efficiency(vert)


class TestTritonBlock:
    def test_block_cover_waste(self, fine_mask):
        r = TritonBlockSparseKernel(V100, block=32).spmm(fine_mask, 2048)
        assert r.detail["coverage_waste"] > 0.5

    def test_no_waste_on_aligned_blocks(self):
        mask = granular_mask((1024, 1024), (32, 32), 0.9, seed=0)
        r = TritonBlockSparseKernel(V100, block=32).spmm(mask, 1024)
        assert r.detail["coverage_waste"] == pytest.approx(0.0)

    def test_convert_passes_grow_with_block(self):
        assert triton_convert_passes(32) > triton_convert_passes(16)

    def test_rejects_tiny_blocks(self):
        with pytest.raises(ValueError):
            TritonBlockSparseKernel(V100, block=4)


class TestSparTA:
    def test_compile_cost_off_by_default(self, coarse_mask):
        r = SparTAKernel(V100).spmm(coarse_mask, 2048)
        assert r.convert_us == 0.0

    def test_compile_cost_when_dynamic(self, coarse_mask):
        r = SparTAKernel(V100, include_compile=True).spmm(coarse_mask, 2048)
        assert r.convert_us == pytest.approx(500e6)  # ~500 seconds

    def test_beats_triton_on_fine_granularity(self, fine_mask):
        """Figure 16: granularity alignment beats 32x32 blocks at 32x1."""
        sparta = SparTAKernel(V100).spmm(fine_mask, 2048)
        triton = TritonBlockSparseKernel(V100, block=32).spmm(fine_mask, 2048)
        assert sparta.compute_us < triton.compute_us


class TestPITKernelLevel:
    def test_beats_all_baselines_on_fine_granularity(self, fine_mask):
        """The Figure 16 headline at 32x1."""
        n = 2048
        pit = PITSpmmKernel(V100).spmm(fine_mask, n)
        for k in (
            CuSparseKernel(V100),
            SputnikKernel(V100),
            TritonBlockSparseKernel(V100, block=32),
            SparTAKernel(V100),
        ):
            assert pit.compute_us < k.spmm(fine_mask, n).compute_us, k.name

    def test_close_to_triton_on_coarse_blocks(self, coarse_mask):
        """Figure 16 at 32x64: PIT ~ OpenAI block sparse (same dense tiles)."""
        pit = PITSpmmKernel(V100).spmm(coarse_mask, 2048)
        triton = TritonBlockSparseKernel(V100, block=32).spmm(coarse_mask, 2048)
        assert pit.compute_us < 1.3 * triton.compute_us

    def test_convert_far_below_triton(self, fine_mask):
        """Figure 18: PIT's index build is an order of magnitude cheaper."""
        pit = PITSpmmKernel(V100)
        triton = TritonBlockSparseKernel(V100, block=32)
        pit_convert = pit.convert_us(fine_mask, (32, 32))
        assert triton.convert_us(fine_mask) > 10 * pit_convert

    def test_dense_fallback_at_low_sparsity(self):
        mask = granular_mask((1024, 1024), (1, 1), 0.10, seed=0)
        r = PITSpmmKernel(V100).spmm(mask, 1024)
        assert r.detail.get("fallback")
        assert r.convert_us == 0.0

    def test_tensor_core_variant(self):
        mask = granular_mask((1024, 1024), (32, 1), 0.95, seed=0)
        fp16 = PITSpmmKernel(V100, "float16", tensor_core=True).spmm(mask, 1024)
        fp32 = PITSpmmKernel(V100, "float32").spmm(mask, 1024)
        assert fp16.compute_us < fp32.compute_us
