"""Tests for fault-tolerant serving: injection, health, retry, deadlines.

Four properties carry the resilience layer:

* **Determinism** — every injector decision is a pure function of
  ``(seed, fault coordinates)``: two injectors, two query orders, or two
  drivers observe identical fault schedules under one seed.
* **Containment** — a failed attempt loses nothing: every admitted request
  reports exactly one terminal outcome (ok, failed, shed, or
  deadline-exceeded), and retries move to a different healthy replica.
* **Circuit breaking** — repeated failures quarantine a replica, a
  half-open probe re-admits it, and placement prices suspect replicas
  worse without abandoning a degraded fleet.
* **Equivalence** — the simulated scheduler and the virtual-clock replay
  make identical decisions under identical injection seeds.
"""

import pytest

from repro.core import KernelChoice
from repro.hw import V100
from repro.models import bert_workload, switch_workload
from repro.models.workloads import opt_inference_workload
from repro.runtime import (
    FaultInjector,
    FaultSpec,
    HealthTracker,
    ResilienceConfig,
    ServingEngine,
    decision_trace,
    replay_trace,
    serve_workloads,
)
from repro.runtime.resilience import (
    DEAD,
    HALF_OPEN,
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    TransientExecFault,
    WorkerCrashFault,
)


def make_engine(**kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=4,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=3,
        overlap_selection=False,
        charge_selection=False,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


def mixed_trace(engine, n=20, interarrival_us=400.0):
    workloads = []
    for i in range(n):
        if i % 5 == 0:
            workloads.append(
                opt_inference_workload("125m", batch_size=2, seed=i)
            )
        elif i % 5 == 3:
            workloads.append(switch_workload(8, batch_size=2, seed=i))
        else:
            workloads.append(bert_workload("mnli", 2, seed=i))
    return engine.submit_many(workloads, interarrival_us=interarrival_us)


CHAOS = ResilienceConfig(
    fault=FaultSpec(
        1234,
        crash_prob=0.05,
        transient_prob=0.15,
        straggler_prob=0.1,
        outages=((1, 3000.0, 60000.0),),
    ),
    max_retries=3,
)


class TestFaultSpecValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ValueError, match="crash_prob"):
            FaultSpec(1, crash_prob=1.5)
        with pytest.raises(ValueError, match="<= 1"):
            FaultSpec(1, crash_prob=0.6, transient_prob=0.6)

    def test_outage_window_must_be_nonempty(self):
        with pytest.raises(ValueError, match="outage window"):
            FaultSpec(1, outages=((0, 5000.0, 5000.0),))

    def test_straggler_factor_must_slow_down(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultSpec(1, straggler_factor=0.5)


class TestInjectorDeterminism:
    def test_decisions_are_pure_functions_of_coordinates(self):
        spec = FaultSpec(
            7, crash_prob=0.2, transient_prob=0.3, straggler_prob=0.3,
            search_fail_prob=0.5,
        )
        first, second = FaultInjector(spec), FaultInjector(spec)
        coords = [
            (batch, attempt, replica)
            for batch in range(30)
            for attempt in range(3)
            for replica in range(3)
        ]
        # Query the second injector in reverse: outcomes are
        # coordinate-addressed, so call order must not matter.
        outcomes_first = [self._exec_outcome(first, c) for c in coords]
        outcomes_second = [
            self._exec_outcome(second, c) for c in reversed(coords)
        ]
        assert outcomes_first == list(reversed(outcomes_second))
        assert [
            first.slowdown(replica, batch, attempt)
            for batch, attempt, replica in coords
        ] == [
            second.slowdown(replica, batch, attempt)
            for batch, attempt, replica in coords
        ]
        sigs = [("proj", (i, i + 1)) for i in range(50)]
        assert [first.search_fails(k, s) for k, s in sigs] == [
            second.search_fails(k, s) for k, s in sigs
        ]

    @staticmethod
    def _exec_outcome(injector, coords):
        batch_id, attempt, replica_id = coords
        try:
            injector.exec_fault(replica_id, batch_id, attempt, 0.0)
        except WorkerCrashFault:
            return "crash"
        except TransientExecFault:
            return "transient"
        return "ok"

    def test_seed_changes_the_schedule(self):
        coords = [(b, 0, 0) for b in range(200)]
        schedules = []
        for seed in (1, 2):
            injector = FaultInjector(FaultSpec(seed, transient_prob=0.3))
            schedules.append(
                tuple(self._exec_outcome(injector, c) for c in coords)
            )
        assert schedules[0] != schedules[1]

    def test_outage_windows_are_clock_pure(self):
        injector = FaultInjector(
            FaultSpec(1, outages=((2, 1000.0, 2000.0),))
        )
        assert not injector.replica_down(2, 999.9)
        assert injector.replica_down(2, 1000.0)
        assert injector.replica_down(2, 1999.9)
        assert not injector.replica_down(2, 2000.0)
        assert not injector.replica_down(0, 1500.0)


class TestHealthTracker:
    CONFIG = ResilienceConfig(
        quarantine_after=3, quarantine_us=10000.0, quarantine_cap_us=40000.0,
        suspect_penalty_us=1000.0,
    )

    def test_breaker_trips_after_consecutive_failures(self):
        health = HealthTracker(2, self.CONFIG)
        health.on_failure(0, 100.0)
        health.on_failure(0, 200.0)
        assert health.state(0, 250.0) == SUSPECT
        assert health.placement_penalty_us(0, 250.0) == 1000.0
        health.on_failure(0, 300.0)
        assert health.state(0, 350.0) == QUARANTINED
        assert health.placement_penalty_us(0, 350.0) == float("inf")
        # The untouched replica is unaffected.
        assert health.state(1, 350.0) == HEALTHY

    def test_success_resets_the_failure_streak(self):
        health = HealthTracker(1, self.CONFIG)
        health.on_failure(0, 100.0)
        health.on_failure(0, 200.0)
        health.on_success(0, 300.0)
        assert health.state(0, 300.0) == HEALTHY
        health.on_failure(0, 400.0)
        health.on_failure(0, 500.0)
        assert health.state(0, 500.0) == SUSPECT  # streak restarted

    def test_quarantine_expiry_admits_one_probe(self):
        health = HealthTracker(1, self.CONFIG)
        for t in (100.0, 200.0, 300.0):
            health.on_failure(0, t)
        assert health.state(0, 300.0) == QUARANTINED
        # Window expired: half-open, priced like a suspect until the one
        # probe is dispatched, then excluded until the probe resolves.
        assert health.state(0, 10300.0) == HALF_OPEN
        assert health.placement_penalty_us(0, 10300.0) == 1000.0
        health.on_dispatch(0, 10300.0)
        assert health.placement_penalty_us(0, 10400.0) == float("inf")
        health.on_success(0, 10500.0)
        assert health.state(0, 10500.0) == HEALTHY

    def test_failed_probe_doubles_the_window_up_to_the_cap(self):
        health = HealthTracker(1, self.CONFIG)
        for t in (100.0, 200.0, 300.0):
            health.on_failure(0, t)
        windows = []
        now = 300.0
        for _ in range(4):
            until = health._replicas[0].quarantined_until_us
            windows.append(until - now)
            now = until
            assert health.state(0, now) == HALF_OPEN
            health.on_dispatch(0, now)
            health.on_failure(0, now)
        assert windows == [10000.0, 20000.0, 40000.0, 40000.0]

    def test_straggler_demotes_healthy_only(self):
        health = HealthTracker(1, self.CONFIG)
        health.on_straggler(0, 100.0)
        assert health.state(0, 100.0) == SUSPECT
        for t in (200.0, 300.0, 400.0):
            health.on_failure(0, t)
        health.on_straggler(0, 500.0)  # must not un-quarantine
        assert health.state(0, 500.0) == QUARANTINED

    def test_outage_makes_a_replica_dead_then_half_open(self):
        injector = FaultInjector(
            FaultSpec(1, outages=((0, 1000.0, 2000.0),))
        )
        health = HealthTracker(1, self.CONFIG, injector=injector)
        assert health.state(0, 500.0) == HEALTHY
        assert health.state(0, 1500.0) == DEAD
        assert health.placement_penalty_us(0, 1500.0) == float("inf")
        assert health.state(0, 2500.0) == HALF_OPEN
        timeline = health.timeline()
        assert (1500.0, 0, DEAD) in timeline
        assert (2500.0, 0, HALF_OPEN) in timeline


class TestResilienceConfig:
    def test_backoff_is_exponential_and_capped(self):
        config = ResilienceConfig(
            retry_backoff_us=500.0, retry_backoff_cap_us=1600.0
        )
        assert [config.backoff_us(a) for a in range(4)] == [
            500.0, 1000.0, 1600.0, 1600.0,
        ]

    def test_deadline_prefers_the_request_budget(self):
        config = ResilienceConfig(default_deadline_us=5000.0)

        class Req:
            arrival_us = 100.0
            deadline_us = 700.0

        class Bare:
            arrival_us = 100.0
            deadline_us = None

        assert config.deadline_for(Req()) == 800.0
        assert config.deadline_for(Bare()) == 5100.0
        assert ResilienceConfig().deadline_for(Bare()) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError, match="quarantine_after"):
            ResilienceConfig(quarantine_after=0)
        with pytest.raises(ValueError, match="default_deadline_us"):
            ResilienceConfig(default_deadline_us=0.0)


class TestSimulatedChaos:
    def test_no_request_is_ever_lost(self):
        engine = make_engine(resilience=CHAOS)
        requests = mixed_trace(engine)
        submitted = {r.request_id for r in requests}
        report = engine.run(policy="continuous")
        reported = [r.request_id for r in report.requests]
        assert sorted(reported) == sorted(submitted)
        assert len(reported) == len(set(reported))
        for r in report.requests:
            assert r.ok or r.shed or r.error

    def test_failures_retry_onto_a_different_replica(self):
        engine = make_engine(resilience=CHAOS)
        mixed_trace(engine, n=40)
        report = engine.run(policy="continuous")
        assert report.retries > 0
        assert report.failovers > 0
        # Retried batches keep their batch id; attempts are distinguishable.
        attempts = {}
        for batch in report.batches:
            attempts.setdefault(batch.batch_id, []).append(batch.attempt)
        assert all(len(a) == len(set(a)) for a in attempts.values())

    def test_replica_outage_appears_in_the_health_timeline(self):
        engine = make_engine(resilience=CHAOS)
        mixed_trace(engine)
        report = engine.run(policy="continuous")
        assert any(
            rid == 1 and state == DEAD
            for _, rid, state in report.health_timeline
        )
        assert "resilience:" in report.describe()
        assert "health:" in report.describe()

    def test_tight_deadlines_report_deadline_exceeded(self):
        config = ResilienceConfig(
            fault=FaultSpec(99, transient_prob=1.0),
            max_retries=3,
            retry_backoff_us=4000.0,
            default_deadline_us=2000.0,
        )
        engine = make_engine(resilience=config)
        mixed_trace(engine, n=8)
        report = engine.run(policy="continuous")
        assert report.deadline_exceeded > 0
        exceeded = [r for r in report.requests if r.deadline_exceeded]
        for r in exceeded:
            assert not r.ok
            assert not r.shed
            assert "deadline exceeded" in r.error

    def test_exhausted_retries_fail_terminally(self):
        config = ResilienceConfig(
            fault=FaultSpec(99, transient_prob=1.0), max_retries=1
        )
        engine = make_engine(resilience=config)
        mixed_trace(engine, n=6)
        report = engine.run(policy="continuous")
        failed = [
            r for r in report.requests
            if not r.ok and not r.shed and not r.deadline_exceeded
        ]
        assert failed
        assert all("retries exhausted" in r.error for r in failed)
        assert all(r.retries == 1 for r in failed)

    def test_per_request_deadline_threads_through_submit(self):
        engine = make_engine(resilience=ResilienceConfig())
        workload = bert_workload("mnli", 2, seed=0)
        request = engine.submit(workload, arrival_us=0.0, deadline_us=750.0)
        assert request.deadline_us == 750.0

    def test_without_resilience_behavior_is_unchanged(self):
        plain = make_engine()
        mixed_trace(plain)
        baseline = plain.run(policy="continuous")
        configured = make_engine(resilience=ResilienceConfig())
        mixed_trace(configured)
        report = configured.run(policy="continuous")
        assert decision_trace(baseline, include_timing=True) == decision_trace(
            report, include_timing=True
        )
        assert report.retries == 0
        assert report.health_timeline == []


class TestDegradedPlanning:
    def test_search_failure_falls_back_to_a_degraded_plan(self):
        config = ResilienceConfig(fault=FaultSpec(5, search_fail_prob=1.0))
        engine = make_engine(resilience=config)
        mixed_trace(engine, n=10)
        report = engine.run(policy="continuous")
        assert report.degraded_plans > 0
        assert all(r.ok for r in report.requests)
        assert "degraded plans:" in report.describe()

    def test_degraded_plans_are_never_cached(self):
        config = ResilienceConfig(fault=FaultSpec(5, search_fail_prob=1.0))
        engine = make_engine(resilience=config)
        mixed_trace(engine, n=10)
        engine.run(policy="continuous")
        # The process-wide cache also holds the backend's cover-workload
        # memos; what must never appear is an Algorithm 1 outcome — every
        # search was injected to fail, so every plan was degraded.
        cached = [
            slot[0]
            for shard in engine.plan_cache._shard_list
            for slot in shard.entries.values()
        ]
        assert not any(isinstance(value, KernelChoice) for value in cached)


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", [1234, 777])
    def test_sim_and_replay_decide_identically_under_faults(self, seed):
        resilience = ResilienceConfig(
            fault=FaultSpec(
                seed,
                crash_prob=0.05,
                transient_prob=0.15,
                straggler_prob=0.1,
                outages=((1, 3000.0, 60000.0),),
            ),
            max_retries=3,
            default_deadline_us=200000.0,
        )
        sim_engine = make_engine(resilience=resilience)
        mixed_trace(sim_engine)
        simulated = sim_engine.run(policy="continuous")

        live_engine = make_engine(resilience=resilience)
        requests = mixed_trace(live_engine)
        replayed = replay_trace(live_engine, requests)

        assert decision_trace(simulated, include_timing=True) == (
            decision_trace(replayed, include_timing=True)
        )
        assert simulated.retries == replayed.retries
        assert simulated.failovers == replayed.failovers
        assert simulated.health_timeline == replayed.health_timeline
        assert sorted(r.request_id for r in simulated.requests) == (
            sorted(r.request_id for r in replayed.requests)
        )

    def test_same_seed_replays_are_bit_identical(self):
        traces = []
        for _ in range(2):
            engine = make_engine(resilience=CHAOS)
            requests = mixed_trace(engine)
            traces.append(
                decision_trace(
                    replay_trace(engine, requests), include_timing=True
                )
            )
        assert traces[0] == traces[1]


class TestLiveChaos:
    def test_worker_path_resolves_every_future_under_faults(self):
        engine = make_engine(resilience=CHAOS)
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(12)]
        report = serve_workloads(engine, workloads)
        reported = [r.request_id for r in report.requests]
        assert len(reported) == len(workloads)
        assert len(reported) == len(set(reported))
        for r in report.requests:
            assert r.ok or r.shed or r.error
