"""Tests for the dense reference operators."""

import numpy as np
import pytest

from repro.tensor.ops import (
    batch_matmul,
    conv2d,
    dropout_mask,
    gelu,
    layernorm,
    masked_softmax,
    matmul,
    reduce_sum,
    relu,
    softmax,
)


class TestBasics:
    def test_matmul(self):
        a, b = np.eye(3), np.arange(9.0).reshape(3, 3)
        np.testing.assert_array_equal(matmul(a, b), b)

    def test_batch_matmul(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((4, 5, 6))
        b = rng.standard_normal((4, 6, 7))
        ref = np.stack([a[i] @ b[i] for i in range(4)])
        np.testing.assert_allclose(batch_matmul(a, b), ref, atol=1e-12)

    def test_reduce_sum(self):
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(reduce_sum(x, axis=1), [3.0, 12.0])

    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0, 0, 2])

    def test_gelu_limits(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-3)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(1)
        s = softmax(rng.standard_normal((8, 16)))
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(8), atol=1e-12)

    def test_stable_for_large_values(self):
        s = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(s, [[0.5, 0.5]])

    def test_masked_softmax_zeroes_masked(self):
        x = np.zeros((2, 4))
        mask = np.array([[True, True, False, False], [True, False, False, False]])
        s = masked_softmax(x, mask)
        np.testing.assert_allclose(s[0], [0.5, 0.5, 0, 0])
        np.testing.assert_allclose(s[1], [1, 0, 0, 0])

    def test_masked_softmax_fully_masked_row(self):
        s = masked_softmax(np.ones((1, 3)), np.zeros((1, 3), dtype=bool))
        np.testing.assert_array_equal(s, np.zeros((1, 3)))


class TestLayernorm:
    def test_normalizes(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 64)) * 5 + 3
        y = layernorm(x, np.ones(64), np.zeros(64))
        np.testing.assert_allclose(y.mean(axis=-1), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(y.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_params(self):
        x = np.ones((1, 4)) * 7
        y = layernorm(x, np.full(4, 2.0), np.full(4, 1.5))
        np.testing.assert_allclose(y, np.full((1, 4), 1.5))


class TestConv2d:
    def test_identity_kernel(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 1, 5, 5))
        w = np.zeros((1, 1, 1, 1))
        w[0, 0, 0, 0] = 1.0
        np.testing.assert_allclose(conv2d(x, w), x)

    def test_matches_manual(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 2, 2))
        out = conv2d(x, w)
        assert out.shape == (1, 1, 3, 3)
        assert out[0, 0, 0, 0] == pytest.approx(0 + 1 + 4 + 5)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv2d(np.zeros((1, 2, 4, 4)), np.zeros((1, 3, 2, 2)))

    def test_stride(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 2, 2))
        out = conv2d(x, w, stride=2)
        assert out.shape == (1, 1, 2, 2)


class TestDropoutMask:
    def test_rate_respected(self):
        mask = dropout_mask((1000, 100), 0.3, seed=0)
        assert mask.mean() == pytest.approx(0.7, abs=0.02)

    def test_seeded(self):
        np.testing.assert_array_equal(
            dropout_mask((10, 10), 0.5, seed=3), dropout_mask((10, 10), 0.5, seed=3)
        )

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            dropout_mask((2, 2), 1.0, seed=0)
