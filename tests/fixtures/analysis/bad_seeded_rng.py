"""Known-bad: entropy-seeded and hidden-global-state RNG use."""

import numpy as np
from numpy.random import default_rng


def sample_plans(count):
    rng = np.random.default_rng()  # expect[seeded-rng]
    noise = np.random.rand(count)  # expect[seeded-rng]
    np.random.seed(7)  # expect[seeded-rng]
    other = default_rng(seed=None)  # expect[seeded-rng]
    return rng, noise, other
