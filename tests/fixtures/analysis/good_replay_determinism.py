"""Known-good: the decision core as a pure function of injected state."""


class SchedulingPolicy:
    def __init__(self, clock, rng):
        self.clock = clock
        self.rng = rng

    def admit(self, queue):
        now = self.clock.now()
        jitter = float(self.rng.uniform(0.0, 1.0))
        for replica in sorted({1, 2, 3}):
            now += replica
        return self._tiebreak(queue, now + jitter)

    def _tiebreak(self, queue, score):
        for item in sorted(set(queue)):
            score += item
        return score
