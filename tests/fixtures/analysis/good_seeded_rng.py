"""Known-good: every generator is constructed from an explicit seed."""

import numpy as np


def sample_plans(seed, count):
    rng = np.random.default_rng(seed)
    salted = np.random.default_rng(seed ^ 0x9E3779B9)
    named = np.random.default_rng(seed=1234)
    return rng.normal(size=count), salted.integers(0, 4), named
