"""Known-bad: attribute mutation on frozen plan objects.

Parsed only, never imported — the bare PlanSpec/KernelChoice names are
resolved by annotation and constructor-name inference, not at runtime.
"""


def retarget(spec: PlanSpec, m):  # noqa: F821
    spec.m = m  # expect[frozen-spec-purity]
    spec.cost_us += 1.0  # expect[frozen-spec-purity]
    setattr(spec, "kind", "matmul")  # expect[frozen-spec-purity]
    object.__setattr__(spec, "m", m)  # expect[frozen-spec-purity]
    return spec


def degrade(planner, shapes):
    choice = KernelChoice(None, 0.0)  # noqa: F821
    choice.cost_us = 1.0  # expect[frozen-spec-purity]
    resolved = planner.resolve(shapes)
    resolved.plan = None  # expect[frozen-spec-purity]
    return choice, resolved
