"""Known-bad: shard state and guarded registries touched without locks,
plus an inconsistent lock-order pair.  Never imported — parsed only."""

import threading

_REG: dict = {}
_REG_LOCK = threading.Lock()

_A_LOCK = threading.Lock()
_B_LOCK = threading.Lock()


def put_unlocked(cache, key, value):
    shard = cache._shard_for(key)
    shard.entries[key] = value  # expect[lock-discipline]


def total_hits(cache):
    return sum(s.hits for s in cache._shard_list)  # expect[lock-discipline]


def register_unlocked(name, value):
    _REG[name] = value  # expect[lock-discipline]


def forward():
    with _A_LOCK:
        with _B_LOCK:  # expect[lock-discipline]
            pass


def backward():
    with _B_LOCK:
        with _A_LOCK:
            pass
