"""Known-bad pragmas: unjustified, unknown-rule, and stale suppressions.

Expected findings are enumerated in tests/test_analysis.py (not with
inline expect markers: a trailing marker would change the pragma text).
"""

import numpy as np

rng = np.random.default_rng()  # pit: allow[seeded-rng]
probe = 3  # pit: allow[no-such-rule] - the rule id is misspelled
count = 4  # pit: allow[seeded-rng] - there is no finding on this line
