"""Known-bad: mutating the permutation of a resolved nm-sparse plan.

Parsed only, never imported — the bare PermutedChoice/PlanSpec names are
resolved by annotation and constructor-name inference, not at runtime.
The cached channel permutation is part of the plan artifact: rewriting it
in place silently changes which weights survive the N:M projection for
every later consumer of the cache entry.
"""


def reorder(plan: PermutedChoice, order):  # noqa: F821
    plan.permutation = tuple(order)  # expect[frozen-spec-purity]
    setattr(plan, "pattern", (2, 4))  # expect[frozen-spec-purity]
    object.__setattr__(plan, "permutation", order)  # expect[frozen-spec-purity]
    return plan


def retune(planner, shapes):
    choice = PermutedChoice(None, (), ())  # noqa: F821
    choice.permutation = (1, 0)  # expect[frozen-spec-purity]
    spec = planner.make_spec("nm-sparse", shapes)
    spec.permutation = ("learned", 4, 0)  # expect[frozen-spec-purity]
    return choice, spec
