"""Known-bad: unbounded retry loops and entropy-seeded fault injection."""

from repro.runtime.resilience import FaultInjector, FaultSpec


def retry_forever(execute):
    attempts = 0
    while True:  # expect[bounded-retry]
        attempts += 1
        try:
            return execute()
        except RuntimeError:
            continue


def retry_forever_rebinding(execute):
    retry_count = 0
    while True:  # expect[bounded-retry]
        retry_count = retry_count + 1
        try:
            return execute()
        except RuntimeError:
            continue


def unseeded_fault_schedule():
    spec = FaultSpec()  # expect[bounded-retry]
    return spec


def entropy_seeded_fault_schedule():
    injector = FaultInjector(seed=None)  # expect[bounded-retry]
    return injector
