"""Known-good: codec-built payloads and config-driven heartbeat cadence."""


def dispatch(data_channel, codec_message):
    data_channel.send(codec_message)


def broadcast_delta(data_channel, entries):
    payload = {"type": "cache-delta", "entries": entries, "released": []}
    data_channel.send(payload)


def spawn_with_config_cadence(spawn_worker, cluster_config):
    return spawn_worker(
        replica_id=0,
        heartbeat_interval_s=cluster_config.heartbeat_interval_s,
    )


class Worker:
    def __init__(self, config):
        self.config = config
        self.heartbeat_interval_s = config.heartbeat_interval_s

    def beat(self, control_channel, sequence):
        control_channel.send({"type": "heartbeat", "seq": sequence})
