"""Known-good: nm-sparse plans carry their permutation immutably."""

import dataclasses


class PermutedChoice:
    def __init__(self, choice, permutation, pattern):
        # Constructors may initialize frozen fields.
        object.__setattr__(self, "choice", choice)
        object.__setattr__(self, "permutation", permutation)
        object.__setattr__(self, "pattern", pattern)

    def __post_init__(self):
        object.__setattr__(self, "permutation", tuple(self.permutation))


def reorder(plan: PermutedChoice, order):
    return dataclasses.replace(plan, permutation=tuple(order))


def retune(planner, shapes):
    spec = planner.make_spec("nm-sparse", shapes)
    return dataclasses.replace(spec, permutation=("learned", 4, 0))
