"""Known-good pragmas: justified suppressions that silence real findings."""

import numpy as np

rng = np.random.default_rng()  # pit: allow[seeded-rng] - fixture: entropy is acceptable in this demo
# pit: allow[seeded-rng] - standalone pragma covers the statement below
probe = np.random.default_rng()
