"""Known-good: frozen plan objects are rebuilt, never mutated."""

import dataclasses


class PlanSpec:
    def __init__(self, m):
        # Constructors may initialize frozen fields.
        object.__setattr__(self, "m", m)

    def __post_init__(self):
        object.__setattr__(self, "m", max(self.m, 1))


def retarget(spec: PlanSpec, m):
    return dataclasses.replace(spec, m=m)


def degrade(planner, shapes):
    resolved = planner.resolve(shapes)
    return dataclasses.replace(resolved, plan=None)
