"""Known-good: the same access patterns as the bad twin, done right."""

import threading

_REG: dict = {}
_REG_LOCK = threading.Lock()

_A_LOCK = threading.Lock()
_B_LOCK = threading.Lock()


def put_locked(cache, key, value):
    shard = cache._shard_for(key)
    with shard.lock:
        shard.entries[key] = value


def total_hits(cache):
    total = 0
    for s in cache._shard_list:
        with s.lock:
            total += s.hits
    return total


def register_locked(name, value):
    with _REG_LOCK:
        _REG[name] = value


def forward():
    with _A_LOCK:
        with _B_LOCK:
            pass


def also_forward():
    with _A_LOCK:
        with _B_LOCK:
            pass
