"""Known-bad: nondeterminism reachable from the scheduling decision core."""

import random
import time


class SchedulingPolicy:
    def admit(self, queue):
        now = time.time()  # expect[replay-determinism]
        jitter = random.random()  # expect[replay-determinism]
        for replica in {1, 2, 3}:  # expect[replay-determinism]
            now += replica
        return self._tiebreak(queue, now + jitter)

    def _tiebreak(self, queue, score):
        pending = set(queue)
        for item in pending:  # expect[replay-determinism]
            score += item
        return score
