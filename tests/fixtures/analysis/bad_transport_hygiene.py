"""Known-bad: live handles on the wire and literal heartbeat cadences."""


class LeakyDispatcher:
    def __init__(self, channel, backend):
        self.channel = channel
        self.backend = backend
        self.heartbeat_interval_s = 0.25  # expect[transport-hygiene]

    def send_callback(self):
        self.channel.send(lambda: None)  # expect[transport-hygiene]

    def send_live_backend(self):
        self.channel.send({"backend": self.backend})  # expect[transport-hygiene]

    def send_engine_handle(self, engine):
        extra = {"attempt": 0}
        self.channel.send({"engine": engine, "extra": extra})  # expect[transport-hygiene]

    def send_lock_over_pipe(self, result_pipe, state_lock):
        result_pipe.send({"guard": state_lock})  # expect[transport-hygiene]


def spawn_with_literal_cadence(spawn_worker):
    return spawn_worker(replica_id=0, heartbeat_interval_s=0.05)  # expect[transport-hygiene]
