"""Known-good: the asyncio equivalents of every bad-twin pattern."""

import asyncio


async def good_worker(lock, backend, batch):
    await asyncio.sleep(0.01)
    acquired = await lock.acquire()
    result = await asyncio.to_thread(backend.execute_batch, batch)
    payload = await asyncio.to_thread(_read_dump, "dump.json")
    return acquired, result, payload


def _read_dump(path):
    # Sync helper: blocking I/O is fine outside async def.
    with open(path) as f:
        return f.read()
