"""Known-bad: blocking calls inside async def bodies."""

import time


async def bad_worker(lock, fut, backend, batch):
    time.sleep(0.01)  # expect[async-hygiene]
    lock.acquire()  # expect[async-hygiene]
    fut.result()  # expect[async-hygiene]
    backend.execute_batch(batch)  # expect[async-hygiene]
    with open("dump.json") as f:  # expect[async-hygiene]
        return f.read()
