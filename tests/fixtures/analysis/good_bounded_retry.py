"""Known-good: statically bounded retries and explicitly seeded faults."""

from repro.runtime.resilience import FaultInjector, FaultSpec


def retry_with_static_bound(execute, max_retries):
    for attempt in range(max_retries + 1):
        try:
            return execute()
        except RuntimeError:
            if attempt == max_retries:
                raise


def retry_with_guarded_loop(execute, max_retries):
    attempts = 0
    while attempts <= max_retries:
        attempts += 1
        try:
            return execute()
        except RuntimeError:
            continue
    raise RuntimeError("retry budget exhausted")


def event_loop(queue):
    # A plain service loop is fine: nothing counts retries here.
    while True:
        item = queue.get()
        if item is None:
            return


def seeded_fault_schedule(seed):
    spec = FaultSpec(seed, transient_prob=0.1)
    return FaultInjector(spec)
