"""Tests for the model zoo, functional references, and the runtime engine."""

import numpy as np
import pytest

from repro.baselines import (
    DeepSpeedBackend,
    PITBackend,
    PyTorchBackend,
    TurboTransformerBackend,
    TutelBackend,
)
from repro.hw import A100, V100
from repro.models import (
    LayerWeights,
    TABLE2,
    bert_base,
    bert_workload,
    longformer,
    longformer_workload,
    moe_layer_grouped,
    moe_layer_reference,
    museformer_workload,
    opt,
    opt_inference_workload,
    padded_batch_forward,
    swin_moe_workload,
    switch_transformer,
    switch_workload,
    varlen_forward,
)
from repro.runtime import (
    format_speedups,
    format_table,
    run_lineup,
    run_transformer,
    sparse_training_step,
    speedup_table,
)


class TestConfigs:
    def test_bert_base_shape(self):
        cfg = bert_base()
        assert (cfg.n_layers, cfg.d_model, cfg.heads, cfg.d_ff) == (12, 768, 12, 3072)
        assert cfg.head_dim == 64

    def test_opt_sizes(self):
        assert opt("13b").d_model == 5120
        assert opt("30b").n_layers == 48
        assert opt("125m").activation == "relu"
        with pytest.raises(KeyError):
            opt("7b")

    def test_switch_moe_layers(self):
        cfg = switch_transformer(64)
        assert cfg.num_moe_layers() == 12  # every other layer of 24
        assert cfg.moe.num_experts == 64

    def test_param_count_scales_with_experts(self):
        assert switch_transformer(128).param_count() > switch_transformer(
            64
        ).param_count()

    def test_longformer_attention_spec(self):
        assert longformer("base").attention.kind == "longformer"
        with pytest.raises(KeyError):
            longformer("xl")

    def test_table2_covers_all_models(self):
        assert len(TABLE2) == 6


class TestFunctionalEquivalence:
    """Model-level permutation-invariance: PIT-style execution == padded."""

    def test_varlen_equals_padded(self):
        rng = np.random.default_rng(0)
        d_model, d_ff, heads = 32, 64, 4
        w = LayerWeights.random(d_model, d_ff, seed=1)
        seqs = [rng.standard_normal((s, d_model)) for s in (5, 9, 3, 12)]
        padded = padded_batch_forward(seqs, w, heads)
        varlen = varlen_forward(seqs, w, heads, seed=7)
        for p, v in zip(padded, varlen):
            np.testing.assert_allclose(p, v, atol=1e-8)

    def test_varlen_equals_padded_causal_relu(self):
        rng = np.random.default_rng(1)
        w = LayerWeights.random(16, 32, seed=2)
        seqs = [rng.standard_normal((s, 16)) for s in (4, 7)]
        padded = padded_batch_forward(seqs, w, 2, activation="relu", causal=True)
        varlen = varlen_forward(seqs, w, 2, activation="relu", causal=True)
        for p, v in zip(padded, varlen):
            np.testing.assert_allclose(p, v, atol=1e-8)

    def test_moe_grouped_equals_reference(self):
        rng = np.random.default_rng(2)
        tokens = rng.standard_normal((40, 8))
        w1 = rng.standard_normal((4, 8, 16))
        w2 = rng.standard_normal((4, 16, 8))
        assignment = rng.integers(0, 4, size=40)
        ref = moe_layer_reference(tokens, w1, w2, assignment)
        grouped = moe_layer_grouped(tokens, w1, w2, assignment, seed=11)
        np.testing.assert_allclose(ref, grouped, atol=1e-10)


class TestWorkloads:
    def test_bert_workload_lengths(self):
        wl = bert_workload("mnli", 32, seed=0)
        assert wl.batch_size == 32
        assert wl.max_len <= wl.config.max_seq

    def test_switch_workload_has_routing(self):
        wl = switch_workload(64, 8, seed=0)
        assert len(wl.routing_by_layer) == 12
        routing = wl.routing_for(1)
        padded = wl.batch_size * wl.max_len
        assert routing is not None and routing.counts.sum() == padded
        assert wl.routing_for(0) is None

    def test_opt_workload_act_sparsity(self):
        wl = opt_inference_workload("125m", 8, act_sparsity=0.99, seed=0)
        assert wl.act_sparsity == 0.99
        assert wl.config.causal

    def test_longformer_workload_stats(self):
        wl = longformer_workload("base", 2048, seed=0)
        assert wl.attn_stats.seq == 2048
        assert 0 < wl.attn_stats.density < 0.6

    def test_swin_fixed_lengths(self):
        wl = swin_moe_workload(8, 16, seed=0)
        assert (wl.lengths == 196).all()

    def test_museformer_workload(self):
        wl = museformer_workload(1024, seed=0)
        assert wl.attn_stats.seq == 1024


class TestEngine:
    def test_inference_report_fields(self):
        wl = bert_workload("sst2", 8, seed=0)
        rep = run_transformer(wl, PITBackend(V100))
        assert rep.ok and rep.latency_ms > 0
        assert rep.peak_mem_gib > 0
        assert rep.convert_ms < rep.latency_ms

    def test_pit_beats_pytorch_on_bert(self):
        wl = bert_workload("mnli", 32, seed=0)
        pt = run_transformer(wl, PyTorchBackend(V100))
        pit = run_transformer(wl, PITBackend(V100))
        assert pit.latency_ms < pt.latency_ms

    def test_training_costs_more_than_inference(self):
        wl = bert_workload("mnli", 8, seed=0)
        b = PyTorchBackend(V100)
        inf = run_transformer(wl, b, mode="inference")
        train = run_transformer(wl, b, mode="training")
        assert train.latency_ms > 2 * inf.latency_ms
        assert train.peak_mem_gib > inf.peak_mem_gib

    def test_tutel_oom_at_many_experts(self):
        """Figure 8: Tutel runs out of memory at large expert counts."""
        wl = switch_workload(256, 32, seed=0)
        rep = run_transformer(wl, TutelBackend(A100, "float32"))
        assert rep.oom

    def test_turbo_unsupported_on_switch(self):
        wl = switch_workload(64, 8, seed=0)
        rep = run_transformer(wl, TurboTransformerBackend(A100))
        assert rep.unsupported

    def test_speedup_table(self):
        wl = bert_workload("cola", 8, seed=0)
        reports = [
            run_transformer(wl, PyTorchBackend(V100)),
            run_transformer(wl, PITBackend(V100)),
        ]
        table = speedup_table(reports)
        assert table["PyTorch"] > 1.0

    def test_run_lineup_handles_unsupported_dtype(self):
        wl = switch_workload(64, 8, seed=0)
        reports = run_lineup(wl, ["MegaBlocks", "PIT"], A100, "float32")
        by_name = {r.backend: r for r in reports}
        assert by_name["MegaBlocks"].unsupported
        assert by_name["PIT"].ok

    def test_bad_mode_rejected(self):
        wl = bert_workload("cola", 4, seed=0)
        with pytest.raises(ValueError):
            run_transformer(wl, PyTorchBackend(V100), mode="eval")


class TestTensorParallel:
    @staticmethod
    def _allreduce_us(devices):
        wl = bert_workload("mnli", 8, seed=0)
        rep = run_transformer(wl, PyTorchBackend(V100), devices=devices)
        return rep.timeline.by_op()["tp.allreduce"]

    def test_allreduce_cost_monotone_in_devices(self):
        """Ring allreduce moves 2*(d-1)/d of the payload per direction:
        wider tensor parallelism must pay strictly more communication."""
        costs = [self._allreduce_us(d) for d in (2, 4, 8)]
        assert costs[0] < costs[1] < costs[2]

    def test_allreduce_matches_ring_formula(self):
        c2, c8 = self._allreduce_us(2), self._allreduce_us(8)
        # 2-way moves 1.0x the payload per allreduce, 8-way moves 1.75x.
        assert c8 / c2 == pytest.approx(1.75, rel=1e-6)

    def test_replicated_ops_do_not_shard(self):
        """Megatron-style TP replicates layernorm/residual on every rank at
        full size; only the weight-bearing matmuls divide by the device
        count."""
        wl = bert_workload("mnli", 8, seed=0)
        one = run_transformer(wl, PyTorchBackend(V100), devices=1)
        four = run_transformer(wl, PyTorchBackend(V100), devices=4)
        ops1, ops4 = one.timeline.by_op(), four.timeline.by_op()
        for op in ("layernorm", "residual"):
            assert ops4[op] == pytest.approx(ops1[op])
        for op in ("attn.q", "attn.proj", "ffn.in", "ffn.out", "attn.qk"):
            assert ops4[op] == pytest.approx(ops1[op] / 4)


class TestLineupKwargs:
    def test_stale_kwargs_do_not_abort_lineup(self):
        """A stale backend_kwargs entry (renamed/removed constructor arg)
        must cost one failure report, not the whole lineup."""
        wl = bert_workload("cola", 4, seed=0)
        reports = run_lineup(
            wl,
            ["PyTorch", "PIT"],
            V100,
            backend_kwargs={"PyTorch": {"bogus_flag": True}},
        )
        by_name = {r.backend: r for r in reports}
        assert by_name["PyTorch"].unsupported
        assert "bogus_flag" in by_name["PyTorch"].error
        assert by_name["PIT"].ok

    def test_valid_kwargs_still_bind(self):
        from repro.runtime import validate_backend_kwargs

        assert validate_backend_kwargs("PIT", {"plan_cache": None}) is None
        assert validate_backend_kwargs("PyTorch", {}) is None
        error = validate_backend_kwargs("PyTorch", {"nope": 1})
        assert error is not None and "nope" in error
        assert validate_backend_kwargs("NoSuchBackend", {}) is not None

    def test_plan_cache_threads_to_accepting_backends(self):
        """A lineup-level plan cache reaches backends whose constructor
        accepts one (PIT) and is silently skipped for those that don't."""
        from repro.core import PlanCache

        wl = opt_inference_workload("125m", 2, seed=0)
        cache = PlanCache()
        reports = run_lineup(
            wl, ["PyTorch", "PIT"], V100, enforce_memory=False,
            plan_cache=cache,
        )
        assert all(r.ok for r in reports)
        assert cache.misses > 0  # PIT memoized its plans in the shared cache
        misses = cache.misses
        run_lineup(
            wl, ["PyTorch", "PIT"], V100, enforce_memory=False,
            plan_cache=cache,
        )
        assert cache.misses == misses  # second lineup fully warm
        assert cache.hits > 0


class TestSparseTraining:
    def test_pit_fastest_at_fine_granularity(self):
        """Figure 15's 32x1 panel: PIT > PyTorch > PyTorch-S."""
        kwargs = dict(block=(32, 1), sparsity=0.9, batch_tokens=1024, seed=0)
        pit = sparse_training_step("pit", V100, **kwargs)
        pt = sparse_training_step("pytorch", V100, **kwargs)
        pts = sparse_training_step("pytorch-s", V100, **kwargs)
        assert pit.latency_ms < pt.latency_ms < pts.latency_ms

    def test_pytorch_s_convert_heavy(self):
        r = sparse_training_step(
            "pytorch-s", V100, block=(32, 64), sparsity=0.9, batch_tokens=1024
        )
        assert r.convert_ms > 0.2 * r.latency_ms

    def test_pit_memory_drops_with_sparsity(self):
        lo = sparse_training_step("pit", V100, block=(32, 1), sparsity=0.5)
        hi = sparse_training_step("pit", V100, block=(32, 1), sparsity=0.98)
        assert hi.mem_gib < lo.mem_gib

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            sparse_training_step("jax", V100)


class TestReportFormatting:
    def test_format_table(self):
        out = format_table(
            ["name", "ms"], [["PIT", 1.5], ["PyTorch", 12.0]], title="t"
        )
        assert "PIT" in out and "12.0" in out and out.startswith("t")

    def test_format_speedups(self):
        out = format_speedups({"PyTorch": 3.5, "Tutel": 10.0})
        assert out.splitlines()[0].endswith("Tutel")
