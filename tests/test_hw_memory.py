"""Tests for the memory transaction model and the memory tracker."""

import pytest

from repro.hw import (
    V100,
    MemoryTracker,
    OutOfMemoryError,
    gather_efficiency,
    gather_time_us,
    microtile_contig_bytes,
    stream_time_us,
    tensor_bytes,
    transactions_for,
)


class TestTransactions:
    def test_rounds_up(self):
        assert transactions_for(1, V100) == 1
        assert transactions_for(32, V100) == 1
        assert transactions_for(33, V100) == 2

    def test_zero_bytes(self):
        assert transactions_for(0, V100) == 0


class TestStreaming:
    def test_linear_in_bytes(self):
        assert stream_time_us(2_000_000, V100) == pytest.approx(
            2 * stream_time_us(1_000_000, V100)
        )

    def test_bandwidth_value(self):
        # 900 GB/s -> 900 KB per us
        assert stream_time_us(900_000, V100) == pytest.approx(1.0)


class TestGatherEfficiency:
    def test_full_transaction_run_is_near_peak(self):
        assert gather_efficiency(32, V100) == pytest.approx(V100.gather_efficiency)
        assert gather_efficiency(128, V100) == pytest.approx(V100.gather_efficiency)

    def test_narrow_run_wastes_transaction(self):
        # A 4-byte run through a 32-byte transaction uses 1/8 of the bytes.
        assert gather_efficiency(4, V100) == pytest.approx(
            V100.gather_efficiency / 8
        )

    def test_gather_slower_than_stream(self):
        assert gather_time_us(1 << 20, 32, V100) > stream_time_us(1 << 20, V100)

    def test_rejects_nonpositive_run(self):
        with pytest.raises(ValueError):
            gather_efficiency(0, V100)


class TestHelpers:
    def test_microtile_contig_bytes_uses_inner_axis(self):
        assert microtile_contig_bytes((1, 32), "float32") == 128
        assert microtile_contig_bytes((32, 1), "float32") == 4

    def test_tensor_bytes(self):
        assert tensor_bytes((4096, 4096), "float32") == 4096 * 4096 * 4


class TestMemoryTracker:
    def test_alloc_free_roundtrip(self):
        t = MemoryTracker(V100)
        h = t.alloc(1 << 30, "weights", category="weights")
        assert t.current_gib == pytest.approx(1.0)
        t.free(h)
        assert t.current_bytes == 0
        assert t.peak_gib == pytest.approx(1.0)

    def test_oom_at_capacity(self):
        t = MemoryTracker(V100)
        t.alloc(31 * (1 << 30), "big")
        with pytest.raises(OutOfMemoryError) as exc:
            t.alloc(2 * (1 << 30), "overflow")
        assert "overflow" in str(exc.value)

    def test_enforcement_can_be_disabled(self):
        t = MemoryTracker(V100, enforce_capacity=False)
        t.alloc(100 * (1 << 30), "huge")
        assert t.peak_gib == pytest.approx(100.0)

    def test_double_free_rejected(self):
        t = MemoryTracker(V100)
        h = t.alloc(10, "x")
        t.free(h)
        with pytest.raises(KeyError):
            t.free(h)

    def test_free_category(self):
        t = MemoryTracker(V100)
        t.alloc(100, "a", category="activations")
        t.alloc(200, "b", category="activations")
        t.alloc(300, "w", category="weights")
        freed = t.free_category("activations")
        assert freed == 300
        assert t.by_category() == {"weights": 300}

    def test_negative_alloc_rejected(self):
        t = MemoryTracker(V100)
        with pytest.raises(ValueError):
            t.alloc(-1, "bad")

    def test_reset_peak(self):
        t = MemoryTracker(V100)
        h = t.alloc(1 << 20, "x")
        t.free(h)
        t.reset_peak()
        assert t.peak_bytes == 0
