"""Tests for the device specification model."""

import pytest

from repro.hw import (
    A100,
    V100,
    V100_16GB,
    GPUSpec,
    dtype_bytes,
    get_gpu,
    parse_lineup,
)


class TestDtypeBytes:
    def test_known_dtypes(self):
        assert dtype_bytes("float32") == 4
        assert dtype_bytes("float16") == 2
        assert dtype_bytes("float64") == 8
        assert dtype_bytes("int8") == 1

    def test_unknown_dtype_raises_with_candidates(self):
        with pytest.raises(KeyError, match="float32"):
            dtype_bytes("float33")


class TestGPUSpec:
    def test_a100_parameters(self):
        assert A100.num_sms == 108
        assert A100.mem_capacity_gib == 80.0
        assert A100.transaction_bytes == 32

    def test_v100_parameters(self):
        assert V100.num_sms == 80
        assert V100.mem_capacity_gib == 32.0

    def test_fp16_uses_tensor_cores(self):
        assert A100.peak_flops("float16") == pytest.approx(312e12)
        assert A100.peak_flops("float32") == pytest.approx(19.5e12)

    def test_fp64_is_half_fp32(self):
        assert V100.peak_flops("float64") == pytest.approx(V100.peak_flops("float32") / 2)

    def test_bandwidth_bytes_us(self):
        # 900 GB/s == 900e9 / 1e6 bytes per microsecond
        assert V100.bandwidth_bytes_us() == pytest.approx(900e3)

    def test_per_sm_shares_sum_to_device(self):
        assert V100.bandwidth_per_sm_us() * V100.num_sms == pytest.approx(
            V100.bandwidth_bytes_us()
        )

    def test_mem_capacity_bytes(self):
        assert V100.mem_capacity_bytes() == 32 * (1 << 30)

    def test_min_microtile_is_transaction_sized(self):
        # Paper Section 3.1: 32B transaction -> 1x8 float32, 1x4 float64.
        assert A100.min_microtile_elems("float32") == 8
        assert A100.min_microtile_elems("float64") == 4
        assert A100.min_microtile_elems("float16") == 16


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_gpu("A100") is A100
        assert get_gpu("v100-16gb") is V100_16GB

    def test_unknown_gpu_raises(self):
        with pytest.raises(KeyError, match="known GPUs"):
            get_gpu("H100")

    def test_specs_are_frozen(self):
        with pytest.raises(Exception):
            A100.num_sms = 1  # type: ignore[misc]


class TestParseLineup:
    def test_single_device(self):
        assert parse_lineup("v100") == [V100]

    def test_counts_and_mixed_classes_preserve_order(self):
        assert parse_lineup("2xa100+v100") == [A100, A100, V100]
        assert parse_lineup("v100-16gb, 2 x a100") == [
            V100_16GB, A100, A100,
        ]

    def test_case_insensitive_throughout(self):
        assert parse_lineup("2XA100+V100") == [A100, A100, V100]

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="known GPUs"):
            parse_lineup("a100+h100")

    def test_empty_term_raises(self):
        with pytest.raises(ValueError, match="empty term"):
            parse_lineup("a100++v100")
