"""Tests for the dynamic-sparsity workload generators."""

import numpy as np
import pytest

from repro.sparsity import (
    BERT_DATASETS,
    MagnitudePruner,
    MaskStats,
    PatternHitCounter,
    PruningSchedule,
    Router,
    as_mask_stats,
    capacity_tokens,
    drop_overflow,
    dynamic_token_mask,
    get_dataset,
    granular_mask,
    longformer_mask,
    longformer_mask_stats,
    mask_sparsity,
    measured_sparsity,
    museformer_mask,
    museformer_mask_stats,
    pad_to_multiple,
    pattern_fingerprint,
    relu_activation_mask,
    sliding_window_mask,
    two_four_mask,
)


class TestSeqLen:
    def test_all_bert_datasets_registered(self):
        for name in BERT_DATASETS:
            assert get_dataset(name).mean > 0

    def test_lengths_within_bounds(self):
        d = get_dataset("mnli")
        lengths = d.sample(1000, seed=0)
        assert lengths.min() >= d.min_len
        assert lengths.max() <= d.max_len

    def test_mean_roughly_matches(self):
        d = get_dataset("mnli")
        lengths = d.sample(5000, seed=1)
        assert lengths.mean() == pytest.approx(d.mean, rel=0.15)

    def test_seeded_reproducible(self):
        d = get_dataset("cola")
        np.testing.assert_array_equal(d.sample(64, seed=5), d.sample(64, seed=5))

    def test_batches_differ(self):
        d = get_dataset("mnli")
        batches = list(d.batches(2, 32, seed=0))
        assert not np.array_equal(batches[0], batches[1])

    def test_padding_ratio_positive(self):
        ratio = get_dataset("mnli").padding_ratio(32, seed=0)
        assert 0.1 < ratio < 0.9

    def test_pad_to_multiple(self):
        np.testing.assert_array_equal(
            pad_to_multiple(np.array([16, 33, 64]), 32), [32, 64, 64]
        )

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="known"):
            get_dataset("imagenet21k")


class TestActivation:
    def test_target_sparsity(self):
        mask = relu_activation_mask(512, 3072, 0.99, seed=0)
        assert measured_sparsity(mask) == pytest.approx(0.99, abs=0.005)

    def test_dynamic_across_seeds(self):
        a = relu_activation_mask(64, 512, 0.95, seed=0)
        b = relu_activation_mask(64, 512, 0.95, seed=1)
        assert not np.array_equal(a, b)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            relu_activation_mask(8, 8, 1.0)


class TestAttentionMasks:
    def test_sliding_window_bandwidth(self):
        mask = sliding_window_mask(64, 8)
        assert mask[0, 0] and mask[0, 4] and not mask[0, 5]
        assert (mask == mask.T).all()

    def test_longformer_has_global_stripes(self):
        mask = longformer_mask(256, 32, num_global=4, seed=0)
        full_rows = (mask.all(axis=1)).sum()
        assert full_rows >= 4

    def test_longformer_dynamic(self):
        a = longformer_mask(128, 16, num_global=4, seed=0)
        b = longformer_mask(128, 16, num_global=4, seed=1)
        assert not np.array_equal(a, b)

    def test_museformer_causal(self):
        mask = museformer_mask(512, bar_len=64, seed=0)
        assert not np.triu(mask, k=1).any()

    def test_museformer_fine_bars(self):
        mask = museformer_mask(512, bar_len=64, fine_bars=1, summary_stride=100, seed=0)
        # Token in bar 4 must see bar 3 and 4 but not bar 0 (except summaries).
        assert mask[4 * 64 + 1, 3 * 64 + 1]
        row = mask[4 * 64 + 1]
        assert row[: 2 * 64].sum() <= 2  # only summary tokens, if any

    def test_dynamic_token_mask(self):
        mask = dynamic_token_mask(128, 0.25, seed=0)
        assert 0 < mask_sparsity(mask) < 1
        # active x active structure: rank-1 boolean
        rows = mask.any(axis=1)
        np.testing.assert_array_equal(mask, np.outer(rows, rows))


class TestMaskStats:
    def test_matches_full_mask(self):
        mask = longformer_mask(512, 64, num_global=4, seed=3)
        direct = MaskStats.from_mask(mask)
        chunked = longformer_mask_stats(512, 64, num_global=4, seed=3)
        assert direct == chunked

    def test_museformer_chunked_matches(self):
        mask = museformer_mask(1024, bar_len=128, seed=2)
        assert MaskStats.from_mask(mask) == museformer_mask_stats(
            1024, bar_len=128, seed=2
        )

    def test_large_seq_stats_scalable(self):
        stats = museformer_mask_stats(16384, bar_len=256, seed=0)
        assert 0 < stats.density < 0.3
        assert stats.covered_micro_elems() >= stats.nnz

    def test_as_mask_stats_passthrough(self):
        stats = longformer_mask_stats(256, 32, seed=0)
        assert as_mask_stats(stats) is stats

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            MaskStats.from_mask(np.ones((4, 8), dtype=bool))


class TestMoE:
    def test_routing_conserves_tokens(self):
        router = Router(16, seed=0)
        result = router.route(1024, seed=1)
        assert result.counts.sum() == 1024
        assert result.num_experts == 16

    def test_routing_is_imbalanced(self):
        router = Router(64, concentration=0.3, seed=0)
        result = router.route(2048, seed=0)
        assert result.imbalance() > 2.0

    def test_popularity_stable_assignments_vary(self):
        router = Router(8, seed=0)
        a = router.route(256, seed=1)
        b = router.route(256, seed=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_capacity(self):
        assert capacity_tokens(1000, 10, 1.25) == 125

    def test_drop_overflow(self):
        router = Router(4, concentration=0.2, seed=3)
        result = router.route(512, seed=0)
        capped = drop_overflow(result, capacity=64)
        assert capped.counts.max() <= 64
        assert (capped.assignment == -1).sum() == 512 - capped.counts.sum()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Router(0)
        with pytest.raises(ValueError):
            capacity_tokens(10, 2, 0)


class TestPruning:
    def test_schedule_monotone(self):
        s = PruningSchedule(0.0, 0.98, 10)
        vals = [s.sparsity_at(i) for i in range(10)]
        assert vals == sorted(vals)
        assert vals[-1] == pytest.approx(0.98)

    def test_magnitude_pruner_keeps_largest(self):
        w = np.zeros((8, 8))
        w[0:4, 0:4] = 100.0  # one overwhelmingly large block
        mask = MagnitudePruner((4, 4)).mask(w, sparsity=0.75)
        assert mask[0:4, 0:4].all()
        assert mask.sum() == 16

    def test_mask_sparsity_exact(self):
        w = np.random.default_rng(0).standard_normal((64, 64))
        mask = MagnitudePruner((32, 1)).mask(w, 0.9)
        assert mask_sparsity(mask) == pytest.approx(0.9, abs=0.02)

    def test_mask_stream_changes(self):
        w = np.random.default_rng(1).standard_normal((64, 64))
        stream = list(
            MagnitudePruner((32, 1)).mask_stream(
                w, PruningSchedule(0.5, 0.9, 4), drift=0.5, seed=0
            )
        )
        assert len(stream) == 4
        assert not np.array_equal(stream[0][2], stream[-1][2])

    def test_granular_mask_shape_check(self):
        with pytest.raises(ValueError):
            granular_mask((100, 100), (32, 1), 0.5)

    def test_two_four_mask(self):
        mask = two_four_mask((16, 64), seed=0)
        runs = mask.reshape(16, 16, 4)
        assert (runs.sum(axis=-1) == 2).all()


class TestPatternStudy:
    def test_fingerprint_sensitive(self):
        a = np.array([[True, False]])
        b = np.array([[False, True]])
        assert pattern_fingerprint(a) != pattern_fingerprint(b)

    def test_hit_counter(self):
        c = PatternHitCounter()
        p = np.eye(4, dtype=bool)
        assert not c.observe(p)
        assert c.observe(p)
        assert c.hit_ratio == pytest.approx(0.5)

    def test_relu_patterns_never_repeat(self):
        """Figure 20's conclusion at small scale: fresh masks don't repeat."""
        from repro.sparsity import relu_pattern_stream

        c = PatternHitCounter()
        for mask in relu_pattern_stream(32, 128, 0.95, 50, seed=0):
            c.observe(mask)
        assert c.hit_ratio == 0.0
