"""Tests for the wmma model, offline profiler, and execution timeline."""

import numpy as np
import pytest

from repro.hw import (
    A100,
    V100,
    ExecReport,
    SparseTensorCore,
    TileConfig,
    Timeline,
    is_two_four_eligible,
    profile_matmul_tiles,
    validate_wmma_tile,
    wmma_supports,
)


class TestWmma:
    def test_supported_fragments(self):
        assert wmma_supports(16, 16, 16)
        assert wmma_supports(32, 8, 16)
        assert wmma_supports(8, 32, 16)

    def test_multiples_supported(self):
        assert wmma_supports(64, 64, 32)
        assert wmma_supports(32, 64, 16)

    def test_thin_tiles_unsupported(self):
        """A 32x1 granularity cannot feed wmma directly — the motivation for
        PIT's transformation in Figure 17."""
        assert not wmma_supports(32, 1, 16)
        assert not wmma_supports(1, 32, 16)

    def test_validate_raises_with_explanation(self):
        with pytest.raises(ValueError, match="dense"):
            validate_wmma_tile(TileConfig(32, 16, 1))

    def test_two_four_eligibility(self):
        ok = np.array([[1, 0, 2, 0, 0, 3, 0, 4]], dtype=float)
        assert is_two_four_eligible(ok)
        bad = np.array([[1, 2, 3, 0, 0, 0, 0, 4]], dtype=float)
        assert not is_two_four_eligible(bad)

    def test_two_four_requires_multiple_of_four(self):
        assert not is_two_four_eligible(np.ones((2, 6)))

    def test_sparse_tensor_core_speedup(self):
        stc = SparseTensorCore(A100)
        assert stc.fragment_time_ratio(eligible=True) == pytest.approx(0.5)
        assert stc.fragment_time_ratio(eligible=False) == pytest.approx(1.0)


class TestProfiler:
    def test_profiles_nonempty_and_sorted(self):
        profs = profile_matmul_tiles(V100, "float32")
        assert len(profs) > 20
        eff = [p.time_per_k_us / (2 * p.tile.tm * p.tile.tn) for p in profs]
        assert eff == sorted(eff)

    def test_profile_cached(self):
        a = profile_matmul_tiles(V100, "float32")
        b = profile_matmul_tiles(V100, "float32")
        assert a is b

    def test_tensor_core_profiles_only_wmma_tiles(self):
        profs = profile_matmul_tiles(A100, "float16", tensor_core=True)
        assert profs
        from repro.hw import wmma_supports as ok

        assert all(ok(p.tile.tm, p.tile.tn, p.tile.tk) for p in profs)

    def test_profile_predicts_tile_time(self):
        from repro.hw import matmul_tile_time_us

        profs = profile_matmul_tiles(V100, "float32")
        p = profs[0]
        predicted = p.tile_time_us(4096)
        actual = matmul_tile_time_us(p.tile, 4096, "float32", V100)
        assert predicted == pytest.approx(actual, rel=0.02)


class TestTimeline:
    def test_totals(self):
        tl = Timeline()
        tl.record("a", 10.0)
        tl.record("b", 5.0, convert_us=2.0)
        assert tl.total_us == pytest.approx(15.0)
        assert tl.convert_us == pytest.approx(2.0)
        assert tl.total_ms == pytest.approx(0.015)

    def test_by_op_groups(self):
        tl = Timeline()
        tl.record("matmul", 10.0)
        tl.record("matmul", 10.0)
        tl.record("softmax", 1.0)
        assert tl.by_op() == {"matmul": 20.0, "softmax": 1.0}

    def test_scaled(self):
        tl = Timeline()
        tl.record("x", 10.0, convert_us=1.0)
        doubled = tl.scaled(2.0)
        assert doubled.total_us == pytest.approx(20.0)
        assert doubled.convert_us == pytest.approx(2.0)
        assert tl.total_us == pytest.approx(10.0)  # original untouched

    def test_report_validation(self):
        with pytest.raises(ValueError):
            ExecReport(op="x", latency_us=-1.0)
        with pytest.raises(ValueError):
            ExecReport(op="x", latency_us=1.0, convert_us=2.0)

    def test_extend(self):
        a, b = Timeline(), Timeline()
        a.record("x", 1.0)
        b.record("y", 2.0)
        a.extend(b)
        assert a.total_us == pytest.approx(3.0)
