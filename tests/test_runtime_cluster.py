"""Tests for the process-level worker pool (`repro.runtime.cluster`).

Five properties carry the cluster subsystem:

* **Wire fidelity** — the codec round-trips every admission-path object
  (workloads, requests, reports, fault configs, plan-cache entries)
  bit-identically, and refuses live handles.
* **Cross-process determinism** — plan cache keys and fault-injector
  decisions are identical across processes with different
  ``PYTHONHASHSEED`` values, and forked children get fresh shared
  registries instead of aliasing the parent's.
* **Decision equivalence** — ``cluster_replay_trace`` over real worker
  processes reproduces the simulated scheduler's decision trace,
  timings included, over seeds and heterogeneous lineups.
* **Single-flight plan sync** — N workers pay the cold-search bill of
  one process; deltas keep every replica warm.
* **Crash resilience** — a SIGKILL'd worker routes through
  ``resolve_failure`` exactly like an injected crash: zero lost
  requests, a counted failover, and the quarantine -> half-open ->
  healthy ladder once the worker respawns.
"""

import asyncio
import dataclasses
import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.selection import PlanCache
from repro.core.tiledb import TileDB
from repro.hw import A100, V100
from repro.hw.costmodel import predicted_finish_us, transport_adjusted_finish_us
from repro.models import bert_workload, switch_workload
from repro.models.workloads import longformer_workload, opt_inference_workload
from repro.runtime import (
    ClusterConfig,
    ClusterFrontend,
    FaultSpec,
    InferenceRequest,
    ResilienceConfig,
    ServingEngine,
    WorkerLostError,
    cluster_replay_trace,
    decision_trace,
    serve_cluster,
)
from repro.runtime.cluster.codec import (
    decode_delta_entries,
    decode_exception,
    decode_wire,
    dispatch_message,
    encode_delta_entries,
    encode_wire,
)
from repro.runtime.cluster.transport import channel_pair
from repro.runtime.resilience import (
    HALF_OPEN,
    HEALTHY,
    QUARANTINED,
    WorkerCrashFault,
)

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def make_engine(**kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=4,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=2,
        overlap_selection=False,
        charge_selection=False,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


def mixed_trace(engine, n=8, interarrival_us=400.0):
    workloads = []
    for i in range(n):
        if i % 4 == 0:
            workloads.append(
                opt_inference_workload("125m", batch_size=2, seed=i)
            )
        elif i % 4 == 2:
            workloads.append(switch_workload(8, batch_size=2, seed=i))
        else:
            workloads.append(bert_workload("mnli", 2, seed=i))
    return engine.submit_many(workloads, interarrival_us=interarrival_us)


def assert_workload_equal(a, b):
    assert a.config == b.config
    assert np.array_equal(a.lengths, b.lengths)
    assert a.act_sparsity == b.act_sparsity
    assert a.attn_stats == b.attn_stats
    assert sorted(a.routing_by_layer) == sorted(b.routing_by_layer)
    for layer, routing in a.routing_by_layer.items():
        other = b.routing_by_layer[layer]
        assert np.array_equal(routing.assignment, other.assignment)
        assert np.array_equal(routing.counts, other.counts)
        assert np.array_equal(routing.probs, other.probs)
    assert a.seed == b.seed


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
class TestCodec:
    @pytest.mark.parametrize(
        "workload",
        [
            bert_workload("mnli", 3, seed=7),
            opt_inference_workload("125m", batch_size=2, seed=3),
            switch_workload(8, batch_size=2, seed=5),
            longformer_workload("base", seq_len=1024, seed=2),
        ],
        ids=["dense", "act-sparse", "moe", "attention"],
    )
    def test_workload_round_trip(self, workload):
        assert_workload_equal(workload, decode_wire(encode_wire(workload)))

    def test_request_round_trip(self):
        request = InferenceRequest(
            request_id=11,
            workload=switch_workload(8, batch_size=2, seed=1),
            arrival_us=1234.5,
            deadline_us=99999.0,
        )
        restored = decode_wire(encode_wire(request))
        assert restored.request_id == request.request_id
        assert restored.arrival_us == request.arrival_us
        assert restored.deadline_us == request.deadline_us
        assert_workload_equal(restored.workload, request.workload)

    def test_resilience_config_round_trip(self):
        config = ResilienceConfig(
            max_retries=3,
            retry_backoff_us=250.0,
            fault=FaultSpec(
                99, crash_prob=0.1, outages=((1, 2000.0, 4000.0),)
            ),
        )
        restored = decode_wire(encode_wire(config))
        assert restored == config

    def test_plan_cache_entries_round_trip(self):
        engine = make_engine(replicas=1)
        engine.submit(bert_workload("mnli", 2, seed=0))
        engine.run(policy="continuous")
        pairs = engine.plan_cache.entries()
        assert pairs, "warm run should have populated the cache"
        restored = decode_delta_entries(encode_delta_entries(pairs))
        assert restored == pairs

    def test_reports_round_trip_through_dispatch_reply(self):
        engine = make_engine(replicas=1)
        engine.submit(switch_workload(8, batch_size=2, seed=4))
        report = engine.run(policy="continuous")
        batch = report.batches[0]
        restored = decode_wire(encode_wire(batch))
        # The execution timeline is deliberately dropped on the wire (it is
        # diagnostic bulk, not a decision input); everything else survives.
        assert restored.run.timeline.reports == []
        for field in dataclasses.fields(restored.run):
            if field.name == "timeline":
                continue
            assert getattr(restored.run, field.name) == (
                getattr(batch.run, field.name)
            ), field.name
        for field in dataclasses.fields(restored):
            if field.name == "run":
                continue
            assert getattr(restored, field.name) == (
                getattr(batch, field.name)
            ), field.name
        request = report.requests[0]
        assert decode_wire(encode_wire(request)) == request

    def test_live_handles_are_rejected(self):
        with pytest.raises(TypeError):
            encode_wire(threading.Event())
        with pytest.raises(TypeError):
            encode_wire({"callback": (lambda: None)})

    def test_fault_exceptions_rebuild_by_name(self):
        exc = decode_exception("WorkerCrashFault", "replica 1 crashed")
        assert isinstance(exc, WorkerCrashFault)
        generic = decode_exception("KeyError", "boom")
        assert isinstance(generic, RuntimeError)
        assert "KeyError" in str(generic)

    def test_dispatch_message_is_json_ready(self):
        request = InferenceRequest(
            request_id=0, workload=bert_workload("mnli", 2, seed=0)
        )
        message = dispatch_message(
            [request],
            batch_id=3,
            attempt=1,
            start_us=500.0,
            replica_id=2,
            workload=request.workload,
            await_keys=[("plan", "proj")],
        )
        json.dumps(message)  # must not raise


# ----------------------------------------------------------------------
# Transport framing
# ----------------------------------------------------------------------
class TestChannel:
    def test_framed_round_trip_preserves_order(self):
        a, b = channel_pair()
        try:
            for i in range(5):
                a.send({"type": "ping", "seq": i})
            for i in range(5):
                assert b.recv() == {"type": "ping", "seq": i}
        finally:
            a.close()
            b.close()

    def test_peer_close_surfaces_as_worker_lost(self):
        a, b = channel_pair()
        a.close()
        with pytest.raises(WorkerLostError):
            b.recv()
        with pytest.raises(WorkerLostError):
            a.send({"type": "ping"})
        b.close()

    def test_recv_timeout_is_distinguishable_from_death(self):
        a, b = channel_pair()
        try:
            b.settimeout(0.05)
            with pytest.raises(socket.timeout):
                b.recv()
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Transport cost model
# ----------------------------------------------------------------------
class TestTransportCost:
    def test_zero_overhead_matches_predicted_finish(self):
        assert transport_adjusted_finish_us(
            100.0, 50.0, 400.0, 0.0
        ) == predicted_finish_us(100.0, 50.0, 400.0)

    def test_overhead_is_additive(self):
        base = predicted_finish_us(100.0, 50.0, 400.0)
        assert transport_adjusted_finish_us(100.0, 50.0, 400.0, 75.0) == (
            base + 75.0
        )

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="transport_overhead_us"):
            transport_adjusted_finish_us(0.0, 0.0, 1.0, -1.0)


# ----------------------------------------------------------------------
# Fork-aware shared registries (the PR's bugfix satellite)
# ----------------------------------------------------------------------
def _fork_registry_child(parent_cache, parent_db, conn):
    child_cache = PlanCache.shared("fork-regression", capacity=32)
    child_db = TileDB.shared(V100, "float32")
    conn.send(
        {
            "cache_is_parent": child_cache is parent_cache,
            "db_is_parent": child_db is parent_db,
            "cache_empty": len(child_cache) == 0,
        }
    )
    conn.close()


class TestForkAwareRegistries:
    def test_forked_child_gets_fresh_registries(self):
        ctx = multiprocessing.get_context("fork")
        PlanCache.clear_shared()
        TileDB.clear_shared()
        parent_cache = PlanCache.shared("fork-regression", capacity=32)
        parent_cache.put(("plan", "marker"), 1.0)
        parent_db = TileDB.shared(V100, "float32")
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_fork_registry_child,
            args=(parent_cache, parent_db, send_conn),
        )
        proc.start()
        send_conn.close()
        result = recv_conn.recv()
        proc.join(30)
        assert proc.exitcode == 0
        # The child rebuilt both registries: same lookup keys, new objects,
        # and no inherited entries.
        assert not result["cache_is_parent"]
        assert not result["db_is_parent"]
        assert result["cache_empty"]
        # The parent's registry is untouched.
        assert PlanCache.shared("fork-regression", capacity=32) is parent_cache
        assert TileDB.shared(V100, "float32") is parent_db
        PlanCache.clear_shared()
        TileDB.clear_shared()


# ----------------------------------------------------------------------
# Cross-process determinism under PYTHONHASHSEED (the PR's test satellite)
# ----------------------------------------------------------------------
_HASHSEED_PROBE = """
import json
from repro.hw import V100
from repro.models import bert_workload, switch_workload
from repro.runtime import FaultInjector, FaultSpec, ServingEngine

engine = ServingEngine(
    V100, max_batch_tokens=8192, max_batch_size=4, enforce_memory=False,
    replicas=1, overlap_selection=False, charge_selection=False,
)
tiledb_key = engine.device_for_replica(0).tiledb.cache_key
keys = []
for workload in (
    bert_workload("mnli", 2, seed=0),
    switch_workload(8, batch_size=2, seed=1),
):
    for spec, _ in engine._plan_requests(workload, tiledb_key):
        keys.append(repr(spec.cache_key()))
injector = FaultInjector(
    FaultSpec(77, crash_prob=0.25, transient_prob=0.25, straggler_prob=0.2)
)
grid = []
for replica_id in range(3):
    for batch_id in range(6):
        try:
            injector.exec_fault(replica_id, batch_id, 0, 1000.0 * batch_id)
            grid.append("ok")
        except Exception as exc:
            grid.append(type(exc).__name__)
        grid.append(round(injector.slowdown(replica_id, batch_id, 0), 9))
print(json.dumps({"keys": keys, "grid": grid}, sort_keys=True))
"""


class TestCrossProcessDeterminism:
    def test_cache_keys_and_fault_decisions_survive_hash_randomization(self):
        outputs = []
        for hashseed in ("0", "1"):
            env = dict(os.environ, PYTHONPATH=REPO_SRC, PYTHONHASHSEED=hashseed)
            proc = subprocess.run(
                [sys.executable, "-c", _HASHSEED_PROBE],
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        decoded = json.loads(outputs[0])
        assert decoded["keys"], "probe should emit plan keys"
        assert any(entry != "ok" for entry in decoded["grid"][::2]), (
            "probe probabilities should inject at least one fault"
        )


# ----------------------------------------------------------------------
# Decision equivalence: worker processes vs the simulated scheduler
# ----------------------------------------------------------------------
LINEUPS = {
    "homogeneous": None,
    "heterogeneous": [A100, V100],
}


class TestClusterReplayEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("lineup", sorted(LINEUPS), ids=str)
    def test_decision_identical_to_simulated_scheduler(self, seed, lineup):
        kwargs = {}
        if LINEUPS[lineup] is not None:
            kwargs["replica_specs"] = LINEUPS[lineup]
        sim = make_engine(**kwargs)
        mixed_trace(sim, n=6, interarrival_us=300.0 + 100.0 * seed)
        sim_report = sim.run(policy="continuous")

        clu = make_engine(**kwargs)
        mixed_trace(clu, n=6, interarrival_us=300.0 + 100.0 * seed)
        clu_report = cluster_replay_trace(clu)

        assert decision_trace(clu_report, include_timing=True) == (
            decision_trace(sim_report, include_timing=True)
        )
        assert clu_report.makespan_us == sim_report.makespan_us

    def test_decision_identical_under_fault_injection(self):
        resilience = ResilienceConfig(
            fault=FaultSpec(
                1234,
                crash_prob=0.05,
                transient_prob=0.15,
                outages=((1, 3000.0, 60000.0),),
            ),
            max_retries=3,
        )
        sim = make_engine(resilience=resilience)
        mixed_trace(sim, n=8)
        sim_report = sim.run(policy="continuous")

        clu = make_engine(resilience=resilience)
        mixed_trace(clu, n=8)
        clu_report = cluster_replay_trace(clu)

        assert decision_trace(clu_report, include_timing=True) == (
            decision_trace(sim_report, include_timing=True)
        )
        assert clu_report.retries == sim_report.retries
        assert clu_report.failovers == sim_report.failovers
        assert sim_report.retries > 0, "seed 1234 should exercise retries"

    def test_cold_searches_bounded_by_single_process_count(self):
        sim = make_engine(replicas=1)
        mixed_trace(sim, n=6)
        sim_report = sim.run(policy="continuous")

        clu = make_engine(replicas=3)
        mixed_trace(clu, n=6)
        clu_report = cluster_replay_trace(clu)

        sim_misses = sum(b.cache_misses for b in sim_report.batches)
        clu_misses = sum(b.cache_misses for b in clu_report.batches)
        # Three worker processes, each with a private cache, together pay
        # no more cold searches than the one-replica run: the deltas carry
        # every resolved plan (and memo) to the whole fleet.
        assert clu_misses <= sim_misses


# ----------------------------------------------------------------------
# Live serving over real processes
# ----------------------------------------------------------------------
class TestLiveCluster:
    def test_live_fleet_shares_cold_searches(self):
        workload = bert_workload("mnli", 2, seed=0)
        single = make_engine(replicas=1, max_batch_size=1)
        single_report = serve_cluster(single, [workload] * 4)
        assert all(r.ok for r in single_report.requests)
        single_misses = sum(b.cache_misses for b in single_report.batches)

        fleet = make_engine(replicas=2, max_batch_size=1)
        fleet_report = serve_cluster(fleet, [workload] * 4)
        assert all(r.ok for r in fleet_report.requests)
        fleet_misses = sum(b.cache_misses for b in fleet_report.batches)

        assert single_misses > 0
        # Identical signatures everywhere: the owner searches once and the
        # delta keeps every other batch (on either worker) warm.
        assert fleet_misses == single_misses
        # The host cache absorbed the deltas too.
        assert len(fleet.plan_cache) > 0

    def test_live_report_covers_every_request(self):
        engine = make_engine(replicas=2)
        workloads = [
            bert_workload("mnli", 2, seed=i) if i % 2 else
            switch_workload(8, batch_size=2, seed=i)
            for i in range(4)
        ]
        report = serve_cluster(engine, workloads)
        assert len(report.requests) == 4
        assert all(r.ok for r in report.requests)
        ids = [r.request_id for r in report.requests]
        assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# SIGKILL chaos: a real dead process is just another crash fault
# ----------------------------------------------------------------------
class TestWorkerKill:
    def test_sigkill_routes_through_resolve_failure(self):
        resilience = ResilienceConfig(
            max_retries=2,
            retry_backoff_us=1000.0,
            failure_detect_us=100.0,
            quarantine_after=1,
            quarantine_us=200_000.0,
            suspect_penalty_us=1000.0,
        )
        engine = make_engine(
            replicas=2, max_batch_size=1, resilience=resilience
        )
        cluster = ClusterConfig(
            heartbeat_interval_s=0.02,
            heartbeat_timeout_s=0.25,
            exec_delay_s=0.25,
        )

        async def run():
            frontend = ClusterFrontend(engine, cluster=cluster)
            await frontend.start()
            try:
                # Warm wave: both replicas execute, plans sync.
                warm = [
                    await frontend.submit(bert_workload("mnli", 2, seed=s))
                    for s in (0, 1)
                ]
                await frontend.drain()
                await asyncio.gather(*warm)

                # Victim dispatch: wait until it is on the wire, then
                # SIGKILL the worker mid-execution.
                fut = await frontend.submit(bert_workload("mnli", 2, seed=2))
                victim = None
                for _ in range(400):
                    for replica_id in (0, 1):
                        if frontend.dispatch_inflight(replica_id) is not None:
                            victim = replica_id
                            break
                    if victim is not None:
                        break
                    await asyncio.sleep(0.005)
                assert victim is not None, "dispatch never reached a worker"
                pid = frontend.worker_pid(victim)
                os.kill(pid, signal.SIGKILL)
                await frontend.drain()
                victim_report = await fut

                # Give the respawned worker time to pass quarantine.
                await asyncio.sleep(0.35)
                burst = [
                    await frontend.submit(bert_workload("mnli", 2, seed=s))
                    for s in range(3, 9)
                ]
                await frontend.drain()
                burst_reports = await asyncio.gather(*burst)
                return frontend.report(), victim, victim_report, burst_reports
            finally:
                await frontend.stop()

        report, victim, victim_report, burst_reports = asyncio.run(run())

        # Zero lost requests: the killed batch retried onto the peer.
        assert victim_report.ok
        assert victim_report.retries >= 1
        assert all(r.ok for r in burst_reports)
        assert len(report.requests) == 9
        assert all(r.ok for r in report.requests)
        ids = [r.request_id for r in report.requests]
        assert len(set(ids)) == len(ids)
        assert report.failovers >= 1

        # The breaker walked the same ladder an injected crash walks.
        states = [
            state for _, replica_id, state in report.health_timeline
            if replica_id == victim
        ]
        assert QUARANTINED in states
        tail = states[states.index(QUARANTINED):]
        assert HALF_OPEN in tail
        assert HEALTHY in tail[tail.index(HALF_OPEN):]
