"""Tests for the live asyncio serving front end.

Three properties carry the real-concurrency refactor:

* **Equivalence** — the front end drives the same
  :class:`~repro.runtime.scheduler.SchedulingPolicy` as the simulated
  :class:`ContinuousScheduler`, so a seeded trace replayed in virtual time
  reproduces the simulated run's batch compositions and placements
  decision-for-decision.
* **Backpressure** — over the queue-depth bound, shed requests are
  reported (never silently dropped) and block mode bounds in-flight depth
  without losing requests.
* **Liveness** — the real asyncio worker path serves complete, correct
  reports with zero extra cold Algorithm 1 searches versus the simulated
  schedule of the same trace.
"""

import asyncio

import pytest

from repro.hw import A100, V100
from repro.models import bert_workload, longformer_workload, switch_workload
from repro.models.workloads import opt_inference_workload
from repro.runtime import (
    AsyncServingFrontend,
    ContinuousScheduler,
    ServingEngine,
    VirtualClock,
    decision_trace,
    make_live_frontend,
    replay_trace,
    serve_workloads,
)


def make_engine(**kwargs):
    defaults = dict(
        max_batch_tokens=8192,
        max_batch_size=4,
        batch_window_us=1500.0,
        enforce_memory=False,
        replicas=3,
        overlap_selection=False,
        charge_selection=False,
    )
    defaults.update(kwargs)
    return ServingEngine(V100, **defaults)


def mixed_trace(engine, n=16, interarrival_us=400.0, seed_base=0):
    """A seeded mixed-kind trace: proj, ffn-act, attention and moe plans."""
    workloads = []
    for i in range(n):
        seed = seed_base + i
        if i % 5 == 0:
            workloads.append(
                opt_inference_workload("125m", batch_size=2, seed=seed)
            )
        elif i % 5 == 3:
            workloads.append(switch_workload(8, batch_size=2, seed=seed))
        else:
            workloads.append(bert_workload("mnli", 2, seed=seed))
    return engine.submit_many(workloads, interarrival_us=interarrival_us)


def simulated_and_replayed(engine_kwargs, trace_kwargs):
    sim_engine = make_engine(**engine_kwargs)
    mixed_trace(sim_engine, **trace_kwargs)
    simulated = sim_engine.run(policy="continuous")

    live_engine = make_engine(**engine_kwargs)
    requests = mixed_trace(live_engine, **trace_kwargs)
    replayed = replay_trace(live_engine, requests)
    return simulated, replayed


class TestReplayEquivalence:
    def test_homogeneous_trace_is_decision_identical(self):
        simulated, replayed = simulated_and_replayed({}, {})
        assert decision_trace(replayed, include_timing=True) == decision_trace(
            simulated, include_timing=True
        )
        assert replayed.policy == "live"

    def test_equivalence_includes_plan_cache_traffic(self):
        """Zero extra cold searches: the replay's plan-cache misses equal
        the simulated run's exactly (the batch-level hit/miss counts are
        already compared by decision_trace)."""
        simulated, replayed = simulated_and_replayed({}, {})
        assert (
            replayed.plan_cache_stats["misses"]
            == simulated.plan_cache_stats["misses"]
        )
        assert (
            replayed.plan_cache_stats["hits"]
            == simulated.plan_cache_stats["hits"]
        )

    def test_heterogeneous_cost_aware_with_overlap(self):
        """Mixed device classes with speculative selection on: placements
        come from cost-aware pricing and speculation resolves against the
        predicted class — both reproduced decision-for-decision."""
        kwargs = dict(
            replica_specs=[V100, A100, V100],
            replicas=1,
            overlap_selection=True,
        )
        simulated, replayed = simulated_and_replayed(kwargs, {})
        assert decision_trace(replayed, include_timing=True) == decision_trace(
            simulated, include_timing=True
        )

    @pytest.mark.parametrize("seed_base", [0, 100, 1000])
    def test_seeded_traces_property(self, seed_base):
        """The equivalence is a property over traces, not one example."""
        trace_kwargs = dict(n=12, interarrival_us=700.0, seed_base=seed_base)
        simulated, replayed = simulated_and_replayed({}, trace_kwargs)
        assert decision_trace(replayed) == decision_trace(simulated)

    def test_compositions_match_under_default_accounting(self):
        """With charge_selection=True (the legacy accounting), measured
        selection wall time perturbs the simulated timeline run-to-run, but
        admission decisions depend only on arrivals/budgets/windows — batch
        compositions still match."""
        kwargs = dict(charge_selection=True, replicas=1)
        simulated, replayed = simulated_and_replayed(kwargs, {})
        sim_batches = [tuple(b["requests"]) for b in decision_trace(simulated)]
        live_batches = [tuple(b["requests"]) for b in decision_trace(replayed)]
        assert live_batches == sim_batches

    def test_replay_consumes_engine_queue_like_run(self):
        engine = make_engine()
        mixed_trace(engine, n=6)
        report = replay_trace(engine)
        assert len(report.requests) == 6
        assert engine.pending() == 0

    def test_replica_stats_match_simulated(self):
        simulated, replayed = simulated_and_replayed({}, {})
        sim_stats = [
            (r.replica_id, r.device, r.batches, r.tokens)
            for r in simulated.replica_stats
        ]
        live_stats = [
            (r.replica_id, r.device, r.batches, r.tokens)
            for r in replayed.replica_stats
        ]
        assert live_stats == sim_stats


class TestVirtualClock:
    def test_fires_in_time_order_with_fifo_ties(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(5.0, fired.append, "late")
        clock.call_at(1.0, fired.append, "early")
        clock.call_at(1.0, fired.append, "early-second")
        while clock.pending():
            clock.fire_next()
        assert fired == ["early", "early-second", "late"]
        assert clock.now_us() == 5.0

    def test_now_visible_inside_callback(self):
        clock = VirtualClock()
        seen = []
        clock.call_at(42.0, lambda: seen.append(clock.now_us()))
        clock.fire_next()
        assert seen == [42.0]


class TestBackpressure:
    def test_shed_requests_reported_not_dropped(self):
        """Past the depth bound in shed mode, every refused request still
        produces a (failed, shed) report and resolves its future."""
        engine = make_engine(
            replicas=2,
            batch_window_us=500000.0,  # batches stay open during the burst
            max_batch_size=64,
            charge_selection=True,
        )
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(8)]

        async def main():
            frontend = AsyncServingFrontend(
                engine, max_queue_depth=3, overload="shed"
            )
            await frontend.start()
            futures = [await frontend.submit(w) for w in workloads]
            await frontend.stop()
            return frontend.report(), await asyncio.gather(*futures)

        report, results = asyncio.run(main())
        assert len(report.requests) == len(workloads)
        assert report.shed_requests == 5
        shed = [r for r in results if r.shed]
        assert len(shed) == 5
        assert all(not r.ok and "shed" in r.error for r in shed)
        assert all(r.batch_id == -1 for r in shed)
        served = [r for r in results if not r.shed]
        assert all(r.ok for r in served)
        # Shed requests count toward failures; served ones completed.
        assert report.failed_requests == 5

    def test_block_mode_bounds_inflight_and_serves_everything(self):
        engine = make_engine(
            replicas=2,
            batch_window_us=2000.0,
            max_batch_size=1,  # dispatch at admission: capacity recycles
            charge_selection=True,
        )
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(6)]
        max_seen = 0

        async def main():
            nonlocal max_seen
            frontend = AsyncServingFrontend(
                engine, max_queue_depth=2, overload="block"
            )
            await frontend.start()
            futures = []
            for w in workloads:
                futures.append(await frontend.submit(w))
                max_seen = max(max_seen, frontend.inflight)
            await frontend.stop()
            await asyncio.gather(*futures)
            return frontend.report()

        report = asyncio.run(main())
        assert len(report.requests) == len(workloads)
        assert report.shed_requests == 0
        assert report.failed_requests == 0
        assert max_seen <= 2

    def test_depth_and_overload_validation(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="max_queue_depth"):
            AsyncServingFrontend(engine, max_queue_depth=0)
        with pytest.raises(ValueError, match="overload"):
            AsyncServingFrontend(engine, overload="drop")
        with pytest.raises(ValueError, match="block"):
            AsyncServingFrontend(
                engine,
                max_queue_depth=1,
                overload="block",
                inline_execution=True,
            )


class TestLiveServing:
    def test_live_serving_zero_extra_cold_searches(self):
        """The same workloads served live (real workers, real clock) run
        exactly as many cold Algorithm 1 searches as the simulated
        schedule: the sharded cache's single-flight resolve never
        duplicates a search across concurrent workers."""
        workloads = [bert_workload("mnli", 2, seed=i % 3) for i in range(10)]

        sim_engine = make_engine(replicas=4, charge_selection=True)
        sim_engine.submit_many(workloads, interarrival_us=200.0)
        simulated = sim_engine.run(policy="continuous")

        live_engine = make_engine(replicas=4, charge_selection=True)
        live = serve_workloads(live_engine, workloads)
        assert len(live.requests) == len(workloads)
        assert live.failed_requests == 0
        assert (
            live.plan_cache_stats["misses"]
            == simulated.plan_cache_stats["misses"]
        )

    def test_live_report_is_complete_and_consistent(self):
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(8)]
        engine = make_engine(replicas=2, charge_selection=True)
        report = serve_workloads(engine, workloads)
        served = {r for b in report.batches for r in b.request_ids}
        assert served == {r.request_id for r in report.requests}
        assert sum(b.size for b in report.batches) == len(workloads)
        assert sum(r.batches for r in report.replica_stats) == len(
            report.batches
        )

    def test_longformer_live(self):
        """Attention-plan traffic through the live path."""
        workloads = [
            longformer_workload(seq_len=1024, batch_size=1, seed=i)
            for i in range(4)
        ]
        engine = make_engine(replicas=2, charge_selection=True)
        report = serve_workloads(engine, workloads)
        assert report.failed_requests == 0
        assert any("attention" in b.plan_kinds for b in report.batches)

    def test_make_live_frontend_convenience(self):
        engine, frontend = make_live_frontend(
            V100,
            replicas=2,
            max_batch_size=4,
            enforce_memory=False,
            max_queue_depth=16,
        )
        assert frontend.engine is engine
        assert frontend.max_queue_depth == 16

        async def main():
            await frontend.start()
            future = await frontend.submit(bert_workload("mnli", 2, seed=0))
            await frontend.stop()
            return await future

        result = asyncio.run(main())
        assert result.ok


class TestWorkerFailure:
    def test_crashing_worker_fails_only_its_own_batch(self):
        """A worker exception (no resilience configured) surfaces as a
        terminal report on exactly the crashed batch's requests; every
        other batch serves normally and the front end drains clean."""
        engine = make_engine(
            replicas=2,
            batch_window_us=2000.0,
            max_batch_size=1,  # one request per batch: failure is isolated
            charge_selection=True,
        )
        real_execute = engine.execute_batch

        def crashing_execute(requests, **kwargs):
            if kwargs.get("batch_id") == 0:
                raise RuntimeError("rehearsed worker crash")
            return real_execute(requests, **kwargs)

        engine.execute_batch = crashing_execute
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(5)]

        async def main():
            frontend = AsyncServingFrontend(engine)
            await frontend.start()
            futures = [await frontend.submit(w) for w in workloads]
            await frontend.stop()
            assert frontend.inflight == 0
            return frontend.report(), await asyncio.gather(*futures)

        report, results = asyncio.run(asyncio.wait_for(main(), timeout=30))
        assert len(results) == len(workloads)
        crashed = [r for r in results if not r.ok]
        assert len(crashed) == 1
        assert crashed[0].batch_id == 0
        assert "worker failure" in crashed[0].error
        assert "rehearsed worker crash" in crashed[0].error
        assert not crashed[0].shed
        served = [r for r in results if r.ok]
        assert len(served) == len(workloads) - 1
        # The crashed batch never produced a batch report.
        assert sorted(b.batch_id for b in report.batches) == [1, 2, 3, 4]
        assert report.failed_requests == 1


class TestShutdownWhileBlocked:
    def test_blocked_submitters_are_released_on_stop(self):
        """stop() must never strand a submitter awaiting capacity: blocked
        callers resolve to refused (shed-style) reports, admitted requests
        still complete."""
        engine = make_engine(
            replicas=2,
            batch_window_us=500000.0,  # batches stay open: capacity never
            max_batch_size=64,  # recycles, so late submitters block forever
            charge_selection=True,
        )
        workloads = [bert_workload("mnli", 2, seed=i) for i in range(5)]

        async def main():
            frontend = AsyncServingFrontend(
                engine, max_queue_depth=2, overload="block"
            )
            await frontend.start()
            admitted = [await frontend.submit(w) for w in workloads[:2]]
            blocked = [
                asyncio.create_task(frontend.submit(w))
                for w in workloads[2:]
            ]
            await asyncio.sleep(0.05)  # let every submitter reach the wait
            assert all(not task.done() for task in blocked)
            await frontend.stop()
            released = await asyncio.gather(*blocked)
            results = await asyncio.gather(*admitted, *released)
            return frontend.report(), results

        report, results = asyncio.run(asyncio.wait_for(main(), timeout=30))
        assert len(results) == len(workloads)
        completed = [r for r in results if r.ok]
        refused = [r for r in results if r.shed]
        assert len(completed) == 2  # the admitted requests still served
        assert len(refused) == 3
        assert all("shutdown" in r.error for r in refused)
        assert len(report.requests) == len(workloads)
