"""Tests for the sharded, thread-safe PlanCache.

The concurrency contract the live serving front end rests on:

* a cold Algorithm 1 search never head-of-line-blocks warm lookups — not
  on other shards (per-shard locks) and not even on its own shard (the
  single-flight protocol releases the shard lock around ``compute``);
* concurrent resolves of one key run the search exactly once, and the
  hit/miss totals match the sequential schedule;
* the shared-cache registry survives being hammered from threads;
* persistence: LRU age-out caps a dump without losing the zero-cold-search
  replay property for what remains, and multi-class dumps validate against
  every device class they contain.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.analysis import load_corpus, static_lock_order
from repro.analysis.runtime_checks import (
    debug_locks_installed,
    verify_against_static,
)
from repro.core import PlanCache, Planner, TileDB
from repro.core.plan import encode_value
from repro.core.selection import DEFAULT_PLAN_CACHE_SHARDS
from repro.hw import A100, V100
from repro.sparsity import granular_mask

_SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(scope="module")
def tiledb():
    return TileDB.shared(V100, "float32")


@pytest.fixture(scope="module")
def static_lock_edges():
    return static_lock_order(
        load_corpus([str(_SRC)], root=str(_SRC.parent))
    )["edges"]


@pytest.fixture
def lock_order_audit(static_lock_edges):
    """Run the test with audited locks; afterwards, every acquisition-order
    edge the threads actually produced must be predicted by the static
    lock-order graph (pitlint's lock-discipline rule)."""
    with debug_locks_installed():
        yield
        assert verify_against_static(static_lock_edges) == []


def keys_on_distinct_shards(cache, count=2):
    """Generate plan-style keys until ``count`` land on distinct shards."""
    picked = []
    shards_seen = set()
    signature = 0
    while len(picked) < count:
        key = ("plan", "proj", 128, 64, 64, "A", (signature,), True, "db")
        shard = cache._shard_for(key)
        if id(shard) not in shards_seen:
            shards_seen.add(id(shard))
            picked.append(key)
        signature += 1
        assert signature < 1000, "shard routing is degenerate"
    return picked


@pytest.mark.usefixtures("lock_order_audit")
class TestShardContention:
    def test_cold_search_does_not_block_other_shards(self):
        """A get on shard B completes while a cold search holds shard A."""
        cache = PlanCache(shards=8)
        cold_key, warm_key = keys_on_distinct_shards(cache)
        cache.put(warm_key, "warm-value")

        in_search = threading.Event()
        release_search = threading.Event()

        def slow_search():
            in_search.set()
            assert release_search.wait(timeout=30.0)
            return "cold-value"

        owner = threading.Thread(
            target=lambda: cache.get_or_compute(cold_key, slow_search)
        )
        owner.start()
        try:
            assert in_search.wait(timeout=30.0)
            # The cold search is in flight right now.  A warm lookup on the
            # other shard must complete without waiting for it — if the two
            # serialized on one lock, this join would time out.
            warm_result = []
            reader = threading.Thread(
                target=lambda: warm_result.append(cache.get(warm_key))
            )
            reader.start()
            reader.join(timeout=30.0)
            assert not reader.is_alive(), (
                "warm lookup blocked behind a cold search on another shard"
            )
            assert warm_result == ["warm-value"]
        finally:
            release_search.set()
            owner.join(timeout=30.0)
        assert cache.get(cold_key) == "cold-value"

    def test_cold_search_does_not_block_same_shard_warm_hits(self):
        """Single-flight releases the shard lock during compute, so even
        same-shard warm traffic proceeds during a cold search."""
        cache = PlanCache(shards=1)  # everything on one shard by force
        cold_key = ("plan", "proj", 128, 64, 64, "A", (1,), True, "db")
        warm_key = ("plan", "proj", 128, 64, 64, "A", (2,), True, "db")
        cache.put(warm_key, "warm-value")

        in_search = threading.Event()
        release_search = threading.Event()

        def slow_search():
            in_search.set()
            assert release_search.wait(timeout=30.0)
            return "cold-value"

        owner = threading.Thread(
            target=lambda: cache.get_or_compute(cold_key, slow_search)
        )
        owner.start()
        try:
            assert in_search.wait(timeout=30.0)
            warm_result = []
            reader = threading.Thread(
                target=lambda: warm_result.append(cache.get(warm_key))
            )
            reader.start()
            reader.join(timeout=30.0)
            assert not reader.is_alive(), (
                "warm lookup blocked behind a same-shard cold search"
            )
            assert warm_result == ["warm-value"]
        finally:
            release_search.set()
            owner.join(timeout=30.0)

    def test_single_flight_runs_the_search_once(self):
        """N concurrent resolvers of one key: one search, N-1 hits."""
        cache = PlanCache()
        key = ("plan", "proj", 128, 64, 64, "A", (7,), True, "db")
        computes = []
        barrier = threading.Barrier(8)
        results = []

        def resolve():
            barrier.wait()
            value, hit = cache.get_or_compute(
                key, lambda: computes.append(1) or "value"
            )
            results.append((value, hit))

        threads = [threading.Thread(target=resolve) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(computes) == 1
        assert all(value == "value" for value, _ in results)
        # Exactly one caller owned the miss; everyone else hit.
        assert sum(1 for _, hit in results if not hit) == 1
        assert cache.misses == 1
        assert cache.hits == 7

    def test_failed_search_propagates_and_releases_waiters(self):
        cache = PlanCache()
        key = ("plan", "proj", 128, 64, 64, "A", (9,), True, "db")

        def boom():
            raise ValueError("no samples")

        with pytest.raises(ValueError, match="no samples"):
            cache.get_or_compute(key, boom)
        # The key is not poisoned: a later compute succeeds.
        value, hit = cache.get_or_compute(key, lambda: "ok")
        assert value == "ok" and not hit

    def test_sequential_counters_match_legacy(self):
        """get/put/get_or_compute counting is unchanged single-threaded."""
        cache = PlanCache(shards=DEFAULT_PLAN_CACHE_SHARDS)
        key = ("plan", "proj", 128, 64, 64, "A", (3,), True, "db")
        assert cache.get(key) is None
        value, hit = cache.get_or_compute(key, lambda: "v")
        assert (value, hit) == ("v", False)
        assert cache.get(key) == "v"
        # One miss from the empty get, one from the owning compute, one hit
        # from the warm get.
        assert (cache.hits, cache.misses) == (1, 2)

    def test_eviction_spreads_no_worse_than_capacity_plus_shards(self):
        cache = PlanCache(capacity=4, shards=8)
        for signature in range(32):
            cache.put(
                ("plan", "proj", 1, 1, 1, "A", (signature,), True, "db"), signature
            )
        assert len(cache) <= 4 + 8 - 1
        assert cache.evictions >= 32 - (4 + 8 - 1)


@pytest.mark.usefixtures("lock_order_audit")
class TestSharedRegistryThreadSafety:
    def test_hammered_shared_registry_yields_one_instance(self):
        PlanCache.clear_shared()
        try:
            barrier = threading.Barrier(16)
            instances = []

            def hammer():
                barrier.wait()
                for _ in range(50):
                    instances.append(PlanCache.shared("hammered"))

            threads = [threading.Thread(target=hammer) for _ in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(instances) == 16 * 50
            assert len({id(c) for c in instances}) == 1
        finally:
            PlanCache.clear_shared()

    def test_parameter_mismatch_still_raises(self):
        PlanCache.clear_shared()
        try:
            PlanCache.shared("strict", capacity=8)
            with pytest.raises(ValueError, match="capacity"):
                PlanCache.shared("strict", capacity=16)
            with pytest.raises(ValueError, match="shards"):
                PlanCache.shared("strict", capacity=8, shards=1)
        finally:
            PlanCache.clear_shared()

    def test_tiledb_shared_from_threads(self):
        barrier = threading.Barrier(8)
        instances = []

        def hammer():
            barrier.wait()
            instances.append(TileDB.shared(V100, "float32"))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert len({id(db) for db in instances}) == 1


class TestPersistence:
    def _planner_with_plan(self, tiledb, cache, seed=0):
        planner = Planner(tiledb, cache)
        mask = granular_mask((256, 256), (8, 1), 0.95, seed=seed)
        spec = planner.make_spec("proj", [mask], 256, 256, 256)
        resolved = planner.resolve(spec, lambda: [mask])
        return planner, spec, resolved

    def test_age_out_keeps_most_recent_entries(self, tiledb, tmp_path):
        cache = PlanCache()
        old_key = ("plan", "proj", 1, 1, 1, "A", (1,), True, "db")
        new_key = ("plan", "proj", 1, 1, 1, "A", (2,), True, "db")
        cache.put(old_key, "old")
        cache.put(new_key, "new")
        cache.get(old_key)  # refresh: old_key is now the most recent
        path = tmp_path / "plans.json"
        stats = cache.save(path, tiledb_key=tiledb.cache_key, max_entries=1)
        assert stats == {"entries": 1, "skipped": 0, "aged_out": 1}
        revived = PlanCache.load(path)
        assert old_key in revived
        assert new_key not in revived

    def test_age_out_preserves_zero_cold_replay_under_cap(self, tiledb, tmp_path):
        """Entries that survive the cap still replay with zero searches."""
        cache = PlanCache()
        planner, spec, resolved = self._planner_with_plan(tiledb, cache)
        # Add a decoy the cap will age out (older than the plan's resolve).
        path = tmp_path / "plans.json"
        cache.put(("ad-hoc", "decoy"), [1, 2, 3])
        planner.resolve(spec)  # refresh the real plan past the decoy
        stats = cache.save(path, tiledb_key=tiledb.cache_key, max_entries=1)
        assert stats["aged_out"] == 1
        warm = Planner(tiledb, PlanCache.load(path))
        revived = warm.resolve(spec)  # no make_samples: must be a pure hit
        assert not revived.cold
        assert revived.choice == resolved.choice

    def test_multi_class_dump_header_lists_every_class(self, tiledb, tmp_path):
        other = TileDB.shared(A100, "float32")
        cache = PlanCache()
        self._planner_with_plan(tiledb, cache, seed=0)
        self._planner_with_plan(other, cache, seed=0)
        path = tmp_path / "plans.json"
        cache.save(path, tiledb_key=tiledb.cache_key)
        payload = json.loads(path.read_text())
        assert payload["format"] == PlanCache.DUMP_FORMAT
        assert len(payload["tiledb_keys"]) == 2
        # Primary first, then every other class found among the entries.
        assert payload["tiledb_keys"][0] == encode_value(tuple(tiledb.cache_key))
        assert encode_value(tuple(other.cache_key)) in payload["tiledb_keys"]

    def test_multi_class_load_validates_full_set(self, tiledb, tmp_path):
        other = TileDB.shared(A100, "float32")
        cache = PlanCache()
        self._planner_with_plan(tiledb, cache, seed=0)
        self._planner_with_plan(other, cache, seed=0)
        path = tmp_path / "plans.json"
        cache.save(path, tiledb_key=tiledb.cache_key)
        # The full lineup loads fine.
        loaded = PlanCache.load(
            path,
            expected_tiledb_keys=[tiledb.cache_key, other.cache_key],
        )
        assert len(loaded) == len(cache)
        # A lineup missing the A100 class must refuse the dump even though
        # the primary header matches.
        with pytest.raises(ValueError, match="does not match any expected"):
            PlanCache.load(
                path,
                expected_tiledb_key=tiledb.cache_key,
                expected_tiledb_keys=[tiledb.cache_key],
            )

    def test_format_1_dump_still_loads(self, tiledb, tmp_path):
        """Dumps written before sharding (format 1) remain readable."""
        path = tmp_path / "plans.json"
        payload = {
            "format": 1,
            "capacity": 16,
            "quantum": 0.05,
            "tiledb_key": encode_value(tuple(tiledb.cache_key)),
            "entries": [],
        }
        path.write_text(json.dumps(payload))
        cache = PlanCache.load(path, expected_tiledb_key=tiledb.cache_key)
        assert cache.capacity == 16
        assert cache.shards == DEFAULT_PLAN_CACHE_SHARDS

    def test_load_respects_dump_shards_and_override(self, tiledb, tmp_path):
        cache = PlanCache(shards=3)
        path = tmp_path / "plans.json"
        cache.save(path, tiledb_key=tiledb.cache_key)
        assert PlanCache.load(path).shards == 3
        assert PlanCache.load(path, shards=5).shards == 5

    def test_save_reports_negative_cap_rejected(self, tiledb, tmp_path):
        cache = PlanCache()
        with pytest.raises(ValueError, match="max_entries"):
            cache.save(
                tmp_path / "plans.json",
                tiledb_key=tiledb.cache_key,
                max_entries=-1,
            )
